#!/usr/bin/env bash
# Tier-1 verification for a hermetic checkout: offline release build, the
# full offline test suite, and a gate that fails if any Cargo.toml
# reintroduces an external registry dependency.
#
# Usage: scripts/check.sh   (from anywhere; cd's to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Gate: zero registry dependencies anywhere in the workspace.
#
# Policy (see README "Hermetic build"): every [dependencies] /
# [dev-dependencies] / [build-dependencies] entry must be a path/workspace
# dependency on an in-repo crate. A version-only requirement like
# `foo = "1"` or `foo = { version = "1", ... }` means cargo would hit the
# registry, which the target environment cannot reach.
# ---------------------------------------------------------------------------
echo "== registry-dependency gate =="
fail=0
while IFS= read -r manifest; do
    # Lines inside dependency tables of the form `name = "semver"` or
    # `name = { version = ... }`; workspace/path deps never match.
    bad=$(awk '
        /^\[.*dependencies[.\]]?/ { indeps = ($0 ~ /dependencies/) }
        /^\[/ && $0 !~ /dependencies/ { indeps = 0 }
        indeps && /^[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*"/ { print FILENAME ": " $0 }
        indeps && /^[A-Za-z0-9_-]+[[:space:]]*=.*version/ { print FILENAME ": " $0 }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "registry dependency detected:"
        echo "$bad"
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path "./target/*")
if [ "$fail" -ne 0 ]; then
    echo "FAIL: external registry dependencies are not allowed (use crates/compat)"
    exit 1
fi
echo "ok: no registry dependencies"

# ---------------------------------------------------------------------------
# Gate: no stringly-typed metric call sites.
#
# Counter names live as `Metric` constants in per-crate `metrics.rs`
# registries (plus the engine's own stats module); call sites must go
# through those constants. A string literal fed straight into
# `.add("...")` / `.bump("...")` / `.set("...")` forks the namespace and
# dodges both the registry and the trace attribution table.
# ---------------------------------------------------------------------------
echo "== typed-metrics gate =="
bad=$(grep -rnE '\.(add|bump|set)\("' crates/*/src --include='*.rs' \
    | grep -v '/metrics\.rs:' | grep -v '/stats\.rs:' || true)
if [ -n "$bad" ]; then
    echo "stringly-typed metric call site detected (use the metrics registry):"
    echo "$bad"
    exit 1
fi
echo "ok: all metric call sites use typed registries"

# ---------------------------------------------------------------------------
# Gate: no panics on the UCP communication paths.
#
# The fault-injection subsystem makes "impossible" wire states reachable;
# crates/ucp must surface them as typed `UcpError`s, never `panic!` /
# `unreachable!` / `.expect(`. Test modules (everything from `#[cfg(test)]`
# down) and comments are exempt.
# ---------------------------------------------------------------------------
echo "== ucp panic-free gate =="
bad=$(awk '
    /#\[cfg\(test\)\]/ { intest[FILENAME] = 1 }
    !intest[FILENAME] && $0 !~ /^[[:space:]]*\/\// && /panic!|unreachable!|\.expect\(/ {
        print FILENAME ": " $0
    }
' crates/ucp/src/*.rs)
if [ -n "$bad" ]; then
    echo "panic!/unreachable!/.expect( on a UCP communication path (use UcpError):"
    echo "$bad"
    exit 1
fi
echo "ok: crates/ucp surfaces errors as values"

# ---------------------------------------------------------------------------
# Formatting gate.
# ---------------------------------------------------------------------------
echo "== cargo fmt --check =="
cargo fmt --check

# ---------------------------------------------------------------------------
# Build + test, fully offline (tier-1 verify plus the per-crate suites).
# ---------------------------------------------------------------------------
echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline (root package: tier-1) =="
cargo test -q --offline

echo "== cargo test -q --offline --workspace (all crates) =="
cargo test -q --offline --workspace

# ---------------------------------------------------------------------------
# Engine microbenchmarks + perf regression gate. Run at reduced (but real)
# iteration counts, then parse BENCH_engine.json and fail on a regression
# of either gated median:
#   - resume_hop: the advance(1) round trip, budget 90 ns (baseline ~76);
#   - sim_dispatch_100k_events: the calendar-queue drain, budget 6 ms
#     (measures ~2 ms; the heap oracle is ~9.7 ms, and the calendar's
#     acceptance bar is >=2.5x over that baseline, i.e. <=3.9 ms, so 6 ms
#     still catches any fall-back-to-heap-class regression through CI
#     noise on a shared vCPU).
# ---------------------------------------------------------------------------
echo "== engine bench + perf regression gate =="
RUCX_BENCH_ITERS=15 RUCX_BENCH_WARMUP=2 \
    cargo bench -q --offline -p rucx-bench --bench engine
test -s BENCH_engine.json || { echo "FAIL: BENCH_engine.json not written"; exit 1; }
hop=$(grep -o '"name": "resume_hop"[^}]*' BENCH_engine.json \
    | grep -o '"median_ns": [0-9]*' | awk '{print $2}')
disp=$(grep -o '"name": "sim_dispatch_100k_events"[^}]*' BENCH_engine.json \
    | grep -o '"median_ns": [0-9]*' | awk '{print $2}')
[ -n "$hop" ] && [ -n "$disp" ] \
    || { echo "FAIL: BENCH_engine.json is missing a gated benchmark"; exit 1; }
echo "   resume_hop median ${hop} ns (budget 90), dispatch median ${disp} ns (budget 6000000)"
[ "$hop" -le 90 ] \
    || { echo "FAIL: resume_hop median ${hop} ns exceeds the 90 ns budget"; exit 1; }
[ "$disp" -le 6000000 ] \
    || { echo "FAIL: sim_dispatch_100k_events median ${disp} ns exceeds the 6 ms budget"; exit 1; }
echo "ok: resume hot path and calendar dispatch within budget"

# ---------------------------------------------------------------------------
# Sharded engine: the conformance contract. Results and traces must be
# byte-identical across shard counts {1,2,8} and across the calendar /
# heap-oracle backends (tests/determinism.rs), and the full-size scaling
# sweep must run end to end (capped at 8 nodes for CI wall-clock; unset
# RUCX_MAX_NODES for the paper-scale 256-node curves).
# ---------------------------------------------------------------------------
echo "== sharded engine: sequential-oracle conformance =="
cargo test -q --offline --test determinism sharded
echo "ok: sharded runs byte-identical across shard counts and backends"

echo "== sharded scaling bench smoke (RUCX_MAX_NODES=8) =="
RUCX_MAX_NODES=8 RUCX_BENCH_ITERS=2 RUCX_BENCH_WARMUP=0 \
    cargo bench -q --offline -p rucx-bench --bench parallel_scaling >/dev/null
echo "ok: sharded weak/strong sweep runs end to end"

# ---------------------------------------------------------------------------
# Protocol engine: autotune determinism + ablation acceptance. The OSU JSON
# with the autotuner enabled must be byte-identical across two runs and
# across shard counts (per-endpoint engine state is seeded and driven by
# virtual time, never by the wall clock), and the engine ablation must clear
# the bars asserted inside it: autotuned never loses to the static table at
# any size, and striping beats single-path NVLink at 16 MiB.
# ---------------------------------------------------------------------------
echo "== protocol engine: autotune determinism gate =="
cargo build -q --offline --release --example osu_cli
osu=./target/release/examples/osu_cli
a=$(RUCX_AUTOTUNE=1 "$osu" latency --quick --json)
b=$(RUCX_AUTOTUNE=1 "$osu" latency --quick --json)
c=$(RUCX_AUTOTUNE=1 "$osu" latency --quick --json --shards 2)
d=$("$osu" latency --quick --json --tune)
[ "$a" = "$b" ] || { echo "FAIL: autotuned OSU JSON differs across runs"; exit 1; }
[ "$a" = "$c" ] || { echo "FAIL: autotuned OSU JSON differs across shard counts"; exit 1; }
[ "$a" = "$d" ] || { echo "FAIL: --tune and RUCX_AUTOTUNE=1 disagree"; exit 1; }
echo "ok: autotuned OSU JSON byte-identical across runs and shard counts"

# ---------------------------------------------------------------------------
# Collective engine: determinism + acceptance. The collective benchmark and
# the training-step proxy must be byte-identical across repeated runs and
# across shard counts {1,2,8} (every size point is an independent seeded
# simulation), and the cross-model/chaos suite must hold: AMPI, OpenMPI and
# Charm4py produce byte-identical reductions, and no fault mix yields a
# silently wrong sum (tests/coll_chaos.rs).
# ---------------------------------------------------------------------------
echo "== collective engine: determinism gate =="
cargo build -q --offline --release --example train_proxy
tp=./target/release/examples/train_proxy
a=$("$osu" coll --quick --json)
b=$("$osu" coll --quick --json)
c=$("$osu" coll --quick --json --shards 2)
d=$("$osu" coll --quick --json --shards 8)
[ "$a" = "$b" ] || { echo "FAIL: collective OSU JSON differs across runs"; exit 1; }
[ "$a" = "$c" ] && [ "$a" = "$d" ] \
    || { echo "FAIL: collective OSU JSON differs across shard counts"; exit 1; }
a=$("$tp" --quick --json)
b=$("$tp" --quick --json)
c=$("$tp" --quick --json --shards 2)
d=$("$tp" --quick --json --shards 8)
[ "$a" = "$b" ] || { echo "FAIL: train_proxy JSON differs across runs"; exit 1; }
[ "$a" = "$c" ] && [ "$a" = "$d" ] \
    || { echo "FAIL: train_proxy JSON differs across shard counts"; exit 1; }
echo "ok: collective bench and train proxy byte-identical across runs and shards"

echo "== collective engine: cross-model conformance + chaos =="
cargo test -q --offline --test coll_chaos
echo "ok: models agree byte-for-byte; no silent wrong sums under faults"

# ---------------------------------------------------------------------------
# Service layer: determinism + registration-leak gates. The many-client
# scatter/submit/gather benchmark must be byte-identical across repeated
# runs and across shard counts {1,2,8} (each sweep point is an independent
# seeded simulation), and the rucx-svc suite must hold: cache-on and
# cache-off runs compute identical task results, cache-on wins at
# small-task scale, and every load run's shutdown asserts the
# registration-leak invariant (`ucp.reg.miss - ucp.reg.evict` equals live
# mappings, which is zero once every buffer is freed, and all pre-mapped
# pool allocations are returned).
# ---------------------------------------------------------------------------
echo "== service layer: svc_bench determinism gate =="
cargo build -q --offline --release --example svc_bench
svc=./target/release/examples/svc_bench
a=$("$svc" --quick --json)
b=$("$svc" --quick --json)
c=$("$svc" --quick --json --shards 2)
d=$("$svc" --quick --json --shards 8)
[ "$a" = "$b" ] || { echo "FAIL: svc_bench JSON differs across runs"; exit 1; }
[ "$a" = "$c" ] && [ "$a" = "$d" ] \
    || { echo "FAIL: svc_bench JSON differs across shard counts"; exit 1; }
echo "ok: svc_bench byte-identical across runs and shard counts"

echo "== service layer: cache-on/off conformance + registration-leak asserts =="
cargo test -q --offline --release -p rucx-svc
echo "ok: identical results with caching on/off; no registration leaks"

echo "== protocol engine: ablation smoke =="
RUCX_ABLATION=autotune cargo bench -q --offline -p rucx-bench --bench ablations >/dev/null
test -s target/rucx-results/ablation_autotune.json \
    || { echo "FAIL: ablation_autotune.json not written"; exit 1; }
echo "ok: engine ablation clears its acceptance asserts"

# ---------------------------------------------------------------------------
# Trace subsystem: the zero-cost-when-disabled claim must also hold at
# compile time (no-default-features strips the `trace` feature), a traced
# run must emit the Chrome JSON and attribution outputs, and identical
# runs must emit byte-identical traces.
# ---------------------------------------------------------------------------
echo "== trace: no-default-features build =="
cargo build -q --offline -p rucx-sim --no-default-features
echo "ok: rucx-sim builds without the trace feature"

echo "== trace: attribution bench smoke =="
cargo bench -q --offline -p rucx-bench --bench trace_attribution
for f in trace_ampi_1M.json trace_attribution.json; do
    test -s "target/rucx-results/$f" \
        || { echo "FAIL: $f not written"; exit 1; }
done
grep -q '"traceEvents"' target/rucx-results/trace_ampi_1M.json \
    || { echo "FAIL: trace_ampi_1M.json is not a Chrome trace"; exit 1; }
echo "ok: traced run + Chrome trace + attribution table"

echo "== trace: determinism test =="
cargo test -q --offline --test determinism trace_output_is_byte_identical
echo "ok: byte-identical trace across same-seed runs"

# ---------------------------------------------------------------------------
# Chaos smoke: the OSU latency path must complete under the canned 1%-drop
# spec with every loss retried or surfaced (tests/fault_injection.rs), and
# a seeded chaos run must replay byte-identically (tests/determinism.rs).
# ---------------------------------------------------------------------------
echo "== chaos smoke: OSU under canned 1% drop + seeded replay =="
cargo test -q --offline --test fault_injection
cargo test -q --offline --test determinism chaos
echo "ok: chaos runs complete, lose nothing silently, replay identically"

# ---------------------------------------------------------------------------
# Chaos scenario matrix: every workload x fault-scenario cell completes,
# merged output is byte-identical across repeated runs and shard counts
# {1,2,8}, the clean column's recovery counters are all zero (the recovery
# machinery costs nothing on a clean path), and each degraded-mode cell
# attributes its recovery to the expected mechanism.
# ---------------------------------------------------------------------------
echo "== chaos scenario matrix: determinism + clean-path gate =="
cargo build -q --offline --release --example scenario_matrix
sm=./target/release/examples/scenario_matrix
a=$("$sm" --quick --json)
b=$("$sm" --quick --json)
c=$("$sm" --quick --json --shards 2)
d=$("$sm" --quick --json --shards 8)
[ "$a" = "$b" ] || { echo "FAIL: scenario matrix JSON differs across runs"; exit 1; }
[ "$a" = "$c" ] && [ "$a" = "$d" ] \
    || { echo "FAIL: scenario matrix JSON differs across shard counts"; exit 1; }
clean=$(grep -o '"scenario":"clean","workload":"[a-z_0-9]*","headline":[0-9.]*,"unit":"[^"]*","dominant":"none","recovery":{"retry":0,"parked":0,"healed":0,"reroute":0,"host_staged":0,"giveup":0,"resubmit":0}' \
    <<<"$a" | wc -l)
[ "$clean" -eq 4 ] \
    || { echo "FAIL: a clean-scenario cell shows nonzero recovery counters"; exit 1; }
grep -q '"scenario":"degrade","workload":"osu_latency"[^}]*"dominant":"reroute"' <<<"$a" \
    || { echo "FAIL: degraded rail did not reroute pipeline chunks"; exit 1; }
grep -q '"scenario":"partition","workload":"svc_load"[^}]*"dominant":"park+probe"' <<<"$a" \
    || { echo "FAIL: partition not absorbed by endpoint park+probe"; exit 1; }
grep -q '"scenario":"gpufail","workload":"osu_latency"[^}]*"dominant":"host-staged fallback"' <<<"$a" \
    || { echo "FAIL: GPU copy-engine failure did not fall back to host staging"; exit 1; }
echo "ok: 24-cell matrix deterministic; clean path pays zero recovery"

# ---------------------------------------------------------------------------
# Fault-machinery overhead: resume hot path unregressed and the clean send
# path pays only the one `faults.enabled()` branch (asserted inside the
# bench; smoke iterations keep it fast).
# ---------------------------------------------------------------------------
echo "== fault overhead bench smoke =="
RUCX_BENCH_ITERS=20 RUCX_BENCH_WARMUP=2 \
    cargo bench -q --offline -p rucx-bench --bench fault_overhead
echo "ok: fault machinery is free when unused"

echo "ALL CHECKS PASSED"
