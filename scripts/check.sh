#!/usr/bin/env bash
# Tier-1 verification for a hermetic checkout: offline release build, the
# full offline test suite, and a gate that fails if any Cargo.toml
# reintroduces an external registry dependency.
#
# Usage: scripts/check.sh   (from anywhere; cd's to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Gate: zero registry dependencies anywhere in the workspace.
#
# Policy (see README "Hermetic build"): every [dependencies] /
# [dev-dependencies] / [build-dependencies] entry must be a path/workspace
# dependency on an in-repo crate. A version-only requirement like
# `foo = "1"` or `foo = { version = "1", ... }` means cargo would hit the
# registry, which the target environment cannot reach.
# ---------------------------------------------------------------------------
echo "== registry-dependency gate =="
fail=0
while IFS= read -r manifest; do
    # Lines inside dependency tables of the form `name = "semver"` or
    # `name = { version = ... }`; workspace/path deps never match.
    bad=$(awk '
        /^\[.*dependencies[.\]]?/ { indeps = ($0 ~ /dependencies/) }
        /^\[/ && $0 !~ /dependencies/ { indeps = 0 }
        indeps && /^[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*"/ { print FILENAME ": " $0 }
        indeps && /^[A-Za-z0-9_-]+[[:space:]]*=.*version/ { print FILENAME ": " $0 }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "registry dependency detected:"
        echo "$bad"
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path "./target/*")
if [ "$fail" -ne 0 ]; then
    echo "FAIL: external registry dependencies are not allowed (use crates/compat)"
    exit 1
fi
echo "ok: no registry dependencies"

# ---------------------------------------------------------------------------
# Formatting gate.
# ---------------------------------------------------------------------------
echo "== cargo fmt --check =="
cargo fmt --check

# ---------------------------------------------------------------------------
# Build + test, fully offline (tier-1 verify plus the per-crate suites).
# ---------------------------------------------------------------------------
echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline (root package: tier-1) =="
cargo test -q --offline

echo "== cargo test -q --offline --workspace (all crates) =="
cargo test -q --offline --workspace

# ---------------------------------------------------------------------------
# Engine microbenchmark smoke: one iteration, no warmup — proves the bench
# harness runs end to end and regenerates BENCH_engine.json. Perf numbers
# from smoke mode are meaningless; run without the env overrides for those.
# ---------------------------------------------------------------------------
echo "== engine bench smoke (RUCX_BENCH_ITERS=1) =="
RUCX_BENCH_ITERS=1 RUCX_BENCH_WARMUP=0 cargo bench -q --offline -p rucx-bench --bench engine
test -s BENCH_engine.json || { echo "FAIL: BENCH_engine.json not written"; exit 1; }
echo "ok: engine bench smoke + BENCH_engine.json"

echo "ALL CHECKS PASSED"
