#!/usr/bin/env bash
# Tier-1 verification for a hermetic checkout: offline release build, the
# full offline test suite, and a gate that fails if any Cargo.toml
# reintroduces an external registry dependency.
#
# Usage: scripts/check.sh   (from anywhere; cd's to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Gate: zero registry dependencies anywhere in the workspace.
#
# Policy (see README "Hermetic build"): every [dependencies] /
# [dev-dependencies] / [build-dependencies] entry must be a path/workspace
# dependency on an in-repo crate. A version-only requirement like
# `foo = "1"` or `foo = { version = "1", ... }` means cargo would hit the
# registry, which the target environment cannot reach.
# ---------------------------------------------------------------------------
echo "== registry-dependency gate =="
fail=0
while IFS= read -r manifest; do
    # Lines inside dependency tables of the form `name = "semver"` or
    # `name = { version = ... }`; workspace/path deps never match.
    bad=$(awk '
        /^\[.*dependencies[.\]]?/ { indeps = ($0 ~ /dependencies/) }
        /^\[/ && $0 !~ /dependencies/ { indeps = 0 }
        indeps && /^[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*"/ { print FILENAME ": " $0 }
        indeps && /^[A-Za-z0-9_-]+[[:space:]]*=.*version/ { print FILENAME ": " $0 }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "registry dependency detected:"
        echo "$bad"
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path "./target/*")
if [ "$fail" -ne 0 ]; then
    echo "FAIL: external registry dependencies are not allowed (use crates/compat)"
    exit 1
fi
echo "ok: no registry dependencies"

# ---------------------------------------------------------------------------
# Build + test, fully offline (tier-1 verify plus the per-crate suites).
# ---------------------------------------------------------------------------
echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline (root package: tier-1) =="
cargo test -q --offline

echo "== cargo test -q --offline --workspace (all crates) =="
cargo test -q --offline --workspace

echo "ALL CHECKS PASSED"
