//! Tier-1 chaos gate: the full stack must survive a seeded adversary.
//!
//! Three layers of assurance, all deterministic:
//! 1. A smoke run of the OSU latency sweep under the canned 1%-drop spec
//!    (the same spec `scripts/check.sh` gates on) — completes and produces
//!    finite numbers.
//! 2. A counter-audited chaos run: every injected loss is either retried
//!    by the reliability protocol or surfaced as a typed error; payloads
//!    arrive intact; no tracked send leaks.
//! 3. A 64-case seeded property: random fault mixes (drop/dup/delay/
//!    corrupt) against random message schedules, under a virtual-time
//!    watchdog — no hang, no silent loss, ever. Failing cases replay with
//!    `RUCX_PROP_SEED` (printed on failure).

use rucx::fabric::Topology;
use rucx::fault::FaultSpec;
use rucx::sim::time::us;
use rucx::sim::RunOutcome;
use rucx::ucp::{blocking, build_sim, MachineConfig, SendBuf, MASK_FULL};

/// Deterministic payload for size `size`, distinguishable per message.
fn pattern(size: u64, salt: u8) -> Vec<u8> {
    (0..size)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

fn chaos_machine(spec: FaultSpec) -> MachineConfig {
    let mut cfg = MachineConfig::default();
    cfg.fault = Some(spec);
    cfg
}

/// OSU latency under the canned CI spec: the whole benchmark path (AMPI and
/// Charm++ models, GPU-direct, inter-node) completes under 1% drop and
/// yields finite positive latencies.
#[test]
fn osu_latency_completes_under_canned_drop() {
    use rucx::osu::{latency, Mode, Model, OsuConfig, Placement};

    let mut cfg = OsuConfig::quick();
    cfg.sizes = vec![8, 4 * 1024, 1 << 20];
    cfg.machine.fault = Some(FaultSpec::canned_one_percent_drop());
    for model in [Model::Ampi, Model::Charm] {
        let s = latency(&cfg, model, Mode::Device, Placement::InterNode);
        assert_eq!(s.points.len(), cfg.sizes.len());
        for (size, v) in &s.points {
            assert!(
                v.is_finite() && *v > 0.0,
                "{model:?} latency at {size}B not finite/positive: {v}"
            );
        }
    }
}

/// Counter audit under a heavier drop rate: all losses recovered (zero
/// give-ups), every payload intact, retransmissions actually happened, and
/// the send-tracking table drained — i.e. zero unsurfaced losses.
#[test]
fn chaos_run_has_zero_unsurfaced_losses() {
    let mut spec = FaultSpec::canned_one_percent_drop();
    spec.seed = 41;
    spec.drop_p = 0.10;
    let mut sim = build_sim(Topology::summit(2), chaos_machine(spec));

    let n = 24u64;
    let size = 4096u64;
    let mut bufs = Vec::new();
    {
        let m = sim.world_mut();
        for i in 0..n {
            let src = m.gpu.pool.alloc_host(0, size, true, true);
            m.gpu.pool.write(src, &pattern(size, i as u8)).unwrap();
            let dst = m.gpu.pool.alloc_host(1, size, true, true);
            bufs.push((src, dst));
        }
    }
    let dsts: Vec<_> = bufs.iter().map(|(_, d)| *d).collect();
    for (i, (s, d)) in bufs.into_iter().enumerate() {
        let tag = i as u64;
        sim.spawn("snd", 0, move |ctx| {
            blocking::send(ctx, 0, 6, SendBuf::Mem(s), tag);
        });
        sim.spawn("rcv", 6, move |ctx| {
            blocking::recv(ctx, 6, d, tag, MASK_FULL);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed);

    let m = sim.world();
    let drops = m.ucp.counters.get("fault.drop");
    let retries = m.ucp.counters.get("ucp.retry");
    assert!(
        drops > 0,
        "10% drop over {n} messages must inject something"
    );
    assert!(retries > 0, "drops must be recovered by retransmission");
    assert_eq!(m.ucp.counters.get("ucp.unreachable"), 0);
    assert_eq!(m.ucp.inflight_tracked(), 0, "tracked sends must drain");
    for (i, d) in dsts.iter().enumerate() {
        assert_eq!(
            m.gpu.pool.read(*d).unwrap(),
            pattern(size, i as u8),
            "payload {i} corrupted or lost"
        );
    }
}

/// Satellite: the online autotuner under a lossy wire. Karn's rule must
/// keep retransmitted envelopes out of the RTT estimate (the sample /
/// skipped counters exactly partition the acks), and the tuned eager
/// thresholds must stay on the candidate ladder — lossy lag samples may
/// move the knob, never drive it unbounded.
#[test]
fn chaos_autotune_is_karn_disciplined_and_bounded() {
    let mut spec = FaultSpec::canned_one_percent_drop();
    spec.seed = 23;
    spec.drop_p = 0.05;
    let mut cfg = chaos_machine(spec);
    cfg.ucp.autotune = true;

    let mut sim = build_sim(Topology::summit(2), cfg);
    let n = 48u64;
    let mut bufs = Vec::new();
    {
        let m = sim.world_mut();
        for i in 0..n {
            // Mixed sizes straddling the eager threshold, so both eager
            // acks and rendezvous lag observations feed the engine.
            let size = [512u64, 8 * 1024, 256 * 1024][i as usize % 3];
            let src = m.gpu.pool.alloc_host(0, size, true, true);
            m.gpu.pool.write(src, &pattern(size, i as u8)).unwrap();
            let dst = m.gpu.pool.alloc_host(1, size, true, true);
            bufs.push((src, dst));
        }
    }
    for (i, (s, d)) in bufs.into_iter().enumerate() {
        let tag = i as u64;
        sim.spawn("snd", 0, move |ctx| {
            blocking::send(ctx, 0, 6, SendBuf::Mem(s), tag);
        });
        sim.spawn("rcv", 6, move |ctx| {
            blocking::recv(ctx, 6, d, tag, MASK_FULL);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed);

    let m = sim.world();
    let acked = m.ucp.counters.get("ucp.acked");
    let sampled = m.ucp.counters.get("ucp.rtt_sample");
    let skipped = m.ucp.counters.get("ucp.rtt_skipped");
    assert!(
        m.ucp.counters.get("ucp.retry") > 0,
        "5% drop over {n} messages must retransmit"
    );
    assert_eq!(sampled + skipped, acked, "every ack is sampled xor skipped");
    assert!(
        skipped > 0,
        "retransmitted envelopes must be excluded (Karn)"
    );
    assert!(sampled > 0, "clean acks must still feed the estimator");
    // Bounded oscillation: whatever the lossy lag samples did, the solved
    // thresholds stay on the candidate ladder. The host class saw 16
    // rendezvous completions, so its knob must actually have been solved.
    let host = m
        .ucp
        .engine
        .tuned_eager((0, 6), false)
        .expect("host-class threshold solved after rndv observations");
    assert!(
        (1024..=65536).contains(&host),
        "threshold {host} off the ladder"
    );
    if let Some(t) = m.ucp.engine.tuned_eager((0, 6), true) {
        assert!((1024..=65536).contains(&t), "threshold {t} off the ladder");
    }
    assert_eq!(m.ucp.counters.get("ucp.unreachable"), 0);
    assert_eq!(m.ucp.inflight_tracked(), 0, "tracked sends must drain");
}

/// 64 seeded cases of randomized adversity. Invariants, per case:
/// - the run never outlives the virtual-time watchdog (no hang);
/// - on completion with no give-ups, every payload is byte-intact and no
///   tracked send leaks (no silent loss);
/// - any non-duplicate injected loss was either retransmitted or ended in
///   a typed give-up error queued at the sender's worker (no unsurfaced
///   loss);
/// - a deadlocked run is legal only when a give-up left a receiver
///   unpaired, and the give-up error is observable.
#[test]
fn chaos_property_no_silent_loss_no_hang() {
    rucx::compat::check::check_with("chaos_no_silent_loss", 64, |g| {
        let mut spec = FaultSpec::default();
        spec.seed = g.any_u64();
        spec.drop_p = g.f64(0.0..0.70);
        spec.dup_p = g.f64(0.0..0.10);
        spec.corrupt_p = g.f64(0.0..0.10);
        spec.delay_p = g.f64(0.0..0.10);
        spec.delay = us(g.f64(1.0..50.0));
        let mut sim = build_sim(Topology::summit(2), chaos_machine(spec));

        let n = g.usize(1..6) as u64;
        let sizes: Vec<u64> = (0..n)
            .map(|_| g.pick(&[64u64, 1024, 16 * 1024, 256 * 1024]))
            .collect();
        let mut dsts = Vec::new();
        let mut pairs = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let m = sim.world_mut();
            let src = m.gpu.pool.alloc_host(0, size, true, true);
            m.gpu.pool.write(src, &pattern(size, i as u8)).unwrap();
            let dst = m.gpu.pool.alloc_host(1, size, true, true);
            dsts.push((dst, size));
            pairs.push((src, dst));
        }
        for (i, (src, dst)) in pairs.into_iter().enumerate() {
            let tag = i as u64;
            sim.spawn("snd", 0, move |ctx| {
                blocking::send(ctx, 0, 6, SendBuf::Mem(src), tag);
            });
            sim.spawn("rcv", 6, move |ctx| {
                blocking::recv(ctx, 6, dst, tag, MASK_FULL);
            });
        }

        // Watchdog: 10 virtual seconds dwarfs the worst retry schedule
        // (10 retries, 5 ms RTO cap, 6 messages) by two orders of
        // magnitude; hitting it means a hang, not slowness.
        let outcome = sim.run_until(us(10_000_000.0));
        let unreachable = sim.world().ucp.counters.get("ucp.unreachable");
        match &outcome {
            RunOutcome::Completed => {}
            RunOutcome::Deadlock(_) if unreachable > 0 => {}
            other => panic!(
                "case seed {:#x}: outcome {other:?} with {unreachable} give-ups",
                g.case_seed
            ),
        }

        let m = sim.world_mut();
        let drops = m.ucp.counters.get("fault.drop");
        let corrupt = m.ucp.counters.get("fault.corrupt");
        let dups = m.ucp.counters.get("fault.duplicate");
        let retries = m.ucp.counters.get("ucp.retry");
        if drops + corrupt > 0 && dups == 0 {
            // Every non-duplicate loss is either retransmitted or gave up.
            assert!(
                retries + unreachable > 0,
                "losses injected but never retried nor surfaced"
            );
        }
        if unreachable == 0 {
            assert!(matches!(outcome, RunOutcome::Completed));
            assert_eq!(m.ucp.inflight_tracked(), 0, "tracked sends leaked");
            for (i, (d, size)) in dsts.iter().enumerate() {
                assert_eq!(
                    m.gpu.pool.read(*d).unwrap(),
                    pattern(*size, i as u8),
                    "payload {i} silently corrupted"
                );
            }
        } else {
            // Give-ups must be observable as typed errors at some worker.
            let procs = 12;
            let mut surfaced = 0;
            for p in 0..procs {
                while let Some(e) = m.ucp.take_worker_error(p) {
                    let msg = e.to_string();
                    assert!(msg.contains("gave up"), "unexpected error: {msg}");
                    surfaced += 1;
                }
            }
            assert_eq!(
                surfaced, unreachable,
                "every give-up must queue exactly one typed error"
            );
        }
    });
}

/// Retransmission/health state at scale: 1536 processes (a 256-node
/// Summit slice), each sending one small message to the rank one node
/// over — 1536 distinct directed endpoint pairs, every one crossing the
/// fabric, all under a seeded 5% drop. The reliability layer must keep
/// per-pair state straight (no cross-pair sequence confusion), recover
/// every loss, and drain its tracking tables completely.
#[test]
fn chaos_scales_to_1536_endpoints() {
    let mut spec = FaultSpec::default();
    spec.seed = 97;
    spec.drop_p = 0.05;
    let mut sim = build_sim(Topology::summit(256), chaos_machine(spec));

    let procs = 1536usize;
    let size = 256u64;
    let mut pairs = Vec::with_capacity(procs);
    {
        let m = sim.world_mut();
        for p in 0..procs {
            let peer = (p + 6) % procs;
            let src = m.gpu.pool.alloc_host(p / 6, size, true, true);
            m.gpu.pool.write(src, &pattern(size, p as u8)).unwrap();
            let dst = m.gpu.pool.alloc_host(peer / 6, size, true, true);
            pairs.push((src, dst));
        }
    }
    let dsts: Vec<_> = pairs.iter().map(|(_, d)| *d).collect();
    for (p, (src, dst)) in pairs.into_iter().enumerate() {
        let peer = (p + 6) % procs;
        let tag = p as u64;
        sim.spawn("snd", p as u64, move |ctx| {
            blocking::send(ctx, p, peer, SendBuf::Mem(src), tag);
        });
        sim.spawn("rcv", peer as u64, move |ctx| {
            blocking::recv(ctx, peer, dst, tag, MASK_FULL);
        });
    }

    assert_eq!(
        sim.run_until(us(10_000_000.0)),
        RunOutcome::Completed,
        "1536-endpoint chaos run hung"
    );
    let m = sim.world();
    assert!(
        m.ucp.counters.get("fault.drop") > 0,
        "5% drop over 1536 messages must inject losses"
    );
    assert!(
        m.ucp.counters.get("ucp.retry") > 0,
        "losses must be retried"
    );
    assert_eq!(m.ucp.counters.get("ucp.unreachable"), 0);
    assert_eq!(m.ucp.counters.get("ucp.giveup"), 0);
    // One ack per delivery at minimum: per-pair ack state exists for every
    // one of the 1536 endpoints.
    assert!(m.ucp.counters.get("ucp.acked") >= procs as u64);
    assert_eq!(m.ucp.inflight_tracked(), 0, "tracked sends must drain");
    for (p, d) in dsts.iter().enumerate() {
        assert_eq!(
            m.gpu.pool.read(*d).unwrap(),
            pattern(size, p as u8),
            "payload {p} corrupted or lost"
        );
    }
}

// ---------------------------------------------------------------------------
// Sharded-scheduler chaos: the same invariants (no silent loss, no hang,
// give-up iff unreachable), ported to the conservative parallel engine —
// faults hit envelopes *crossing shard boundaries* at window barriers.
// ---------------------------------------------------------------------------

fn sharded_chaos_cfg(spec: FaultSpec) -> rucx::jacobi::JacobiConfig {
    use rucx::jacobi::{JacobiConfig, Mode};
    let mut cfg = JacobiConfig::weak(4, Mode::Device);
    cfg.iters = 2;
    cfg.machine.fault = Some(spec);
    cfg
}

/// Duplicates and delays are survivable: the run completes, nothing is
/// lost, and every duplicate is detected and discarded (visibly counted,
/// never silently applied twice).
#[test]
fn sharded_chaos_dup_delay_completes_without_loss() {
    use rucx::jacobi::{run_sharded_full, JacobiModel, ShardedOpts};

    let mut spec = FaultSpec::default();
    spec.seed = 11;
    spec.dup_p = 0.30;
    spec.delay_p = 0.30;
    spec.delay = us(40.0);
    let cfg = sharded_chaos_cfg(spec);
    let run = run_sharded_full(
        JacobiModel::Charm,
        &cfg,
        &ShardedOpts {
            shards: 4,
            ..Default::default()
        },
    );
    assert!(run.completed, "dup/delay-only chaos must complete: {run:?}");
    assert_eq!(run.lost, 0);
    assert!(run.stats.duplicated > 0, "{:?}", run.stats);
    assert!(run.stats.delayed > 0, "{:?}", run.stats);
    assert_eq!(run.dup_suppressed, run.stats.duplicated);
}

/// Drops strand receivers: the run gives up (no hang), and *every* loss
/// is surfaced — `lost` and the stranded-rank report agree with the fact
/// that progress became impossible.
#[test]
fn sharded_chaos_drop_gives_up_iff_unreachable() {
    use rucx::jacobi::{run_sharded_full, JacobiModel, ShardedOpts};

    let mut spec = FaultSpec::default();
    spec.seed = 5;
    spec.drop_p = 0.25;
    let cfg = sharded_chaos_cfg(spec);
    let run = run_sharded_full(
        JacobiModel::Ampi,
        &cfg,
        &ShardedOpts {
            shards: 4,
            ..Default::default()
        },
    );
    // At drop_p = 0.25 over hundreds of cross-shard halos a loss is
    // certain (seeded, so this is a fixed fact, not a flake).
    assert!(run.lost > 0, "{:?}", run.stats);
    assert!(!run.completed, "losses must strand ranks");
    assert!(!run.blocked.is_empty());
    // No silent loss: a stalled run names what it is waiting for.
    assert!(
        run.blocked[0].1.contains("waiting for"),
        "{:?}",
        run.blocked
    );
}

/// 64-case seeded property over random fault mixes, node counts, shard
/// counts, and models: the sharded run always returns (the window loop
/// cannot hang), completion is equivalent to zero losses, and a replay
/// with the same inputs is bitwise identical.
#[test]
fn sharded_chaos_property_no_silent_loss_no_hang() {
    use rucx::jacobi::{run_sharded_full, JacobiConfig, JacobiModel, Mode, ShardedOpts};

    rucx::compat::check::check_with("sharded_chaos_no_silent_loss", 64, |g| {
        let mut spec = FaultSpec::default();
        spec.seed = g.any_u64();
        spec.drop_p = g.f64(0.0..0.30);
        spec.dup_p = g.f64(0.0..0.20);
        spec.corrupt_p = g.f64(0.0..0.10);
        spec.delay_p = g.f64(0.0..0.20);
        spec.delay = us(g.f64(1.0..80.0));
        let nodes = g.pick(&[2usize, 4]);
        let shards = g.pick(&[2usize, 4]);
        let model = g.pick(&[JacobiModel::Charm, JacobiModel::Ompi]);
        let mode = g.pick(&[Mode::Device, Mode::HostStaging]);

        let mut cfg = JacobiConfig::weak(nodes, mode);
        cfg.iters = 2;
        cfg.machine.fault = Some(spec);
        let opts = ShardedOpts {
            shards,
            ..Default::default()
        };
        // Returning at all is the no-hang half: the conservative window
        // loop terminates once queues drain, dropped halos included.
        let run = run_sharded_full(model, &cfg, &opts);

        // No silent loss: a run is incomplete exactly when halos were
        // dropped (delay/duplicate alone can never strand a rank)…
        assert_eq!(
            run.completed,
            run.lost == 0,
            "completed={} lost={} stats={:?}",
            run.completed,
            run.lost,
            run.stats
        );
        // …and every stranded rank is reported.
        assert_eq!(run.completed, run.blocked.is_empty());
        if run.completed {
            assert!(run.result.overall_ms > 0.0);
        }

        // Give-up verdicts and figures replay bitwise.
        let again = run_sharded_full(model, &cfg, &opts);
        assert_eq!(run.result, again.result);
        assert_eq!(run.completed, again.completed);
        assert_eq!(run.lost, again.lost);
        assert_eq!(run.dup_suppressed, again.dup_suppressed);
        assert_eq!(run.stats, again.stats);
        assert_eq!(run.blocked, again.blocked);
    });
}
