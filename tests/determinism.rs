//! Whole-stack determinism: identical configurations must produce
//! bit-identical virtual-time results, across every layer at once — the
//! property that makes simulation results citable and regressions
//! detectable.

use rucx::jacobi::{run, JacobiConfig, JacobiModel, Mode};

fn jacobi_fingerprint(model: JacobiModel) -> (u64, u64) {
    let mut cfg = JacobiConfig::weak(2, Mode::Device);
    cfg.iters = 2;
    cfg.warmup = 1;
    let r = run(model, &cfg);
    // Exact bit patterns, not approximate comparisons.
    (r.overall_ms.to_bits(), r.comm_ms.to_bits())
}

#[test]
fn jacobi_runs_are_bit_reproducible() {
    for model in [
        JacobiModel::Charm,
        JacobiModel::Ampi,
        JacobiModel::Ompi,
        JacobiModel::Charm4py,
    ] {
        let a = jacobi_fingerprint(model);
        let b = jacobi_fingerprint(model);
        assert_eq!(a, b, "{model:?} must be deterministic");
    }
}

#[test]
fn overdecomposed_run_is_reproducible() {
    let once = || {
        let mut cfg = JacobiConfig::weak(1, Mode::Device);
        cfg.iters = 2;
        cfg.warmup = 1;
        cfg.overdecomp = 4;
        let r = run(JacobiModel::Charm, &cfg);
        (r.overall_ms.to_bits(), r.comm_ms.to_bits())
    };
    assert_eq!(once(), once());
}

/// The OSU latency microbenchmark, run twice under the same configuration
/// (same seed by construction: the machine config pins every stochastic
/// choice), produces byte-identical result structs — every point's f64 bit
/// pattern, every label, every unit.
#[test]
fn osu_latency_is_byte_identical_across_runs() {
    use rucx::osu::{latency, Mode, Model, OsuConfig, Placement};

    let run_once = || {
        let mut cfg = OsuConfig::quick();
        cfg.sizes = vec![8, 1024, 1 << 20];
        latency(&cfg, Model::Charm, Mode::Device, Placement::InterNode)
    };
    let a = run_once();
    let b = run_once();
    // Struct-level equality first (labels, units, sizes)...
    assert_eq!(a, b, "OSU latency results must be identical across runs");
    // ...then the stronger bit-pattern check on every floating point value
    // (PartialEq would accept -0.0 == 0.0; bit equality does not).
    let bits = |s: &rucx::osu::Series| -> Vec<(u64, u64)> {
        s.points.iter().map(|(sz, v)| (*sz, v.to_bits())).collect()
    };
    assert_eq!(bits(&a), bits(&b), "f64 bit patterns must match exactly");
    // And the serialized form (what benchmark figures persist) is stable.
    use rucx_compat::json::ToJson;
    assert_eq!(a.to_json(), b.to_json());
}

/// A slice of the `jacobi_figures` bench (weak scaling, nodes 1–2, both
/// transfer modes), run twice: the figure JSON — the exact serialized form
/// `write_json` persists — must be byte-identical. This covers the
/// refactored scheduler with a full Charm++ PE sweep, not just
/// microbenchmarks: hundreds of processes per run, pooled threads reused
/// across `Simulation` lifetimes, and the zero-switch resume path all must
/// leave virtual-time results untouched.
#[test]
fn jacobi_figures_slice_json_is_byte_identical() {
    use rucx_compat::json::ToJson;

    let sweep_json = || {
        let rows: Vec<(usize, f64, f64, f64, f64)> = [1usize, 2]
            .iter()
            .map(|&n| {
                let mut ch = JacobiConfig::weak(n, Mode::HostStaging);
                let mut cd = JacobiConfig::weak(n, Mode::Device);
                ch.iters = 2;
                ch.warmup = 1;
                cd.iters = 2;
                cd.warmup = 1;
                let h = run(JacobiModel::Charm, &ch);
                let d = run(JacobiModel::Charm, &cd);
                (n, h.overall_ms, d.overall_ms, h.comm_ms, d.comm_ms)
            })
            .collect();
        rows.to_json()
    };
    assert_eq!(
        sweep_json(),
        sweep_json(),
        "jacobi_figures slice must serialize identically across runs"
    );
}

/// A traced run's serialized Chrome trace is a pure function of
/// `(seed, config)`: two identical runs — full stack, mixed eager/rendezvous
/// traffic across the fabric, trace sink enabled — must produce
/// byte-identical JSON. This is the property that makes traces diffable:
/// any byte that moves between two same-config runs is a real behavioural
/// change, not serialization noise.
#[test]
fn trace_output_is_byte_identical_across_runs() {
    use rucx::fabric::Topology;
    use rucx::gpu::DeviceId;
    use rucx::sim::RunOutcome;
    use rucx::ucp::{build_sim, MachineConfig};

    let traced_run = || {
        let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
        sim.scheduler().trace.enable(0);
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), 1 << 20, false)
            .unwrap();
        let b = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(6), 1 << 20, false)
            .unwrap();
        rucx::ampi::launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => {
                for i in 0..4 {
                    // Small host-inline round plus a large rendezvous
                    // round, so both protocol paths land in the trace.
                    mpi.send(ctx, a.slice(0, 64), 6, i);
                    mpi.send(ctx, a, 6, i);
                }
            }
            6 => {
                for i in 0..4 {
                    mpi.recv(ctx, b.slice(0, 64), 0, i);
                    mpi.recv(ctx, b, 0, i);
                }
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let json = sim.scheduler().trace.to_chrome_json();
        assert!(!sim.scheduler().trace.is_empty(), "trace recorded events");
        json
    };
    assert_eq!(
        traced_run(),
        traced_run(),
        "Chrome trace JSON must be byte-identical for identical runs"
    );
}

/// A chaos run is as replayable as a clean one: the same `(seed, fault
/// spec, config)` triple must reproduce the OSU latency JSON byte for byte,
/// drops, retransmissions, backoff jitter and all. This is what makes a
/// failing chaos case a bug report instead of an anecdote.
#[test]
fn chaos_osu_run_is_byte_identical() {
    use rucx::fault::FaultSpec;
    use rucx::osu::{latency, Mode, Model, OsuConfig, Placement};
    use rucx_compat::json::ToJson;

    let run_once = || {
        let mut cfg = OsuConfig::quick();
        cfg.sizes = vec![8, 4 * 1024, 1 << 20];
        let mut spec = FaultSpec::canned_one_percent_drop();
        spec.seed = 77;
        spec.drop_p = 0.05;
        spec.dup_p = 0.02;
        cfg.machine.fault = Some(spec);
        latency(&cfg, Model::Ampi, Mode::Device, Placement::InterNode)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "chaos OSU results must replay identically");
    assert_eq!(a.to_json(), b.to_json());
    // And the faults genuinely perturbed the run: same sweep without the
    // spec must differ (otherwise this test would pass vacuously).
    let mut clean = OsuConfig::quick();
    clean.sizes = vec![8, 4 * 1024, 1 << 20];
    let c = latency(&clean, Model::Ampi, Mode::Device, Placement::InterNode);
    assert_ne!(a.points, c.points, "fault spec must actually change timing");
}

/// The serialized Chrome trace of a chaos run — injections, retransmission
/// spans, duplicate suppressions — is also a pure function of
/// `(seed, spec, config)`: two identical lossy runs emit byte-identical
/// trace JSON.
#[test]
fn chaos_trace_is_byte_identical() {
    use rucx::fabric::Topology;
    use rucx::fault::FaultSpec;
    use rucx::sim::RunOutcome;
    use rucx::ucp::{blocking, build_sim, MachineConfig, SendBuf, MASK_FULL};

    let traced_run = || {
        let mut cfg = MachineConfig::default();
        let mut spec = FaultSpec::canned_one_percent_drop();
        spec.seed = 9;
        spec.drop_p = 0.15;
        spec.delay_p = 0.10;
        spec.delay = rucx::sim::time::us(20.0);
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        sim.scheduler().trace.enable(0);
        let mut pairs = Vec::new();
        for _ in 0..6 {
            let m = sim.world_mut();
            let s = m.gpu.pool.alloc_host(0, 4096, true, true);
            let d = m.gpu.pool.alloc_host(1, 4096, true, true);
            pairs.push((s, d));
        }
        for (i, (s, d)) in pairs.into_iter().enumerate() {
            let tag = i as u64;
            sim.spawn("snd", 0, move |ctx| {
                blocking::send(ctx, 0, 6, SendBuf::Mem(s), tag);
            });
            sim.spawn("rcv", 6, move |ctx| {
                blocking::recv(ctx, 6, d, tag, MASK_FULL);
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert!(
            sim.world().ucp.counters.get("fault.drop") > 0
                || sim.world().ucp.counters.get("fault.delay") > 0,
            "spec must inject something for this test to mean anything"
        );
        sim.scheduler().trace.to_chrome_json()
    };
    assert_eq!(
        traced_run(),
        traced_run(),
        "chaos Chrome trace must be byte-identical for identical seeds"
    );
}

#[test]
fn config_changes_actually_change_results() {
    // Guard against accidentally ignoring configuration: flipping GDRCopy
    // must move microbenchmark output.
    let mut on = rucx::osu::OsuConfig::quick();
    on.sizes = vec![8];
    let mut off = on.clone();
    off.machine.ucp.gdrcopy_enabled = false;
    let a = rucx::osu::latency(
        &on,
        rucx::osu::Model::Ompi,
        rucx::osu::Mode::Device,
        rucx::osu::Placement::IntraNode,
    );
    let b = rucx::osu::latency(
        &off,
        rucx::osu::Model::Ompi,
        rucx::osu::Mode::Device,
        rucx::osu::Placement::IntraNode,
    );
    assert_ne!(a.at(8), b.at(8));
}

/// Satellite: sequential-oracle conformance of the sharded engine. The
/// figure JSON a sharded run produces must be byte-identical across shard
/// counts {1, 2, 8} — shard 1 *is* the sequential schedule, so this pins
/// the parallel runs to the oracle bit-for-bit.
#[test]
fn sharded_jacobi_json_is_byte_identical_across_shard_counts() {
    use rucx_compat::json::ToJson;

    let slice = |shards: usize| {
        let mut rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
        for nodes in [1usize, 2, 8] {
            let mut ch = JacobiConfig::weak(nodes, Mode::HostStaging);
            let mut cd = JacobiConfig::weak(nodes, Mode::Device);
            ch.iters = 2;
            cd.iters = 2;
            let h = rucx::jacobi::run_sharded(JacobiModel::Charm, &ch, shards);
            let d = rucx::jacobi::run_sharded(JacobiModel::Charm, &cd, shards);
            rows.push((nodes, h.overall_ms, d.overall_ms, h.comm_ms, d.comm_ms));
        }
        rows.to_json()
    };
    let oracle = slice(1);
    assert!(
        oracle.starts_with("[[1, ") && oracle.contains("[8, "),
        "{oracle}"
    );
    for shards in [2usize, 8] {
        assert_eq!(
            slice(shards),
            oracle,
            "shards={shards} diverged from the oracle"
        );
    }
}

/// Satellite: the merged Chrome trace of a sharded run is also invariant
/// across shard counts (per-shard sinks, deterministically merged).
#[test]
fn sharded_trace_is_byte_identical_across_shard_counts() {
    use rucx::jacobi::{run_sharded_full, ShardedOpts};

    let trace = |shards: usize| {
        let mut cfg = JacobiConfig::weak(4, Mode::Device);
        cfg.iters = 2;
        let run = run_sharded_full(
            JacobiModel::Ampi,
            &cfg,
            &ShardedOpts {
                shards,
                trace: true,
                ..Default::default()
            },
        );
        assert!(run.completed);
        let json = run.trace_json.expect("trace requested");
        // The ring must not have wrapped, or invariance is accidental.
        assert!(json.ends_with(r#""dropped": 0}"#), "trace ring overflowed");
        json
    };
    let oracle = trace(1);
    if cfg!(feature = "trace") {
        assert!(oracle.contains("jacobi.halo.recv"), "{oracle}");
        assert!(oracle.contains("jacobi.iter.comm"));
    }
    for shards in [2usize, 8] {
        assert_eq!(trace(shards), oracle, "shards={shards} trace diverged");
    }
}

/// Satellite: striped multi-path rendezvous (>= 8 MiB intra-node D2D,
/// NVLink and X-Bus legs driven concurrently) completes deterministically.
/// The Chrome trace pins the full interleaving — every per-leg chunk
/// completion (`ucp.mp.chunk`) and the merged finalize — and must be
/// byte-identical across reruns and across the calendar / heap-oracle
/// scheduler backends, the same invariance the sharded suite pins for the
/// jacobi engine.
#[test]
fn sharded_style_multipath_chunk_trace_is_backend_invariant() {
    use rucx::fabric::Topology;
    use rucx::gpu::DeviceId;
    use rucx::sim::{Backend, RunOutcome, SimConfig};
    use rucx::ucp::{blocking, build_sim_with, MachineConfig, SendBuf, MASK_FULL};

    let traced_run = |backend| {
        let mut sim_cfg = SimConfig::default();
        sim_cfg.backend = backend;
        let mut sim = build_sim_with(Topology::summit(1), MachineConfig::default(), sim_cfg);
        sim.scheduler().trace.enable(0);
        // Concurrent 16 MiB device-to-device fetches over several pairs:
        // same-socket (NVLink + X-Bus stripes) and cross-socket (X-Bus +
        // host-bounce stripes), all in flight at once so leg completions
        // genuinely interleave.
        let size = 16u64 << 20;
        let pairs = [(0usize, 1usize), (2, 3), (1, 4), (0, 5)];
        let mut bufs = Vec::new();
        for &(s, d) in &pairs {
            let m = sim.world_mut();
            let src = m
                .gpu
                .pool
                .alloc_device(DeviceId(s as u32), size, false)
                .unwrap();
            let dst = m
                .gpu
                .pool
                .alloc_device(DeviceId(d as u32), size, false)
                .unwrap();
            bufs.push((src, dst));
        }
        for (i, (&(sp, dp), (src, dst))) in pairs.iter().zip(bufs).enumerate() {
            let tag = i as u64;
            sim.spawn("snd", sp as u64, move |ctx| {
                blocking::send(ctx, sp, dp, SendBuf::Mem(src), tag);
            });
            sim.spawn("rcv", dp as u64, move |ctx| {
                blocking::recv(ctx, dp, dst, tag, MASK_FULL);
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        let c = &sim.world().ucp.counters;
        assert_eq!(
            c.get("ucp.rndv.multipath"),
            pairs.len() as u64,
            "every transfer must take the striped path"
        );
        assert!(c.get("ucp.multipath_chunks") > 0);
        sim.scheduler().trace.to_chrome_json()
    };
    let a = traced_run(Backend::Calendar);
    if cfg!(feature = "trace") {
        assert!(a.contains("ucp.mp.chunk"), "chunk completions traced");
    }
    assert_eq!(traced_run(Backend::Calendar), a, "rerun diverged");
    assert_eq!(traced_run(Backend::Oracle), a, "oracle backend diverged");
}

/// Satellite: both event-queue backends (calendar queue vs the BinaryHeap
/// oracle) drive the sharded model to bitwise-equal results.
#[test]
fn sharded_backends_agree_with_heap_oracle() {
    use rucx::jacobi::{run_sharded_full, ShardedOpts};
    use rucx::sim::Backend;

    let mut cfg = JacobiConfig::strong(4, Mode::HostStaging);
    cfg.iters = 2;
    let mk = |backend| {
        run_sharded_full(
            JacobiModel::Ompi,
            &cfg,
            &ShardedOpts {
                shards: 4,
                backend,
                ..Default::default()
            },
        )
    };
    let cal = mk(Backend::Calendar);
    let heap = mk(Backend::Oracle);
    assert_eq!(cal.result, heap.result);
    assert_eq!(cal.stats.envelopes, heap.stats.envelopes);
    assert_eq!(cal.stats.windows, heap.stats.windows);
}
