//! Whole-stack determinism: identical configurations must produce
//! bit-identical virtual-time results, across every layer at once — the
//! property that makes simulation results citable and regressions
//! detectable.

use rucx::jacobi::{run, JacobiConfig, JacobiModel, Mode};

fn jacobi_fingerprint(model: JacobiModel) -> (u64, u64) {
    let mut cfg = JacobiConfig::weak(2, Mode::Device);
    cfg.iters = 2;
    cfg.warmup = 1;
    let r = run(model, &cfg);
    // Exact bit patterns, not approximate comparisons.
    (r.overall_ms.to_bits(), r.comm_ms.to_bits())
}

#[test]
fn jacobi_runs_are_bit_reproducible() {
    for model in [
        JacobiModel::Charm,
        JacobiModel::Ampi,
        JacobiModel::Ompi,
        JacobiModel::Charm4py,
    ] {
        let a = jacobi_fingerprint(model);
        let b = jacobi_fingerprint(model);
        assert_eq!(a, b, "{model:?} must be deterministic");
    }
}

#[test]
fn overdecomposed_run_is_reproducible() {
    let once = || {
        let mut cfg = JacobiConfig::weak(1, Mode::Device);
        cfg.iters = 2;
        cfg.warmup = 1;
        cfg.overdecomp = 4;
        let r = run(JacobiModel::Charm, &cfg);
        (r.overall_ms.to_bits(), r.comm_ms.to_bits())
    };
    assert_eq!(once(), once());
}

#[test]
fn config_changes_actually_change_results() {
    // Guard against accidentally ignoring configuration: flipping GDRCopy
    // must move microbenchmark output.
    let mut on = rucx::osu::OsuConfig::quick();
    on.sizes = vec![8];
    let mut off = on.clone();
    off.machine.ucp.gdrcopy_enabled = false;
    let a = rucx::osu::latency(
        &on,
        rucx::osu::Model::Ompi,
        rucx::osu::Mode::Device,
        rucx::osu::Placement::IntraNode,
    );
    let b = rucx::osu::latency(
        &off,
        rucx::osu::Model::Ompi,
        rucx::osu::Mode::Device,
        rucx::osu::Placement::IntraNode,
    );
    assert_ne!(a.at(8), b.at(8));
}
