//! Cross-crate integration tests through the facade: whole-stack scenarios
//! spanning the simulator, GPU substrate, UCX layer, and programming models.

use rucx::prelude::*;
use std::sync::Arc;

#[test]
fn deterministic_end_to_end_latency() {
    // A full benchmark point is bit-for-bit reproducible.
    fn one() -> f64 {
        let mut cfg = rucx::osu::OsuConfig::quick();
        cfg.sizes = vec![4096];
        rucx::osu::latency(
            &cfg,
            rucx::osu::Model::Ampi,
            rucx::osu::Mode::Device,
            rucx::osu::Placement::InterNode,
        )
        .at(4096)
        .unwrap()
    }
    let a = one();
    let b = one();
    assert_eq!(a, b, "simulation must be deterministic");
    assert!(a > 0.0);
}

#[test]
fn charm_multi_buffer_inter_node_integrity() {
    // One entry-method invocation carrying three GPU buffers across nodes;
    // all three must arrive intact and only then run the regular ep.
    use rucx::charm::{launch, ChareRef, Msg};
    let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
    let sizes = [64u64 * 1024, 512 * 1024, 2 << 20];
    let mut srcs = vec![];
    let mut dsts = vec![];
    for (i, &sz) in sizes.iter().enumerate() {
        let m = sim.world_mut();
        let s = m.gpu.pool.alloc_device(DeviceId(0), sz, true).unwrap();
        m.gpu
            .pool
            .write(s, &vec![(i + 1) as u8 * 11; sz as usize])
            .unwrap();
        srcs.push(s);
        dsts.push(m.gpu.pool.alloc_device(DeviceId(9), sz, true).unwrap());
    }
    let (srcs, dsts) = (Arc::new(srcs), Arc::new(dsts));
    let dsts_check = dsts.clone();

    launch(&mut sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        let dsts = dsts.clone();
        let ep = pe.register_ep(
            col,
            Some(Box::new(move |_chare, _msg| dsts.as_ref().clone())),
            Box::new(move |_chare, msg: &Msg, pe, ctx| {
                assert_eq!(msg.device_sizes.len(), 3);
                pe.exit_all(ctx);
            }),
        );
        struct Unit;
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(col, i, Box::new(Unit));
        }
        if pe.index == 0 {
            pe.send(
                ctx,
                ChareRef { col, index: 9 },
                ep,
                vec![],
                0,
                srcs.as_ref().clone(),
            );
        }
        pe.run(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    for (i, &sz) in sizes.iter().enumerate() {
        assert_eq!(
            sim.world().gpu.pool.read(dsts_check[i]).unwrap(),
            vec![(i + 1) as u8 * 11; sz as usize],
            "buffer {i}"
        );
    }
}

#[test]
fn ampi_ring_all_ranks_large_cluster() {
    // 48 ranks (8 nodes): every rank passes a device token to the next;
    // exercises tag generation across many PEs and the full fabric.
    let topo = Topology::summit(8);
    let mut sim = build_sim(topo.clone(), MachineConfig::default());
    let n = topo.procs();
    let size = 32u64 * 1024;
    let mut bufs = vec![];
    for p in 0..n {
        let m = sim.world_mut();
        let b = m
            .gpu
            .pool
            .alloc_device(topo.device_of(p), size, true)
            .unwrap();
        m.gpu.pool.write(b, &vec![p as u8; size as usize]).unwrap();
        bufs.push(b);
    }
    let recv_bufs: Vec<_> = (0..n)
        .map(|p| {
            sim.world_mut()
                .gpu
                .pool
                .alloc_device(topo.device_of(p), size, true)
                .unwrap()
        })
        .collect();
    let bufs = Arc::new(bufs);
    let rb = Arc::new(recv_bufs);
    let rb_check = rb.clone();
    rucx::ampi::launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let n = mpi.size();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        // Post the receive first to avoid mutual-rendezvous blocking.
        let r = mpi.irecv(ctx, rb[me], prev as i32, 7);
        mpi.send(ctx, bufs[me], next, 7);
        mpi.wait(ctx, r);
        mpi.barrier(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    for p in 0..n {
        let prev = (p + n - 1) % n;
        assert_eq!(
            sim.world().gpu.pool.read(rb_check[p]).unwrap(),
            vec![prev as u8; size as usize],
            "rank {p}"
        );
    }
}

#[test]
fn jacobi_all_models_consistent_compute_time() {
    // The compute portion (overall - comm) is model-independent: the same
    // kernels run everywhere.
    use rucx::jacobi::*;
    let mut computes = vec![];
    for model in [JacobiModel::Charm, JacobiModel::Ampi, JacobiModel::Ompi] {
        let mut cfg = JacobiConfig::weak(1, Mode::Device);
        cfg.iters = 2;
        cfg.warmup = 1;
        let r = run(model, &cfg);
        computes.push(r.overall_ms - r.comm_ms);
    }
    let (min, max) = (
        computes.iter().cloned().fold(f64::MAX, f64::min),
        computes.iter().cloned().fold(f64::MIN, f64::max),
    );
    assert!(
        (max - min) / min < 0.15,
        "compute time should be model-independent: {computes:?}"
    );
}

#[test]
fn gdrcopy_toggle_changes_protocol_choice() {
    // With GDRCopy on, a 1 KiB device message is eager; off, it rendezvous.
    for (on, expect_eager) in [(true, true), (false, false)] {
        let mut mc = MachineConfig::default();
        mc.ucp.gdrcopy_enabled = on;
        let mut sim = build_sim(Topology::summit(1), mc);
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), 1024, false)
            .unwrap();
        let b = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), 1024, false)
            .unwrap();
        rucx::ompi::launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => mpi.send(ctx, a, 1, 0),
            1 => {
                mpi.recv(ctx, b, 0, 0);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let eager = sim.world().ucp.counters.get("ucp.eager");
        if expect_eager {
            assert!(eager >= 1, "expected eager path with GDRCopy");
        } else {
            assert_eq!(
                sim.world().ucp.counters.get("ucp.eager.gdrcopy_read"),
                0,
                "no GDRCopy reads when disabled"
            );
            assert!(sim.world().ucp.counters.get("ucp.rndv.ipc") >= 1);
        }
    }
}

#[test]
fn device_oom_is_reported() {
    let mut sim = build_sim(
        Topology::summit(1),
        MachineConfig {
            device_mem: Some(1 << 20),
            ..Default::default()
        },
    );
    let r = sim
        .world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(0), 2 << 20, false);
    assert!(matches!(r, Err(rucx::gpu::MemError::DeviceOom { .. })));
}
