//! Tier-1 gates for the topology-aware collective engine:
//!
//! 1. Cross-model conformance — AMPI, OpenMPI, and Charm4py route their
//!    allreduce through the same engine, so for every forced algorithm the
//!    three frontends must produce byte-identical results on every rank,
//!    including fractional values where floating-point combine order shows.
//! 2. A 64-case seeded chaos property — random drop/corrupt/dup/delay
//!    mixes against random (model, algorithm, size) collectives, under a
//!    virtual-time watchdog: a lost or corrupted reduction fragment is
//!    either retransmitted or surfaces as a typed error; the reduced sum is
//!    never silently wrong.

use std::sync::Arc;

use rucx::coll::{Algo, ReduceOp};
use rucx::fabric::Topology;
use rucx::fault::FaultSpec;
use rucx::gpu::MemRef;
use rucx::sim::time::us;
use rucx::sim::RunOutcome;
use rucx::ucp::{build_sim, MSim, MachineConfig};

const ELEMS: usize = 24;

fn setup(machine: MachineConfig, elems: usize) -> (MSim, Vec<MemRef>, Vec<MemRef>) {
    let topo = Topology::summit(2);
    let mut sim = build_sim(topo.clone(), machine);
    let mut bufs = Vec::new();
    let mut scratch = Vec::new();
    for p in 0..topo.procs() {
        let m = sim.world_mut();
        bufs.push(
            m.gpu
                .pool
                .alloc_device(topo.device_of(p), (elems * 8) as u64, true)
                .unwrap(),
        );
        scratch.push(
            m.gpu
                .pool
                .alloc_device(topo.device_of(p), (elems * 8) as u64, true)
                .unwrap(),
        );
    }
    (sim, bufs, scratch)
}

fn fill(sim: &mut MSim, bufs: &[MemRef], value: impl Fn(usize, usize) -> f64) {
    for (r, b) in bufs.iter().enumerate() {
        let bytes: Vec<u8> = (0..ELEMS).flat_map(|i| value(r, i).to_le_bytes()).collect();
        sim.world_mut().gpu.pool.write(*b, &bytes).unwrap();
    }
}

fn read_all(sim: &MSim, bufs: &[MemRef]) -> Vec<Vec<u8>> {
    bufs.iter()
        .map(|b| sim.world().gpu.pool.read(*b).unwrap())
        .collect()
}

/// Fractional per-rank inputs: any divergence in schedule or combine order
/// across frontends shows up as a byte difference.
fn frac(r: usize, i: usize) -> f64 {
    (r as f64 + 0.25) * 1.7 + (i as f64) * 0.3125
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Frontend {
    Ampi,
    Ompi,
    Charm4py,
}

const FRONTENDS: [Frontend; 3] = [Frontend::Ampi, Frontend::Ompi, Frontend::Charm4py];

/// Run one allreduce on every rank through the given frontend; returns the
/// outcome of the watchdogged run.
fn run_allreduce(
    sim: &mut MSim,
    front: Frontend,
    bufs: &Arc<Vec<MemRef>>,
    scratch: &Arc<Vec<MemRef>>,
    algo: Algo,
) -> RunOutcome {
    let (b, s) = (bufs.clone(), scratch.clone());
    match front {
        Frontend::Ampi => rucx::ampi::launch(sim, move |mpi, ctx| {
            let me = mpi.rank();
            rucx::coll::allreduce_with(mpi, ctx, b[me], s[me], ReduceOp::Sum, algo);
        }),
        Frontend::Ompi => rucx::ompi::launch(sim, move |mpi, ctx| {
            let me = mpi.rank();
            let n = b.len();
            rucx::osu::coll::allreduce_with(mpi, ctx, b[me], s[me], ReduceOp::Sum, n, algo);
        }),
        Frontend::Charm4py => rucx::charm4py::launch(sim, move |py, ctx| {
            let me = py.rank();
            py.allreduce_with(ctx, b[me], s[me], ReduceOp::Sum, algo);
        }),
    }
    // 10 virtual seconds dwarfs any retry schedule; hitting the watchdog
    // means a hang, not slowness.
    sim.run_until(us(10_000_000.0))
}

#[test]
fn cross_model_allreduce_is_byte_identical() {
    for algo in [Algo::RecursiveDoubling, Algo::Ring, Algo::Hierarchical] {
        let mut reference: Option<Vec<Vec<u8>>> = None;
        for front in FRONTENDS {
            let (mut sim, bufs, scratch) = setup(MachineConfig::default(), ELEMS);
            fill(&mut sim, &bufs, frac);
            let (bufs, scratch) = (Arc::new(bufs), Arc::new(scratch));
            let outcome = run_allreduce(&mut sim, front, &bufs, &scratch, algo);
            assert_eq!(outcome, RunOutcome::Completed, "{front:?} {algo:?}");
            let got = read_all(&sim, &bufs);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(
                        &got, want,
                        "{front:?} diverges from AMPI under {algo:?}: the \
                         shared engine must yield byte-identical reductions"
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_reduced_sum_never_silently_wrong() {
    rucx::compat::check::check_with("coll_chaos", 64, |g| {
        let mut spec = FaultSpec::default();
        spec.seed = g.any_u64();
        spec.drop_p = g.f64(0.0..0.25);
        spec.corrupt_p = g.f64(0.0..0.08);
        spec.dup_p = g.f64(0.0..0.08);
        spec.delay_p = g.f64(0.0..0.10);
        spec.delay = us(g.f64(1.0..40.0));
        let mut machine = MachineConfig::default();
        machine.fault = Some(spec);

        let front = g.pick(&FRONTENDS);
        let algo = g.pick(&[Algo::RecursiveDoubling, Algo::Ring, Algo::Hierarchical]);
        let (mut sim, bufs, scratch) = setup(machine, ELEMS);
        // Integer inputs: the expected sum is exact under any combine
        // order, so "wrong" is unambiguous.
        fill(&mut sim, &bufs, |r, i| (r * 100 + i) as f64);
        let (bufs, scratch) = (Arc::new(bufs), Arc::new(scratch));
        let outcome = run_allreduce(&mut sim, front, &bufs, &scratch, algo);

        let unreachable = sim.world().ucp.counters.get("ucp.unreachable");
        match &outcome {
            RunOutcome::Completed => {}
            RunOutcome::Deadlock(_) if unreachable > 0 => {}
            other => panic!(
                "case seed {:#x}: {front:?}/{algo:?} outcome {other:?} with \
                 {unreachable} give-ups",
                g.case_seed
            ),
        }

        let m = sim.world_mut();
        let drops = m.ucp.counters.get("fault.drop");
        let corrupt = m.ucp.counters.get("fault.corrupt");
        let dups = m.ucp.counters.get("fault.duplicate");
        let retries = m.ucp.counters.get("ucp.retry");
        if drops + corrupt > 0 && dups == 0 {
            // Every non-duplicate lost fragment is either retransmitted or
            // gave up with a typed error — never silently swallowed.
            assert!(
                retries + unreachable > 0,
                "case seed {:#x}: fragments lost but never retried nor surfaced",
                g.case_seed
            );
        }
        if unreachable == 0 {
            // Clean completion: every rank must hold the exact sum, and no
            // tracked send may leak.
            assert!(matches!(outcome, RunOutcome::Completed));
            assert_eq!(m.ucp.inflight_tracked(), 0, "tracked sends leaked");
            let n = bufs.len();
            let expected: Vec<u8> = (0..ELEMS)
                .flat_map(|i| {
                    let s: f64 = (0..n).map(|r| (r * 100 + i) as f64).sum();
                    s.to_le_bytes()
                })
                .collect();
            for (r, b) in bufs.iter().enumerate() {
                assert_eq!(
                    m.gpu.pool.read(*b).unwrap(),
                    expected,
                    "case seed {:#x}: {front:?}/{algo:?} rank {r} \
                     completed with a silently wrong sum",
                    g.case_seed
                );
            }
        } else {
            // Give-ups must be observable as typed errors at some worker.
            let mut surfaced = 0;
            for p in 0..12 {
                while let Some(e) = m.ucp.take_worker_error(p) {
                    let msg = e.to_string();
                    assert!(msg.contains("gave up"), "unexpected error: {msg}");
                    surfaced += 1;
                }
            }
            assert_eq!(
                surfaced, unreachable,
                "case seed {:#x}: every give-up must queue exactly one typed error",
                g.case_seed
            );
        }
    });
}
