//! GPU collectives built from GPU-aware point-to-point calls — the paper's
//! §VI extension ("translate collective communication primitives to
//! point-to-point calls"): a broadcast and an allreduce of device-resident
//! f64 arrays across 12 GPUs on two nodes, verified numerically.
//!
//! Run: `cargo run --release --example gpu_allreduce`

use rucx::osu::coll::{allreduce, bcast, CollOp};
use rucx::prelude::*;
use std::sync::Arc;

const ELEMS: usize = 1024;

fn main() {
    let topo = Topology::summit(2);
    let mut sim = build_sim(topo.clone(), MachineConfig::default());
    let n = topo.procs();

    // Per-GPU input vector: rank r holds [r, r, ...].
    let mut bufs = vec![];
    let mut scratch = vec![];
    for p in 0..n {
        let m = sim.world_mut();
        let b = m
            .gpu
            .pool
            .alloc_device(topo.device_of(p), (ELEMS * 8) as u64, true)
            .unwrap();
        let vals: Vec<u8> = (0..ELEMS).flat_map(|_| (p as f64).to_le_bytes()).collect();
        m.gpu.pool.write(b, &vals).unwrap();
        bufs.push(b);
        scratch.push(
            m.gpu
                .pool
                .alloc_device(topo.device_of(p), (ELEMS * 8) as u64, true)
                .unwrap(),
        );
    }
    let bufs2 = Arc::new(bufs.clone());
    let scratch2 = Arc::new(scratch);
    let done_at = Arc::new(rucx_compat::sync::Mutex::new(0u64));
    let done2 = done_at.clone();

    rucx::ompi::launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let dev = ctx.with_world(move |w, _| w.topo.device_of(me));
        // Allreduce(sum): every GPU ends with sum(0..n) in every element.
        allreduce(mpi, ctx, bufs2[me], scratch2[me], CollOp::Sum, n, dev);
        mpi.barrier(ctx);
        // Broadcast from rank 3 overwrites everyone.
        bcast(mpi, ctx, bufs2[me], 3, n);
        if me == 0 {
            *done2.lock() = ctx.now();
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);

    let expected = (0..n).sum::<usize>() as f64;
    for (p, b) in bufs.iter().enumerate() {
        let bytes = sim.world().gpu.pool.read(*b).unwrap();
        for c in bytes.chunks_exact(8) {
            assert_eq!(
                f64::from_le_bytes(c.try_into().unwrap()),
                expected,
                "rank {p}"
            );
        }
    }
    println!("allreduce(sum) + bcast over {n} GPUs on 2 nodes: every element = {expected} ✓");
    println!(
        "virtual time: {:.1} us; device-path rendezvous: {} intra-node (IPC), {} inter-node (pipeline)",
        as_us(*done_at.lock()),
        sim.world().ucp.counters.get("ucp.rndv.ipc"),
        sim.world().ucp.counters.get("ucp.rndv.pipeline"),
    );
}
