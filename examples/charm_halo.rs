//! The paper's core programming model (Fig. 4): Charm++ entry methods with
//! `nocopydevice` GPU parameters and post entry methods (Zero Copy API).
//!
//! Six chares on six GPUs form a ring; each sends a GPU buffer to its right
//! neighbor. The *post entry method* supplies the destination GPU buffer
//! when the metadata message arrives; the *regular entry method* runs once
//! the GPU data has landed — exactly the receive flow of §III-B. Payload
//! contents are verified end-to-end.
//!
//! Run: `cargo run --release --example charm_halo`

use rucx::charm::{launch, ChareRef, Msg};
use rucx::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SIZE: u64 = 256 * 1024;

struct RingChare {
    me: u64,
    send_buf: MemRef,
    recv_buf: MemRef,
}

fn main() {
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let n = sim.world().topo.procs() as u64;

    // One send and one receive buffer per GPU, with a per-rank pattern.
    let mut sbufs = Vec::new();
    let mut rbufs = Vec::new();
    for i in 0..n {
        let m = sim.world_mut();
        let s = m
            .gpu
            .pool
            .alloc_device(DeviceId(i as u32), SIZE, true)
            .unwrap();
        m.gpu
            .pool
            .write(s, &vec![i as u8 + 1; SIZE as usize])
            .unwrap();
        sbufs.push(s);
        rbufs.push(
            m.gpu
                .pool
                .alloc_device(DeviceId(i as u32), SIZE, true)
                .unwrap(),
        );
    }
    let (sbufs, rbufs) = (Arc::new(sbufs), Arc::new(rbufs));
    let rbufs_check = rbufs.clone();
    let received = Arc::new(AtomicU64::new(0));
    let received2 = received.clone();

    launch(&mut sim, move |pe, ctx| {
        let col = pe.register_collection(n, move |i| i as usize);
        let received3 = received2.clone();
        // CI-file equivalent:
        //   entry void recv(nocopydevice char data[size], size_t size);
        let ep_recv = pe.register_ep(
            col,
            // Post entry method: set the destination GPU buffer.
            Some(Box::new(|chare, _msg| {
                let c = chare.downcast_mut::<RingChare>().unwrap();
                vec![c.recv_buf]
            })),
            // Regular entry method: GPU data is available.
            Box::new(move |chare, msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<RingChare>().unwrap();
                println!(
                    "chare {} received {} bytes from PE {} at t={:.1}us",
                    c.me,
                    msg.device_sizes[0],
                    msg.src_pe,
                    as_us(ctx.now()),
                );
                if received3.fetch_add(1, Ordering::SeqCst) + 1 == pe.n_pes as u64 {
                    pe.exit_all(ctx);
                }
            }),
        );
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(
                col,
                i,
                Box::new(RingChare {
                    me: i,
                    send_buf: sbufs[i as usize],
                    recv_buf: rbufs[i as usize],
                }),
            );
        }
        // Every chare sends to its right neighbor:
        //   peer.recv(CkDeviceBuffer(send_gpu_data), size);
        let me = pe.index as u64;
        pe.with_chare::<RingChare, _>(ctx, col, me, |c, pe, ctx| {
            let to = ChareRef {
                col,
                index: (c.me + 1) % n,
            };
            pe.send(ctx, to, ep_recv, vec![], 0, vec![c.send_buf]);
        });
        pe.run(ctx);
    });

    assert_eq!(sim.run(), RunOutcome::Completed);

    // Verify every chare got its left neighbor's pattern.
    for i in 0..n {
        let left = (i + n - 1) % n;
        let got = sim.world().gpu.pool.read(rbufs_check[i as usize]).unwrap();
        assert_eq!(got, vec![left as u8 + 1; SIZE as usize], "chare {i}");
    }
    println!(
        "\nall {n} GPU buffers verified; device-path rendezvous count = {}",
        sim.world().ucp.counters.get("ucp.rndv.ipc")
    );
}
