//! Data-parallel training-step proxy: every GPU runs a backward-pass
//! compute kernel per gradient bucket, then allreduces that bucket's
//! gradients through the topology-aware collective engine. Buckets later
//! in the backward pass compute on a dedicated stream while earlier
//! buckets' allreduces are in flight — the standard DDP compute/comm
//! overlap — so step time is max(compute, comm) plus the exposed tails,
//! not their sum.
//!
//! ```text
//! cargo run --release --example train_proxy
//! cargo run --release --example train_proxy -- --algo ring --buckets 8
//! cargo run --release --example train_proxy -- --no-overlap --json
//! cargo run --release --example train_proxy -- --quick --shards 4
//! ```
//!
//! `--shards N` splits the model-size sweep across N OS threads (each
//! size is an independent deterministic simulation) with byte-identical
//! output.

use std::sync::Arc;

use rucx::coll::Algo;
use rucx::fault::FaultSpec;
use rucx::osu::coll::{allreduce, allreduce_with, CollOp};
use rucx::osu::mpi_like::{AmpiFactory, OmpiFactory, P2p, RankFactory};
use rucx::osu::Series;
use rucx::prelude::*;
use rucx::sim::time::as_us;

#[derive(Clone)]
struct TrainConfig {
    /// Total gradient bytes per rank (the "model size") to sweep.
    sizes: Vec<u64>,
    buckets: u64,
    steps: u32,
    warmup: u32,
    overlap: bool,
    /// HBM bytes the backward pass touches per gradient byte produced
    /// (activation recomputation + weight reads across the bucket's
    /// layers). Sized so backward compute is comparable to gradient
    /// communication — the regime bucketed overlap targets.
    intensity: u64,
    algo: Option<Algo>,
    machine: MachineConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            sizes: vec![1 << 20, 4 << 20, 16 << 20, 64 << 20],
            buckets: 4,
            steps: 5,
            warmup: 1,
            overlap: true,
            intensity: 300,
            algo: None,
            machine: MachineConfig::default(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: train_proxy [--model ampi|openmpi] [--algo auto|rd|ring|hier] \
         [--buckets N] [--steps N] [--intensity BYTES_PER_GRAD_BYTE] [--no-overlap] \
         [--quick] [--fault-spec SPEC] \
         [--shards N] [--json]"
    );
    std::process::exit(2)
}

/// One training step: launch every bucket's backward kernel on the compute
/// stream, then allreduce each bucket as its gradients become ready. The
/// collective engine's reduction kernels run on the device's default
/// stream, so bucket k+1's backward overlaps bucket k's communication.
#[allow(clippy::too_many_arguments)]
fn train_step<M: P2p>(
    mpi: &mut M,
    ctx: &mut MCtx,
    grads: MemRef,
    scratch: MemRef,
    compute: rucx::gpu::StreamId,
    cfg: &TrainConfig,
    n: usize,
) {
    let bucket = grads.len / cfg.buckets;
    let intensity = cfg.intensity;
    if cfg.overlap {
        // Backward pass emits gradients bucket by bucket.
        let ready: Vec<_> = (0..cfg.buckets)
            .map(|_| {
                ctx.with_world(move |w, s| {
                    let t = s.new_trigger();
                    rucx::gpu::kernel_async(
                        w,
                        s,
                        compute,
                        KernelCost {
                            fixed: us(25.0),
                            bytes: bucket * intensity,
                        },
                        Some(t),
                    );
                    t
                })
            })
            .collect();
        for (k, t) in ready.into_iter().enumerate() {
            ctx.wait(t);
            ctx.with_world(move |_, s| s.recycle_trigger(t));
            let off = k as u64 * bucket;
            run_allreduce(
                mpi,
                ctx,
                grads.slice(off, bucket),
                scratch.slice(off, bucket),
                cfg,
                n,
            );
        }
    } else {
        // Synchronous baseline: full backward, then one fat allreduce.
        let t = ctx.with_world(move |w, s| {
            let t = s.new_trigger();
            rucx::gpu::kernel_async(
                w,
                s,
                compute,
                KernelCost {
                    fixed: us(25.0) * cfg.buckets,
                    bytes: grads.len * intensity,
                },
                Some(t),
            );
            t
        });
        ctx.wait(t);
        ctx.with_world(move |_, s| s.recycle_trigger(t));
        run_allreduce(mpi, ctx, grads, scratch, cfg, n);
    }
}

fn run_allreduce<M: P2p>(
    mpi: &mut M,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    cfg: &TrainConfig,
    n: usize,
) {
    match cfg.algo {
        Some(a) => allreduce_with(mpi, ctx, buf, scratch, CollOp::Sum, n, a),
        None => {
            let me = mpi.rank();
            let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
            allreduce(mpi, ctx, buf, scratch, CollOp::Sum, n, dev)
        }
    }
}

/// Average step time (µs) for one model size.
fn step_time<F: RankFactory>(cfg: &TrainConfig, size: u64, factory: F) -> f64 {
    let topo = Topology::summit(2);
    let mut sim = build_sim(topo.clone(), cfg.machine.clone());
    let mut grads = Vec::new();
    let mut scratch = Vec::new();
    {
        let m = sim.world_mut();
        for p in 0..topo.procs() {
            grads.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, false)
                    .expect("grad alloc"),
            );
            scratch.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, false)
                    .expect("scratch alloc"),
            );
        }
    }
    let (grads, scratch) = (Arc::new(grads), Arc::new(scratch));
    let result = Arc::new(rucx::compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let cfg2 = cfg.clone();

    factory.launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let n = grads.len();
        let compute = ctx.with_world(move |w, _| {
            let dev = w.topo.device_of(me);
            w.gpu.create_stream(dev)
        });
        let mut t0 = 0;
        for i in 0..(cfg2.warmup + cfg2.steps) {
            if i == cfg2.warmup {
                mpi.barrier(ctx);
                t0 = ctx.now();
            }
            train_step(mpi, ctx, grads[me], scratch[me], compute, &cfg2, n);
        }
        if me == 0 {
            *result2.lock() = as_us(ctx.now() - t0) / cfg2.steps as f64;
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "training step deadlocked");
    let r = *result.lock();
    r
}

/// The sweep, optionally sharded across threads by model size (each size
/// is an independent simulation — merged output is byte-identical).
fn sweep(cfg: &TrainConfig, ampi: bool, shards: usize) -> Series {
    let shards = shards.clamp(1, cfg.sizes.len().max(1));
    let run_one = |c: &TrainConfig| -> Vec<(u64, f64)> {
        c.sizes
            .iter()
            .map(|&s| {
                let size = (s / (8 * c.buckets)).max(16) * 8 * c.buckets;
                let v = if ampi {
                    step_time(c, size, AmpiFactory)
                } else {
                    step_time(c, size, OmpiFactory)
                };
                (size, v)
            })
            .collect()
    };
    let mut points: Vec<(u64, f64)> = if shards == 1 {
        run_one(cfg)
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|k| {
                    let mut sub = cfg.clone();
                    sub.sizes = cfg.sizes.iter().copied().skip(k).step_by(shards).collect();
                    let run_one = &run_one;
                    scope.spawn(move || run_one(&sub))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    };
    points.sort_by_key(|&(size, _)| size);
    Series {
        label: format!(
            "train-proxy {} [{}] {}x{} step time",
            if ampi { "AMPI" } else { "OpenMPI" },
            cfg.algo.map_or("auto", Algo::label),
            cfg.buckets,
            if cfg.overlap { "overlap" } else { "sync" },
        ),
        unit: "us",
        points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TrainConfig::default();
    let mut ampi = false;
    let mut shards = 1usize;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => match it.next().map(|s| s.as_str()) {
                Some("ampi") => ampi = true,
                Some("openmpi") => ampi = false,
                _ => usage(),
            },
            "--algo" => {
                cfg.algo = match it.next().map(|s| s.as_str()) {
                    Some("auto") => None,
                    Some(name) => Some(Algo::parse(name).unwrap_or_else(|| usage())),
                    None => usage(),
                }
            }
            "--buckets" => {
                cfg.buckets = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--steps" => {
                cfg.steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--no-overlap" => cfg.overlap = false,
            "--intensity" => {
                cfg.intensity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--quick" => {
                cfg.sizes = vec![256 << 10, 4 << 20];
                cfg.steps = 2;
                cfg.warmup = 1;
            }
            "--fault-spec" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cfg.machine.fault = Some(FaultSpec::parse(spec).unwrap_or_else(|e| {
                    eprintln!("bad --fault-spec: {e}");
                    std::process::exit(2);
                }));
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            _ => usage(),
        }
    }

    let series = sweep(&cfg, ampi, shards);
    if json {
        use rucx::compat::json::ToJson;
        println!("{}", series.to_json());
        return;
    }
    println!("# {} ({})", series.label, series.unit);
    println!("{:>12}  {:>14}", "model bytes", "step us");
    for (size, v) in &series.points {
        println!("{size:>12}  {v:>14.2}");
    }
}
