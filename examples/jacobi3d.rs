//! The Jacobi3D proxy application (paper §IV-C) on a small cluster: compare
//! host-staging vs GPU-direct halo exchange for every programming model.
//!
//! Run: `cargo run --release --example jacobi3d [nodes]`

use rucx::jacobi::{run, JacobiConfig, JacobiModel, Mode};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    assert!(nodes.is_power_of_two(), "node count must be a power of two");

    println!(
        "Jacobi3D, weak scaling point at {nodes} node(s) ({} GPUs), domain {:?}:\n",
        nodes * 6,
        JacobiConfig::weak(nodes, Mode::Device).domain
    );
    println!(
        "{:>10}  {:>12} {:>12} {:>12} {:>12} {:>9}",
        "model", "overall-H", "overall-D", "comm-H", "comm-D", "comm-spd"
    );
    for model in [
        JacobiModel::Charm,
        JacobiModel::Ampi,
        JacobiModel::Ompi,
        JacobiModel::Charm4py,
    ] {
        let mut ch = JacobiConfig::weak(nodes, Mode::HostStaging);
        let mut cd = JacobiConfig::weak(nodes, Mode::Device);
        ch.iters = 3;
        cd.iters = 3;
        let h = run(model, &ch);
        let d = run(model, &cd);
        println!(
            "{:>10}  {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>8.1}x",
            model.label(),
            h.overall_ms,
            d.overall_ms,
            h.comm_ms,
            d.comm_ms,
            h.comm_ms / d.comm_ms
        );
    }
    println!(
        "\n(overall/comm = per-iteration times, max over ranks; H = host-staging, D = GPU-direct)"
    );
}
