//! The Jacobi3D proxy application (paper §IV-C) on a small cluster: compare
//! host-staging vs GPU-direct halo exchange for every programming model.
//!
//! Run: `cargo run --release --example jacobi3d [nodes] [--fault-spec SPEC]
//! [--shards N]` (e.g. `--fault-spec seed=7,drop=0.01` for a lossy-fabric
//! run). With `--shards N` the run uses the sharded conservative engine —
//! N worker threads over node-contiguous shards — instead of the
//! sequential process-thread runtimes, which is how the big node counts
//! (64, 256, …) stay interactive.

use rucx::fault::FaultSpec;
use rucx::jacobi::{run, run_sharded_full, JacobiConfig, JacobiModel, Mode, ShardedOpts};

fn main() {
    let mut nodes: usize = 2;
    let mut fault: Option<FaultSpec> = None;
    let mut shards: Option<usize> = None;
    let mut tune = false;
    let mut args = std::env::args().skip(1);
    if std::env::var("RUCX_AUTOTUNE").as_deref() == Ok("1") {
        tune = true;
    }
    while let Some(a) = args.next() {
        if a == "--fault-spec" {
            let spec = args.next().unwrap_or_else(|| {
                eprintln!("--fault-spec needs a value (e.g. seed=7,drop=0.01)");
                std::process::exit(2);
            });
            fault = Some(FaultSpec::parse(&spec).unwrap_or_else(|e| {
                eprintln!("bad --fault-spec: {e}");
                std::process::exit(2);
            }));
        } else if a == "--tune" {
            tune = true;
        } else if a == "--shards" {
            let v = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--shards needs a positive integer");
                std::process::exit(2);
            });
            shards = Some(v);
        } else if let Ok(n) = a.parse() {
            nodes = n;
        } else {
            eprintln!("usage: jacobi3d [nodes] [--fault-spec SPEC] [--shards N] [--tune]");
            std::process::exit(2);
        }
    }
    assert!(nodes.is_power_of_two(), "node count must be a power of two");

    let engine = match shards {
        Some(s) => format!("sharded engine, {s} shard(s)"),
        None => "sequential process-thread runtimes".to_string(),
    };
    println!(
        "Jacobi3D, weak scaling point at {nodes} node(s) ({} GPUs), domain {:?} [{engine}]:\n",
        nodes * 6,
        JacobiConfig::weak(nodes, Mode::Device).domain
    );
    println!(
        "{:>10}  {:>12} {:>12} {:>12} {:>12} {:>9}",
        "model", "overall-H", "overall-D", "comm-H", "comm-D", "comm-spd"
    );
    for model in [
        JacobiModel::Charm,
        JacobiModel::Ampi,
        JacobiModel::Ompi,
        JacobiModel::Charm4py,
    ] {
        let mut ch = JacobiConfig::weak(nodes, Mode::HostStaging);
        let mut cd = JacobiConfig::weak(nodes, Mode::Device);
        ch.iters = 3;
        cd.iters = 3;
        ch.machine.fault = fault.clone();
        cd.machine.fault = fault.clone();
        ch.machine.ucp.autotune = tune;
        cd.machine.ucp.autotune = tune;
        let (h, d) = match shards {
            Some(s) => {
                let opts = ShardedOpts {
                    shards: s,
                    ..Default::default()
                };
                let rh = run_sharded_full(model, &ch, &opts);
                let rd = run_sharded_full(model, &cd, &opts);
                for (tag, r) in [("H", &rh), ("D", &rd)] {
                    if !r.completed {
                        eprintln!(
                            "  [{} {tag}: stalled, {} halo(s) lost, {} rank(s) stranded]",
                            model.label(),
                            r.lost,
                            r.blocked.len()
                        );
                    }
                }
                (rh.result, rd.result)
            }
            None => (run(model, &ch), run(model, &cd)),
        };
        println!(
            "{:>10}  {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>8.1}x",
            model.label(),
            h.overall_ms,
            d.overall_ms,
            h.comm_ms,
            d.comm_ms,
            h.comm_ms / d.comm_ms
        );
    }
    println!(
        "\n(overall/comm = per-iteration times, max over ranks; H = host-staging, D = GPU-direct)"
    );
}
