//! Chaos scenario-matrix runner: every workload × fault-scenario cell,
//! each on its own seeded simulation, reporting the headline number, the
//! per-layer time attribution rebuilt from the structured trace, and the
//! recovery mechanism that paid for the degradation.
//!
//!     cargo run --release --example scenario_matrix -- [--quick] [--json]
//!         [--markdown] [--shards N]
//!
//! Cells are independent simulations, so `--shards N` farms them out
//! round-robin over N threads; the merged, sorted output is byte-identical
//! to a single-threaded run (`scripts/check.sh` gates on this).

use rucx::bench::scenario::{all_cells, run_cell, Cell};

fn usage() -> ! {
    eprintln!("usage: scenario_matrix [--quick] [--json] [--markdown] [--shards N]");
    std::process::exit(2);
}

/// Run every cell, optionally sharded. Cells keep their canonical
/// (scenario-major) order regardless of shard interleaving.
fn sweep(quick: bool, shards: usize) -> Vec<Cell> {
    let cells = all_cells();
    let shards = shards.clamp(1, cells.len());
    let mut done: Vec<(usize, Cell)> = if shards == 1 {
        cells
            .into_iter()
            .enumerate()
            .map(|(i, (s, w))| (i, run_cell(s, w, quick)))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|k| {
                    let mine: Vec<(usize, (&str, &str))> = cells
                        .iter()
                        .copied()
                        .enumerate()
                        .skip(k)
                        .step_by(shards)
                        .collect();
                    scope.spawn(move || {
                        mine.into_iter()
                            .map(|(i, (s, w))| (i, run_cell(s, w, quick)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    };
    done.sort_by_key(|(i, _)| *i);
    done.into_iter().map(|(_, c)| c).collect()
}

fn recovery_summary(c: &Cell) -> String {
    let r = &c.recovery;
    let mut parts = Vec::new();
    for (n, label) in [
        (r.retry, "retry"),
        (r.parked, "parked"),
        (r.healed, "healed"),
        (r.reroute, "reroute"),
        (r.host_staged, "host-staged"),
        (r.resubmit, "resubmit"),
        (r.giveup, "giveup"),
    ] {
        if n > 0 {
            parts.push(format!("{label}={n}"));
        }
    }
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join(" ")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json = false;
    let mut markdown = false;
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--markdown" => markdown = true,
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let cells = sweep(quick, shards);

    if json {
        let body: Vec<String> = cells.iter().map(Cell::to_json).collect();
        println!(
            "{{\"label\":\"chaos scenario matrix\",\"quick\":{quick},\
             \"cells\":[{}]}}",
            body.join(",")
        );
        return;
    }

    if markdown {
        // The EXPERIMENTS.md table, ready to paste.
        println!(
            "| scenario | workload | headline | dominant layer | recovery paid by | recovery counters |"
        );
        println!("|---|---|---|---|---|---|");
        for c in &cells {
            println!(
                "| {} | {} | {:.1} {} | {} | {} | {} |",
                c.scenario,
                c.workload,
                c.headline,
                c.headline_unit,
                c.top_layer(),
                c.recovery.dominant(),
                recovery_summary(c),
            );
        }
        return;
    }

    println!("# chaos scenario matrix ({} cells)", cells.len());
    println!(
        "{:>10}  {:>12}  {:>14}  {:>9}  {:>20}  recovery",
        "scenario", "workload", "headline", "top layer", "paid by"
    );
    for c in &cells {
        println!(
            "{:>10}  {:>12}  {:>9.1} {:<10}  {:>9}  {:>20}  {}",
            c.scenario,
            c.workload,
            c.headline,
            c.headline_unit,
            c.top_layer(),
            c.recovery.dominant(),
            recovery_summary(c),
        );
    }
}
