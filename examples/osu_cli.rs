//! Command-line OSU benchmark runner, mirroring how the real suite is
//! invoked:
//!
//! ```text
//! cargo run --release --example osu_cli -- latency  --model ampi    --mode d --place inter
//! cargo run --release --example osu_cli -- bw       --model charm   --mode h --place intra
//! cargo run --release --example osu_cli -- bibw     --model openmpi --place inter
//! cargo run --release --example osu_cli -- latency  --model openmpi --mode d --no-gdrcopy
//! cargo run --release --example osu_cli -- latency  --model ampi --place inter \
//!     --fault-spec seed=7,drop=0.01
//! ```

use rucx::fault::FaultSpec;
use rucx::osu::{bandwidth, bibw, latency, mpi_like, Mode, Model, OsuConfig, Placement, Series};

fn usage() -> ! {
    eprintln!(
        "usage: osu_cli <latency|bw|bibw> [--model charm|ampi|openmpi|charm4py] \
         [--mode d|h] [--place intra|inter] [--no-gdrcopy] [--quick] [--fault-spec SPEC]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let bench = args[0].clone();
    let mut model = Model::Ompi;
    let mut mode = Mode::Device;
    let mut place = Placement::IntraNode;
    let mut cfg = OsuConfig::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                model = match it.next().map(|s| s.as_str()) {
                    Some("charm") => Model::Charm,
                    Some("ampi") => Model::Ampi,
                    Some("openmpi") => Model::Ompi,
                    Some("charm4py") => Model::Charm4py,
                    _ => usage(),
                }
            }
            "--mode" => {
                mode = match it.next().map(|s| s.as_str()) {
                    Some("d") => Mode::Device,
                    Some("h") => Mode::HostStaging,
                    _ => usage(),
                }
            }
            "--place" => {
                place = match it.next().map(|s| s.as_str()) {
                    Some("intra") => Placement::IntraNode,
                    Some("inter") => Placement::InterNode,
                    _ => usage(),
                }
            }
            "--no-gdrcopy" => cfg.machine.ucp.gdrcopy_enabled = false,
            "--fault-spec" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cfg.machine.fault = Some(FaultSpec::parse(spec).unwrap_or_else(|e| {
                    eprintln!("bad --fault-spec: {e}");
                    std::process::exit(2);
                }));
            }
            "--quick" => {
                let machine = cfg.machine.clone();
                cfg = OsuConfig::quick();
                cfg.machine = machine;
            }
            _ => usage(),
        }
    }

    let series: Series = match bench.as_str() {
        "latency" => latency(&cfg, model, mode, place),
        "bw" => bandwidth(&cfg, model, mode, place),
        "bibw" => match model {
            Model::Ampi => bibw::bibw_series(&cfg, "AMPI", place, mpi_like::AmpiFactory),
            Model::Ompi => bibw::bibw_series(&cfg, "OpenMPI", place, mpi_like::OmpiFactory),
            _ => {
                eprintln!("bibw supports --model ampi|openmpi");
                std::process::exit(2);
            }
        },
        _ => usage(),
    };

    println!("# {} ({})", series.label, series.unit);
    println!("{:>10}  {:>14}", "size", series.unit);
    for (size, v) in &series.points {
        println!("{size:>10}  {v:>14.2}");
    }
}
