//! Command-line OSU benchmark runner, mirroring how the real suite is
//! invoked:
//!
//! ```text
//! cargo run --release --example osu_cli -- latency  --model ampi    --mode d --place inter
//! cargo run --release --example osu_cli -- bw       --model charm   --mode h --place intra
//! cargo run --release --example osu_cli -- bibw     --model openmpi --place inter
//! cargo run --release --example osu_cli -- latency  --model openmpi --mode d --no-gdrcopy
//! cargo run --release --example osu_cli -- latency  --model ampi --place inter \
//!     --fault-spec seed=7,drop=0.01
//! cargo run --release --example osu_cli -- bw       --model charm --shards 4
//! cargo run --release --example osu_cli -- coll     --coll allreduce --algo hier
//! cargo run --release --example osu_cli -- coll     --coll bcast --model charm4py
//! ```
//!
//! `--shards N` splits the message-size sweep across N OS threads (each
//! size is an independent deterministic simulation), merging the points
//! back in size order — byte-identical output, a fraction of the wall
//! clock.

use rucx::coll::Algo;
use rucx::fault::FaultSpec;
use rucx::osu::coll_bench::{coll_latency, CollKind};
use rucx::osu::{bandwidth, bibw, latency, mpi_like, Mode, Model, OsuConfig, Placement, Series};

fn usage() -> ! {
    eprintln!(
        "usage: osu_cli <latency|bw|bibw|coll> [--model charm|ampi|openmpi|charm4py] \
         [--mode d|h] [--place intra|inter] [--coll allreduce|bcast] \
         [--algo auto|tree|rd|ring|hier] [--no-gdrcopy] [--quick] [--fault-spec SPEC] \
         [--shards N] [--tune] [--json]"
    );
    std::process::exit(2)
}

/// Run one full sweep: `sweep(cfg)` over all of `cfg.sizes`, or — with
/// `shards > 1` — over per-thread strided slices of it, reassembled in
/// size order. Every size is its own simulation, so the merged series is
/// byte-identical to the sequential one.
fn run_sharded_sweep(
    cfg: &OsuConfig,
    shards: usize,
    sweep: impl Fn(&OsuConfig) -> Series + Sync,
) -> Series {
    let shards = shards.clamp(1, cfg.sizes.len().max(1));
    if shards == 1 {
        return sweep(cfg);
    }
    let mut slices: Vec<Series> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|k| {
                let mut sub = cfg.clone();
                sub.sizes = cfg.sizes.iter().copied().skip(k).step_by(shards).collect();
                let sweep = &sweep;
                scope.spawn(move || sweep(&sub))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = Series {
        label: slices[0].label.clone(),
        unit: slices[0].unit,
        points: Vec::new(),
    };
    for s in &mut slices {
        merged.points.append(&mut s.points);
    }
    merged.points.sort_by_key(|&(size, _)| size);
    merged
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let bench = args[0].clone();
    let mut model = Model::Ompi;
    let mut mode = Mode::Device;
    let mut place = Placement::IntraNode;
    let mut cfg = OsuConfig::default();
    let mut shards = 1usize;
    let mut json = false;
    let mut coll_kind = CollKind::Allreduce;
    let mut algo: Option<Algo> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                model = match it.next().map(|s| s.as_str()) {
                    Some("charm") => Model::Charm,
                    Some("ampi") => Model::Ampi,
                    Some("openmpi") => Model::Ompi,
                    Some("charm4py") => Model::Charm4py,
                    _ => usage(),
                }
            }
            "--mode" => {
                mode = match it.next().map(|s| s.as_str()) {
                    Some("d") => Mode::Device,
                    Some("h") => Mode::HostStaging,
                    _ => usage(),
                }
            }
            "--place" => {
                place = match it.next().map(|s| s.as_str()) {
                    Some("intra") => Placement::IntraNode,
                    Some("inter") => Placement::InterNode,
                    _ => usage(),
                }
            }
            "--coll" => {
                coll_kind = match it.next().map(|s| s.as_str()) {
                    Some("allreduce") => CollKind::Allreduce,
                    Some("bcast") => CollKind::Bcast,
                    _ => usage(),
                }
            }
            "--algo" => {
                algo = match it.next().map(|s| s.as_str()) {
                    Some("auto") => None,
                    Some(name) => Some(Algo::parse(name).unwrap_or_else(|| usage())),
                    None => usage(),
                }
            }
            "--no-gdrcopy" => cfg.machine.ucp.gdrcopy_enabled = false,
            "--tune" => cfg.machine.ucp.autotune = true,
            "--json" => json = true,
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--fault-spec" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cfg.machine.fault = Some(FaultSpec::parse(spec).unwrap_or_else(|e| {
                    eprintln!("bad --fault-spec: {e}");
                    std::process::exit(2);
                }));
            }
            "--quick" => {
                let machine = cfg.machine.clone();
                cfg = OsuConfig::quick();
                cfg.machine = machine;
            }
            _ => usage(),
        }
    }

    // `RUCX_AUTOTUNE=1` turns the protocol engine's autotuner on without
    // touching the invocation (CI determinism gates flip it per run).
    if std::env::var("RUCX_AUTOTUNE").as_deref() == Ok("1") {
        cfg.machine.ucp.autotune = true;
    }

    let series: Series = match bench.as_str() {
        "latency" => run_sharded_sweep(&cfg, shards, |c| latency(c, model, mode, place)),
        "bw" => run_sharded_sweep(&cfg, shards, |c| bandwidth(c, model, mode, place)),
        "bibw" => match model {
            Model::Ampi => run_sharded_sweep(&cfg, shards, |c| {
                bibw::bibw_series(c, "AMPI", place, mpi_like::AmpiFactory)
            }),
            Model::Ompi => run_sharded_sweep(&cfg, shards, |c| {
                bibw::bibw_series(c, "OpenMPI", place, mpi_like::OmpiFactory)
            }),
            _ => {
                eprintln!("bibw supports --model ampi|openmpi");
                std::process::exit(2);
            }
        },
        "coll" => {
            if model == Model::Charm {
                eprintln!("coll supports --model ampi|openmpi|charm4py");
                std::process::exit(2);
            }
            run_sharded_sweep(&cfg, shards, |c| coll_latency(c, model, coll_kind, algo))
        }
        _ => usage(),
    };

    if json {
        use rucx::compat::json::ToJson;
        println!("{}", series.to_json());
        return;
    }
    println!("# {} ({})", series.label, series.unit);
    println!("{:>10}  {:>14}", "size", series.unit);
    for (size, v) in &series.points {
        println!("{size:>10}  {v:>14.2}");
    }
}
