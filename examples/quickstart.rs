//! Quickstart: the same GPU ping-pong in all four programming models,
//! GPU-direct vs host-staging, on a simulated Summit node.
//!
//! Run: `cargo run --release --example quickstart`

use rucx::prelude::*;
use rucx::{ampi, charm4py, ompi};
use std::sync::Arc;

const SIZE: u64 = 1 << 20; // 1 MiB

fn fresh() -> (MSim, MemRef, MemRef) {
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let a = sim
        .world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(0), SIZE, true)
        .unwrap();
    let b = sim
        .world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(1), SIZE, true)
        .unwrap();
    sim.world_mut()
        .gpu
        .pool
        .write(a, &vec![7u8; SIZE as usize])
        .unwrap();
    (sim, a, b)
}

fn report(model: &str, rtt_ns: u64) {
    println!(
        "{model:>10}: one-way latency for 1 MiB GPU buffer = {:>8.1} us",
        as_us(rtt_ns) / 2.0
    );
}

fn main() {
    println!("GPU ping-pong between two V100s on one node (NVLink):\n");

    // --- OpenMPI-style: CUDA-aware MPI directly over UCX ---------------
    let (mut sim, a, b) = fresh();
    let rtt = Arc::new(shared_mutex());
    let rtt2 = rtt.clone();
    ompi::launch(&mut sim, move |mpi, ctx| match mpi.rank() {
        0 => {
            let t0 = ctx.now();
            mpi.send(ctx, a, 1, 0);
            mpi.recv(ctx, a, 1, 1);
            *rtt2.lock() = ctx.now() - t0;
        }
        1 => {
            mpi.recv(ctx, b, 0, 0);
            mpi.send(ctx, b, 0, 1);
        }
        _ => {}
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(
        sim.world().gpu.pool.read(b).unwrap(),
        vec![7u8; SIZE as usize]
    );
    report("OpenMPI", *rtt.lock());

    // --- AMPI: MPI on the Charm++ runtime -------------------------------
    let (mut sim, a, b) = fresh();
    let rtt = Arc::new(shared_mutex());
    let rtt2 = rtt.clone();
    ampi::launch(&mut sim, move |mpi, ctx| match mpi.rank() {
        0 => {
            let t0 = ctx.now();
            mpi.send(ctx, a, 1, 0);
            mpi.recv(ctx, a, 1, 1);
            *rtt2.lock() = ctx.now() - t0;
        }
        1 => {
            mpi.recv(ctx, b, 0, 0);
            mpi.send(ctx, b, 0, 1);
        }
        _ => {}
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    report("AMPI", *rtt.lock());

    // --- Charm4py: channels ---------------------------------------------
    let (mut sim, a, b) = fresh();
    let rtt = Arc::new(shared_mutex());
    let rtt2 = rtt.clone();
    charm4py::launch(&mut sim, move |py, ctx| match py.rank() {
        0 => {
            let ch = py.channel(1);
            let t0 = ctx.now();
            py.send(ctx, ch, a);
            py.recv(ctx, ch, a);
            *rtt2.lock() = ctx.now() - t0;
        }
        1 => {
            let ch = py.channel(0);
            py.recv(ctx, ch, b);
            py.send(ctx, ch, b);
        }
        _ => {}
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    report("Charm4py", *rtt.lock());

    // --- Charm++: via the OSU latency benchmark driver -------------------
    let mut cfg = rucx::osu::OsuConfig::quick();
    cfg.sizes = vec![SIZE];
    cfg.lat_iters = 1;
    cfg.lat_warmup = 0;
    let s = rucx::osu::latency(
        &cfg,
        rucx::osu::Model::Charm,
        rucx::osu::Mode::Device,
        rucx::osu::Placement::IntraNode,
    );
    println!(
        "{:>10}: one-way latency for 1 MiB GPU buffer = {:>8.1} us",
        "Charm++",
        s.at(SIZE).unwrap()
    );

    println!("\nHost-staging comparison (same transfer, staged through host):");
    let s = rucx::osu::latency(
        &cfg,
        rucx::osu::Model::Charm,
        rucx::osu::Mode::HostStaging,
        rucx::osu::Placement::IntraNode,
    );
    println!(
        "{:>10}: one-way latency for 1 MiB GPU buffer = {:>8.1} us",
        "Charm++-H",
        s.at(SIZE).unwrap()
    );
}

fn shared_mutex() -> rucx_compat::sync::Mutex<u64> {
    rucx_compat::sync::Mutex::new(0)
}
