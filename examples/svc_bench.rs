//! Many-client service-layer benchmark: thousands of logical Dask-style
//! clients scatter datasets and submit small tasks to a pool of workers
//! over Charm4py channels, with the UCP connection-setup/registration cost
//! model enabled. Each sweep point runs the identical seeded load twice —
//! registration/endpoint caches on and off — and reports task throughput
//! plus exact p50/p99 task latency for both, which is the paper-adjacent
//! MPI4Dask story: at small-task scale, amortizing wireup and memory
//! registration is the difference between the service scaling and not.
//!
//! ```text
//! cargo run --release --example svc_bench
//! cargo run --release --example svc_bench -- --clients 512 --tasks 32
//! cargo run --release --example svc_bench -- --quick --json
//! cargo run --release --example svc_bench -- --quick --shards 4
//! ```
//!
//! `--shards N` splits the client-count sweep across N OS threads (each
//! point is an independent deterministic simulation) with byte-identical
//! output — the determinism gate in `scripts/check.sh` compares runs and
//! shard counts.

use rucx::svc::{run_load, LoadCfg, LoadResult};

#[derive(Clone)]
struct BenchConfig {
    /// Logical-client counts to sweep.
    sweep: Vec<usize>,
    tasks_per_client: usize,
    data_size: u64,
    window: usize,
    seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sweep: vec![128, 512, 2048],
            tasks_per_client: 48,
            data_size: 2048,
            window: 16,
            seed: 1,
        }
    }
}

struct Point {
    clients: usize,
    on: LoadResult,
    off: LoadResult,
}

fn usage() -> ! {
    eprintln!(
        "usage: svc_bench [--clients N[,N...]] [--tasks N] [--data BYTES] \
         [--window N] [--seed N] [--quick] [--shards N] [--json]"
    );
    std::process::exit(2)
}

fn run_point(cfg: &BenchConfig, clients: usize) -> Point {
    let load = |cache| {
        run_load(&LoadCfg {
            clients,
            tasks_per_client: cfg.tasks_per_client,
            data_size: cfg.data_size,
            window: cfg.window,
            compute_us: 3.0,
            cache,
            seed: cfg.seed,
            ..LoadCfg::default()
        })
    };
    Point {
        clients,
        on: load(true),
        off: load(false),
    }
}

/// The sweep, optionally sharded across threads by client count (each
/// point is an independent simulation — merged output is byte-identical).
fn sweep(cfg: &BenchConfig, shards: usize) -> Vec<Point> {
    let shards = shards.clamp(1, cfg.sweep.len().max(1));
    let mut points: Vec<Point> = if shards == 1 {
        cfg.sweep.iter().map(|&c| run_point(cfg, c)).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|k| {
                    let mine: Vec<usize> =
                        cfg.sweep.iter().copied().skip(k).step_by(shards).collect();
                    scope.spawn(move || {
                        mine.into_iter()
                            .map(|c| run_point(cfg, c))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    };
    points.sort_by_key(|p| p.clients);
    points
}

fn mode_json(r: &LoadResult) -> String {
    format!(
        "{{\"tasks_per_sec\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3},\
         \"reg_hit\":{},\"reg_miss\":{},\"reg_evict\":{},\
         \"ep_hit\":{},\"ep_miss\":{},\"premapped_hit\":{}}}",
        r.tasks_per_sec,
        r.p50_us,
        r.p99_us,
        r.reg_hit,
        r.reg_miss,
        r.reg_evict,
        r.ep_hit,
        r.ep_miss,
        r.premapped_hit,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = BenchConfig::default();
    let mut shards = 1usize;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clients" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cfg.sweep = spec
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if cfg.sweep.is_empty() {
                    usage();
                }
            }
            "--tasks" => {
                cfg.tasks_per_client = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--data" => {
                cfg.data_size = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--window" => {
                cfg.window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => {
                cfg.sweep = vec![16, 64];
                cfg.tasks_per_client = 8;
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            _ => usage(),
        }
    }

    let points = sweep(&cfg, shards);
    if json {
        let body: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{{\"clients\":{},\"tasks\":{},\"digest\":\"{:#018x}\",\
                     \"cache_on\":{},\"cache_off\":{}}}",
                    p.clients,
                    p.on.tasks,
                    p.on.digest,
                    mode_json(&p.on),
                    mode_json(&p.off),
                )
            })
            .collect();
        println!(
            "{{\"label\":\"svc-bench scatter/submit/gather\",\"unit\":\"tasks/s\",\
             \"points\":[{}]}}",
            body.join(",")
        );
        return;
    }
    println!("# svc-bench: many-client scatter/submit/gather (cache on vs off)");
    println!(
        "{:>8}  {:>8}  {:>12}  {:>12}  {:>7}  {:>9}  {:>9}  {:>9}  {:>9}",
        "clients",
        "tasks",
        "on tasks/s",
        "off tasks/s",
        "speedup",
        "on p50",
        "on p99",
        "off p50",
        "off p99"
    );
    for p in &points {
        println!(
            "{:>8}  {:>8}  {:>12.0}  {:>12.0}  {:>6.2}x  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}",
            p.clients,
            p.on.tasks,
            p.on.tasks_per_sec,
            p.off.tasks_per_sec,
            p.on.tasks_per_sec / p.off.tasks_per_sec,
            p.on.p50_us,
            p.on.p99_us,
            p.off.p50_us,
            p.off.p99_us,
        );
    }
}
