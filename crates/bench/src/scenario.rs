//! Chaos scenario-matrix cells: every workload × fault-scenario pairing
//! the matrix runner (`examples/scenario_matrix.rs`) sweeps.
//!
//! Each cell runs one workload on its own freshly-seeded simulation with
//! one named fault scenario armed (see `rucx_fault`'s `scenario=` spec
//! shorthand) and the structured trace sink enabled, then reports three
//! things: the workload's headline number, the per-layer time attribution
//! rebuilt from the trace, and which recovery mechanism paid for the
//! degradation (retransmission, endpoint park+probe, pipeline-chunk
//! reroute, host-staged fallback, or service-layer resubmission). Cells
//! are fully independent, so the matrix can be sharded across threads
//! with byte-identical merged output.

use std::sync::Arc;

use rucx_compat::sync::Mutex;
use rucx_fabric::Topology;
use rucx_fault::FaultSpec;
use rucx_gpu::{DeviceId, MemRef};
use rucx_sim::time::{as_us, us};
use rucx_sim::{Counters, RunOutcome};
use rucx_ucp::{build_sim, MSim, MachineConfig};

use crate::attr::Attribution;

/// Matrix axis 1: fault scenarios (`clean` plus every `scenario=` name).
pub const SCENARIOS: [&str; 6] = ["clean", "drop1", "drop5", "partition", "gpufail", "degrade"];

/// Matrix axis 2: workloads, one per programming model of the paper plus
/// the many-client service layer.
pub const WORKLOADS: [&str; 4] = ["osu_latency", "jacobi3d", "allreduce", "svc_load"];

/// Fault spec for a named scenario (`None` for `clean`). Scenario specs
/// pin their own chaos seed, so a cell is reproducible from its name.
pub fn spec_for(scenario: &str) -> Option<FaultSpec> {
    if scenario == "clean" {
        None
    } else {
        Some(
            FaultSpec::parse(&format!("scenario={scenario}"))
                .expect("scenario names come from SCENARIOS"),
        )
    }
}

/// Recovery-mechanism activity harvested from one cell's counters. Every
/// field is a count of *events*, not time — the time they cost shows up
/// in the cell's headline and per-layer attribution instead.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Reliability-layer retransmissions (`ucp.retry`).
    pub retry: u64,
    /// Envelopes parked on Suspect/Dead endpoints (`ucp.parked`).
    pub parked: u64,
    /// Endpoints brought back by keepalive probes (`ucp.ep.healed`).
    pub healed: u64,
    /// Pipeline chunks rerouted off a degraded rail (`ucp.reroute`).
    pub reroute: u64,
    /// Transfers demoted to host staging after a GPU copy-engine failure
    /// (`ucp.fallback.host_staged`).
    pub host_staged: u64,
    /// Endpoints declared unreachable for good (`ucp.giveup`).
    pub giveup: u64,
    /// Service-layer task resubmissions (`svc.resubmit`).
    pub resubmit: u64,
}

impl RecoveryCounts {
    /// Read the standard counter set out of a world's counter map.
    pub fn from_counters(c: &Counters) -> Self {
        RecoveryCounts {
            retry: c.get("ucp.retry"),
            parked: c.get("ucp.parked"),
            healed: c.get("ucp.ep.healed"),
            reroute: c.get("ucp.reroute"),
            host_staged: c.get("ucp.fallback.host_staged"),
            giveup: c.get("ucp.giveup"),
            resubmit: c.get("svc.resubmit"),
        }
    }

    /// The mechanism that paid for this cell's recovery, by semantic
    /// precedence (most structural first), or `"none"` on a clean path.
    /// Precedence rather than magnitude: a parked envelope is retried
    /// several times, so raw counts would always crown plain retry even
    /// when the endpoint state machine did the real work.
    pub fn dominant(&self) -> &'static str {
        if self.resubmit > 0 {
            "resubmit"
        } else if self.parked > 0 {
            "park+probe"
        } else if self.host_staged > 0 {
            "host-staged fallback"
        } else if self.reroute > 0 {
            "reroute"
        } else if self.retry > 0 {
            "retry"
        } else {
            "none"
        }
    }
}

/// One completed matrix cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub scenario: &'static str,
    pub workload: &'static str,
    /// Workload-native headline number (see `headline_unit`).
    pub headline: f64,
    pub headline_unit: &'static str,
    pub attr: Attribution,
    pub recovery: RecoveryCounts,
}

impl Cell {
    /// Stable machine-readable form; field order and float formatting are
    /// fixed so two runs of the same cell serialize byte-identically.
    pub fn to_json(&self) -> String {
        let r = &self.recovery;
        format!(
            "{{\"scenario\":\"{}\",\"workload\":\"{}\",\"headline\":{:.3},\
             \"unit\":\"{}\",\"dominant\":\"{}\",\
             \"recovery\":{{\"retry\":{},\"parked\":{},\"healed\":{},\
             \"reroute\":{},\"host_staged\":{},\"giveup\":{},\"resubmit\":{}}},\
             \"attr\":{}}}",
            self.scenario,
            self.workload,
            self.headline,
            self.headline_unit,
            r.dominant(),
            r.retry,
            r.parked,
            r.healed,
            r.reroute,
            r.host_staged,
            r.giveup,
            r.resubmit,
            rucx_compat::json::ToJson::to_json(&self.attr),
        )
    }

    /// The layer with the largest attributed span time (`"-"` if the
    /// trace was empty).
    pub fn top_layer(&self) -> &'static str {
        self.attr
            .layers
            .iter()
            .max_by(|a, b| (a.1.busy_ns, a.0).cmp(&(b.1.busy_ns, b.0)))
            .map(|(l, _)| *l)
            .unwrap_or("-")
    }
}

/// All `(scenario, workload)` pairs in canonical (output) order.
pub fn all_cells() -> Vec<(&'static str, &'static str)> {
    let mut v = Vec::new();
    for s in SCENARIOS {
        for w in WORKLOADS {
            v.push((s, w));
        }
    }
    v
}

/// Run one cell on its own simulation. `quick` shrinks iteration counts
/// (used by tests and `--quick`), not the fault timeline.
pub fn run_cell(scenario: &'static str, workload: &'static str, quick: bool) -> Cell {
    match workload {
        "osu_latency" => osu_cell(scenario, quick),
        "jacobi3d" => jacobi_cell(scenario, quick),
        "allreduce" => allreduce_cell(scenario, quick),
        "svc_load" => svc_cell(scenario, quick),
        other => panic!("unknown workload `{other}`"),
    }
}

/// Two-node Summit slice with the scenario's faults armed and the trace
/// sink recording from t=0.
fn traced_sim(scenario: &str) -> MSim {
    let mut machine = MachineConfig::default();
    machine.fault = spec_for(scenario);
    let mut sim = build_sim(Topology::summit(2), machine);
    sim.scheduler().trace.enable(0);
    sim
}

fn harvest(sim: &MSim) -> (Attribution, RecoveryCounts) {
    (
        Attribution::from_sink(&sim.scheduler_ref().trace),
        RecoveryCounts::from_counters(&sim.world().ucp.counters),
    )
}

fn alloc_dev(sim: &mut MSim, dev: u32, size: u64) -> MemRef {
    sim.world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(dev), size, false)
        .expect("device alloc")
}

/// OSU-style inter-node device ping-pong (ranks 0 and 6 sit on different
/// nodes). The headline is the 4 KiB half-round-trip; a trailing 4 MiB
/// transfer exercises the pipelined rendezvous path so rail degradation
/// provably reroutes chunks and a failed copy engine provably demotes to
/// host staging.
fn osu_cell(scenario: &'static str, quick: bool) -> Cell {
    const PEER: usize = 6;
    let iters = if quick { 5u64 } else { 20 };
    let mut sim = traced_sim(scenario);
    let a = alloc_dev(&mut sim, 0, 4 << 10);
    let b = alloc_dev(&mut sim, PEER as u32, 4 << 10);
    let big_a = alloc_dev(&mut sim, 0, 4 << 20);
    let big_b = alloc_dev(&mut sim, PEER as u32, 4 << 20);
    let result = Arc::new(Mutex::new(0.0f64));
    let result2 = result.clone();
    rucx_ampi::launch(&mut sim, move |mpi, ctx| match mpi.rank() {
        0 => {
            let t0 = ctx.now();
            for i in 0..iters {
                mpi.send(ctx, a, PEER, i as i32);
                mpi.recv(ctx, a, PEER as i32, i as i32);
            }
            *result2.lock() = as_us(ctx.now() - t0) / iters as f64 / 2.0;
            // Sit out the early fault window (GPU copy-engine failure at
            // 250 µs, degrade/partition onset at 150 µs) so the post-fault
            // exchanges provably start on the degraded machine: the small
            // eager GDRCopy send demotes to host staging when the copy
            // engine is down, the pipelined bulk transfer reroutes its
            // chunks when a rail is degraded.
            ctx.advance(us(300.0));
            mpi.send(ctx, a, PEER, 10_000);
            mpi.recv(ctx, a, PEER as i32, 10_000);
            mpi.send(ctx, big_a, PEER, 9_999);
        }
        r if r == PEER => {
            for i in 0..iters {
                mpi.recv(ctx, b, 0, i as i32);
                mpi.send(ctx, b, 0, i as i32);
            }
            mpi.recv(ctx, b, 0, 10_000);
            mpi.send(ctx, b, 0, 10_000);
            mpi.recv(ctx, big_b, 0, 9_999);
        }
        _ => {}
    });
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "osu_latency hung under `{scenario}`"
    );
    let (attr, recovery) = harvest(&sim);
    let headline = *result.lock();
    Cell {
        scenario,
        workload: "osu_latency",
        headline,
        headline_unit: "us/half-rt",
        attr,
        recovery,
    }
}

/// Jacobi3D on Charm++ chares, device halos, two nodes. Headline is the
/// per-iteration overall time (max over chares).
fn jacobi_cell(scenario: &'static str, quick: bool) -> Cell {
    use rucx_jacobi::charm_run::run_charm_on;
    use rucx_jacobi::{JacobiConfig, Mode};

    let mut cfg = JacobiConfig::weak(2, Mode::Device);
    cfg.domain = rucx_jacobi::Domain {
        nx: 192,
        ny: 192,
        nz: 192,
    };
    cfg.iters = if quick { 2 } else { 4 };
    cfg.warmup = 1;
    let mut sim = traced_sim(scenario);
    let r = run_charm_on(&mut sim, &cfg);
    let (attr, recovery) = harvest(&sim);
    Cell {
        scenario,
        workload: "jacobi3d",
        headline: r.overall_ms * 1_000.0,
        headline_unit: "us/iter",
        attr,
        recovery,
    }
}

/// 64 KiB device allreduce over all 12 ranks (AMPI, engine-chosen
/// algorithm), barrier-separated like the OSU collective benchmark.
/// Headline is the per-iteration latency on rank 0.
fn allreduce_cell(scenario: &'static str, quick: bool) -> Cell {
    use rucx_osu::coll::{self, CollOp};
    use rucx_osu::mpi_like::{AmpiFactory, RankFactory};

    let size = 64u64 << 10;
    let (iters, warmup) = if quick { (2u32, 1u32) } else { (4, 1) };
    let mut sim = traced_sim(scenario);
    let topo = sim.world().topo.clone();
    let n = topo.procs();
    let mut bufs = Vec::new();
    let mut scratch = Vec::new();
    for p in 0..n {
        bufs.push(alloc_dev(&mut sim, topo.device_of(p).0, size));
        scratch.push(alloc_dev(&mut sim, topo.device_of(p).0, size));
    }
    let (bufs, scratch) = (Arc::new(bufs), Arc::new(scratch));
    let result = Arc::new(Mutex::new(0.0f64));
    let result2 = result.clone();
    AmpiFactory.launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let (buf, scr) = (bufs[me], scratch[me]);
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                mpi.barrier(ctx);
                t0 = ctx.now();
            }
            coll::allreduce(mpi, ctx, buf, scr, CollOp::Sum, n, dev);
            mpi.barrier(ctx);
        }
        if me == 0 {
            *result2.lock() = as_us(ctx.now() - t0) / iters as f64;
        }
    });
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "allreduce hung under `{scenario}`"
    );
    let (attr, recovery) = harvest(&sim);
    let headline = *result.lock();
    Cell {
        scenario,
        workload: "allreduce",
        headline,
        headline_unit: "us/iter",
        attr,
        recovery,
    }
}

/// Many-client scatter/submit/gather load with the recovery layer armed
/// (2.5 ms task deadlines). Headline is the p99 task latency. Host-side
/// traffic only, so `gpufail` honestly leaves this cell untouched; under
/// `partition` the UCP park+probe layer heals the endpoints well inside
/// the task deadline, shielding the service layer from resubmissions.
fn svc_cell(scenario: &'static str, quick: bool) -> Cell {
    use rucx_svc::{run_load, LoadCfg};

    let cfg = LoadCfg {
        clients: if quick { 12 } else { 24 },
        tasks_per_client: 4,
        data_size: 512,
        window: 8,
        seed: 5,
        fault: spec_for(scenario),
        deadline_us: 2_500.0,
        trace: true,
        // RPC-style tight retransmission budget: a partitioned endpoint
        // exhausts it and engages park+probe instead of backing off for
        // longer than any task deadline.
        ucp_max_retries: Some(3),
        ..LoadCfg::default()
    };
    let r = run_load(&cfg);
    assert_eq!(
        r.tasks_failed, 0,
        "svc_load abandoned tasks under `{scenario}`"
    );
    let attr = Attribution::from_events(r.trace_events.iter());
    let recovery = RecoveryCounts {
        retry: r.ucp_retry,
        parked: r.ucp_parked,
        healed: r.ucp_healed,
        reroute: r.ucp_reroute,
        host_staged: r.ucp_host_staged,
        giveup: r.ucp_giveup,
        resubmit: r.resubmits,
    };
    Cell {
        scenario,
        workload: "svc_load",
        headline: r.p99_us,
        headline_unit: "us p99",
        attr,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_specs_parse_and_clean_is_none() {
        assert!(spec_for("clean").is_none());
        for s in SCENARIOS.iter().skip(1) {
            assert!(spec_for(s).is_some(), "{s}");
        }
    }

    #[test]
    fn dominant_mechanism_precedence() {
        let mut r = RecoveryCounts::default();
        assert_eq!(r.dominant(), "none");
        r.retry = 100;
        assert_eq!(r.dominant(), "retry");
        r.reroute = 1;
        assert_eq!(r.dominant(), "reroute");
        r.host_staged = 1;
        assert_eq!(r.dominant(), "host-staged fallback");
        r.parked = 1;
        assert_eq!(r.dominant(), "park+probe");
        r.resubmit = 1;
        assert_eq!(r.dominant(), "resubmit");
    }

    #[test]
    fn clean_osu_cell_has_zero_recovery_and_ucx_time() {
        let c = run_cell("clean", "osu_latency", true);
        assert_eq!(c.recovery, RecoveryCounts::default());
        assert_eq!(c.recovery.dominant(), "none");
        assert!(c.headline > 0.0);
        assert!(c.attr.layers.contains_key("UCX"), "{:?}", c.attr.layers);
        // Byte-identical replay: same cell, same serialized bytes.
        assert_eq!(
            c.to_json(),
            run_cell("clean", "osu_latency", true).to_json()
        );
    }

    #[test]
    fn drop5_osu_cell_pays_in_retries() {
        let c = run_cell("drop5", "osu_latency", true);
        assert!(c.recovery.retry > 0, "{:?}", c.recovery);
        assert_eq!(c.recovery.giveup, 0, "{:?}", c.recovery);
        let clean = run_cell("clean", "osu_latency", true);
        assert!(
            c.headline >= clean.headline,
            "5% drop cannot beat clean: {} vs {}",
            c.headline,
            clean.headline
        );
    }

    #[test]
    fn gpufail_osu_cell_falls_back_to_host_staging() {
        let c = run_cell("gpufail", "osu_latency", true);
        assert!(c.recovery.host_staged > 0, "{:?}", c.recovery);
        assert_eq!(c.recovery.giveup, 0, "{:?}", c.recovery);
    }

    #[test]
    fn degrade_osu_cell_reroutes_pipeline_chunks() {
        let c = run_cell("degrade", "osu_latency", true);
        assert!(c.recovery.reroute > 0, "{:?}", c.recovery);
        assert_eq!(c.recovery.dominant(), "reroute");
    }

    #[test]
    fn partition_svc_cell_recovers_below_the_service_layer() {
        let c = run_cell("partition", "svc_load", true);
        assert!(c.recovery.parked > 0, "{:?}", c.recovery);
        assert!(c.recovery.healed > 0, "{:?}", c.recovery);
        assert_eq!(c.recovery.dominant(), "park+probe");
        assert_eq!(c.recovery.giveup, 0, "{:?}", c.recovery);
    }
}
