//! Per-layer time attribution from a structured trace.
//!
//! The paper's Table I decomposes small-message latency into the time spent
//! in each layer of the stack. This module rebuilds that decomposition from
//! a [`TraceSink`] buffer: every span's duration is charged to the layer
//! its event-name prefix belongs to, so a traced run yields the same table
//! for any benchmark without per-benchmark instrumentation.

use std::collections::BTreeMap;

use rucx_compat::json::{JsonObject, ToJson};
use rucx_sim::trace::{TraceEvent, TraceSink};

/// Stack layer an event name is attributed to (by its prefix before the
/// first `.`). Unknown prefixes land in `"Other"` rather than being
/// dropped, so a new event taxonomy shows up in the table instead of
/// silently vanishing from it.
pub fn layer_of(name: &str) -> &'static str {
    let cat = match name.find('.') {
        Some(i) => &name[..i],
        None => name,
    };
    match cat {
        "ucp" => "UCX",
        "fabric" => "Fabric",
        "charm" | "ampi" => "Runtime",
        "charm4py" => "Python",
        _ => "Other",
    }
}

/// Accumulated span time and event count for one layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LayerTotals {
    /// Sum of span durations (ns). Instants contribute 0 here.
    pub busy_ns: u64,
    /// Number of events (spans *and* instants).
    pub events: u64,
}

/// Per-layer time-attribution table built from trace events.
///
/// `BTreeMap` keeps the row order deterministic (alphabetical by layer),
/// which in turn keeps the JSON output byte-stable for identical traces.
#[derive(Debug, Default, Clone)]
pub struct Attribution {
    pub layers: BTreeMap<&'static str, LayerTotals>,
}

impl Attribution {
    /// Charge every event in the iterator to its layer.
    pub fn from_events<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> Self {
        let mut a = Attribution::default();
        for ev in events {
            let t = a.layers.entry(layer_of(ev.name)).or_default();
            t.busy_ns += ev.dur();
            t.events += 1;
        }
        a
    }

    /// Build from a sink's current buffer.
    pub fn from_sink(sink: &TraceSink) -> Self {
        Self::from_events(sink.events())
    }

    /// Total attributed span time across all layers (ns).
    pub fn total_ns(&self) -> u64 {
        self.layers.values().map(|t| t.busy_ns).sum()
    }

    /// Rows for [`crate::print_table`]: layer, busy µs, share of the
    /// attributed total, and event count.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let total = self.total_ns().max(1) as f64;
        self.layers
            .iter()
            .map(|(layer, t)| {
                vec![
                    layer.to_string(),
                    format!("{:.2}", t.busy_ns as f64 / 1_000.0),
                    format!("{:.1}%", 100.0 * t.busy_ns as f64 / total),
                    t.events.to_string(),
                ]
            })
            .collect()
    }
}

impl ToJson for Attribution {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::new(out);
        for (layer, t) in &self.layers {
            o = o.field(layer, &(t.busy_ns, t.events));
        }
        o.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_sim::trace::TraceSink;

    #[test]
    fn prefixes_map_to_layers() {
        assert_eq!(layer_of("ucp.rndv.rts"), "UCX");
        assert_eq!(layer_of("fabric.link.busy"), "Fabric");
        assert_eq!(layer_of("charm.sched.deliver"), "Runtime");
        assert_eq!(layer_of("ampi.unexpected.enqueue"), "Runtime");
        assert_eq!(layer_of("charm4py.call_overhead"), "Python");
        assert_eq!(layer_of("mystery"), "Other");
    }

    #[test]
    fn spans_accumulate_and_instants_count_only() {
        let mut sink = TraceSink::new();
        sink.enable(64);
        sink.span("ucp.eager", 0, 1_000, 0, 1, 64);
        sink.span("ucp.rndv.rts", 2_000, 2_500, 0, 2, 0);
        sink.instant("charm.sched.deliver", 3_000, 0, 3, 0);
        sink.span("charm4py.call_overhead", 0, 6_000, 0, 0, 6_000);
        let a = Attribution::from_sink(&sink);
        assert_eq!(a.layers["UCX"].busy_ns, 1_500);
        assert_eq!(a.layers["UCX"].events, 2);
        assert_eq!(a.layers["Runtime"].busy_ns, 0);
        assert_eq!(a.layers["Runtime"].events, 1);
        assert_eq!(a.layers["Python"].busy_ns, 6_000);
        assert_eq!(a.total_ns(), 7_500);
        // Deterministic row order: alphabetical by layer name.
        let names: Vec<String> = a.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(names, vec!["Python", "Runtime", "UCX"]);
    }

    #[test]
    fn json_is_deterministic() {
        let build = || {
            let mut sink = TraceSink::new();
            sink.enable(16);
            sink.span("ucp.eager", 0, 100, 0, 1, 8);
            sink.span("fabric.link.busy", 0, 50, 1, 1, 8);
            Attribution::from_sink(&sink).to_json()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"UCX\""));
    }
}
