//! Shared harness utilities: table printing, JSON result emission, and
//! environment-based scaling knobs.

use std::fs;
use std::path::PathBuf;

use rucx_compat::json::ToJson;

pub mod attr;
pub mod scenario;

/// Directory benchmark results are written to (JSON, one file per figure).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("RUCX_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // Anchor at the workspace target dir regardless of the bench
            // binary's working directory.
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/rucx-results"
            ))
        });
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a machine-readable copy of a figure's data.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let path = out_dir().join(format!("{name}.json"));
    fs::write(&path, value.to_json()).expect("write results");
    println!("  [results written to {}]", path.display());
}

/// Write an already-serialized document (e.g. a Chrome trace from
/// [`rucx_sim::trace::TraceSink::to_chrome_json`]) under the results dir.
pub fn write_text(name: &str, contents: &str) {
    let path = out_dir().join(name);
    fs::write(&path, contents).expect("write results");
    println!("  [results written to {}]", path.display());
}

/// Path of the perf-trajectory file tracked at the repo root.
fn bench_engine_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.json"
    ))
}

/// Split a flat JSON array of benchmark objects (the only shape
/// `BENCH_engine.json` ever holds — no nesting, no braces in strings)
/// into its object substrings.
fn split_bench_objects(doc: &str) -> Vec<String> {
    let body = doc
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .trim();
    if body.is_empty() {
        return Vec::new();
    }
    body.split("}, {")
        .map(|part| {
            let mut o = part.trim().to_string();
            if !o.starts_with('{') {
                o.insert(0, '{');
            }
            if !o.ends_with('}') {
                o.push('}');
            }
            o
        })
        .collect()
}

/// `"name"` field of one serialized benchmark object.
fn bench_object_name(obj: &str) -> Option<&str> {
    obj.split("\"name\": \"").nth(1)?.split('"').next()
}

/// Merge `results` into `BENCH_engine.json` at the repo root: entries are
/// replaced by name, new names appended, and entries produced by *other*
/// bench targets left untouched — so `engine` and `parallel_scaling` can
/// share one perf-trajectory file without clobbering each other.
pub fn merge_bench_engine(results: &[rucx_compat::timer::BenchResult]) {
    let path = bench_engine_path();
    let mut objects = fs::read_to_string(&path)
        .map(|doc| split_bench_objects(&doc))
        .unwrap_or_default();
    for r in results {
        let fresh = r.to_json();
        match objects
            .iter_mut()
            .find(|o| bench_object_name(o) == Some(r.name.as_str()))
        {
            Some(slot) => *slot = fresh,
            None => objects.push(fresh),
        }
    }
    fs::write(&path, format!("[{}]", objects.join(", "))).expect("write BENCH_engine.json");
    println!("  [results merged into BENCH_engine.json]");
}

/// The chaos knob shared by every driver: `RUCX_FAULT_SPEC` holds a fault
/// specification (see [`rucx_fault::FaultSpec::parse`] for the grammar,
/// e.g. `seed=7,drop=0.01,delay=0.05:20`), parsed once per run into
/// [`rucx_ucp::MachineConfig::fault`]. Unset means a clean machine; an
/// unparseable spec aborts the run rather than silently benchmarking the
/// wrong configuration.
pub fn fault_spec_from_env() -> Option<rucx_fault::FaultSpec> {
    let raw = std::env::var("RUCX_FAULT_SPEC").ok()?;
    match rucx_fault::FaultSpec::parse(&raw) {
        Ok(spec) => {
            // Announce once, not per sweep point.
            static ANNOUNCED: std::sync::Once = std::sync::Once::new();
            ANNOUNCED.call_once(|| println!("  [fault injection active: RUCX_FAULT_SPEC={raw}]"));
            Some(spec)
        }
        Err(e) => panic!("invalid RUCX_FAULT_SPEC {raw:?}: {e}"),
    }
}

/// Largest node count for the Jacobi3D scaling sweeps (paper: 256).
/// Override with `RUCX_MAX_NODES` to trade fidelity for wall-clock time.
pub fn max_nodes() -> usize {
    std::env::var("RUCX_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Weak-scaling node counts: 1, 2, 4, … up to [`max_nodes`].
pub fn weak_nodes() -> Vec<usize> {
    let mut v = vec![];
    let mut n = 1;
    while n <= max_nodes() {
        v.push(n);
        n *= 2;
    }
    v
}

/// Strong-scaling node counts: 8, 16, … up to [`max_nodes`] (paper: 8–256).
pub fn strong_nodes() -> Vec<usize> {
    let mut v = vec![];
    let mut n = 8;
    while n <= max_nodes() {
        v.push(n);
        n *= 2;
    }
    if v.is_empty() {
        v.push(max_nodes().max(1));
    }
    v
}

/// Pretty-print one table: a header row plus formatted data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

/// Format a byte size like the OSU tables (1K, 4M, …).
pub fn fmt_size(s: u64) -> String {
    if s >= 1 << 20 {
        format!("{}M", s >> 20)
    } else if s >= 1 << 10 {
        format!("{}K", s >> 10)
    } else {
        format!("{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(1), "1");
        assert_eq!(fmt_size(512), "512");
        assert_eq!(fmt_size(1024), "1K");
        assert_eq!(fmt_size(4 << 20), "4M");
    }

    #[test]
    fn node_sweeps_are_powers_of_two() {
        for n in weak_nodes() {
            assert!(n.is_power_of_two());
        }
        for n in strong_nodes() {
            assert!(n >= 8 || strong_nodes().len() == 1);
        }
    }
}
