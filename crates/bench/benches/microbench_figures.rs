//! Regenerates Figures 10–13 and Table I of the paper: OSU-adapted latency
//! and bandwidth microbenchmarks for Charm++, AMPI (+OpenMPI reference),
//! and Charm4py, host-staging (-H) vs GPU-direct (-D), intra- and
//! inter-node.
//!
//! Run with `cargo bench --bench microbench_figures`.

use rucx_bench::{fault_spec_from_env, fmt_size, print_table, write_json};
use rucx_osu::{bandwidth, latency, ratio, ratio_range, Mode, Model, OsuConfig, Placement, Series};

struct FigureData {
    /// (model, H-series, D-series), in subfigure order.
    panels: Vec<(Model, Series, Series)>,
}

fn collect(
    cfg: &OsuConfig,
    metric: fn(&OsuConfig, Model, Mode, Placement) -> Series,
    place: Placement,
) -> FigureData {
    let models = [Model::Charm, Model::Ampi, Model::Ompi, Model::Charm4py];
    let panels = models
        .iter()
        .map(|&m| {
            (
                m,
                metric(cfg, m, Mode::HostStaging, place),
                metric(cfg, m, Mode::Device, place),
            )
        })
        .collect();
    FigureData { panels }
}

fn print_figure(name: &str, title: &str, data: &FigureData, unit: &str) {
    let mut header: Vec<String> = vec!["size".into()];
    for (m, _, _) in &data.panels {
        header.push(format!("{}-H", m.label()));
        header.push(format!("{}-D", m.label()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let sizes: Vec<u64> = data.panels[0].1.points.iter().map(|(s, _)| *s).collect();
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&s| {
            let mut row = vec![fmt_size(s)];
            for (_, h, d) in &data.panels {
                row.push(format!("{:.2}", h.at(s).unwrap()));
                row.push(format!("{:.2}", d.at(s).unwrap()));
            }
            row
        })
        .collect();
    print_table(&format!("{title} ({unit})"), &header_refs, &rows);
    let json: Vec<&Series> = data.panels.iter().flat_map(|(_, h, d)| [h, d]).collect();
    write_json(name, &json);
}

fn main() {
    let mut cfg = OsuConfig::default();
    cfg.machine.fault = fault_spec_from_env();
    println!(
        "rucx microbenchmark figures (sizes 1B-4MB, {} points)",
        cfg.sizes.len()
    );

    let fig10 = collect(&cfg, latency, Placement::IntraNode);
    print_figure(
        "fig10_latency_intra",
        "Figure 10: intra-node one-way latency",
        &fig10,
        "us",
    );

    let fig11 = collect(&cfg, latency, Placement::InterNode);
    print_figure(
        "fig11_latency_inter",
        "Figure 11: inter-node one-way latency",
        &fig11,
        "us",
    );

    let fig12 = collect(&cfg, bandwidth, Placement::IntraNode);
    print_figure(
        "fig12_bandwidth_intra",
        "Figure 12: intra-node bandwidth",
        &fig12,
        "MB/s",
    );

    let fig13 = collect(&cfg, bandwidth, Placement::InterNode);
    print_figure(
        "fig13_bandwidth_inter",
        "Figure 13: inter-node bandwidth",
        &fig13,
        "MB/s",
    );

    // ---- Table I ------------------------------------------------------
    // Latency improvement = H/D per size (min-max range), plus the eager
    // row (representative small message on the eager path).
    let eager_size = 512u64;
    let mut rows = Vec::new();
    for (metric_name, intra, inter, invert) in [
        ("Latency", &fig10, &fig11, false),
        ("Bandwidth", &fig12, &fig13, true),
    ] {
        for (i, place_data) in [intra, inter].iter().enumerate() {
            let place = if i == 0 { "intra-node" } else { "inter-node" };
            for (m, h, d) in &place_data.panels {
                if *m == Model::Ompi {
                    continue; // Table I covers the three Charm-family models.
                }
                let r = if invert { ratio(d, h) } else { ratio(h, d) };
                let (lo, hi) = ratio_range(&r);
                let eager = r
                    .iter()
                    .find(|(s, _)| *s == eager_size)
                    .map(|(_, v)| *v)
                    .unwrap_or(f64::NAN);
                rows.push(vec![
                    metric_name.to_string(),
                    place.to_string(),
                    m.label().to_string(),
                    format!("{lo:.1}x - {hi:.1}x"),
                    format!("{eager:.1}x"),
                ]);
            }
        }
    }
    print_table(
        "Table I: improvement with GPU-aware communication",
        &["metric", "placement", "model", "range", "eager(512B)"],
        &rows,
    );
    write_json("table1_improvements", &rows);
}
