//! Full-size Jacobi3D scaling curves on the sharded conservative engine:
//! the 256-node weak and strong sweeps (paper Figures 14–16 shapes) for
//! all four models, in wall-clock minutes instead of hours.
//!
//! Run with `cargo bench --bench parallel_scaling`. Knobs:
//! `RUCX_MAX_NODES` caps the sweep (256 like the paper by default),
//! `RUCX_SHARDS` sets the worker-thread count (default 8; the engine
//! clamps it to the node count per sweep point), `RUCX_BENCH_ITERS` /
//! `RUCX_BENCH_WARMUP` control the timed shards=1 vs shards=N pair that
//! lands in `BENCH_engine.json`.

use rucx_bench::{
    max_nodes, merge_bench_engine, print_table, strong_nodes, weak_nodes, write_json,
};
use rucx_compat::timer::Runner;
use rucx_jacobi::{run_sharded, JacobiConfig, JacobiModel, JacobiResult, Mode};

fn shard_count() -> usize {
    std::env::var("RUCX_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(8)
}

type SweepRow = (usize, JacobiResult, JacobiResult); // (nodes, H, D)

fn sweep(
    model: JacobiModel,
    nodes: &[usize],
    make: fn(usize, Mode) -> JacobiConfig,
    shards: usize,
) -> Vec<SweepRow> {
    nodes
        .iter()
        .map(|&n| {
            let h = run_sharded(model, &make(n, Mode::HostStaging), shards);
            let d = run_sharded(model, &make(n, Mode::Device), shards);
            eprintln!(
                "  {} {n} nodes: H overall {:.2}ms comm {:.2}ms | D overall {:.2}ms comm {:.2}ms",
                model.label(),
                h.overall_ms,
                h.comm_ms,
                d.overall_ms,
                d.comm_ms
            );
            (n, h, d)
        })
        .collect()
}

fn print_sweep(name: &str, title: &str, rows: &[SweepRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, h, d)| {
            vec![
                n.to_string(),
                format!("{:.2}", h.overall_ms),
                format!("{:.2}", d.overall_ms),
                format!("{:.2}", h.comm_ms),
                format!("{:.2}", d.comm_ms),
                format!("{:.1}x", h.comm_ms / d.comm_ms),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "nodes",
            "overall-H",
            "overall-D",
            "comm-H",
            "comm-D",
            "comm speedup",
        ],
        &table,
    );
    let json: Vec<(usize, f64, f64, f64, f64)> = rows
        .iter()
        .map(|(n, h, d)| (*n, h.overall_ms, d.overall_ms, h.comm_ms, d.comm_ms))
        .collect();
    write_json(name, &json);
}

fn main() {
    let shards = shard_count();
    let weak = weak_nodes();
    let strong = strong_nodes();
    println!(
        "rucx sharded Jacobi3D scaling: weak {weak:?}, strong {strong:?}, {shards} shards \
         (RUCX_MAX_NODES / RUCX_SHARDS to adjust)"
    );

    for (model, tag) in [
        (JacobiModel::Charm, "charm"),
        (JacobiModel::Ampi, "ampi"),
        (JacobiModel::Ompi, "openmpi"),
        (JacobiModel::Charm4py, "charm4py"),
    ] {
        let w = sweep(model, &weak, JacobiConfig::weak, shards);
        print_sweep(
            &format!("sharded_weak_{tag}"),
            &format!("{} sharded weak scaling (ms/iter)", model.label()),
            &w,
        );
        let s = sweep(model, &strong, JacobiConfig::strong, shards);
        print_sweep(
            &format!("sharded_strong_{tag}"),
            &format!("{} sharded strong scaling (ms/iter)", model.label()),
            &s,
        );
    }

    // Wall-clock scaling of the engine itself: the largest weak point,
    // sequential (shards=1, the oracle-equivalent path) vs sharded. Lands
    // in BENCH_engine.json alongside the dispatch/resume trajectory.
    let top = max_nodes().max(1);
    let cfg = JacobiConfig::weak(top, Mode::Device);
    let mut r = Runner::from_env();
    r.bench("jacobi_sharded_weak_s1", || {
        run_sharded(JacobiModel::Charm, &cfg, 1);
    });
    r.bench("jacobi_sharded_weak_sN", || {
        run_sharded(JacobiModel::Charm, &cfg, shards);
    });
    merge_bench_engine(r.results());
}
