//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **GDRCopy detection** (§IV-B1: "the detection of the GDRCopy library
//!    by UCX is essential to achieve low latencies with small messages") —
//!    small-message device latency with GDRCopy on vs off.
//! 2. **Rendezvous pipeline vs direct GPUDirect-RDMA** for large inter-node
//!    device transfers, including the pipeline chunk-size sweep.
//! 3. **AMPI overhead attribution** (§IV-B1: ~8 µs outside UCX) — AMPI vs
//!    OpenMPI small-message latency gap.
//! 4. **Device eager threshold** — where the eager→rendezvous crossover
//!    lands.
//!
//! Run with `cargo bench --bench ablations`.

use rucx_bench::{fmt_size, print_table, write_json};
use rucx_osu::{bandwidth, latency, Mode, Model, OsuConfig, Placement};

fn main() {
    // `RUCX_ABLATION=<substring>` runs a single ablation (CI smoke runs
    // gate on `autotune` without paying for the full figure set).
    let filter = std::env::var("RUCX_ABLATION").unwrap_or_default();
    let want = |name: &str| filter.is_empty() || name.contains(filter.as_str());
    if want("gdrcopy") {
        gdrcopy_ablation();
    }
    if want("pipeline") {
        pipeline_ablation();
    }
    if want("ampi") {
        ampi_overhead();
    }
    if want("eager") {
        eager_threshold_ablation();
    }
    if want("overdecomposition") {
        overdecomposition_ablation();
    }
    if want("active_messages") {
        active_message_ablation();
    }
    if want("autotune") {
        autotune_ablation();
    }
}

/// The protocol engine's acceptance figure: static thresholds vs the
/// online autotuner vs striped multi-path rendezvous, intra-node device
/// latency. Asserts the two bars the engine must clear — autotuning never
/// loses to the static table at any size, and striping beats the single
/// NVLink path for 16 MiB transfers.
fn autotune_ablation() {
    let sizes: Vec<u64> = vec![4 << 10, 8 << 10, 64 << 10, 1 << 20, 16 << 20];
    let run = |autotune: bool, multipath: bool| {
        let mut cfg = OsuConfig {
            sizes: sizes.clone(),
            ..OsuConfig::default()
        };
        cfg.machine.ucp.autotune = autotune;
        cfg.machine.ucp.multipath = multipath;
        latency(&cfg, Model::Ompi, Mode::Device, Placement::IntraNode)
    };
    let stat = run(false, false);
    let tuned = run(true, false);
    let striped = run(false, true);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &s in &sizes {
        let (a, b, c) = (
            stat.at(s).unwrap(),
            tuned.at(s).unwrap(),
            striped.at(s).unwrap(),
        );
        assert!(
            b <= a + 0.01,
            "autotune regressed at {}: {b:.2} vs {a:.2} us",
            fmt_size(s)
        );
        rows.push(vec![
            fmt_size(s),
            format!("{a:.2}"),
            format!("{b:.2}"),
            format!("{c:.2}"),
        ]);
        json.push((s, a, b, c));
    }
    let (a16, c16) = (stat.at(16 << 20).unwrap(), striped.at(16 << 20).unwrap());
    assert!(
        c16 < a16,
        "striping must beat single-path NVLink at 16 MiB: {c16:.1} vs {a16:.1} us"
    );
    print_table(
        "Ablation: protocol engine (intra-node OpenMPI-D latency, us)",
        &["size", "static", "autotuned", "multi-path"],
        &rows,
    );
    write_json("ablation_autotune", &json);
}

/// §VI: "GPU support in the active messages API of UCX ... could better fit
/// the message-driven execution model". One AM carrying envelope (header) +
/// GPU payload vs the current two-message flow (tagged GPU data + separate
/// metadata message, receive posted after metadata dispatch).
fn active_message_ablation() {
    use rucx_fabric::Topology;
    use rucx_gpu::DeviceId;
    use rucx_sim::time::{as_us, us};
    use rucx_ucp::{
        am_register, am_send_nb, build_sim, rndv_fetch, AmPayload, Completion, FetchDst,
        MachineConfig, RecvCompletion, SendBuf,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let mut rows = Vec::new();
    for size_exp in [12u32, 16, 20, 22] {
        let size = 1u64 << size_exp;
        let run = |am: bool| -> u64 {
            let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
            let src = sim
                .world_mut()
                .gpu
                .pool
                .alloc_device(DeviceId(0), size, false)
                .unwrap();
            let dst = sim
                .world_mut()
                .gpu
                .pool
                .alloc_device(DeviceId(1), size, false)
                .unwrap();
            let done_at = Arc::new(AtomicU64::new(0));
            let done2 = done_at.clone();
            if am {
                sim.scheduler().schedule_at(0, move |w, s| {
                    am_register(
                        w,
                        s,
                        1,
                        1,
                        Box::new(move |w, s, msg| match msg.payload {
                            AmPayload::Rndv { rts_id, size } => {
                                let d3 = done2.clone();
                                let _ = rndv_fetch(
                                    w,
                                    s,
                                    1,
                                    1,
                                    rts_id,
                                    FetchDst::Mem(dst.slice(0, size)),
                                    RecvCompletion::Callback(Box::new(move |_, s, _| {
                                        d3.store(s.now(), Ordering::SeqCst);
                                    })),
                                );
                            }
                            AmPayload::Eager { size, .. } => {
                                done2.store(
                                    s.now() + w.ucp.config.gdrcopy_cost(size),
                                    Ordering::SeqCst,
                                );
                            }
                            AmPayload::None => unreachable!(),
                        }),
                    );
                    am_send_nb(
                        w,
                        s,
                        0,
                        1,
                        1,
                        vec![0; 64],
                        Some(SendBuf::Mem(src)),
                        Completion::None,
                    );
                });
            } else {
                sim.scheduler().schedule_at(0, move |w, s| {
                    rucx_ucp::tag_send_nb(
                        w,
                        s,
                        0,
                        1,
                        SendBuf::Mem(src),
                        0x2000_0000_0000_0001,
                        Completion::None,
                    );
                    rucx_ucp::tag_send_nb(
                        w,
                        s,
                        0,
                        1,
                        SendBuf::bytes(vec![0; 64]),
                        0x1000_0000_0000_0000,
                        Completion::None,
                    );
                });
                let d3 = done2.clone();
                sim.spawn("pe1", 0, move |ctx| {
                    let n = ctx.with_world_ref(|w, _| w.ucp.worker(1).notify);
                    loop {
                        let (popped, seen) = ctx.with_world(move |w, s| {
                            (
                                rucx_ucp::probe_pop(w, 1, 0x1000_0000_0000_0000, 0xF << 60)
                                    .is_some(),
                                s.notify_epoch(n),
                            )
                        });
                        if popped {
                            break;
                        }
                        ctx.wait_notify(n, seen);
                    }
                    ctx.advance(us(1.2));
                    let d4 = d3.clone();
                    ctx.with_world(move |w, s| {
                        rucx_ucp::tag_recv_nb(
                            w,
                            s,
                            1,
                            dst,
                            0x2000_0000_0000_0001,
                            u64::MAX,
                            RecvCompletion::Callback(Box::new(move |_, s, _| {
                                d4.store(s.now(), Ordering::SeqCst);
                            })),
                        );
                    });
                });
            }
            sim.run();
            done_at.load(Ordering::SeqCst)
        };
        let t_tagged = run(false);
        let t_am = run(true);
        rows.push(vec![
            fmt_size(size),
            format!("{:.2}", as_us(t_tagged)),
            format!("{:.2}", as_us(t_am)),
            format!("{:.2}", as_us(t_tagged.saturating_sub(t_am))),
        ]);
    }
    print_table(
        "Ablation: active-message flow vs two-message tagged flow (us to data-complete)",
        &["size", "tagged (2 msgs)", "AM (1 msg)", "saved"],
        &rows,
    );
    write_json("ablation_active_messages", &rows);
}

/// The paper's stated future work (§VI, their ref [23]): overdecomposition
/// for computation-communication overlap. With `overdecomp` chares per PE,
/// the message-driven scheduler can keep one chare's kernel on the GPU
/// while another's halos are in flight — at the cost of more cut surface
/// and more per-message overhead.
fn overdecomposition_ablation() {
    use rucx_jacobi::{run, JacobiConfig, JacobiModel};
    let mut rows = Vec::new();
    for (label, make) in [
        (
            "weak 4 nodes",
            JacobiConfig::weak as fn(usize, rucx_jacobi::Mode) -> JacobiConfig,
        ),
        ("strong 32 nodes", JacobiConfig::strong),
    ] {
        let nodes = if label.starts_with("weak") { 4 } else { 32 };
        for odf in [1u32, 2, 4, 8] {
            let mut cfg = make(nodes, rucx_jacobi::Mode::Device);
            cfg.iters = 4;
            cfg.warmup = 1;
            cfg.overdecomp = odf;
            let r = run(JacobiModel::Charm, &cfg);
            rows.push(vec![
                label.to_string(),
                odf.to_string(),
                format!("{:.2}", r.overall_ms),
                format!("{:.2}", r.comm_ms),
            ]);
        }
    }
    print_table(
        "Ablation: overdecomposition (Charm++ Jacobi3D, GPU-direct; ms/iter)",
        &[
            "config",
            "chares/PE",
            "overall",
            "comm (incl. overlapped wait)",
        ],
        &rows,
    );
    write_json("ablation_overdecomposition", &rows);
}

fn gdrcopy_ablation() {
    let sizes: Vec<u64> = (0..=13).map(|i| 1u64 << i).collect(); // 1B..8KB
    let on = OsuConfig {
        sizes: sizes.clone(),
        ..OsuConfig::default()
    };
    let mut off = on.clone();
    off.machine.ucp.gdrcopy_enabled = false;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for place in [Placement::IntraNode, Placement::InterNode] {
        let with = latency(&on, Model::Ompi, Mode::Device, place);
        let without = latency(&off, Model::Ompi, Mode::Device, place);
        for &s in &sizes {
            let (a, b) = (with.at(s).unwrap(), without.at(s).unwrap());
            rows.push(vec![
                place.label().to_string(),
                fmt_size(s),
                format!("{a:.2}"),
                format!("{b:.2}"),
                format!("{:.1}x", b / a),
            ]);
            json.push((place.label(), s, a, b));
        }
    }
    print_table(
        "Ablation: GDRCopy detection (OpenMPI-D small-message latency, us)",
        &["placement", "size", "GDRCopy on", "GDRCopy off", "penalty"],
        &rows,
    );
    write_json("ablation_gdrcopy", &json);
}

fn pipeline_ablation() {
    let sizes: Vec<u64> = (17..=22).map(|i| 1u64 << i).collect(); // 128KB..4MB
    let mut rows = Vec::new();
    let mut json = Vec::new();

    // Pipelined host staging (the path UCX takes on Summit) vs direct
    // GPUDirect-RDMA for the whole message.
    for (label, direct, chunk) in [
        ("pipeline 256K", false, 256 * 1024),
        ("pipeline 512K", false, 512 * 1024),
        ("pipeline 1M", false, 1024 * 1024),
        ("pipeline 2M", false, 2048 * 1024),
        ("direct GDR", true, 512 * 1024),
    ] {
        let mut cfg = OsuConfig {
            sizes: sizes.clone(),
            ..OsuConfig::default()
        };
        cfg.machine.ucp.direct_gdr_rndv = direct;
        cfg.machine.ucp.pipeline_chunk = chunk;
        let bw = bandwidth(&cfg, Model::Ompi, Mode::Device, Placement::InterNode);
        let lat = latency(&cfg, Model::Ompi, Mode::Device, Placement::InterNode);
        for &s in &sizes {
            rows.push(vec![
                label.to_string(),
                fmt_size(s),
                format!("{:.0}", bw.at(s).unwrap()),
                format!("{:.1}", lat.at(s).unwrap()),
            ]);
            json.push((label, s, bw.at(s).unwrap(), lat.at(s).unwrap()));
        }
    }
    print_table(
        "Ablation: inter-node device rendezvous strategy",
        &["strategy", "size", "bandwidth MB/s", "latency us"],
        &rows,
    );
    write_json("ablation_pipeline", &json);
}

fn ampi_overhead() {
    let cfg = OsuConfig {
        sizes: vec![1, 8, 64, 512, 2048],
        ..OsuConfig::default()
    };
    let ampi = latency(&cfg, Model::Ampi, Mode::Device, Placement::IntraNode);
    let ompi = latency(&cfg, Model::Ompi, Mode::Device, Placement::IntraNode);
    let charm = latency(&cfg, Model::Charm, Mode::Device, Placement::IntraNode);
    let rows: Vec<Vec<String>> = cfg
        .sizes
        .iter()
        .map(|&s| {
            let (a, o, c) = (
                ampi.at(s).unwrap(),
                ompi.at(s).unwrap(),
                charm.at(s).unwrap(),
            );
            vec![
                fmt_size(s),
                format!("{o:.2}"),
                format!("{c:.2}"),
                format!("{a:.2}"),
                format!("{:.2}", a - o),
            ]
        })
        .collect();
    print_table(
        "Ablation: AMPI overhead above UCX (paper: ~8us; latency us)",
        &["size", "OpenMPI-D", "Charm++-D", "AMPI-D", "AMPI - OpenMPI"],
        &rows,
    );
    write_json("ablation_ampi_overhead", &rows);
}

fn eager_threshold_ablation() {
    let sizes: Vec<u64> = (0..=16).map(|i| 1u64 << i).collect(); // 1B..64KB
    let mut rows = Vec::new();
    for thresh in [0u64, 1024, 4096, 16384, 65536] {
        let mut cfg = OsuConfig {
            sizes: sizes.clone(),
            ..OsuConfig::default()
        };
        cfg.machine.ucp.eager_thresh_device = thresh;
        let lat = latency(&cfg, Model::Ompi, Mode::Device, Placement::IntraNode);
        for &s in [8u64, 1024, 4096, 16384, 65536].iter() {
            rows.push(vec![
                fmt_size(thresh),
                fmt_size(s),
                format!("{:.2}", lat.at(s).unwrap()),
            ]);
        }
    }
    print_table(
        "Ablation: device eager threshold (intra-node OpenMPI-D latency, us)",
        &["eager_thresh", "size", "latency"],
        &rows,
    );
}
