//! Cost of *having* the fault-injection and reliability machinery when it is
//! not in use — the property that lets chaos infrastructure ship enabled in
//! every build. Two claims are checked, with generous CI headroom:
//!
//! 1. The engine's resume hot path is unregressed: a resume hop through a
//!    fault-capable `Machine` still lands in the tens of nanoseconds
//!    (~70 ns median on an idle machine; asserted < 2 µs so a loaded CI
//!    box never flakes but a re-introduced context switch or allocation
//!    still fails loudly).
//! 2. The send path with no spec loaded costs exactly one predicted branch
//!    (`faults.enabled()`): a clean run takes the early exit everywhere —
//!    zero reliability envelopes, zero retransmission state, zero fault
//!    metrics — and its virtual-time result is byte-identical across runs.
//!
//! Run with `cargo bench --bench fault_overhead`. `RUCX_BENCH_ITERS` /
//! `RUCX_BENCH_WARMUP` control iteration counts.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use rucx_compat::timer::Runner;
use rucx_fabric::Topology;
use rucx_fault::FaultSpec;
use rucx_ucp::{blocking, build_sim, MachineConfig, SendBuf, MASK_FULL};

/// Resume-hop samples through a full fault-capable machine world (the
/// engine bench measures a bare `Simulation<()>`; this one carries the
/// whole `Machine` with its `FaultState`, so any fat added to the world
/// struct's hot path shows up here).
fn bench_resume_hop_nofault(r: &mut Runner) {
    let hops = (r.iters() as usize) * 100;
    let warmup = (r.warmup() as usize) * 100;
    let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(hops)));
    let sink = out.clone();
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    sim.spawn("hopper", 0, move |ctx| {
        for _ in 0..warmup {
            ctx.advance(1);
        }
        let mut samples = Vec::with_capacity(hops);
        for _ in 0..hops {
            let t0 = Instant::now();
            ctx.advance(1);
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        *sink.lock().unwrap() = samples;
    });
    sim.run();
    let samples = std::mem::take(&mut *out.lock().unwrap());
    r.record_samples("resume_hop_nofault", samples);
}

/// One inter-node eager roundtrip per sample. Returns the virtual end time
/// and the reliability/fault counters that must stay zero on a clean run.
fn send_run(fault: Option<FaultSpec>, rounds: u32) -> (u64, u64, u64, u64) {
    let mut cfg = MachineConfig::default();
    cfg.fault = fault;
    let mut sim = build_sim(Topology::summit(2), cfg);
    let a = sim.world_mut().gpu.pool.alloc_host(0, 4096, true, true);
    let b = sim.world_mut().gpu.pool.alloc_host(1, 4096, true, true);
    sim.spawn("s", 0, move |ctx| {
        for i in 0..rounds as u64 {
            blocking::send(ctx, 0, 6, SendBuf::Mem(a), i);
        }
    });
    sim.spawn("r", 6, move |ctx| {
        for i in 0..rounds as u64 {
            blocking::recv(ctx, 6, b, i, MASK_FULL);
        }
    });
    sim.run();
    let end = sim.scheduler().now();
    let m = sim.world();
    (
        end,
        m.ucp.counters.get("ucp.retry"),
        m.faults.injected(),
        m.ucp.counters.get("ucp.dup_drop"),
    )
}

fn main() {
    let mut r = Runner::from_env();

    bench_resume_hop_nofault(&mut r);

    // Wall-clock per 16-message eager burst, clean machine vs loaded
    // all-zero spec (protocol armed, nothing injected).
    r.bench("send_burst_clean", || {
        send_run(None, 16);
    });
    r.bench("send_burst_spec_loaded", || {
        send_run(Some(FaultSpec::default()), 16);
    });

    // Claim 2: with no spec loaded the send path must have taken the
    // single-branch early exit — no retries, no duplicate suppression, no
    // injections — and the virtual-time result is a pure function of the
    // configuration.
    let (end_a, retries, injected, dups) = send_run(None, 16);
    let (end_b, ..) = send_run(None, 16);
    assert_eq!(end_a, end_b, "clean run must be deterministic");
    assert_eq!(
        retries, 0,
        "clean run must not arm the reliability protocol"
    );
    assert_eq!(injected, 0, "clean run must not inject faults");
    assert_eq!(dups, 0, "clean run must not track sequence numbers");

    // An armed-but-zero spec also injects nothing (it only pays protocol
    // overhead), and is deterministic too.
    let (end_c, _, injected_c, _) = send_run(Some(FaultSpec::default()), 16);
    let (end_d, ..) = send_run(Some(FaultSpec::default()), 16);
    assert_eq!(end_c, end_d, "armed run must be deterministic");
    assert_eq!(injected_c, 0, "all-zero spec must not inject");

    // Claim 1: resume hot path unregressed (~70 ns median when idle).
    let hop = r
        .results()
        .iter()
        .find(|b| b.name == "resume_hop_nofault")
        .expect("resume_hop_nofault recorded");
    println!(
        "  resume_hop_nofault median {} ns (p99 {} ns)",
        hop.median_ns, hop.p99_ns
    );
    assert!(
        hop.median_ns < 2_000,
        "resume hop regressed: median {} ns (expect ~70 ns, bound 2000 ns)",
        hop.median_ns
    );

    rucx_bench::write_json("fault_overhead", r.results());
    println!("  fault overhead checks passed");
}
