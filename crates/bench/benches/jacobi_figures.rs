//! Regenerates Figures 14–16: Jacobi3D weak and strong scaling (overall and
//! communication time per iteration) for Charm++, AMPI (+OpenMPI
//! reference), and Charm4py.
//!
//! Run with `cargo bench --bench jacobi_figures`. Node sweep goes to 256
//! like the paper; set `RUCX_MAX_NODES` (e.g. 32) for a faster pass.

use rucx_bench::{print_table, strong_nodes, weak_nodes, write_json};
use rucx_jacobi::{run, JacobiConfig, JacobiModel, JacobiResult, Mode};

type SweepRow = (usize, JacobiResult, JacobiResult); // (nodes, H, D)

fn sweep(
    model: JacobiModel,
    nodes: &[usize],
    make: fn(usize, Mode) -> JacobiConfig,
) -> Vec<SweepRow> {
    nodes
        .iter()
        .map(|&n| {
            let mut ch = make(n, Mode::HostStaging);
            let mut cd = make(n, Mode::Device);
            ch.iters = 4;
            ch.warmup = 1;
            cd.iters = 4;
            cd.warmup = 1;
            ch.machine.fault = rucx_bench::fault_spec_from_env();
            cd.machine.fault = rucx_bench::fault_spec_from_env();
            let h = run(model, &ch);
            let d = run(model, &cd);
            eprintln!(
                "  {} {n} nodes: H overall {:.2}ms comm {:.2}ms | D overall {:.2}ms comm {:.2}ms",
                model.label(),
                h.overall_ms,
                h.comm_ms,
                d.overall_ms,
                d.comm_ms
            );
            (n, h, d)
        })
        .collect()
}

fn print_sweep(name: &str, title: &str, rows: &[SweepRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, h, d)| {
            vec![
                n.to_string(),
                format!("{:.2}", h.overall_ms),
                format!("{:.2}", d.overall_ms),
                format!("{:.2}", h.comm_ms),
                format!("{:.2}", d.comm_ms),
                format!("{:.1}x", h.comm_ms / d.comm_ms),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "nodes",
            "overall-H",
            "overall-D",
            "comm-H",
            "comm-D",
            "comm speedup",
        ],
        &table,
    );
    let json: Vec<(usize, f64, f64, f64, f64)> = rows
        .iter()
        .map(|(n, h, d)| (*n, h.overall_ms, d.overall_ms, h.comm_ms, d.comm_ms))
        .collect();
    write_json(name, &json);
}

fn main() {
    let weak = weak_nodes();
    let strong = strong_nodes();
    println!(
        "rucx Jacobi3D figures: weak {:?}, strong {:?} (RUCX_MAX_NODES to shrink)",
        weak, strong
    );

    // Figure 14: Charm++.
    let w = sweep(JacobiModel::Charm, &weak, JacobiConfig::weak);
    print_sweep(
        "fig14_weak_charm",
        "Figure 14ab: Charm++ Jacobi3D weak scaling (ms/iter)",
        &w,
    );
    let s = sweep(JacobiModel::Charm, &strong, JacobiConfig::strong);
    print_sweep(
        "fig14_strong_charm",
        "Figure 14cd: Charm++ Jacobi3D strong scaling (ms/iter)",
        &s,
    );

    // Figure 15: AMPI with OpenMPI reference.
    let w = sweep(JacobiModel::Ampi, &weak, JacobiConfig::weak);
    print_sweep(
        "fig15_weak_ampi",
        "Figure 15ab: AMPI Jacobi3D weak scaling (ms/iter)",
        &w,
    );
    let wr = sweep(JacobiModel::Ompi, &weak, JacobiConfig::weak);
    print_sweep(
        "fig15_weak_openmpi",
        "Figure 15ab (reference): OpenMPI weak scaling (ms/iter)",
        &wr,
    );
    let s = sweep(JacobiModel::Ampi, &strong, JacobiConfig::strong);
    print_sweep(
        "fig15_strong_ampi",
        "Figure 15cd: AMPI Jacobi3D strong scaling (ms/iter)",
        &s,
    );
    let sr = sweep(JacobiModel::Ompi, &strong, JacobiConfig::strong);
    print_sweep(
        "fig15_strong_openmpi",
        "Figure 15cd (reference): OpenMPI strong scaling (ms/iter)",
        &sr,
    );

    // Figure 16: Charm4py.
    let w = sweep(JacobiModel::Charm4py, &weak, JacobiConfig::weak);
    print_sweep(
        "fig16_weak_charm4py",
        "Figure 16ab: Charm4py Jacobi3D weak scaling (ms/iter)",
        &w,
    );
    let s = sweep(JacobiModel::Charm4py, &strong, JacobiConfig::strong);
    print_sweep(
        "fig16_strong_charm4py",
        "Figure 16cd: Charm4py Jacobi3D strong scaling (ms/iter)",
        &s,
    );
}
