//! Criterion microbenchmarks of the simulation substrate itself: event
//! throughput, process context switching, tag-matching under deep queues,
//! and end-to-end simulated message cost. These measure the *simulator*
//! (wall-clock), not the modeled system (virtual time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rucx_fabric::Topology;
use rucx_sim::Simulation;
use rucx_ucp::{
    blocking, build_sim, probe_pop, tag_send_nb, Completion, MachineConfig, SendBuf, MASK_FULL,
};

fn bench_event_throughput(c: &mut Criterion) {
    c.bench_function("sim_dispatch_100k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(0u64);
                for i in 0..100_000u64 {
                    sim.scheduler().schedule_at(i, |w, _| *w += 1);
                }
                sim
            },
            |mut sim| {
                sim.run();
                assert_eq!(*sim.world(), 100_000);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_process_switching(c: &mut Criterion) {
    c.bench_function("sim_process_10k_switches", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(());
            sim.spawn("p", 0, |ctx| {
                for _ in 0..10_000 {
                    ctx.advance(1);
                }
            });
            sim.run();
        })
    });
}

fn bench_ucp_message(c: &mut Criterion) {
    c.bench_function("ucp_host_eager_roundtrip", |b| {
        b.iter(|| {
            let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
            let a = sim.world_mut().gpu.pool.alloc_host(0, 64, true, true);
            let bb = sim.world_mut().gpu.pool.alloc_host(0, 64, true, true);
            sim.spawn("s", 0, move |ctx| {
                blocking::send(ctx, 0, 1, SendBuf::Mem(a), 7);
            });
            sim.spawn("r", 0, move |ctx| {
                blocking::recv(ctx, 1, bb, 7, MASK_FULL);
            });
            sim.run();
        })
    });
}

fn bench_tag_matching_depth(c: &mut Criterion) {
    c.bench_function("ucp_unexpected_queue_1k_probe", |b| {
        b.iter_batched(
            || {
                let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
                sim.scheduler().schedule_at(0, |w, s| {
                    for i in 0..1_000u64 {
                        tag_send_nb(
                            w,
                            s,
                            0,
                            1,
                            SendBuf::bytes(vec![0u8; 8]),
                            i,
                            Completion::None,
                        );
                    }
                });
                sim.run();
                sim
            },
            |mut sim| {
                // Probe the deepest entry (worst-case scan).
                let found = rucx_ucp::machine::with_parts(&mut sim, |w, _| {
                    probe_pop(w, 1, 999, MASK_FULL).is_some()
                });
                assert!(found);
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_process_switching,
    bench_ucp_message,
    bench_tag_matching_depth
);
criterion_main!(benches);
