//! Microbenchmarks of the simulation substrate itself: event throughput,
//! process context switching, tag-matching under deep queues, and
//! end-to-end simulated message cost. These measure the *simulator*
//! (wall-clock), not the modeled system (virtual time), so they run on the
//! in-repo [`rucx_compat::timer`] runner rather than an external harness.
//!
//! Run with `cargo bench --bench engine`. `RUCX_BENCH_ITERS` /
//! `RUCX_BENCH_WARMUP` control iteration counts.

use rucx_compat::timer::Runner;
use rucx_fabric::Topology;
use rucx_sim::{Backend, SimConfig, Simulation};
use rucx_ucp::{
    blocking, build_sim, probe_pop, tag_send_nb, Completion, MachineConfig, SendBuf, MASK_FULL,
};

fn bench_event_throughput(r: &mut Runner) {
    r.bench_with_setup(
        "sim_dispatch_100k_events",
        || {
            let mut sim = Simulation::new(0u64);
            for i in 0..100_000u64 {
                sim.scheduler().schedule_at(i, |w, _| *w += 1);
            }
            sim
        },
        |mut sim| {
            sim.run();
            assert_eq!(*sim.world(), 100_000);
        },
    );
}

/// The same 100k-event drain on the `BinaryHeap` determinism oracle —
/// the before/after pair the calendar queue's speedup claim rests on
/// (`sim_dispatch_100k_events` runs on the default calendar backend).
fn bench_event_throughput_oracle(r: &mut Runner) {
    r.bench_with_setup(
        "sim_dispatch_100k_events_oracle",
        || {
            let cfg = SimConfig {
                backend: Backend::Oracle,
                ..Default::default()
            };
            let mut sim = Simulation::with_config(0u64, cfg);
            for i in 0..100_000u64 {
                sim.scheduler().schedule_at(i, |w, _| *w += 1);
            }
            sim
        },
        |mut sim| {
            sim.run();
            assert_eq!(*sim.world(), 100_000);
        },
    );
}

fn bench_process_switching(r: &mut Runner) {
    r.bench("sim_process_10k_switches", || {
        let mut sim = Simulation::new(());
        sim.spawn("p", 0, |ctx| {
            for _ in 0..10_000 {
                ctx.advance(1);
            }
        });
        sim.run();
    });
}

/// Per-hop cost of one resume round trip (`advance(1)` = register the
/// wakeup, dispatch inline until it comes back). With the baton design the
/// common case never leaves the thread — no context switch, no allocation.
/// Samples are taken *inside* the process body around each hop, so the
/// statistics are per round trip rather than per 10k-batch — this is the
/// number the resume hot path is judged on (median/p99 in
/// BENCH_engine.json).
fn bench_resume_hop(r: &mut Runner) {
    use std::sync::{Arc, Mutex};
    use std::time::Instant;
    // Scale hop count off the runner's iteration knob so smoke mode
    // (RUCX_BENCH_ITERS=1) stays fast while default runs get a dense sample.
    let hops = (r.iters() as usize) * 100;
    let warmup = (r.warmup() as usize) * 100;
    let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(hops)));
    let sink = out.clone();
    let mut sim = Simulation::new(());
    sim.spawn("hopper", 0, move |ctx| {
        for _ in 0..warmup {
            ctx.advance(1);
        }
        let mut samples = Vec::with_capacity(hops);
        for _ in 0..hops {
            let t0 = Instant::now();
            ctx.advance(1);
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        *sink.lock().unwrap() = samples;
    });
    sim.run();
    let samples = std::mem::take(&mut *out.lock().unwrap());
    r.record_samples("resume_hop", samples);
}

/// Per-call cost of the read path (`with_world_ref`): a direct call against
/// the core the process thread already holds — no boxing, no messaging.
fn bench_resume_world_read(r: &mut Runner) {
    use std::sync::{Arc, Mutex};
    use std::time::Instant;
    let calls = (r.iters() as usize) * 100;
    let warmup = (r.warmup() as usize) * 100;
    let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(calls)));
    let sink = out.clone();
    let mut sim = Simulation::new(7u64);
    sim.spawn("reader", 0, move |ctx| {
        for _ in 0..warmup {
            ctx.with_world_ref(|w, _| *w);
        }
        let mut samples = Vec::with_capacity(calls);
        for _ in 0..calls {
            let t0 = Instant::now();
            let v = ctx.with_world_ref(|w, _| *w);
            samples.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(v, 7);
        }
        *sink.lock().unwrap() = samples;
    });
    sim.run();
    let samples = std::mem::take(&mut *out.lock().unwrap());
    r.record_samples("resume_world_read", samples);
}

fn bench_ucp_message(r: &mut Runner) {
    r.bench("ucp_host_eager_roundtrip", || {
        let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
        let a = sim.world_mut().gpu.pool.alloc_host(0, 64, true, true);
        let bb = sim.world_mut().gpu.pool.alloc_host(0, 64, true, true);
        sim.spawn("s", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 7);
        });
        sim.spawn("r", 0, move |ctx| {
            blocking::recv(ctx, 1, bb, 7, MASK_FULL);
        });
        sim.run();
    });
}

fn bench_tag_matching_depth(r: &mut Runner) {
    r.bench_with_setup(
        "ucp_unexpected_queue_1k_probe",
        || {
            let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
            sim.scheduler().schedule_at(0, |w, s| {
                for i in 0..1_000u64 {
                    tag_send_nb(
                        w,
                        s,
                        0,
                        1,
                        SendBuf::bytes(vec![0u8; 8]),
                        i,
                        Completion::None,
                    );
                }
            });
            sim.run();
            sim
        },
        |mut sim| {
            // Probe the deepest entry (worst-case scan).
            let found = rucx_ucp::machine::with_parts(&mut sim, |w, _| {
                probe_pop(w, 1, 999, MASK_FULL).is_some()
            });
            assert!(found);
        },
    );
}

fn main() {
    let mut r = Runner::from_env();
    bench_event_throughput(&mut r);
    bench_event_throughput_oracle(&mut r);
    bench_process_switching(&mut r);
    bench_resume_hop(&mut r);
    bench_resume_world_read(&mut r);
    bench_ucp_message(&mut r);
    bench_tag_matching_depth(&mut r);
    rucx_bench::write_json("engine_microbench", r.results());
    // The perf-trajectory file tracked at the repo root: one JSON array of
    // {name, iters, min/mean/median/p99/max ns} per benchmark, shared
    // with the parallel_scaling target (merge, don't clobber).
    rucx_bench::merge_bench_engine(r.results());
}
