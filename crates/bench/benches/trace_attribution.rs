//! Traced inter-node ping-pongs with per-layer time attribution.
//!
//! Runs the same device ping-pong under AMPI and Charm4py with the
//! structured trace sink enabled, then rebuilds the paper's "where does the
//! time go" decomposition (Table I's narrative: UCX vs runtime vs Python
//! overhead) from the recorded spans. Also emits each run's buffer in
//! Chrome trace-event format, so any row of the table can be opened in
//! `chrome://tracing` / Perfetto and inspected event by event.
//!
//! Run with `cargo bench --bench trace_attribution`.

use rucx_bench::attr::Attribution;
use rucx_bench::{fmt_size, print_table, write_json, write_text};
use rucx_fabric::Topology;
use rucx_gpu::DeviceId;
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MSim, MachineConfig};

const ITERS: u64 = 10;
/// Ranks 0 and 6 sit on different nodes of a 2-node Summit-like cluster
/// (6 GPUs per node), so the traced path crosses the fabric.
const PEER: usize = 6;

fn traced_sim() -> MSim {
    let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
    sim.scheduler().trace.enable(0);
    sim
}

fn device_pair(sim: &mut MSim, size: u64) -> (rucx_gpu::MemRef, rucx_gpu::MemRef) {
    let a = sim
        .world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(0), size, false)
        .unwrap();
    let b = sim
        .world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(PEER as u32), size, false)
        .unwrap();
    (a, b)
}

/// Chrome trace JSON + attribution for one traced run.
fn harvest(sim: &mut MSim) -> (String, Attribution) {
    let sink = &sim.scheduler().trace;
    (sink.to_chrome_json(), Attribution::from_sink(sink))
}

fn ampi_pingpong(size: u64) -> (String, Attribution) {
    let mut sim = traced_sim();
    let (a, b) = device_pair(&mut sim, size);
    rucx_ampi::launch(&mut sim, move |mpi, ctx| match mpi.rank() {
        0 => {
            for i in 0..ITERS {
                mpi.send(ctx, a, PEER, i as i32);
                mpi.recv(ctx, a, PEER as i32, i as i32);
            }
        }
        r if r == PEER => {
            for i in 0..ITERS {
                mpi.recv(ctx, b, 0, i as i32);
                mpi.send(ctx, b, 0, i as i32);
            }
        }
        _ => {}
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    harvest(&mut sim)
}

fn charm4py_pingpong(size: u64) -> (String, Attribution) {
    let mut sim = traced_sim();
    let (a, b) = device_pair(&mut sim, size);
    rucx_charm4py::launch(&mut sim, move |py, ctx| {
        if py.rank() == 0 {
            let ch = py.channel(PEER);
            for _ in 0..ITERS {
                py.send(ctx, ch, a);
                py.recv(ctx, ch, a);
            }
        } else if py.rank() == PEER {
            let ch = py.channel(0);
            for _ in 0..ITERS {
                py.recv(ctx, ch, b);
                py.send(ctx, ch, b);
            }
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    harvest(&mut sim)
}

fn main() {
    let sizes = [4u64 << 10, 1 << 20];
    let runs: [(&str, fn(u64) -> (String, Attribution)); 2] =
        [("ampi", ampi_pingpong), ("charm4py", charm4py_pingpong)];

    let mut json_rows: Vec<(String, Attribution)> = Vec::new();
    for (model, run) in runs {
        for &size in &sizes {
            let (chrome, attr) = run(size);
            let label = format!("{model}_{}", fmt_size(size));
            print_table(
                &format!(
                    "Per-layer attribution: {model} device ping-pong, {}",
                    fmt_size(size)
                ),
                &["layer", "busy_us", "share", "events"],
                &attr.rows(),
            );
            write_text(&format!("trace_{label}.json"), &chrome);
            json_rows.push((label, attr));
        }
    }
    let json_refs: Vec<(&str, &Attribution)> =
        json_rows.iter().map(|(l, a)| (l.as_str(), a)).collect();
    write_json("trace_attribution", &json_refs);
}
