//! Reference vectors for the PRNG stack, locking the exact output streams
//! down so a refactor can never silently change every simulation result.
//!
//! Vectors were generated with an independent implementation of the
//! published algorithms (Blackman & Vigna's xoshiro256++, Steele et al.'s
//! splitmix64); the seed-0 splitmix64 head matches the canonical test
//! vector `0xe220a8397b1dcdaf`.

use rucx_compat::rng::{splitmix64, Rng};

fn splitmix_head(seed: u64, n: usize) -> Vec<u64> {
    let mut s = seed;
    (0..n).map(|_| splitmix64(&mut s)).collect()
}

fn xoshiro_head(seed: u64, n: usize) -> Vec<u64> {
    let mut r = Rng::new(seed);
    (0..n).map(|_| r.next_u64()).collect()
}

#[test]
fn splitmix64_reference_vectors() {
    assert_eq!(
        splitmix_head(0, 4),
        [
            0xe220a8397b1dcdaf,
            0x6e789e6aa1b965f4,
            0x06c45d188009454f,
            0xf88bb8a8724c81ec,
        ]
    );
    assert_eq!(
        splitmix_head(42, 4),
        [
            0xbdd732262feb6e95,
            0x28efe333b266f103,
            0x47526757130f9f52,
            0x581ce1ff0e4ae394,
        ]
    );
    assert_eq!(
        splitmix_head(0xDEADBEEF, 4),
        [
            0x4adfb90f68c9eb9b,
            0xde586a3141a10922,
            0x021fbc2f8e1cfc1d,
            0x7466ce737be16790,
        ]
    );
}

#[test]
fn xoshiro256pp_reference_vectors() {
    assert_eq!(
        xoshiro_head(0, 8),
        [
            0x53175d61490b23df,
            0x61da6f3dc380d507,
            0x5c0fdf91ec9a7bfc,
            0x02eebf8c3bbe5e1a,
            0x7eca04ebaf4a5eea,
            0x0543c37757f08d9a,
            0xdb7490c75ab5026e,
            0xd87343e6464bc959,
        ]
    );
    assert_eq!(
        xoshiro_head(42, 8),
        [
            0xd0764d4f4476689f,
            0x519e4174576f3791,
            0xfbe07cfb0c24ed8c,
            0xb37d9f600cd835b8,
            0xcb231c3874846a73,
            0x968d9f004e50de7d,
            0x201718ff221a3556,
            0x9ae94e070ed8cb46,
        ]
    );
    assert_eq!(
        xoshiro_head(0xDEADBEEF, 8),
        [
            0x0c520eb8fea98ede,
            0x2b74a6338b80e0e2,
            0xbe238770c3795322,
            0x5f235f98a244ea97,
            0xe004f0cc1514d858,
            0x436a209963ff9223,
            0x8302e81b9685b6d4,
            0xa7eec00b77ec3019,
        ]
    );
}

#[test]
fn from_state_matches_seeded_construction() {
    // Seeding is exactly "4 splitmix64 outputs become the state".
    let mut s = 42u64;
    let state = [
        splitmix64(&mut s),
        splitmix64(&mut s),
        splitmix64(&mut s),
        splitmix64(&mut s),
    ];
    let mut a = Rng::from_state(state);
    let mut b = Rng::new(42);
    for _ in 0..64 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn sim_rng_rides_the_same_stream() {
    // The simulation's SimRng is a veneer over this generator; pin that
    // relationship here too so the whole stack shares one stream per seed.
    let mut sim = rucx_sim::SimRng::new(0);
    assert_eq!(sim.next_u64(), 0x53175d61490b23df);
}
