//! Behavioral tests of the compat layer itself: property-harness
//! failing-seed reproduction end-to-end, and Mutex/Condvar wake semantics
//! under real thread contention.
//!
//! The env-dependent reproduction tests live in this integration binary
//! (not lib unit tests) and serialize on a local mutex, because
//! `RUCX_PROP_SEED` / `RUCX_PROP_CASES` are process-global.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rucx_compat::check::{check_with, Gen};
use rucx_compat::sync::{Condvar, Mutex};

/// Serializes the tests that mutate `RUCX_PROP_*` environment variables.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        panic!("non-string panic payload")
    }
}

fn extract_seed(msg: &str) -> u64 {
    let tag = "RUCX_PROP_SEED=0x";
    let at = msg.find(tag).expect("failure message carries a seed") + tag.len();
    let hex: String = msg[at..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    u64::from_str_radix(&hex, 16).unwrap()
}

fn failing_property(g: &mut Gen) {
    // Fails for roughly 1 in 4 case seeds — guaranteed to both pass some
    // cases and fail within 64.
    let v = g.u64(0..4);
    assert!(v != 0, "v was zero");
}

#[test]
fn failing_seed_reproduces_exactly() {
    let _env = ENV_LOCK.lock();

    // 1. Run until the harness reports a failing case seed.
    let err = std::panic::catch_unwind(|| {
        check_with("repro_prop", 64, failing_property);
    })
    .expect_err("property must fail within 64 cases");
    let msg = panic_text(err.as_ref());
    assert!(msg.contains("property 'repro_prop' failed"), "{msg}");
    let seed = extract_seed(&msg);

    // 2. Replaying that exact seed fails again (same draw, same assert)...
    std::env::set_var("RUCX_PROP_SEED", format!("{seed:#x}"));
    let err2 = std::panic::catch_unwind(|| {
        check_with("repro_prop", 64, failing_property);
    })
    .expect_err("replay of a failing seed must fail");
    let msg2 = panic_text(err2.as_ref());
    assert!(msg2.contains("v was zero"), "{msg2}");

    // 3. ...and deterministically draws the same value: a property that
    // records its draw sees the identical case.
    let first = Arc::new(Mutex::new(None::<u64>));
    for _ in 0..2 {
        let first = first.clone();
        let _ = std::panic::catch_unwind(move || {
            check_with("repro_prop", 64, move |g| {
                let v = g.u64(0..4);
                let mut slot = first.lock();
                match *slot {
                    None => *slot = Some(v),
                    Some(prev) => assert_eq!(prev, v, "replay drew a different value"),
                }
            });
        });
    }
    assert!(first.lock().is_some());

    std::env::remove_var("RUCX_PROP_SEED");
}

#[test]
fn case_count_env_is_honored() {
    let _env = ENV_LOCK.lock();
    std::env::set_var("RUCX_PROP_CASES", "7");
    let runs = AtomicU32::new(0);
    check_with("count_prop", 64, |_| {
        runs.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(runs.load(Ordering::Relaxed), 7);
    std::env::remove_var("RUCX_PROP_CASES");
}

#[test]
fn condvar_wakes_waiter_on_notify_one() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let pair2 = pair.clone();
    let waiter = std::thread::spawn(move || {
        let (lock, cv) = &*pair2;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        *ready
    });
    // Give the waiter time to actually park (a lost wakeup would hang the
    // join below, failing the test by timeout rather than silently).
    std::thread::sleep(Duration::from_millis(20));
    {
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
    }
    assert!(waiter.join().unwrap());
}

#[test]
fn condvar_notify_all_wakes_every_waiter() {
    const WAITERS: usize = 8;
    let state = Arc::new((Mutex::new(0u32), Condvar::new()));
    let woken = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (0..WAITERS)
        .map(|_| {
            let state = state.clone();
            let woken = woken.clone();
            std::thread::spawn(move || {
                let (lock, cv) = &*state;
                let mut gen = lock.lock();
                let seen = *gen;
                while *gen == seen {
                    cv.wait(&mut gen);
                }
                woken.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    {
        let (lock, cv) = &*state;
        *lock.lock() += 1;
        cv.notify_all();
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::SeqCst), WAITERS as u32);
}

#[test]
fn condvar_wait_while_rechecks_predicate() {
    let state = Arc::new((Mutex::new(3u32), Condvar::new()));
    let state2 = state.clone();
    let h = std::thread::spawn(move || {
        let (lock, cv) = &*state2;
        let mut remaining = lock.lock();
        cv.wait_while(&mut remaining, |r| *r > 0);
        *remaining
    });
    let (lock, cv) = &*state;
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(5));
        *lock.lock() -= 1;
        cv.notify_one();
    }
    assert_eq!(h.join().unwrap(), 0);
}

#[test]
fn mutex_contention_counts_exactly() {
    let m = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let m = m.clone();
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*m.lock(), 8000);
}
