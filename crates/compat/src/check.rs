//! Minimal deterministic property-testing harness.
//!
//! A property is a closure over a [`Gen`] that panics (usually via
//! `assert!`) when the property is violated. [`check`] runs it for a
//! configurable number of seeded cases; every case's randomness derives
//! from `(suite seed, case index)` via splitmix64, so the whole suite is
//! reproducible and any single failing case can be replayed in isolation.
//!
//! No shrinking: on failure the harness reports the exact case seed and a
//! one-line reproduction recipe instead.
//!
//! Environment knobs:
//! - `RUCX_PROP_CASES=N` — cases per property (default [`DEFAULT_CASES`]).
//! - `RUCX_PROP_SEED=0x<hex>` — run exactly one case, with this case seed
//!   (the value printed by a failure). Case count is ignored.

use crate::rng::{splitmix64, Rng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Per-case value source: a seeded [`Rng`] plus generation conveniences
/// shaped like the property-test combinators the suites were written
/// against.
pub struct Gen {
    rng: Rng,
    /// The case seed; printed on failure for exact reproduction.
    pub case_seed: u64,
}

impl Gen {
    fn new(case_seed: u64) -> Self {
        Gen {
            rng: Rng::new(case_seed),
            case_seed,
        }
    }

    /// The underlying RNG, for draws the helpers below don't cover.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    pub fn u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    pub fn u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.rng.gen_range(range.start as u64..range.end as u64) as u32
    }

    pub fn any_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    pub fn u16(&mut self, range: std::ops::Range<u16>) -> u16 {
        self.rng.gen_range(range.start as u64..range.end as u64) as u16
    }

    pub fn any_u16(&mut self) -> u16 {
        self.rng.next_u64() as u16
    }

    pub fn u8(&mut self, range: std::ops::Range<u8>) -> u8 {
        self.rng.gen_range(range.start as u64..range.end as u64) as u8
    }

    pub fn any_u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    pub fn any_i64(&mut self) -> i64 {
        self.rng.next_u64() as i64
    }

    pub fn usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.rng.gen_range_usize(range)
    }

    pub fn f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        self.rng.gen_range_f64(range)
    }

    /// Arbitrary f64 from arbitrary bits: exercises NaN, infinities, and
    /// subnormals, like `any::<f64>()` did.
    pub fn any_f64(&mut self) -> f64 {
        f64::from_bits(self.rng.next_u64())
    }

    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A vector with a length drawn from `len` and elements from `f`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A byte vector with a length drawn from `len`.
    pub fn bytes(&mut self, len: std::ops::Range<usize>) -> Vec<u8> {
        let n = self.usize(len);
        let mut v = vec![0u8; n];
        self.rng.fill(&mut v);
        v
    }

    /// Uniformly choose one element of a non-empty slice.
    pub fn pick<T: Clone>(&mut self, items: &[T]) -> T {
        self.rng.choose(items).clone()
    }
}

/// How many cases to run, honoring `RUCX_PROP_CASES`.
fn case_count(default_cases: u32) -> u32 {
    std::env::var("RUCX_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases)
}

/// Parse `RUCX_PROP_SEED` (accepts `0x<hex>`, plain hex, or decimal).
/// A set-but-unparseable value panics rather than silently running the full
/// suite: a typo'd replay must not masquerade as a passing reproduction.
fn replay_seed() -> Option<u64> {
    let raw = std::env::var("RUCX_PROP_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse()
            .ok()
            .or_else(|| u64::from_str_radix(raw, 16).ok())
    };
    match parsed {
        Some(seed) => Some(seed),
        None => {
            panic!("RUCX_PROP_SEED={raw:?} is not a valid seed (expected 0x<hex>, hex, or decimal)")
        }
    }
}

/// Deterministic suite seed from the property name, so distinct properties
/// explore distinct streams but every run of the same binary explores the
/// same cases (FNV-1a).
fn suite_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run `property` for the default number of seeded cases ([`DEFAULT_CASES`],
/// or `RUCX_PROP_CASES`). Panics with the failing case seed on the first
/// violated case.
pub fn check(name: &str, property: impl FnMut(&mut Gen)) {
    check_with(name, DEFAULT_CASES, property)
}

/// [`check`] with an explicit default case count (still overridable via
/// `RUCX_PROP_CASES`, and bypassed entirely by `RUCX_PROP_SEED`).
pub fn check_with(name: &str, default_cases: u32, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = replay_seed() {
        eprintln!("[check] {name}: replaying single case seed {seed:#x} (RUCX_PROP_SEED)");
        let mut g = Gen::new(seed);
        property(&mut g);
        return;
    }
    let cases = case_count(default_cases);
    let mut sm = suite_seed(name);
    for case in 0..cases {
        let case_seed = splitmix64(&mut sm);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Gen::new(case_seed);
            property(&mut g);
        }));
        if let Err(payload) = result {
            let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            panic!(
                "property '{name}' failed at case {case}/{cases} (case seed {case_seed:#x}):\n  \
                 {msg}\n  reproduce with: RUCX_PROP_SEED={case_seed:#x} cargo test -q {name}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check_with("always_true", 16, |g| {
            let _ = g.any_u64();
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 16);
    }

    #[test]
    fn case_seeds_are_deterministic_per_name() {
        let mut a = Vec::new();
        check_with("seed_stream", 8, |g| a.push(g.case_seed));
        let mut b = Vec::new();
        check_with("seed_stream", 8, |g| b.push(g.case_seed));
        assert_eq!(a, b);
        let mut c = Vec::new();
        check_with("other_name", 8, |g| c.push(g.case_seed));
        assert_ne!(a, c);
    }

    #[test]
    fn failure_reports_case_seed() {
        let err = std::panic::catch_unwind(|| {
            check_with("fails_on_big", 64, |g| {
                let v = g.u64(0..100);
                assert!(v < 10, "v={v}");
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("fails_on_big"), "{msg}");
        assert!(msg.contains("RUCX_PROP_SEED=0x"), "{msg}");
    }

    #[test]
    fn gen_vec_and_bytes_respect_ranges() {
        check_with("gen_ranges", 32, |g| {
            let v = g.vec(2..5, |g| g.u32(10..20));
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| (10..20).contains(&x)));
            let b = g.bytes(0..9);
            assert!(b.len() < 9);
        });
    }
}
