//! Criterion-free micro-benchmark runner.
//!
//! Measures the *simulator's* wall-clock cost (event dispatch, context
//! switches, tag matching) — never simulated results, which stay purely
//! virtual-time and deterministic. Each benchmark runs `warmup` unmeasured
//! iterations then `iters` timed ones, and reports min / mean / median /
//! p99 / max per iteration, plus a JSON file per run via [`crate::json`].
//!
//! Environment knobs:
//! - `RUCX_BENCH_ITERS=N` — timed iterations per benchmark (default 30).
//! - `RUCX_BENCH_WARMUP=N` — warmup iterations (default 3).

use std::time::Instant;

use crate::json::{JsonObject, ToJson};

/// Summary statistics for one benchmark, nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters: u32,
    pub min_ns: u64,
    pub mean_ns: u64,
    pub median_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl ToJson for BenchResult {
    fn write_json(&self, out: &mut String) {
        JsonObject::new(out)
            .field("name", &self.name)
            .field("iters", &(self.iters as u64))
            .field("min_ns", &self.min_ns)
            .field("mean_ns", &self.mean_ns)
            .field("median_ns", &self.median_ns)
            .field("p99_ns", &self.p99_ns)
            .field("max_ns", &self.max_ns)
            .finish();
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Inclusive-rank percentile of a sorted sample (nearest-rank method).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Collects benchmarks; prints a line per benchmark as it completes.
pub struct Runner {
    warmup: u32,
    iters: u32,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Construct with iteration counts from the environment (see module
    /// docs for the knobs).
    pub fn from_env() -> Self {
        let get = |key: &str, default: u32| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Runner {
            warmup: get("RUCX_BENCH_WARMUP", 3),
            iters: get("RUCX_BENCH_ITERS", 30).max(1),
            results: Vec::new(),
        }
    }

    /// Explicit iteration counts (tests; callers with known costs).
    pub fn new(warmup: u32, iters: u32) -> Self {
        Runner {
            warmup,
            iters: iters.max(1),
            results: Vec::new(),
        }
    }

    /// Benchmark `f` called once per iteration.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        self.bench_with_setup(name, || (), |()| f());
    }

    /// Benchmark with unmeasured per-iteration setup (the `iter_batched`
    /// shape): `setup` builds the input, only `run` is timed.
    pub fn bench_with_setup<S>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S),
    ) {
        for _ in 0..self.warmup {
            run(setup());
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            run(input);
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        self.record_samples(name, samples);
    }

    /// Record externally collected per-operation samples (nanoseconds) as
    /// one benchmark result. For measurements the runner cannot drive
    /// itself — e.g. per-hop timings taken *inside* a simulated process
    /// while the simulation runs — so they still get the same statistics,
    /// printing, and JSON emission as runner-driven benchmarks.
    pub fn record_samples(&mut self, name: &str, mut samples: Vec<u64>) {
        assert!(!samples.is_empty(), "no samples for {name}");
        samples.sort_unstable();
        let result = BenchResult {
            name: name.to_string(),
            iters: samples.len() as u32,
            min_ns: samples[0],
            mean_ns: (samples.iter().sum::<u64>() / samples.len() as u64),
            median_ns: percentile(&samples, 50.0),
            p99_ns: percentile(&samples, 99.0),
            max_ns: *samples.last().unwrap(),
        };
        println!(
            "{:<40} median {:>12}  p99 {:>12}  (min {}, max {}, {} iters)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p99_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.max_ns),
            result.iters,
        );
        self.results.push(result);
    }

    /// Timed iteration count this runner is configured for (benchmarks that
    /// collect their own samples scale their inner loops off this).
    pub fn iters(&self) -> u32 {
        self.iters
    }

    /// Warmup iteration count.
    pub fn warmup(&self) -> u32 {
        self.warmup
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialize every result as a JSON array.
    pub fn to_json(&self) -> String {
        self.results.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_warmup_plus_iters() {
        let calls = std::cell::Cell::new(0u32);
        let mut r = Runner::new(2, 5);
        r.bench("count_calls", || calls.set(calls.get() + 1));
        assert_eq!(calls.get(), 7);
        let res = &r.results()[0];
        assert_eq!(res.iters, 5);
        assert!(res.min_ns <= res.median_ns);
        assert!(res.median_ns <= res.p99_ns);
        assert!(res.p99_ns <= res.max_ns);
    }

    #[test]
    fn setup_not_timed_shape_works() {
        let mut r = Runner::new(0, 3);
        r.bench_with_setup(
            "sum_vec",
            || vec![1u64; 1000],
            |v| {
                assert_eq!(v.iter().sum::<u64>(), 1000);
            },
        );
        assert_eq!(r.results().len(), 1);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn json_output_contains_fields() {
        let mut r = Runner::new(0, 2);
        r.bench("noop", || {});
        let j = r.to_json();
        assert!(j.contains("\"name\": \"noop\""), "{j}");
        assert!(j.contains("\"median_ns\""), "{j}");
    }
}
