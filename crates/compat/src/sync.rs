//! Poison-free synchronization primitives with the `parking_lot` API shape.
//!
//! `std::sync` locks return `Result`s to surface poisoning; the simulation
//! treats a panicked process as a reportable event, not a reason to wedge
//! every other lock holder, so these wrappers recover the guard from a
//! poisoned lock and hand it back. Call sites write `m.lock()`, not
//! `m.lock().unwrap()`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion, `parking_lot`-shaped: [`Mutex::lock`] returns the
/// guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`Mutex::lock`]. The `Option` is only ever `None`
/// transiently inside [`Condvar::wait`], which must move the underlying
/// std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Reader-writer lock, `parking_lot`-shaped: [`RwLock::read`] /
/// [`RwLock::write`] return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable paired with [`Mutex`]. Unlike `std`, `wait` takes the
/// guard by `&mut` (the `parking_lot` shape), so waiting in a loop does not
/// fight the borrow checker over guard re-binding.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified, then
    /// re-acquire. Spurious wakeups are possible; callers re-check their
    /// predicate (or use [`Condvar::wait_while`]).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until `cond` returns false (re-checked on every wakeup).
    pub fn wait_while<T, F>(&self, guard: &mut MutexGuard<'_, T>, mut cond: F)
    where
        F: FnMut(&mut T) -> bool,
    {
        while cond(&mut *guard) {
            self.wait(guard);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_try_lock() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards, no unwrap.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
