//! # rucx-compat — hermetic, std-only substrate for the whole workspace
//!
//! The repository builds and tests with **zero external registry
//! dependencies** so that `cargo build --release --offline && cargo test -q
//! --offline` succeeds on any checkout, with no network. Everything the
//! crates used to take from `parking_lot`, `crossbeam`, `rand`, `proptest`,
//! `criterion`, `bytes`, and `serde` lives here instead, as small,
//! deterministic, in-repo implementations:
//!
//! - [`sync`] — poison-free [`sync::Mutex`] / [`sync::RwLock`] /
//!   [`sync::Condvar`] wrappers over `std::sync` with the `parking_lot` API
//!   shape (no `.unwrap()` plumbing at call sites).
//! - [`channel`] — unbounded MPSC channels with the `crossbeam::channel`
//!   surface, used wherever messages can queue (pool job handoff, tests).
//! - [`rendezvous`] — a one-slot, spin-then-park handoff cell for strictly
//!   alternating handshakes; the allocation-free primitive under the
//!   simulation's driver ⇄ process hot path.
//! - [`rng`] — splitmix64-seeded xoshiro256++ PRNG with a
//!   `gen_range`/`fill`-style surface; the single source of randomness for
//!   workload synthesis and the property harness.
//! - [`check`] — a minimal property-testing harness: seeded case
//!   generation, configurable case count, failing-seed reporting and exact
//!   reproduction (no shrinking).
//! - [`timer`] — a criterion-free micro-benchmark runner: warmup + N
//!   timed iterations, median/p99 reporting, JSON output.
//! - [`buf`] — `Buf`/`BufMut` byte-order helpers for wire formats.
//! - [`json`] — a [`json::ToJson`] trait plus impls for the result types
//!   benchmarks serialize.
//!
//! Determinism is a design constraint, not an accident: the PRNG is
//! explicitly seeded everywhere, the property harness derives each case
//! from `(suite seed, case index)`, and nothing in this crate consults
//! wall-clock time except [`timer`] (which measures the simulator itself,
//! never simulated results).

pub mod buf;
pub mod channel;
pub mod check;
pub mod json;
pub mod rendezvous;
pub mod rng;
pub mod sync;
pub mod timer;
