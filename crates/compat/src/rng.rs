//! Seedable, deterministic PRNG: splitmix64 seeding + xoshiro256++ core.
//!
//! This is the single random source for the whole workspace — workload
//! synthesis, payload fills, and the property harness all draw from it —
//! so one `u64` seed pins every stochastic choice in a run. Reference
//! vectors for both algorithms are locked down in `crates/compat/tests`.
//!
//! Not cryptographically secure; statistically solid for simulation.

/// The splitmix64 step: advances `*state` and returns the next output.
/// Used to expand a single `u64` seed into the 256-bit xoshiro state (no
/// all-zero state can occur) and to derive per-case seeds in the property
/// harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator (Blackman & Vigna), seeded via splitmix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a seed; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Create from raw 256-bit state (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&x| x != 0), "xoshiro state must be nonzero");
        Rng { s }
    }

    /// Next 64 uniformly random bits (the xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift rejection
    /// method (unbiased). Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.next_below(range.end - range.start)
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.next_below(span) as i64)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        range.start + self.gen_f64() * (range.end - range.start)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fill a byte slice with random data (message payload integrity
    /// checks, fuzz inputs).
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Uniformly choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range_usize(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_fine_and_nonzero() {
        let mut r = Rng::new(0);
        assert!((0..8).map(|_| r.next_u64()).any(|x| x != 0));
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(5..15) as usize - 5] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_i64_spans_negative() {
        let mut r = Rng::new(4);
        for _ in 0..100 {
            let v = r.gen_range_i64(-10..10);
            assert!((-10..10).contains(&v));
        }
    }

    #[test]
    fn fill_handles_partial_chunks() {
        let mut r = Rng::new(11);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Rng::new(13);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts={counts:?}");
        }
    }
}
