//! Minimal JSON emission for benchmark results.
//!
//! The benchmarks only ever *write* JSON (one file per figure, consumed by
//! plotting scripts), so this is an encoder, not a parser: a [`ToJson`]
//! trait with impls for the primitive / tuple / vector shapes the figure
//! data takes, plus a [`JsonObject`] builder for struct-shaped results.
//!
//! Non-finite floats encode as `null` (JSON has no NaN/Infinity), matching
//! what `serde_json` produced for the same data.

/// Types that can serialize themselves as a JSON value.
pub trait ToJson {
    fn write_json(&self, out: &mut String);

    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Escape and quote a string per RFC 8259.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` keeps enough digits to roundtrip the exact value.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: ToJson + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push_str(", "); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}

impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Builder for object-shaped values; used by hand-written [`ToJson`] impls
/// on result structs.
///
/// ```
/// use rucx_compat::json::{JsonObject, ToJson};
/// struct P { x: u64 }
/// impl ToJson for P {
///     fn write_json(&self, out: &mut String) {
///         JsonObject::new(out).field("x", &self.x).finish();
///     }
/// }
/// assert_eq!(P { x: 3 }.to_json(), r#"{"x": 3}"#);
/// ```
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        JsonObject { out, first: true }
    }

    pub fn field<T: ToJson + ?Sized>(mut self, name: &str, value: &T) -> Self {
        if !self.first {
            self.out.push_str(", ");
        }
        self.first = false;
        write_escaped(name, self.out);
        self.out.push_str(": ");
        value.write_json(self.out);
        self
    }

    pub fn finish(self) {
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!(2.5f64.to_json(), "2.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\nd".to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn float_roundtrips_exactly() {
        let v = 0.1f64 + 0.2;
        assert_eq!(v.to_json().parse::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn nested_collections_and_tuples() {
        let rows = vec![
            vec!["a".to_string()],
            vec!["b".to_string(), "c".to_string()],
        ];
        assert_eq!(rows.to_json(), r#"[["a"], ["b", "c"]]"#);
        let t = ("x", 1u64, 1.5f64, 2.0f64);
        assert_eq!(t.to_json(), r#"["x", 1, 1.5, 2.0]"#);
        let five = (1usize, 1.0f64, 2.0f64, 3.0f64, 4.0f64);
        assert_eq!(five.to_json(), "[1, 1.0, 2.0, 3.0, 4.0]");
    }

    #[test]
    fn object_builder() {
        let mut s = String::new();
        JsonObject::new(&mut s)
            .field("label", "Charm++-D")
            .field("points", &vec![(1u64, 2.0f64)])
            .finish();
        assert_eq!(s, r#"{"label": "Charm++-D", "points": [[1, 2.0]]}"#);
    }
}
