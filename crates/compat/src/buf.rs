//! Big-endian byte-order cursors for wire formats (the `bytes::Buf` /
//! `bytes::BufMut` subset the envelope codec uses).
//!
//! `BufMut` is implemented for `Vec<u8>` (append) and `Buf` for `&[u8]`
//! (consume from the front), so existing `put_*` / `get_*` call sites work
//! unchanged. All integers are big-endian on the wire, matching the
//! network byte order the real Charm++/UCX stack uses.

/// Append-side: network-byte-order writers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Consume-side: network-byte-order readers over a shrinking slice.
///
/// The `get_*` methods panic on underrun (like `bytes`); callers guard
/// with [`Buf::remaining`] first, which is what makes `decode` total.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// Split off the first `n` bytes, advancing the cursor.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_bytes(2).try_into().unwrap())
    }
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().unwrap())
    }
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, rest) = self.split_at(n);
        *self = rest;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b: Vec<u8> = Vec::new();
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_i64(-42);
        b.put_f64(2.5);
        b.put_slice(b"xyz");
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.take_bytes(3), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_on_the_wire() {
        let mut b: Vec<u8> = Vec::new();
        b.put_u16(0x0102);
        assert_eq!(b, vec![1, 2]);
    }

    #[test]
    #[should_panic]
    fn underrun_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
