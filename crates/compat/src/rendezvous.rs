//! One-slot rendezvous cell for strictly alternating handshakes.
//!
//! The simulation's process-wakeup path is a pure handoff: at most one
//! message (the execution baton) is ever in flight toward a given
//! receiver, which parks until it arrives. A general MPSC channel (see
//! [`crate::channel`]) pays a `VecDeque` plus queue bookkeeping per hop
//! for capacity it never uses. This cell is the purpose-built alternative:
//! a single `Mutex<Option<T>>` slot, a `Condvar`, and an atomic
//! availability hint that lets the receiver wait adaptively before parking
//! — on an immediate handoff the hop completes without any futex round
//! trip.
//!
//! The pre-park wait strategy depends on the machine: with more than one
//! CPU the receiver spins (`spin_loop`) so the peer's store is caught
//! within nanoseconds; on a uniprocessor spinning only *delays* the peer,
//! so the receiver donates its timeslice (`thread::yield_now`) instead —
//! strictly serial execution means the sender is typically the only other
//! runnable thread, so one yield usually schedules it and the handoff is
//! present on the next check.
//!
//! Contract: **at most one message outstanding per direction**. Sending
//! into an occupied slot is a protocol violation and panics. Disconnect
//! semantics match [`crate::channel`]: dropping the sender makes `recv`
//! return `Err(RecvError)` (so a dropped simulation unwinds parked process
//! threads), dropping the receiver makes `send` fail with the value.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

pub use crate::channel::{RecvError, SendError};
use crate::sync::{Condvar, Mutex};

/// Nothing to take; keep spinning or park.
const HINT_EMPTY: u32 = 0;
/// A value is present *or* the sender is gone: leave the spin loop and
/// resolve under the lock.
const HINT_READY: u32 = 1;

/// Bounded spin budget (multicore) before the receiver parks on the
/// condvar. Sized so an immediate reply (sub-microsecond) is caught while
/// a genuinely idle receiver reaches the condvar in a few microseconds at
/// worst.
const SPIN_LIMIT: u32 = 4096;

/// Bounded yield budget (uniprocessor). Each futile `yield_now` is a
/// syscall, so this stays small: under serial execution the first yield
/// normally schedules the peer, and a receiver with no sender coming (a
/// parked simulated process) reaches the condvar after a handful.
const YIELD_LIMIT: u32 = 8;

/// Whether this machine can run the two sides of a rendezvous truly in
/// parallel (cached once; used to pick the pre-park wait strategy).
fn multicore() -> bool {
    use std::sync::OnceLock;
    static MULTICORE: OnceLock<bool> = OnceLock::new();
    *MULTICORE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false)
    })
}

struct Slot<T> {
    value: Option<T>,
    sender_alive: bool,
    receiver_alive: bool,
    receiver_parked: bool,
}

struct Shared<T> {
    /// Lock-free mirror of "is there anything for the receiver": written
    /// under the slot lock, read by the receiver's spin loop.
    hint: AtomicU32,
    slot: Mutex<Slot<T>>,
    avail: Condvar,
}

/// Sending half of a rendezvous cell.
pub struct RendezvousSender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a rendezvous cell.
pub struct RendezvousReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a rendezvous cell: a one-slot, single-producer single-consumer
/// handoff with spin-then-park receives.
pub fn rendezvous<T>() -> (RendezvousSender<T>, RendezvousReceiver<T>) {
    let shared = Arc::new(Shared {
        hint: AtomicU32::new(HINT_EMPTY),
        slot: Mutex::new(Slot {
            value: None,
            sender_alive: true,
            receiver_alive: true,
            receiver_parked: false,
        }),
        avail: Condvar::new(),
    });
    (
        RendezvousSender {
            shared: shared.clone(),
        },
        RendezvousReceiver { shared },
    )
}

impl<T> RendezvousSender<T> {
    /// Place a value in the slot; never blocks. Errors iff the receiver is
    /// gone. Panics if the slot is already occupied (the caller broke the
    /// one-outstanding-message contract).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = self.shared.slot.lock();
        if !s.receiver_alive {
            return Err(SendError(value));
        }
        assert!(
            s.value.is_none(),
            "rendezvous protocol violation: send into an occupied slot"
        );
        s.value = Some(value);
        self.shared.hint.store(HINT_READY, Ordering::Release);
        let parked = s.receiver_parked;
        drop(s);
        // A spinning receiver sees the hint; only a parked one needs the
        // (comparatively expensive) wakeup.
        if parked {
            self.shared.avail.notify_one();
        }
        Ok(())
    }
}

impl<T> Drop for RendezvousSender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.slot.lock();
        s.sender_alive = false;
        self.shared.hint.store(HINT_READY, Ordering::Release);
        let parked = s.receiver_parked;
        drop(s);
        if parked {
            self.shared.avail.notify_one();
        }
    }
}

impl<T> RendezvousReceiver<T> {
    /// Take the value, waiting adaptively (spin on multicore, yield on a
    /// uniprocessor) and then parking until one arrives or the sender is
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        if self.shared.hint.load(Ordering::Acquire) == HINT_EMPTY {
            if multicore() {
                let mut spins = 0;
                while spins < SPIN_LIMIT && self.shared.hint.load(Ordering::Acquire) == HINT_EMPTY {
                    std::hint::spin_loop();
                    spins += 1;
                }
            } else {
                let mut yields = 0;
                while yields < YIELD_LIMIT && self.shared.hint.load(Ordering::Acquire) == HINT_EMPTY
                {
                    std::thread::yield_now();
                    yields += 1;
                }
            }
        }
        // Correctness lives entirely below; the wait above is only a fast
        // path to reach the lock with the value already present.
        let mut s = self.shared.slot.lock();
        loop {
            if let Some(v) = s.value.take() {
                self.shared.hint.store(HINT_EMPTY, Ordering::Release);
                return Ok(v);
            }
            if !s.sender_alive {
                return Err(RecvError);
            }
            s.receiver_parked = true;
            self.shared.avail.wait(&mut s);
            s.receiver_parked = false;
        }
    }

    /// Non-blocking take.
    pub fn try_recv(&self) -> Option<T> {
        if self.shared.hint.load(Ordering::Acquire) == HINT_EMPTY {
            return None;
        }
        let mut s = self.shared.slot.lock();
        let v = s.value.take();
        if v.is_some() {
            self.shared.hint.store(HINT_EMPTY, Ordering::Release);
        }
        v
    }
}

impl<T> Drop for RendezvousReceiver<T> {
    fn drop(&mut self) {
        let mut s = self.shared.slot.lock();
        s.receiver_alive = false;
        s.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_handoff() {
        let (tx, rx) = rendezvous();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn ping_pong_across_threads() {
        let (req_tx, req_rx) = rendezvous::<u64>();
        let (rep_tx, rep_rx) = rendezvous::<u64>();
        let h = std::thread::spawn(move || {
            for _ in 0..10_000 {
                let v = req_rx.recv().unwrap();
                rep_tx.send(v + 1).unwrap();
            }
        });
        let mut v = 0;
        for _ in 0..10_000 {
            req_tx.send(v).unwrap();
            v = rep_rx.recv().unwrap();
        }
        assert_eq!(v, 10_000);
        h.join().unwrap();
    }

    #[test]
    fn recv_errors_after_sender_dropped() {
        let (tx, rx) = rendezvous::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        // The in-flight value is still delivered, then disconnection.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn parked_receiver_wakes_on_sender_drop() {
        let (tx, rx) = rendezvous::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_dropped() {
        let (tx, rx) = rendezvous::<u8>();
        drop(rx);
        match tx.send(9) {
            Err(SendError(v)) => assert_eq!(v, 9),
            Ok(()) => panic!("send must fail"),
        }
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn double_send_panics() {
        let (tx, _rx) = rendezvous();
        tx.send(1u8).unwrap();
        let _ = tx.send(2u8);
    }

    #[test]
    fn delayed_send_wakes_parked_receiver() {
        let (tx, rx) = rendezvous();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        // Sleep well past any spin budget so the receiver truly parks.
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
