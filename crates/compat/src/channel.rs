//! Unbounded MPSC channels with the `crossbeam::channel` surface.
//!
//! The simulation's rendezvous protocol (driver ⇄ process threads) needs
//! exactly: `unbounded()`, cloneable `Sender`s, blocking `Receiver::recv`,
//! and disconnection errors on both ends so a dropped simulation unwinds
//! parked process threads cleanly. Built on [`crate::sync`] primitives —
//! no OS-specific machinery.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    avail: Condvar,
}

struct Inner<T> {
    buf: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half; cloneable, usable from any thread.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The receiver was dropped; the unsent value is returned.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// All senders were dropped and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why a non-blocking receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            buf: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        avail: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value; never blocks. Errors iff the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.shared.queue.lock();
        if !q.receiver_alive {
            return Err(SendError(value));
        }
        q.buf.push_back(value);
        drop(q);
        self.shared.avail.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut q = self.shared.queue.lock();
        q.senders -= 1;
        let last = q.senders == 0;
        drop(q);
        if last {
            // Wake a blocked receiver so it can observe disconnection.
            self.shared.avail.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Create a new [`Sender`] for this channel.
    ///
    /// Lets a consumer that deliberately holds *no* sender while idle (so
    /// that "every sender dropped" still means disconnection — the idiom
    /// pooled worker threads rely on to shut down when their pool dies)
    /// mint one on demand to hand back out.
    pub fn sender(&self) -> Sender<T> {
        self.shared.queue.lock().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }

    /// Block until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(v) = q.buf.pop_front() {
                return Ok(v);
            }
            if q.senders == 0 {
                return Err(RecvError);
            }
            self.shared.avail.wait(&mut q);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock();
        match q.buf.pop_front() {
            Some(v) => Ok(v),
            None if q.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut q = self.shared.queue.lock();
        q.receiver_alive = false;
        // Senders never block, so nothing to wake; the flag makes their
        // next `send` fail fast.
        q.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv(), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn disconnect_on_all_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn blocked_receiver_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }
}
