//! Remote entry-method invocation + futures — Charm4py's primary
//! programming mechanism (paper §II-E: "chare objects communicate by
//! asynchronously invoking entry methods"; futures back the asynchrony).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rucx_charm4py::launch;
use rucx_fabric::Topology;
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MachineConfig};

#[test]
fn invoke_with_future_returns_result() {
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    launch(&mut sim, move |py, ctx| {
        // Every process registers a "square" method.
        py.register_method(
            1,
            Box::new(|args| {
                let x = u64::from_le_bytes(args.try_into().unwrap());
                Some((x * x).to_le_bytes().to_vec())
            }),
        );
        if py.rank() == 0 {
            let fut = py.invoke_future(ctx, 3, 1, 7u64.to_le_bytes().to_vec());
            let result = py.future_get(ctx, fut).expect("method returns");
            assert_eq!(u64::from_le_bytes(result.try_into().unwrap()), 49);
        }
        // Everyone keeps scheduling until the exchange completes.
        py.barrier(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn fire_and_forget_invocations_mutate_remote_state() {
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = counter.clone();
    launch(&mut sim, move |py, ctx| {
        let c3 = c2.clone();
        py.register_method(
            9,
            Box::new(move |args| {
                c3.fetch_add(args[0] as u64, Ordering::SeqCst);
                None
            }),
        );
        if py.rank() != 2 {
            // Five senders each fire one increment at rank 2.
            py.invoke(ctx, 2, 9, vec![py.rank() as u8 + 1]);
        } else {
            // Rank 2 keeps scheduling until everyone's invocation landed;
            // a barrier is the natural synchronization point.
        }
        py.barrier(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    // ranks 0,1,3,4,5 contribute rank+1 each.
    assert_eq!(counter.load(Ordering::SeqCst), 1 + 2 + 4 + 5 + 6);
}

#[test]
fn many_outstanding_futures_resolve_independently() {
    let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
    launch(&mut sim, move |py, ctx| {
        py.register_method(
            1,
            Box::new(|args| {
                let x = u64::from_le_bytes(args.try_into().unwrap());
                Some((x + 1000).to_le_bytes().to_vec())
            }),
        );
        if py.rank() == 0 {
            // Fan out to every other process, redeem in reverse order.
            let futs: Vec<_> = (1..py.size())
                .map(|t| {
                    (
                        t,
                        py.invoke_future(ctx, t, 1, (t as u64).to_le_bytes().to_vec()),
                    )
                })
                .collect();
            for (t, f) in futs.into_iter().rev() {
                let r = py.future_get(ctx, f).unwrap();
                assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), t as u64 + 1000);
            }
        }
        py.barrier(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}
