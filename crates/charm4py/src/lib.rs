//! # rucx-charm4py — Charm4py-style channels over the Charm++ runtime
//!
//! Reproduces the paper's Charm4py layer (§II-E, §III-D): a Python parallel
//! programming framework whose channel send/receive semantics are
//! implemented with futures and coroutine suspension, while the heavy
//! lifting happens in the C++ (here: Rust) Charm++ runtime reached through
//! a Cython layer. The Python and Cython costs are modeled explicitly as
//! per-call overheads ([`PyParams`]), which is what produces Charm4py's
//! characteristic gap from Charm++/AMPI in the paper's figures (higher
//! small-message latency, bandwidth plateau well under NVLink).
//!
//! GPU-aware path (Fig. 8, `gpu_direct`): buffer address and size go
//! straight through Cython into a `CkDeviceBuffer`, the data moves via the
//! UCX machine layer, and the receive completion fulfills the future that
//! suspended the coroutine. The host-staging path (`not gpu_direct`) is
//! exposed via [`PyProc::cuda_dtoh`]/[`PyProc::cuda_htod`] wrappers that add
//! the Python call overhead on top of the simulated CUDA costs.

pub mod coll;
pub use coll::ReduceOp;

use std::collections::{BTreeMap, HashMap, VecDeque};

use rucx_charm::{marshal, ChareRef, Collection, EpId, Msg, Pe};
use rucx_gpu::{copy_async, stream_sync_trigger, MemRef, StreamId};
use rucx_sim::time::{transfer_time, us, Duration};
use rucx_ucp::{MCtx, MSim, UcpError};

/// Calibration constants for the Python/Cython layers.
#[derive(Debug, Clone)]
pub struct PyParams {
    /// Python-side cost of a `channel.send` call (argument handling,
    /// Cython transition, future bookkeeping).
    pub py_send: Duration,
    /// Python-side cost of a `channel.recv` call until the coroutine
    /// suspends.
    pub py_recv: Duration,
    /// Cost of resuming a suspended coroutine when its future is fulfilled.
    pub py_wake: Duration,
    /// Overhead of one CUDA call made from Python through the Cython layer
    /// (used by the host-staging path of Fig. 8).
    pub py_cuda_call: Duration,
    /// Python/Cython per-byte buffer-handling cost on the GPU-direct data
    /// path (GB/s) — buffer-protocol traversal, future payload handling.
    pub py_buffer_gbps: f64,
    /// Host objects at or below this size are pickled into the message.
    pub inline_max: u64,
    /// Pickle/unpickle bandwidth for host objects.
    pub pickle_gbps: f64,
}

impl Default for PyParams {
    fn default() -> Self {
        PyParams {
            py_send: us(6.0),
            py_recv: us(6.5),
            py_wake: us(3.0),
            py_cuda_call: us(1.8),
            py_buffer_gbps: 150.0,
            inline_max: 4 * 1024,
            pickle_gbps: 12.0,
        }
    }
}

impl PyParams {
    /// Pickling cost for `size` bytes.
    pub fn pickle_cost(&self, size: u64) -> Duration {
        transfer_time(size, self.pickle_gbps)
    }

    /// Per-byte Python-side handling cost of a GPU-direct payload.
    pub fn buffer_cost(&self, size: u64) -> Duration {
        transfer_time(size, self.py_buffer_gbps)
    }
}

/// A channel message as delivered to the receiving chare.
enum ChanPayload {
    Inline { bytes: Option<Vec<u8>>, size: u64 },
    ZeroCopy { ml_tag: u64, size: u64 },
}

/// A remote-invocable method: receives pickled args, returns an optional
/// pickled result (fulfilling the caller's future).
pub type PyMethod = Box<dyn FnMut(&[u8]) -> Option<Vec<u8>>>;

/// A Python-style exception raised by the communication layer (what the
/// real Charm4py would surface as a raised exception in the coroutine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyExceptionRecord {
    /// Python exception class, e.g. `"TimeoutError"`.
    pub exc_type: &'static str,
    /// `str(exc)` — the human-readable failure description.
    pub message: String,
    /// The rank the failed communication addressed, when the error names
    /// one (an endpoint give-up does). Lets channel state tied to a dead
    /// peer be released when the exception surfaces.
    pub peer: Option<usize>,
}

fn py_exception(err: &UcpError) -> PyExceptionRecord {
    let (exc_type, peer) = match err {
        UcpError::EndpointTimeout { dst, .. } => ("TimeoutError", Some(*dst)),
        _ => ("RuntimeError", None),
    };
    PyExceptionRecord {
        exc_type,
        message: err.to_string(),
        peer,
    }
}

/// Per-peer channel delivery state. Charm4py channels are ordered even
/// though the underlying runtime's message delivery is not: each message
/// carries a per-pair sequence number, and arrivals the network reordered
/// are stashed until their turn (the real Channel class does the same
/// buffering with its internal seqnum).
#[derive(Default)]
struct PeerInbox {
    next_seq: u64,
    ready: VecDeque<ChanPayload>,
    stashed: BTreeMap<u64, ChanPayload>,
}

impl PeerInbox {
    fn deliver(&mut self, seq: u64, payload: ChanPayload) {
        if seq == self.next_seq {
            self.next_seq += 1;
            self.ready.push_back(payload);
            while let Some(p) = self.stashed.remove(&self.next_seq) {
                self.next_seq += 1;
                self.ready.push_back(p);
            }
        } else {
            self.stashed.insert(seq, payload);
        }
    }
}

/// The chare behind one Charm4py process: per-peer channel inboxes,
/// registered methods, and fulfilled futures.
struct ChanState {
    inbox: HashMap<u32, PeerInbox>,
    barrier_epoch: u64,
    methods: HashMap<u16, PyMethod>,
    futures: HashMap<u64, Option<Vec<u8>>>,
    /// Communication failures mapped into Python exceptions, awaiting
    /// [`PyProc::take_exception`].
    exceptions: VecDeque<PyExceptionRecord>,
}

/// A channel endpoint (paired with `peer`'s endpoint back to us).
#[derive(Debug, Clone, Copy)]
pub struct Channel {
    pub peer: usize,
}

/// One Charm4py process: owns its PE and exposes the channels API.
pub struct PyProc {
    pub pe: Pe,
    rank: usize,
    nranks: usize,
    col: Collection,
    ep_chan: EpId,
    ep_barrier: EpId,
    ep_invoke: EpId,
    next_future: u64,
    /// Next per-peer channel sequence number on the send side.
    chan_seq: HashMap<usize, u64>,
    pub params: PyParams,
}

thread_local! {
    static PY_IDS: std::cell::Cell<Option<(Collection, EpId)>> =
        const { std::cell::Cell::new(None) };
}

/// A Charm4py future: redeem with [`PyProc::future_get`] (the coroutine
/// suspends until the remote invocation's result arrives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PyFuture(u64);

fn encode_chan(src: u32, seq: u64, payload: &ChanPayload) -> Vec<u8> {
    let mut b = Vec::new();
    marshal::put_u32(&mut b, src);
    marshal::put_u64(&mut b, seq);
    match payload {
        ChanPayload::Inline { bytes, size } => {
            marshal::put_u8(&mut b, 0);
            marshal::put_u64(&mut b, *size);
            match bytes {
                Some(d) => {
                    marshal::put_u8(&mut b, 1);
                    marshal::put_bytes(&mut b, d);
                }
                None => marshal::put_u8(&mut b, 0),
            }
        }
        ChanPayload::ZeroCopy { ml_tag, size } => {
            marshal::put_u8(&mut b, 1);
            marshal::put_u64(&mut b, *ml_tag);
            marshal::put_u64(&mut b, *size);
        }
    }
    b
}

fn decode_chan(params: &[u8]) -> (u32, u64, ChanPayload) {
    let mut r = marshal::Reader(params);
    let src = r.u32();
    let seq = r.u64();
    let payload = match r.u8() {
        0 => {
            let size = r.u64();
            let bytes = match r.u8() {
                1 => Some(r.bytes().to_vec()),
                _ => None,
            };
            ChanPayload::Inline { bytes, size }
        }
        1 => ChanPayload::ZeroCopy {
            ml_tag: r.u64(),
            size: r.u64(),
        },
        k => panic!("bad channel payload kind {k}"),
    };
    (src, seq, payload)
}

impl PyProc {
    /// Build the Charm4py runtime on one PE.
    pub fn create(rank: usize, nranks: usize, params: PyParams) -> Self {
        let mut pe = Pe::new(rank, nranks);
        let n = nranks as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        let ep_chan = pe.register_ep(
            col,
            None,
            Box::new(|chare, msg: &Msg, _pe, _ctx| {
                let st = chare.downcast_mut::<ChanState>().expect("chan state");
                let (src, seq, payload) = decode_chan(&msg.params);
                st.inbox.entry(src).or_default().deliver(seq, payload);
            }),
        );
        let ep_barrier = pe.register_ep(
            col,
            None,
            Box::new(|chare, _msg, _pe, _ctx| {
                let st = chare.downcast_mut::<ChanState>().expect("chan state");
                st.barrier_epoch += 1;
            }),
        );
        // Remote entry-method invocation: run the registered method, then
        // (if the caller attached a future) ship the pickled result back.
        let ep_invoke = pe.register_ep(
            col,
            None,
            Box::new(|chare, msg: &Msg, pe, ctx| {
                let st = chare.downcast_mut::<ChanState>().expect("chan state");
                let mut r = marshal::Reader(&msg.params);
                let method = r.u64() as u16;
                let fut = r.u64();
                let reply_to = r.u64();
                let args = r.bytes().to_vec();
                let m = st
                    .methods
                    .get_mut(&method)
                    .unwrap_or_else(|| panic!("method {method} not registered"));
                let result = m(&args);
                if fut != 0 {
                    let mut p = Vec::new();
                    marshal::put_u64(&mut p, fut);
                    match &result {
                        Some(bytes) => {
                            marshal::put_u8(&mut p, 1);
                            marshal::put_bytes(&mut p, bytes);
                        }
                        None => marshal::put_u8(&mut p, 0),
                    }
                    let (col, ep_fulfil) = PY_IDS.with(|c| c.get()).unwrap();
                    pe.send(
                        ctx,
                        ChareRef {
                            col,
                            index: reply_to,
                        },
                        ep_fulfil,
                        p,
                        0,
                        vec![],
                    );
                }
            }),
        );
        // Future fulfilment: wakes whoever suspended on `PyFuture::get`.
        let ep_fulfil = pe.register_ep(
            col,
            None,
            Box::new(|chare, msg: &Msg, _pe, _ctx| {
                let st = chare.downcast_mut::<ChanState>().expect("chan state");
                let mut r = marshal::Reader(&msg.params);
                let fut = r.u64();
                let bytes = match r.u8() {
                    1 => Some(r.bytes().to_vec()),
                    _ => None,
                };
                st.futures.insert(fut, bytes);
            }),
        );
        PY_IDS.with(|c| c.set(Some((col, ep_fulfil))));
        pe.insert_chare(
            col,
            rank as u64,
            Box::new(ChanState {
                inbox: HashMap::new(),
                barrier_epoch: 0,
                methods: HashMap::new(),
                futures: HashMap::new(),
                exceptions: VecDeque::new(),
            }),
        );
        // Reliability give-ups become Python exception records awaiting
        // `take_exception` (as Charm4py would raise into the coroutine).
        let idx = rank as u64;
        pe.set_default_error_handler(Box::new(move |err, pe, _ctx| {
            let rec = py_exception(err);
            let st = pe.chare_mut::<ChanState>(col, idx);
            // A timed-out peer never completes the in-order sequence its
            // stashed reorderings wait on: drop its whole inbox so a dead
            // endpoint cannot pin payload memory for the run's lifetime.
            if rec.exc_type == "TimeoutError" {
                if let Some(p) = rec.peer {
                    st.inbox.remove(&(p as u32));
                }
            }
            st.exceptions.push_back(rec);
        }));
        PyProc {
            pe,
            rank,
            nranks,
            col,
            ep_chan,
            ep_barrier,
            ep_invoke,
            next_future: 1,
            chan_seq: HashMap::new(),
            params,
        }
    }

    fn next_chan_seq(&mut self, peer: usize) -> u64 {
        let s = self.chan_seq.entry(peer).or_insert(0);
        let v = *s;
        *s += 1;
        v
    }

    /// Register a remotely-invocable method (a Python method of this
    /// process's chare).
    pub fn register_method(&mut self, id: u16, m: PyMethod) {
        let (col, idx) = (self.col, self.rank as u64);
        self.pe
            .chare_mut::<ChanState>(col, idx)
            .methods
            .insert(id, m);
    }

    /// Asynchronously invoke method `id` on `target`'s chare
    /// (`proxy.method(args)` in Charm4py) — fire-and-forget.
    pub fn invoke(&mut self, ctx: &mut MCtx, target: usize, id: u16, args: Vec<u8>) {
        self.invoke_inner(ctx, target, id, args, 0);
    }

    /// Invoke with a future for the return value
    /// (`proxy.method(args, ret=True)` in Charm4py).
    pub fn invoke_future(
        &mut self,
        ctx: &mut MCtx,
        target: usize,
        id: u16,
        args: Vec<u8>,
    ) -> PyFuture {
        let fut = self.next_future;
        self.next_future += 1;
        self.invoke_inner(ctx, target, id, args, fut);
        PyFuture(fut)
    }

    /// Advance by a Python/Cython overhead and attribute it in the trace
    /// as a `charm4py.call_overhead` span. `site` distinguishes the call
    /// site: 0 = send path, 1 = recv path, 2 = coroutine wake, 3 = CUDA
    /// call; `arg` carries the duration so the attribution table can sum
    /// spans without re-deriving them.
    fn py_overhead(&self, ctx: &mut MCtx, dur: Duration, site: u64) {
        let me = self.rank as u32;
        ctx.with_world(move |_, s| s.trace_span_in("charm4py.call_overhead", dur, me, site, dur));
        ctx.advance(dur);
    }

    fn invoke_inner(&mut self, ctx: &mut MCtx, target: usize, id: u16, args: Vec<u8>, fut: u64) {
        let dur = self.params.py_send + self.params.pickle_cost(args.len() as u64);
        self.py_overhead(ctx, dur, 0);
        let mut p = Vec::new();
        marshal::put_u64(&mut p, id as u64);
        marshal::put_u64(&mut p, fut);
        marshal::put_u64(&mut p, self.rank as u64);
        marshal::put_bytes(&mut p, &args);
        let (col, ep) = (self.col, self.ep_invoke);
        self.pe.send(
            ctx,
            ChareRef {
                col,
                index: target as u64,
            },
            ep,
            p,
            0,
            vec![],
        );
    }

    /// Suspend until the future is fulfilled; returns the pickled result.
    pub fn future_get(&mut self, ctx: &mut MCtx, fut: PyFuture) -> Option<Vec<u8>> {
        let (col, idx) = (self.col, self.rank as u64);
        self.pe.pump_until(ctx, move |pe, _| {
            pe.chare_mut::<ChanState>(col, idx)
                .futures
                .contains_key(&fut.0)
        });
        self.py_overhead(ctx, self.params.py_wake, 2);
        self.pe
            .chare_mut::<ChanState>(col, idx)
            .futures
            .remove(&fut.0)
            .expect("future fulfilled")
    }

    /// Pop one pending communication exception (non-blocking). Drains
    /// errors still sitting at the UCP worker first, so a failure surfaced
    /// in the same event as a completion is not missed.
    pub fn take_exception(&mut self, ctx: &mut MCtx) -> Option<PyExceptionRecord> {
        let me = self.rank;
        let (col, idx) = (self.col, self.rank as u64);
        while let Some(e) = ctx.with_world(move |w, _| w.ucp.take_worker_error(me)) {
            self.pe
                .chare_mut::<ChanState>(col, idx)
                .exceptions
                .push_back(py_exception(&e));
        }
        let rec = self
            .pe
            .chare_mut::<ChanState>(col, idx)
            .exceptions
            .pop_front();
        // Release everything still tied to a dead peer: stashed/ready
        // arrivals (for errors drained above, which bypassed the default
        // handler) and the sender-side sequence counter, so a later
        // reconnection starts a fresh in-order stream.
        if let Some(r) = &rec {
            if r.exc_type == "TimeoutError" {
                if let Some(p) = r.peer {
                    self.pe
                        .chare_mut::<ChanState>(col, idx)
                        .inbox
                        .remove(&(p as u32));
                    self.chan_seq.remove(&p);
                }
            }
        }
        rec
    }

    /// Suspend until a communication exception is raised (used after a
    /// send that is expected to fail; pairs with `take_exception` for
    /// polling-style use).
    pub fn wait_exception(&mut self, ctx: &mut MCtx) -> PyExceptionRecord {
        let (col, idx) = (self.col, self.rank as u64);
        let me = self.rank;
        self.pe.pump_until(ctx, move |pe, ctx| {
            !pe.chare_mut::<ChanState>(col, idx).exceptions.is_empty()
                || ctx.with_world_ref(|w, _| w.ucp.worker(me).has_errors())
        });
        self.py_overhead(ctx, self.params.py_wake, 2);
        self.take_exception(ctx).expect("exception present")
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.nranks
    }

    /// Establish a channel to `peer` (channels are lightweight; creation is
    /// implicit on first use in this model).
    pub fn channel(&self, peer: usize) -> Channel {
        Channel { peer }
    }

    /// `channel.send(d_buf, size)` — GPU-direct send (Fig. 8 `gpu_direct`).
    /// Asynchronous: returns once the runtime has taken over the buffer.
    pub fn send(&mut self, ctx: &mut MCtx, ch: Channel, buf: MemRef) {
        let dur = self.params.py_send + self.params.buffer_cost(buf.len);
        self.py_overhead(ctx, dur, 0);
        let (ml_tag, _trig) = self.pe.ml_send_device(ctx, ch.peer, buf, false);
        let payload = ChanPayload::ZeroCopy {
            ml_tag,
            size: buf.len,
        };
        let seq = self.next_chan_seq(ch.peer);
        let bytes = encode_chan(self.rank as u32, seq, &payload);
        let (col, ep) = (self.col, self.ep_chan);
        self.pe.send(
            ctx,
            ChareRef {
                col,
                index: ch.peer as u64,
            },
            ep,
            bytes,
            0,
            vec![],
        );
    }

    /// `channel.send(host_obj)` — pickle a host object into the message.
    pub fn send_host(&mut self, ctx: &mut MCtx, ch: Channel, data: Vec<u8>) {
        let size = data.len() as u64;
        self.send_host_payload(ctx, ch, Some(data), size)
    }

    /// Host-object send with an explicit wire size; `bytes: None` models a
    /// payload that is not materialized (timing-only benchmarks).
    pub fn send_host_payload(
        &mut self,
        ctx: &mut MCtx,
        ch: Channel,
        bytes: Option<Vec<u8>>,
        size: u64,
    ) {
        let dur = self.params.py_send + self.params.pickle_cost(size);
        self.py_overhead(ctx, dur, 0);
        // Unmaterialized payloads still occupy `size` bytes on the wire.
        let phantom = if bytes.is_none() { size } else { 0 };
        let payload = ChanPayload::Inline { bytes, size };
        let seq = self.next_chan_seq(ch.peer);
        let bytes = encode_chan(self.rank as u32, seq, &payload);
        let (col, ep) = (self.col, self.ep_chan);
        self.pe.send(
            ctx,
            ChareRef {
                col,
                index: ch.peer as u64,
            },
            ep,
            bytes,
            phantom,
            vec![],
        );
    }

    /// `channel.recv(d_buf, size)` — suspend until the message arrives,
    /// post the device receive, and resume when the data lands. Returns the
    /// received size.
    pub fn recv(&mut self, ctx: &mut MCtx, ch: Channel, buf: MemRef) -> u64 {
        self.py_overhead(ctx, self.params.py_recv, 1);
        let payload = self.pop_inbox(ctx, ch.peer);
        match payload {
            ChanPayload::ZeroCopy { ml_tag, size } => {
                self.py_overhead(ctx, self.params.buffer_cost(size), 1);
                let trigger = self.pe.ml_recv_device(ctx, ml_tag, buf.slice(0, size));
                self.pe.pump_until(ctx, move |_, ctx| {
                    ctx.with_world_ref(|_, s| s.fired(trigger))
                });
                ctx.with_world(move |_, s| s.recycle_trigger(trigger));
                self.py_overhead(ctx, self.params.py_wake, 2);
                size
            }
            ChanPayload::Inline { bytes, size } => {
                let dur = self.params.pickle_cost(size) + self.params.py_wake;
                self.py_overhead(ctx, dur, 2);
                if let Some(b) = bytes {
                    let n = (buf.len as usize).min(b.len());
                    ctx.with_world(move |w, _| {
                        w.gpu
                            .pool
                            .write(buf.slice(0, n as u64), &b[..n])
                            .expect("inline channel deliver")
                    });
                }
                size
            }
        }
    }

    /// `channel.recv()` of a pickled host object.
    pub fn recv_host(&mut self, ctx: &mut MCtx, ch: Channel) -> Option<Vec<u8>> {
        self.py_overhead(ctx, self.params.py_recv, 1);
        match self.pop_inbox(ctx, ch.peer) {
            ChanPayload::Inline { bytes, size } => {
                let dur = self.params.pickle_cost(size) + self.params.py_wake;
                self.py_overhead(ctx, dur, 2);
                bytes
            }
            ChanPayload::ZeroCopy { .. } => {
                panic!("recv_host on a channel carrying a GPU buffer")
            }
        }
    }

    /// `charm.iwait`-style select: suspend until any of `peers` has a
    /// ready pickled host object, and return `(peer, bytes)`. Ties are
    /// broken by `peers` order, so the choice is deterministic.
    pub fn recv_host_any(&mut self, ctx: &mut MCtx, peers: &[usize]) -> (usize, Option<Vec<u8>>) {
        self.py_overhead(ctx, self.params.py_recv, 1);
        let (col, idx) = (self.col, self.rank as u64);
        let scan: Vec<u32> = peers.iter().map(|&p| p as u32).collect();
        let scan2 = scan.clone();
        self.pe.pump_until(ctx, move |pe, _| {
            let st = pe.chare_mut::<ChanState>(col, idx);
            scan2
                .iter()
                .any(|p| st.inbox.get(p).is_some_and(|q| !q.ready.is_empty()))
        });
        let st = self.pe.chare_mut::<ChanState>(col, idx);
        let mut hit = None;
        for &p in &scan {
            if let Some(q) = st.inbox.get_mut(&p) {
                if let Some(payload) = q.ready.pop_front() {
                    hit = Some((p as usize, payload));
                    break;
                }
            }
        }
        match hit {
            Some((peer, ChanPayload::Inline { bytes, size })) => {
                let dur = self.params.pickle_cost(size) + self.params.py_wake;
                self.py_overhead(ctx, dur, 2);
                (peer, bytes)
            }
            Some((_, ChanPayload::ZeroCopy { .. })) => {
                panic!("recv_host_any on a channel carrying a GPU buffer")
            }
            // Unreachable in practice: pump_until returned with a ready
            // queue and nothing runs in between.
            None => (self.rank, None),
        }
    }

    /// [`PyProc::recv_host_any`] with a virtual-time deadline: suspend
    /// until any of `peers` has a ready pickled host object *or* the
    /// deadline passes with nothing ready, in which case `None` is
    /// returned. A wakeup is scheduled at the deadline so a blocked
    /// receiver cannot sleep through it; the ready-vs-deadline decision is
    /// made in virtual time, so it is deterministic. This is what lets the
    /// service layer's futures frontend detect dead workers instead of
    /// hanging in `gather_all`.
    pub fn recv_host_any_deadline(
        &mut self,
        ctx: &mut MCtx,
        peers: &[usize],
        deadline: rucx_sim::time::Time,
    ) -> Option<(usize, Option<Vec<u8>>)> {
        self.py_overhead(ctx, self.params.py_recv, 1);
        let me = self.rank;
        if ctx.now() < deadline {
            ctx.with_world(move |w, s| {
                let n = w.ucp.worker(me).notify;
                s.schedule_at(deadline, move |_, s| s.notify(n));
            });
        }
        let (col, idx) = (self.col, self.rank as u64);
        let scan: Vec<u32> = peers.iter().map(|&p| p as u32).collect();
        let scan2 = scan.clone();
        self.pe.pump_until(ctx, move |pe, ctx| {
            let st = pe.chare_mut::<ChanState>(col, idx);
            scan2
                .iter()
                .any(|p| st.inbox.get(p).is_some_and(|q| !q.ready.is_empty()))
                || ctx.now() >= deadline
        });
        let st = self.pe.chare_mut::<ChanState>(col, idx);
        let mut hit = None;
        for &p in &scan {
            if let Some(q) = st.inbox.get_mut(&p) {
                if let Some(payload) = q.ready.pop_front() {
                    hit = Some((p as usize, payload));
                    break;
                }
            }
        }
        match hit {
            Some((peer, ChanPayload::Inline { bytes, size })) => {
                let dur = self.params.pickle_cost(size) + self.params.py_wake;
                self.py_overhead(ctx, dur, 2);
                Some((peer, bytes))
            }
            Some((_, ChanPayload::ZeroCopy { .. })) => {
                panic!("recv_host_any_deadline on a channel carrying a GPU buffer")
            }
            None => {
                // Deadline expired with every scanned inbox empty.
                self.py_overhead(ctx, self.params.py_wake, 2);
                None
            }
        }
    }

    fn pop_inbox(&mut self, ctx: &mut MCtx, peer: usize) -> ChanPayload {
        let (col, idx) = (self.col, self.rank as u64);
        self.pe.pump_until(ctx, move |pe, _| {
            pe.chare_mut::<ChanState>(col, idx)
                .inbox
                .get(&(peer as u32))
                .is_some_and(|q| !q.ready.is_empty())
        });
        self.pe
            .chare_mut::<ChanState>(col, idx)
            .inbox
            .get_mut(&(peer as u32))
            .unwrap()
            .ready
            .pop_front()
            .unwrap()
    }

    /// Global barrier (via a Charm++ reduction, as `charm.barrier()`).
    pub fn barrier(&mut self, ctx: &mut MCtx) {
        let (col, idx) = (self.col, self.rank as u64);
        let old = self.pe.chare_mut::<ChanState>(col, idx).barrier_epoch;
        let ep = self.ep_barrier;
        self.pe.contribute(
            ctx,
            col,
            idx,
            rucx_charm::RedOp::Barrier,
            0.0,
            rucx_charm::RedTarget::Broadcast(col, ep),
        );
        self.pe.pump_until(ctx, move |pe, _| {
            pe.chare_mut::<ChanState>(col, idx).barrier_epoch > old
        });
    }

    // ---- Host-staging helpers (Fig. 8, `not gpu_direct`) --------------

    /// `charm.lib.CudaDtoH` / `CudaHtoD`: async copy issued from Python.
    pub fn cuda_copy(&mut self, ctx: &mut MCtx, src: MemRef, dst: MemRef, stream: StreamId) {
        let launch = ctx.with_world_ref(|w, _| w.gpu.params.copy_launch);
        self.py_overhead(ctx, self.params.py_cuda_call, 3);
        ctx.advance(launch);
        ctx.with_world(move |w, s| {
            copy_async(w, s, src, dst, stream, None);
        });
    }

    /// `charm.lib.CudaStreamSynchronize` from Python.
    pub fn cuda_stream_sync(&mut self, ctx: &mut MCtx, stream: StreamId) {
        let sync_cost = ctx.with_world_ref(|w, _| w.gpu.params.sync_overhead);
        self.py_overhead(ctx, self.params.py_cuda_call, 3);
        let t = ctx.with_world(move |w, s| stream_sync_trigger(w, s, stream));
        ctx.wait(t);
        ctx.with_world(move |_, s| s.recycle_trigger(t));
        ctx.advance(sync_cost);
    }

    /// Virtual time in seconds (`time.perf_counter()`).
    pub fn time(&self, ctx: &MCtx) -> f64 {
        rucx_sim::time::as_secs(ctx.now())
    }
}

/// SPMD launch: one Charm4py process per simulated process.
pub fn launch<F>(sim: &mut MSim, body: F)
where
    F: Fn(&mut PyProc, &mut MCtx) + Send + Sync + Clone + 'static,
{
    launch_with(sim, PyParams::default(), body)
}

/// [`launch`] with explicit Python-layer parameters.
pub fn launch_with<F>(sim: &mut MSim, params: PyParams, body: F)
where
    F: Fn(&mut PyProc, &mut MCtx) + Send + Sync + Clone + 'static,
{
    let n = sim.world().topo.procs();
    for p in 0..n {
        let body = body.clone();
        let params = params.clone();
        sim.spawn(format!("py{p}"), 0, move |ctx| {
            let mut proc = PyProc::create(p, n, params);
            body(&mut proc, ctx);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_fabric::Topology;
    use rucx_gpu::DeviceId;
    use rucx_sim::time::as_us;
    use rucx_sim::RunOutcome;
    use rucx_ucp::{build_sim, MachineConfig};
    use std::sync::Arc;

    fn sim(nodes: usize) -> MSim {
        build_sim(Topology::summit(nodes), MachineConfig::default())
    }

    #[test]
    fn gpu_direct_channel_roundtrip() {
        let mut sim = sim(1);
        let size = 1u64 << 20;
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), size, true)
            .unwrap();
        let b = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), size, true)
            .unwrap();
        let data: Vec<u8> = (0..size).map(|i| (i % 199) as u8).collect();
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        launch(&mut sim, move |py, ctx| match py.rank() {
            0 => {
                let ch = py.channel(1);
                py.send(ctx, ch, a);
            }
            1 => {
                let ch = py.channel(0);
                let n = py.recv(ctx, ch, b);
                assert_eq!(n, size);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.ipc"), 1);
    }

    #[test]
    fn recv_host_any_deadline_times_out_and_delivers() {
        // Rank 1 sends immediately; rank 2 never sends. A select on
        // {1, 2} with a generous deadline returns rank 1's object; a
        // second select on {2} alone expires at its deadline (virtual time
        // reaches it exactly — no busy wait, no hang) and returns None.
        let mut sim = sim(1);
        let done = Arc::new(rucx_compat::sync::Mutex::new((false, false)));
        let done2 = done.clone();
        launch(&mut sim, move |py, ctx| match py.rank() {
            1 => {
                let ch = py.channel(0);
                py.send_host(ctx, ch, vec![7, 7]);
            }
            0 => {
                let hit = py.recv_host_any_deadline(ctx, &[1, 2], us(5_000.0));
                assert_eq!(hit, Some((1, Some(vec![7, 7]))));
                let deadline = ctx.now() + us(300.0);
                let miss = py.recv_host_any_deadline(ctx, &[2], deadline);
                assert_eq!(miss, None);
                assert!(ctx.now() >= deadline, "must sleep to the deadline");
                *done2.lock() = (true, true);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*done.lock(), (true, true));
    }

    #[test]
    fn host_object_pickling_roundtrip() {
        let mut sim = sim(1);
        let got = Arc::new(rucx_compat::sync::Mutex::new(None));
        let got2 = got.clone();
        launch(&mut sim, move |py, ctx| match py.rank() {
            2 => {
                let ch = py.channel(3);
                py.send_host(ctx, ch, vec![1, 2, 3, 4]);
            }
            3 => {
                let ch = py.channel(2);
                *got2.lock() = py.recv_host(ctx, ch);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(got.lock().take(), Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn python_overhead_dominates_small_latency() {
        // Small-message one-way latency must sit well above Charm++'s
        // (~4-5us) because of interpreter costs — the paper's Fig. 10c.
        let mut sim = sim(1);
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), 8, true)
            .unwrap();
        let b = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), 8, true)
            .unwrap();
        let out = Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let out2 = out.clone();
        launch(&mut sim, move |py, ctx| match py.rank() {
            0 => {
                let ch = py.channel(1);
                let iters = 10u64;
                let t0 = ctx.now();
                for _ in 0..iters {
                    py.send(ctx, ch, a);
                    py.recv(ctx, ch, a);
                }
                *out2.lock() = (ctx.now() - t0) / (2 * iters);
            }
            1 => {
                let ch = py.channel(0);
                for _ in 0..10 {
                    py.recv(ctx, ch, b);
                    py.send(ctx, ch, b);
                }
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let lat = *out.lock();
        assert!(
            lat > us(12.0) && lat < us(35.0),
            "charm4py small latency {}us out of expected band",
            as_us(lat)
        );
    }

    #[test]
    fn unreachable_peer_raises_timeout_error() {
        // A permanently partitioned peer: the GPU-direct channel send is
        // abandoned by the reliability layer and surfaces as a Python-style
        // TimeoutError record instead of hanging the coroutine.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.partitions.push(rucx_fault::PartitionWindow {
            from: 0,
            until: u64::MAX,
        });
        let mut cfg = MachineConfig::default();
        cfg.ucp.max_retries = 2;
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), 1 << 20, false)
            .unwrap();
        let got = Arc::new(rucx_compat::sync::Mutex::new(None));
        let got2 = got.clone();
        launch(&mut sim, move |py, ctx| {
            if py.rank() == 0 {
                let ch = py.channel(6); // other node
                py.send(ctx, ch, a);
                *got2.lock() = Some(py.wait_exception(ctx));
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let exc = got.lock().take().expect("exception raised");
        assert_eq!(exc.exc_type, "TimeoutError");
        assert!(
            exc.message.contains("gave up"),
            "message should describe the retry exhaustion: {}",
            exc.message
        );
    }

    /// Regression: a peer that times out used to leave its out-of-order
    /// stash (`PeerInbox::stashed`) and the sender-side `chan_seq` entry in
    /// place forever, pinning payload memory for the simulation's lifetime.
    /// Surfacing the TimeoutError must drain both.
    #[test]
    fn peer_timeout_drains_stash_and_chan_seq() {
        let mut spec = rucx_fault::FaultSpec::default();
        spec.partitions.push(rucx_fault::PartitionWindow {
            from: 0,
            until: u64::MAX,
        });
        let mut cfg = MachineConfig::default();
        cfg.ucp.max_retries = 2;
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), 1 << 20, false)
            .unwrap();
        let checked = Arc::new(rucx_compat::sync::Mutex::new(false));
        let checked2 = checked.clone();
        launch(&mut sim, move |py, ctx| {
            if py.rank() != 0 {
                return;
            }
            let ch = py.channel(6); // other node, fully partitioned
            py.send(ctx, ch, a);
            assert!(py.chan_seq.contains_key(&6));
            // Model the reordering race the stash exists for: seq 1 from
            // the dying peer arrives while seq 0 is lost with the
            // partition, so the payload parks in the stash with no
            // predecessor ever coming.
            let (col, idx) = (py.col, 0u64);
            py.pe
                .chare_mut::<ChanState>(col, idx)
                .inbox
                .entry(6)
                .or_default()
                .deliver(
                    1,
                    ChanPayload::Inline {
                        bytes: Some(vec![7u8; 4096]),
                        size: 4096,
                    },
                );
            let exc = py.wait_exception(ctx);
            assert_eq!(exc.exc_type, "TimeoutError");
            assert_eq!(exc.peer, Some(6));
            let st = py.pe.chare_mut::<ChanState>(col, idx);
            assert!(
                !st.inbox.contains_key(&6),
                "dead peer's stash must be drained"
            );
            assert!(
                !py.chan_seq.contains_key(&6),
                "sender chan_seq must be released"
            );
            // A reconnected peer starts a fresh in-order stream.
            assert_eq!(py.next_chan_seq(6), 0);
            *checked2.lock() = true;
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert!(*checked.lock());
    }

    #[test]
    fn barrier_synchronizes() {
        let mut sim = sim(1);
        let times = Arc::new(rucx_compat::sync::Mutex::new(Vec::new()));
        let t2 = times.clone();
        launch(&mut sim, move |py, ctx| {
            ctx.advance(us(5.0 * py.rank() as f64));
            py.barrier(ctx);
            t2.lock().push(ctx.now());
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let v = times.lock();
        assert_eq!(v.len(), 6);
        for &t in v.iter() {
            assert!(t >= us(25.0));
        }
    }

    #[test]
    fn cuda_helpers_model_host_staging() {
        let mut sim = sim(1);
        let size = 1u64 << 20;
        let d = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), size, true)
            .unwrap();
        let h = sim.world_mut().gpu.pool.alloc_host(0, size, true, true);
        sim.world_mut()
            .gpu
            .pool
            .write(d, &vec![0xAB; size as usize])
            .unwrap();
        let elapsed = Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let e2 = elapsed.clone();
        launch(&mut sim, move |py, ctx| {
            if py.rank() != 0 {
                return;
            }
            let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(DeviceId(0)));
            let t0 = ctx.now();
            py.cuda_copy(ctx, d, h, stream);
            py.cuda_stream_sync(ctx, stream);
            *e2.lock() = ctx.now() - t0;
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(h).unwrap(), vec![0xAB; 1 << 20]);
        // 1 MiB D2H ≈ 25us + launch/sync/python ≈ 35us total.
        let t = *elapsed.lock();
        assert!(t > us(28.0) && t < us(50.0), "staging took {}us", as_us(t));
    }
}
