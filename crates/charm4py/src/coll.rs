//! Charm4py collectives over channels, routed through the shared
//! topology-aware collective engine ([`rucx_coll`]).
//!
//! Channels are FIFO per ordered peer pair and carry no tags, which is
//! sufficient here: the engine's schedules are deterministic SPMD programs,
//! so between any (src, dst) pair the receive order equals the send order
//! and the adapter can ignore the engine's tag argument. Every hop pays the
//! Python/Cython costs ([`crate::PyParams`]) — `channel.send` argument
//! handling and buffer-protocol traversal on the way out, coroutine
//! suspension and wake on the way in — which is what keeps Charm4py's
//! collectives measurably above AMPI/OpenMPI at small sizes.

use rucx_coll::CollComm;
use rucx_gpu::MemRef;
use rucx_ucp::MCtx;

use crate::PyProc;

/// Reduction operators for [`PyProc::allreduce`] (`charm.reducers`).
pub use rucx_coll::ReduceOp;

/// Adapts a [`PyProc`]'s channel surface to the collective engine.
struct ChanComm<'a> {
    p: &'a mut PyProc,
}

impl CollComm for ChanComm<'_> {
    fn rank(&self) -> usize {
        self.p.rank()
    }

    fn nranks(&self) -> usize {
        self.p.size()
    }

    fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, _tag: i32) {
        let ch = self.p.channel(dst);
        self.p.send(ctx, ch, buf);
    }

    fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, _tag: i32) {
        let ch = self.p.channel(src);
        self.p.recv(ctx, ch, buf);
    }

    fn sendrecv(
        &mut self,
        ctx: &mut MCtx,
        sbuf: MemRef,
        dst: usize,
        _stag: i32,
        rbuf: MemRef,
        src: usize,
        _rtag: i32,
    ) {
        // `channel.send` is asynchronous (the runtime takes over the
        // buffer), so send-then-recv cannot deadlock on a symmetric
        // exchange.
        let sch = self.p.channel(dst);
        self.p.send(ctx, sch, sbuf);
        let rch = self.p.channel(src);
        self.p.recv(ctx, rch, rbuf);
    }
}

impl PyProc {
    /// `charm.allreduce` of a device-resident `f64` array over channels;
    /// the engine picks the schedule per (size, placement). `scratch` must
    /// be a same-size buffer on the same device.
    pub fn allreduce(&mut self, ctx: &mut MCtx, buf: MemRef, scratch: MemRef, op: ReduceOp) {
        rucx_coll::allreduce(&mut ChanComm { p: self }, ctx, buf, scratch, op)
    }

    /// Allreduce with a forced algorithm (benchmarks, ablations).
    pub fn allreduce_with(
        &mut self,
        ctx: &mut MCtx,
        buf: MemRef,
        scratch: MemRef,
        op: ReduceOp,
        algo: rucx_coll::Algo,
    ) {
        rucx_coll::allreduce_with(&mut ChanComm { p: self }, ctx, buf, scratch, op, algo)
    }

    /// Broadcast of a device buffer from `root` over channels.
    pub fn bcast(&mut self, ctx: &mut MCtx, buf: MemRef, root: usize) {
        rucx_coll::bcast(&mut ChanComm { p: self }, ctx, buf, root)
    }

    /// Broadcast with a forced algorithm (benchmarks, ablations).
    pub fn bcast_with(&mut self, ctx: &mut MCtx, buf: MemRef, root: usize, algo: rucx_coll::Algo) {
        rucx_coll::bcast_with(&mut ChanComm { p: self }, ctx, buf, root, algo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_coll::Algo;
    use rucx_fabric::Topology;
    use rucx_sim::RunOutcome;
    use rucx_ucp::{build_sim, MachineConfig};
    use std::sync::Arc;

    fn run(algo: Option<Algo>) {
        let topo = Topology::summit(2);
        let mut sim = build_sim(topo.clone(), MachineConfig::default());
        let n = topo.procs();
        let elems = 16usize;
        let mut bufs = vec![];
        let mut scratch = vec![];
        for p in 0..n {
            let m = sim.world_mut();
            let b = m
                .gpu
                .pool
                .alloc_device(topo.device_of(p), (elems * 8) as u64, true)
                .unwrap();
            let vals: Vec<u8> = (0..elems)
                .flat_map(|i| ((p * 100 + i) as f64).to_le_bytes())
                .collect();
            m.gpu.pool.write(b, &vals).unwrap();
            bufs.push(b);
            scratch.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), (elems * 8) as u64, true)
                    .unwrap(),
            );
        }
        let bufs2 = Arc::new(bufs.clone());
        let scratch2 = Arc::new(scratch);
        crate::launch(&mut sim, move |py, ctx| {
            let me = py.rank();
            match algo {
                Some(a) => py.allreduce_with(ctx, bufs2[me], scratch2[me], ReduceOp::Sum, a),
                None => py.allreduce(ctx, bufs2[me], scratch2[me], ReduceOp::Sum),
            }
            py.bcast(ctx, bufs2[me], 3);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let expected: Vec<f64> = (0..elems)
            .map(|i| (0..n).map(|r| (r * 100 + i) as f64).sum())
            .collect();
        for (r, b) in bufs.iter().enumerate() {
            let got: Vec<f64> = sim
                .world()
                .gpu
                .pool
                .read(*b)
                .unwrap()
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(got, expected, "rank {r}");
        }
    }

    #[test]
    fn allreduce_and_bcast_auto() {
        run(None);
    }

    #[test]
    fn allreduce_forced_ring_and_hier() {
        run(Some(Algo::Ring));
        run(Some(Algo::Hierarchical));
    }
}
