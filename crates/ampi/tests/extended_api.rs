//! Tests of the extended AMPI API: sendrecv, probe/iprobe, and native
//! collectives over GPU buffers.

use std::sync::Arc;

use rucx_ampi::{launch, MpiOp, ANY_SOURCE, ANY_TAG};
use rucx_fabric::Topology;
use rucx_gpu::{DeviceId, MemRef};
use rucx_sim::time::us;
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MSim, MachineConfig};

fn sim(nodes: usize) -> MSim {
    build_sim(Topology::summit(nodes), MachineConfig::default())
}

fn dev(sim: &mut MSim, d: u32, size: u64) -> MemRef {
    sim.world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(d), size, true)
        .unwrap()
}

fn write_f64s(sim: &mut MSim, buf: MemRef, vals: &[f64]) {
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    sim.world_mut().gpu.pool.write(buf, &bytes).unwrap();
}

fn read_f64s(sim: &MSim, buf: MemRef) -> Vec<f64> {
    sim.world()
        .gpu
        .pool
        .read(buf)
        .unwrap()
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn sendrecv_ring_shift() {
    // Classic ring shift: every rank sendrecvs simultaneously; a naive
    // blocking send+recv would deadlock on large (rendezvous) messages.
    let mut sim = sim(1);
    let size = 512u64 << 10;
    let sbufs: Vec<MemRef> = (0..6).map(|d| dev(&mut sim, d, size)).collect();
    let rbufs: Vec<MemRef> = (0..6).map(|d| dev(&mut sim, d, size)).collect();
    for (r, b) in sbufs.iter().enumerate() {
        sim.world_mut()
            .gpu
            .pool
            .write(*b, &vec![r as u8 + 1; size as usize])
            .unwrap();
    }
    let (sb, rb) = (Arc::new(sbufs), Arc::new(rbufs.clone()));
    launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let n = mpi.size();
        let st = mpi.sendrecv(
            ctx,
            sb[me],
            (me + 1) % n,
            5,
            rb[me],
            ((me + n - 1) % n) as i32,
            5,
        );
        assert_eq!(st.src as usize, (me + n - 1) % n);
        assert_eq!(st.size, sb[me].len);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    for (r, b) in rbufs.iter().enumerate() {
        let left = (r + 5) % 6;
        assert_eq!(
            sim.world().gpu.pool.read(*b).unwrap(),
            vec![left as u8 + 1; size as usize],
            "rank {r}"
        );
    }
}

#[test]
fn probe_then_recv() {
    let mut sim = sim(1);
    let a = dev(&mut sim, 0, 64);
    let b = dev(&mut sim, 1, 64);
    sim.world_mut().gpu.pool.write(a, &[3u8; 64]).unwrap();
    launch(&mut sim, move |mpi, ctx| match mpi.rank() {
        0 => {
            ctx.advance(us(30.0));
            mpi.send(ctx, a, 1, 42);
        }
        1 => {
            // iprobe finds nothing yet...
            assert!(mpi.iprobe(ctx, ANY_SOURCE, ANY_TAG).is_none());
            // ...probe blocks until the metadata lands...
            let st = mpi.probe(ctx, ANY_SOURCE, 42);
            assert_eq!(st.src, 0);
            assert_eq!(st.size, 64);
            // ...and the message is still receivable afterwards.
            let st2 = mpi.recv(ctx, b, 0, 42);
            assert_eq!(st2.size, 64);
        }
        _ => {}
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(sim.world().gpu.pool.read(b).unwrap(), vec![3u8; 64]);
}

#[test]
fn bcast_device_buffer() {
    let mut sim = sim(2);
    let size = 256u64 << 10;
    let bufs: Vec<MemRef> = (0..12).map(|d| dev(&mut sim, d, size)).collect();
    sim.world_mut()
        .gpu
        .pool
        .write(bufs[7], &vec![0xC3; size as usize])
        .unwrap();
    let b2 = Arc::new(bufs.clone());
    launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        mpi.bcast(ctx, b2[me], 7);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    for (r, b) in bufs.iter().enumerate() {
        assert_eq!(
            sim.world().gpu.pool.read(*b).unwrap(),
            vec![0xC3; size as usize],
            "rank {r}"
        );
    }
}

#[test]
fn allreduce_sum_and_min() {
    for op in [MpiOp::Sum, MpiOp::Min] {
        let mut sim = sim(2); // 12 ranks: non-power-of-two
        let elems = 16usize;
        let bufs: Vec<MemRef> = (0..12)
            .map(|d| dev(&mut sim, d, (elems * 8) as u64))
            .collect();
        let scratch: Vec<MemRef> = (0..12)
            .map(|d| dev(&mut sim, d, (elems * 8) as u64))
            .collect();
        for (r, b) in bufs.iter().enumerate() {
            let vals: Vec<f64> = (0..elems).map(|i| (r * 100 + i) as f64).collect();
            write_f64s(&mut sim, *b, &vals);
        }
        let (b2, s2) = (Arc::new(bufs.clone()), Arc::new(scratch));
        launch(&mut sim, move |mpi, ctx| {
            let me = mpi.rank();
            mpi.allreduce(ctx, b2[me], s2[me], op);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let expected: Vec<f64> = (0..elems)
            .map(|i| {
                let vals = (0..12).map(|r| (r * 100 + i) as f64);
                match op {
                    MpiOp::Sum => vals.sum(),
                    MpiOp::Min => vals.fold(f64::INFINITY, f64::min),
                    MpiOp::Max => unreachable!(),
                }
            })
            .collect();
        for (r, b) in bufs.iter().enumerate() {
            assert_eq!(read_f64s(&sim, *b), expected, "rank {r} op {op:?}");
        }
    }
}
