//! AMPI collectives over GPU buffers, routed through the shared
//! topology-aware collective engine ([`rucx_coll`]). The engine owns the
//! algorithms (binomial tree, recursive doubling, ring, hierarchical
//! NVLink-aware) and their selection; this module only adapts `MpiRank`'s
//! point-to-point surface to [`CollComm`].

use rucx_coll::CollComm;
use rucx_gpu::MemRef;
use rucx_ucp::MCtx;

use crate::mpi::MpiRank;

/// Element-wise reduction operators over `f64` payloads.
pub use rucx_coll::ReduceOp as MpiOp;

impl CollComm for MpiRank {
    fn rank(&self) -> usize {
        MpiRank::rank(self)
    }

    fn nranks(&self) -> usize {
        self.size()
    }

    fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) {
        MpiRank::send(self, ctx, buf, dst, tag)
    }

    fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32) {
        MpiRank::recv(self, ctx, buf, src as i32, tag);
    }

    fn sendrecv(
        &mut self,
        ctx: &mut MCtx,
        sbuf: MemRef,
        dst: usize,
        stag: i32,
        rbuf: MemRef,
        src: usize,
        rtag: i32,
    ) {
        // Nonblocking pair: AMPI's blocking send is rendezvous-gated, so a
        // symmetric exchange must post the receive first.
        MpiRank::sendrecv(self, ctx, sbuf, dst, stag, rbuf, src as i32, rtag);
    }
}

impl MpiRank {
    /// `MPI_Bcast` of a (possibly device-resident) buffer from `root`.
    pub fn bcast(&mut self, ctx: &mut MCtx, buf: MemRef, root: usize) {
        rucx_coll::bcast(self, ctx, buf, root)
    }

    /// `MPI_Allreduce` over `f64` elements; the engine picks the schedule
    /// per (size, placement). `scratch` must be a same-size buffer on the
    /// same device.
    pub fn allreduce(&mut self, ctx: &mut MCtx, buf: MemRef, scratch: MemRef, op: MpiOp) {
        rucx_coll::allreduce(self, ctx, buf, scratch, op)
    }
}
