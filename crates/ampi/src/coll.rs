//! AMPI collectives over GPU buffers, translated to the GPU-aware
//! point-to-point path (the paper's §VI direction). Algorithms: binomial
//! tree broadcast and recursive-doubling allreduce (with fold-in/fold-out
//! for non-power-of-two rank counts).

use rucx_gpu::{KernelCost, MemRef};
use rucx_sim::time::us;
use rucx_ucp::MCtx;

use crate::mpi::MpiRank;

/// Reserved tag space for collectives.
const COLL_TAG: i32 = (1 << 20) + 7_000;

/// Element-wise reduction operators over `f64` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiOp {
    Sum,
    Max,
    Min,
}

impl MpiRank {
    /// `MPI_Bcast` of a (possibly device-resident) buffer from `root`.
    pub fn bcast(&mut self, ctx: &mut MCtx, buf: MemRef, root: usize) {
        let n = self.size();
        let me = self.rank();
        let vrank = (me + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % n;
                self.recv(ctx, buf, parent as i32, COLL_TAG);
                break;
            }
            mask <<= 1;
        }
        let mut child = mask >> 1;
        while child > 0 {
            let vchild = vrank + child;
            if vchild < n {
                let dst = (vchild + root) % n;
                self.send(ctx, buf, dst, COLL_TAG);
            }
            child >>= 1;
        }
    }

    /// `MPI_Allreduce` over `f64` elements with recursive doubling.
    /// `scratch` must be a same-size buffer on the same device.
    pub fn allreduce(&mut self, ctx: &mut MCtx, buf: MemRef, scratch: MemRef, op: MpiOp) {
        assert_eq!(buf.len, scratch.len);
        assert_eq!(buf.len % 8, 0, "f64 payload");
        let n = self.size();
        let me = self.rank();
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(dev));
        let p2 = n.next_power_of_two() / if n.is_power_of_two() { 1 } else { 2 };
        let extra = n - p2;
        if me >= p2 {
            self.send(ctx, buf, me - p2, COLL_TAG + 1);
        } else if me < extra {
            self.recv(ctx, scratch, (me + p2) as i32, COLL_TAG + 1);
            combine(ctx, buf, scratch, op, stream);
        }
        if me < p2 {
            let mut mask = 1usize;
            while mask < p2 {
                let partner = me ^ mask;
                let r = self.irecv(ctx, scratch, partner as i32, COLL_TAG + 2);
                let s = self.isend(ctx, buf, partner, COLL_TAG + 2);
                self.waitall(ctx, &[r, s]);
                combine(ctx, buf, scratch, op, stream);
                mask <<= 1;
            }
        }
        if me < extra {
            self.send(ctx, buf, me + p2, COLL_TAG + 3);
        } else if me >= p2 {
            self.recv(ctx, buf, (me - p2) as i32, COLL_TAG + 3);
        }
    }
}

/// Local reduction kernel (memory-bound) plus the actual element-wise math
/// on the backing bytes.
fn combine(ctx: &mut MCtx, mine: MemRef, other: MemRef, op: MpiOp, stream: rucx_gpu::StreamId) {
    // Launch + kernel + sync, like any small CUDA reduction.
    let (launch, sync) =
        ctx.with_world_ref(|w, _| (w.gpu.params.kernel_launch, w.gpu.params.sync_overhead));
    ctx.advance(launch);
    let done = ctx.with_world(move |w, s| {
        let t = s.new_trigger();
        rucx_gpu::kernel_async(
            w,
            s,
            stream,
            KernelCost {
                fixed: us(3.0),
                bytes: mine.len * 3,
            },
            Some(t),
        );
        t
    });
    ctx.wait(done);
    ctx.with_world(move |_, s| s.recycle_trigger(done));
    ctx.advance(sync);
    ctx.with_world(move |w, _| {
        if !w.gpu.pool.is_materialized(mine.id).unwrap_or(false) {
            return;
        }
        // Invariant: both handles are the collective's own live,
        // materialized buffers (checked just above for `mine`; `other`
        // was just written by the transfer that completed `done`).
        let a = w.gpu.pool.read(mine).expect("combine lhs");
        let b = w.gpu.pool.read(other).expect("combine rhs");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            // Invariant: chunks_exact(8) yields exactly 8 bytes.
            let x = f64::from_le_bytes(ca.try_into().unwrap());
            let y = f64::from_le_bytes(cb.try_into().unwrap());
            let r = match op {
                MpiOp::Sum => x + y,
                MpiOp::Max => x.max(y),
                MpiOp::Min => x.min(y),
            };
            out.extend_from_slice(&r.to_le_bytes());
        }
        let len = out.len() as u64;
        w.gpu
            .pool
            // Invariant: `out` is at most `mine.len` bytes (element-wise
            // combine of a read of `mine`), into a live handle.
            .write(mine.slice(0, len), &out)
            .expect("combine write");
    });
}
