//! Per-rank state: the chare behind each AMPI rank, with the unexpected
//! message queue and posted-receive (request) queue of §III-C2.

use std::collections::{HashMap, VecDeque};

use rucx_gpu::MemRef;
use rucx_sim::sched::Trigger;
use rucx_sim::time::{transfer_time, us, Duration};

use crate::msg::{recv_matches, AmpiMsg, Status, MPI_ERR_TRUNCATE, MPI_SUCCESS};

/// Calibration constants of the AMPI layer (costs *above* Charm++ and UCX —
/// the "about 8 µs outside of UCX" the paper attributes to AMPI specifics:
/// message packing/unpacking, the extra metadata message bookkeeping,
/// callback invocations, and heap allocations).
#[derive(Debug, Clone)]
pub struct AmpiParams {
    /// Sender-side AMPI processing per message.
    pub send_overhead: Duration,
    /// Receiver-side AMPI processing per message (matching, callbacks).
    pub recv_overhead: Duration,
    /// Host buffers at or below this size are packed inline (eager).
    pub inline_max: u64,
    /// Bandwidth for packing/unpacking inline payloads.
    pub copy_gbps: f64,
    /// Cost of a GPU-pointer query answered by the software cache.
    pub cache_hit: Duration,
    /// Cost of a GPU-pointer query missing the cache (driver call).
    pub cache_miss: Duration,
}

impl Default for AmpiParams {
    fn default() -> Self {
        AmpiParams {
            send_overhead: us(1.35),
            recv_overhead: us(1.15),
            inline_max: 16 * 1024,
            copy_gbps: 9.5,
            cache_hit: us(0.04),
            cache_miss: us(0.30),
        }
    }
}

impl AmpiParams {
    /// Cost of copying `size` bytes of inline payload.
    pub fn copy_cost(&self, size: u64) -> Duration {
        transfer_time(size, self.copy_gbps)
    }
}

/// A receive posted before its message arrived.
pub struct PostedRecv {
    pub slot: u64,
    pub src: i32,
    pub tag: i32,
    pub buf: MemRef,
}

/// Lifecycle of a receive request.
#[derive(Debug, Clone, Copy)]
pub enum SlotState {
    /// No matching message yet.
    Pending,
    /// Metadata matched; data in flight under `trigger`.
    Matched { trigger: Trigger, status: Status },
    /// Data complete.
    Done { status: Status },
}

/// The chare backing one AMPI rank.
pub struct RankState {
    pub params: AmpiParams,
    pub unexpected: VecDeque<AmpiMsg>,
    pub posted: Vec<PostedRecv>,
    pub slots: HashMap<u64, SlotState>,
    pub barrier_epoch: u64,
    /// Next expected send-sequence number per source rank.
    pub next_recv_seq: HashMap<u32, u64>,
    /// Envelopes that arrived ahead of an earlier, still-in-flight envelope
    /// from the same source (the machine layer completes large rendezvous
    /// envelopes out of order); released once the gap closes.
    pub reorder_stash: Vec<AmpiMsg>,
    /// Asynchronous communication failures from the UCP reliability layer
    /// (routed here by the PE's default error handler); drained into
    /// `MPI_ERR_OTHER` statuses by `MPI_Wait`.
    pub comm_errors: VecDeque<rucx_ucp::UcpError>,
}

impl RankState {
    pub fn new(params: AmpiParams) -> Self {
        RankState {
            params,
            unexpected: VecDeque::new(),
            posted: Vec::new(),
            slots: HashMap::new(),
            barrier_epoch: 0,
            next_recv_seq: HashMap::new(),
            reorder_stash: Vec::new(),
            comm_errors: VecDeque::new(),
        }
    }

    /// Find the first posted receive matching `msg`, in post order.
    pub fn match_posted(&self, msg: &AmpiMsg) -> Option<usize> {
        self.posted
            .iter()
            .position(|p| recv_matches(p.src, p.tag, msg))
    }

    /// Find the first unexpected message matching `(src, tag)`, in arrival
    /// order.
    pub fn match_unexpected(&self, src: i32, tag: i32) -> Option<usize> {
        self.unexpected
            .iter()
            .position(|m| recv_matches(src, tag, m))
    }

    /// Queue depths `(posted, unexpected)` for tests/diagnostics.
    pub fn depths(&self) -> (usize, usize) {
        (self.posted.len(), self.unexpected.len())
    }
}

/// Status derived from a matched (or probed) message, before any buffer is
/// known: always `MPI_SUCCESS`.
pub fn status_of(msg: &AmpiMsg) -> Status {
    Status {
        src: msg.src_rank as i32,
        tag: msg.tag,
        size: msg.payload.size(),
        error: MPI_SUCCESS,
    }
}

/// Status for a message delivered into `buf`: flags `MPI_ERR_TRUNCATE`
/// when the message is longer than the buffer.
pub fn status_into(msg: &AmpiMsg, buf: &MemRef) -> Status {
    let mut st = status_of(msg);
    if msg.payload.size() > buf.len {
        st.error = MPI_ERR_TRUNCATE;
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ANY_SOURCE, ANY_TAG};

    fn msg(src: u32, tag: i32) -> AmpiMsg {
        use crate::msg::AmpiPayload;
        AmpiMsg {
            src_rank: src,
            tag,
            seq: 0,
            payload: AmpiPayload::Inline {
                bytes: None,
                size: 8,
            },
        }
    }

    fn dummy_buf() -> MemRef {
        MemRef {
            id: rucx_gpu::MemId(1),
            offset: 0,
            len: 8,
        }
    }

    #[test]
    fn posted_matching_is_post_order_with_wildcards() {
        let mut st = RankState::new(AmpiParams::default());
        st.posted.push(PostedRecv {
            slot: 1,
            src: 5,
            tag: 9,
            buf: dummy_buf(),
        });
        st.posted.push(PostedRecv {
            slot: 2,
            src: ANY_SOURCE,
            tag: ANY_TAG,
            buf: dummy_buf(),
        });
        assert_eq!(st.match_posted(&msg(5, 9)), Some(0));
        assert_eq!(st.match_posted(&msg(4, 9)), Some(1));
        st.posted.remove(1);
        assert_eq!(st.match_posted(&msg(4, 9)), None);
    }

    #[test]
    fn unexpected_matching_is_arrival_order() {
        let mut st = RankState::new(AmpiParams::default());
        st.unexpected.push_back(msg(1, 10));
        st.unexpected.push_back(msg(2, 10));
        assert_eq!(st.match_unexpected(ANY_SOURCE, 10), Some(0));
        assert_eq!(st.match_unexpected(2, ANY_TAG), Some(1));
        assert_eq!(st.match_unexpected(3, 10), None);
    }

    #[test]
    fn copy_cost_scales() {
        let p = AmpiParams::default();
        assert!(p.copy_cost(1 << 20) > p.copy_cost(1 << 10));
        assert_eq!(p.copy_cost(0), 0);
    }
}
