//! # rucx-ampi — Adaptive MPI on the Charm++ runtime
//!
//! An MPI library implemented over [`rucx_charm`] (paper §II-D, §III-C).
//! Each rank is a chare; communication flows through the Charm++ runtime
//! and its UCX machine layer. GPU buffers can be passed directly to
//! `send`/`recv` like any CUDA-aware MPI: the layer detects device pointers
//! with a software cache, wraps them in `CkDeviceBuffer` metadata, ships the
//! data through `LrtsSendDevice`, and posts the receive when the metadata
//! message matches — including the paper's noted limitation that the
//! receive cannot be posted before the metadata arrives.
//!
//! The non-SMP configuration of the paper is reproduced: one rank per PE
//! per GPU (virtualization = 1).

pub mod coll;
pub mod mpi;
pub mod msg;
pub mod rank;

pub use coll::MpiOp;
pub use mpi::{MpiRank, Request};
pub use msg::{
    AmpiMsg, AmpiPayload, Status, ANY_SOURCE, ANY_TAG, MPI_ERR_OTHER, MPI_ERR_TRUNCATE, MPI_SUCCESS,
};
pub use rank::{AmpiParams, RankState};

use rucx_ucp::{MCtx, MSim};

/// SPMD launch: run `body` as one AMPI rank per simulated process.
pub fn launch<F>(sim: &mut MSim, body: F)
where
    F: Fn(&mut MpiRank, &mut MCtx) + Send + Sync + Clone + 'static,
{
    launch_with(sim, AmpiParams::default(), body)
}

/// [`launch`] with explicit AMPI cost parameters.
pub fn launch_with<F>(sim: &mut MSim, params: AmpiParams, body: F)
where
    F: Fn(&mut MpiRank, &mut MCtx) + Send + Sync + Clone + 'static,
{
    let n = sim.world().topo.procs();
    for p in 0..n {
        let body = body.clone();
        let params = params.clone();
        sim.spawn(format!("rank{p}"), 0, move |ctx| {
            let mut rank = MpiRank::create(p, n, params);
            body(&mut rank, ctx);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_fabric::Topology;
    use rucx_gpu::{DeviceId, MemRef};
    use rucx_sim::time::{as_us, us};
    use rucx_sim::RunOutcome;
    use rucx_ucp::{build_sim, MSim, MachineConfig};
    use std::sync::Arc;

    fn sim(nodes: usize) -> MSim {
        build_sim(Topology::summit(nodes), MachineConfig::default())
    }

    fn dev_buf(sim: &mut MSim, dev: u32, size: u64) -> MemRef {
        sim.world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(dev), size, true)
            .unwrap()
    }

    fn host_buf(sim: &mut MSim, node: usize, size: u64) -> MemRef {
        sim.world_mut().gpu.pool.alloc_host(node, size, true, true)
    }

    #[test]
    fn small_host_message_is_inline() {
        let mut sim = sim(1);
        let a = host_buf(&mut sim, 0, 64);
        let b = host_buf(&mut sim, 0, 64);
        sim.world_mut().gpu.pool.write(a, &[7u8; 64]).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => mpi.send(ctx, a, 1, 5),
            1 => {
                let st = mpi.recv(ctx, b, 0, 5);
                assert_eq!(st.size, 64);
                assert_eq!(st.src, 0);
                assert_eq!(st.tag, 5);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), vec![7u8; 64]);
        // No zero-copy rendezvous should have happened for the payload.
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.ipc"), 0);
    }

    #[test]
    fn large_host_message_uses_zero_copy() {
        let mut sim = sim(1);
        let size = 1u64 << 20;
        let a = host_buf(&mut sim, 0, size);
        let b = host_buf(&mut sim, 0, size);
        let data: Vec<u8> = (0..size).map(|i| (i % 127) as u8).collect();
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => mpi.send(ctx, a, 1, 0),
            1 => {
                mpi.recv(ctx, b, 0, 0);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
        // CMA path for the intra-node host zero-copy payload.
        assert!(sim.world().ucp.counters.get("ucp.rndv.cma") >= 1);
    }

    #[test]
    fn device_buffers_go_gpu_direct() {
        let mut sim = sim(2);
        let size = 2u64 << 20;
        let a = dev_buf(&mut sim, 0, size);
        let b = dev_buf(&mut sim, 6, size); // other node
        let data: Vec<u8> = (0..size).map(|i| (i % 241) as u8).collect();
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => mpi.send(ctx, a, 6, 3),
            6 => {
                let st = mpi.recv(ctx, b, 0, 3);
                assert_eq!(st.size, size);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.pipeline"), 1);
    }

    #[test]
    fn unexpected_and_posted_paths_both_work() {
        let mut sim = sim(1);
        let a1 = host_buf(&mut sim, 0, 32);
        let a2 = host_buf(&mut sim, 0, 32);
        let b1 = host_buf(&mut sim, 0, 32);
        let b2 = host_buf(&mut sim, 0, 32);
        sim.world_mut().gpu.pool.write(a1, &[1u8; 32]).unwrap();
        sim.world_mut().gpu.pool.write(a2, &[2u8; 32]).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => {
                // First send arrives before the recv is posted (unexpected);
                // for the second, rank 1 posts early (posted path).
                mpi.send(ctx, a1, 1, 1);
                ctx.advance(us(100.0));
                mpi.send(ctx, a2, 1, 2);
            }
            1 => {
                ctx.advance(us(50.0));
                mpi.recv(ctx, b1, 0, 1);
                mpi.recv(ctx, b2, 0, 2);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b1).unwrap(), vec![1u8; 32]);
        assert_eq!(sim.world().gpu.pool.read(b2).unwrap(), vec![2u8; 32]);
    }

    #[test]
    fn any_source_any_tag() {
        let mut sim = sim(1);
        let bufs: Vec<MemRef> = (0..3).map(|_| host_buf(&mut sim, 0, 8)).collect();
        let recv_bufs: Vec<MemRef> = (0..3).map(|_| host_buf(&mut sim, 0, 8)).collect();
        let b = Arc::new(bufs);
        let rb = Arc::new(recv_bufs);
        launch(&mut sim, move |mpi, ctx| {
            let r = mpi.rank();
            if (1..=3).contains(&r) {
                mpi.send(ctx, b[r - 1], 0, r as i32 * 10);
            } else if r == 0 {
                let mut seen = std::collections::HashSet::new();
                for i in 0..3 {
                    let st = mpi.recv(ctx, rb[i], ANY_SOURCE, ANY_TAG);
                    assert_eq!(st.tag, st.src * 10);
                    seen.insert(st.src);
                }
                assert_eq!(seen.len(), 3);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn window_isend_irecv_waitall_no_deadlock() {
        // Both ranks send a window of large device messages to each other
        // simultaneously, then wait — exercises scheduler pumping inside
        // MPI_Wait (a plain trigger wait would deadlock).
        let mut sim = sim(1);
        let size = 256u64 << 10;
        let window = 8;
        let mut send0 = vec![];
        let mut recv0 = vec![];
        let mut send1 = vec![];
        let mut recv1 = vec![];
        for _ in 0..window {
            send0.push(dev_buf(&mut sim, 0, size));
            recv0.push(dev_buf(&mut sim, 0, size));
            send1.push(dev_buf(&mut sim, 1, size));
            recv1.push(dev_buf(&mut sim, 1, size));
        }
        let (s0, r0, s1, r1) = (
            Arc::new(send0),
            Arc::new(recv0),
            Arc::new(send1),
            Arc::new(recv1),
        );
        launch(&mut sim, move |mpi, ctx| {
            let (sends, recvs, peer) = match mpi.rank() {
                0 => (s0.clone(), r0.clone(), 1usize),
                1 => (s1.clone(), r1.clone(), 0usize),
                _ => return,
            };
            let mut reqs = vec![];
            for i in 0..sends.len() {
                reqs.push(mpi.irecv(ctx, recvs[i], peer as i32, i as i32));
            }
            for (i, s) in sends.iter().enumerate() {
                reqs.push(mpi.isend(ctx, *s, peer, i as i32));
            }
            mpi.waitall(ctx, &reqs);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(
            sim.world().ucp.counters.get("ucp.rndv.ipc"),
            2 * window as u64
        );
    }

    #[test]
    fn large_then_small_from_same_source_stay_ordered() {
        // Regression: a 16 KiB inline payload makes the *envelope* exceed
        // the host eager threshold, so it travels rendezvous and its bytes
        // are re-injected asynchronously — while the next (small) envelope
        // arrives eagerly and used to overtake it. MPI non-overtaking
        // requires the wildcard receives to complete in send order.
        let mut sim = sim(1);
        let big = host_buf(&mut sim, 0, 16 * 1024);
        let small = host_buf(&mut sim, 0, 8);
        let rb1 = host_buf(&mut sim, 0, 16 * 1024);
        let rb2 = host_buf(&mut sim, 0, 16 * 1024);
        sim.world_mut()
            .gpu
            .pool
            .write(big, &vec![0xAB; 16 * 1024])
            .unwrap();
        sim.world_mut().gpu.pool.write(small, &[0xCD; 8]).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => {
                mpi.send(ctx, big, 1, 1);
                mpi.send(ctx, small, 1, 2);
            }
            1 => {
                ctx.advance(us(300.0));
                let st1 = mpi.recv(ctx, rb1, ANY_SOURCE, ANY_TAG);
                let st2 = mpi.recv(ctx, rb2, ANY_SOURCE, ANY_TAG);
                assert_eq!(
                    (st1.tag, st2.tag),
                    (1, 2),
                    "send order violated: got sizes {} then {}",
                    st1.size,
                    st2.size
                );
                assert_eq!(st1.size, 16 * 1024);
                assert_eq!(st2.size, 8);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(rb2).unwrap()[..8], [0xCD; 8]);
    }

    #[test]
    fn inline_truncation_reported_in_status() {
        let mut sim = sim(1);
        let a = host_buf(&mut sim, 0, 64);
        let b = host_buf(&mut sim, 0, 32);
        let data: Vec<u8> = (0..64).collect();
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => mpi.send(ctx, a, 1, 5),
            1 => {
                let st = mpi.recv(ctx, b, 0, 5);
                assert_eq!(st.size, 64, "status reports the full wire size");
                assert_eq!(st.error, MPI_ERR_TRUNCATE);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        // The prefix that fit was delivered intact.
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data[..32]);
    }

    #[test]
    fn zero_copy_truncation_reported_in_status() {
        let mut sim = sim(1);
        let size = 1u64 << 20;
        let a = dev_buf(&mut sim, 0, size);
        let b = dev_buf(&mut sim, 1, size / 2);
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => mpi.send(ctx, a, 1, 0),
            1 => {
                let st = mpi.recv(ctx, b, 0, 0);
                assert_eq!(st.size, size);
                assert_eq!(st.error, MPI_ERR_TRUNCATE);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        // The UCP layer saw (and counted) the same truncation.
        assert_eq!(sim.world().ucp.counters.get("ucp.truncated"), 1);
    }

    #[test]
    fn exact_fit_recv_is_success() {
        let mut sim = sim(1);
        let a = host_buf(&mut sim, 0, 64);
        let b = host_buf(&mut sim, 0, 64);
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => mpi.send(ctx, a, 1, 5),
            1 => {
                let st = mpi.recv(ctx, b, 0, 5);
                assert_eq!(st.error, MPI_SUCCESS);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn probe_status_identifies_the_message_recv_then_matches() {
        // Probe with wildcards, then receive with the returned (src, tag):
        // the receive must complete with the probed message (same size),
        // for every message — probe/recv consistency under FIFO matching.
        let mut sim = sim(1);
        let sbufs: Vec<MemRef> = (1..=3).map(|r| host_buf(&mut sim, 0, 16 * r)).collect();
        let rb = host_buf(&mut sim, 0, 64);
        launch(&mut sim, move |mpi, ctx| {
            let r = mpi.rank();
            if (1..=3).contains(&r) {
                mpi.send(ctx, sbufs[r - 1], 0, r as i32 * 7);
            } else if r == 0 {
                assert!(mpi.iprobe(ctx, 5, 99).is_none());
                for _ in 0..3 {
                    let st = mpi.probe(ctx, ANY_SOURCE, ANY_TAG);
                    let got = mpi.recv(ctx, rb, st.src, st.tag);
                    assert_eq!((got.src, got.tag, got.size), (st.src, st.tag, st.size));
                    assert_eq!(got.size, 16 * st.src as u64);
                }
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let mut sim = sim(1);
        let reached = Arc::new(rucx_compat::sync::Mutex::new(Vec::<(usize, u64)>::new()));
        let reached2 = reached.clone();
        launch(&mut sim, move |mpi, ctx| {
            // Stagger arrival times.
            ctx.advance(us(10.0 * mpi.rank() as f64));
            mpi.barrier(ctx);
            reached2.lock().push((mpi.rank(), ctx.now()));
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let v = reached.lock();
        assert_eq!(v.len(), 6);
        let latest_entry = us(50.0); // slowest rank enters at 50us
        for &(_, t) in v.iter() {
            assert!(t >= latest_entry, "barrier exited before slowest entry");
        }
    }

    #[test]
    fn unreachable_peer_reported_as_mpi_err_other() {
        // A permanent inter-node partition with a small retry budget: the
        // send's MPI_Wait completes (never hangs) and reports the failure
        // as an MPI_ERR_OTHER status instead of succeeding silently.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.partitions.push(rucx_fault::PartitionWindow {
            from: 0,
            until: u64::MAX,
        });
        let mut cfg = MachineConfig::default();
        cfg.ucp.max_retries = 2;
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        let a = dev_buf(&mut sim, 0, 2 << 20);
        let got = Arc::new(rucx_compat::sync::Mutex::new(None));
        let got2 = got.clone();
        launch(&mut sim, move |mpi, ctx| {
            if mpi.rank() == 0 {
                let req = mpi.isend(ctx, a, 6, 3);
                *got2.lock() = mpi.wait(ctx, req);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let st = got.lock().take().expect("failed send must yield a status");
        assert_eq!(st.error, MPI_ERR_OTHER);
        assert_eq!(st.src, 6, "status names the unreachable peer");
        assert_eq!(st.size, 0);
        assert!(sim.world().ucp.counters.get("ucp.unreachable") >= 1);
    }

    #[test]
    fn chaos_drop_run_still_delivers_correct_data() {
        // 30% drop on every link: AMPI traffic (inline envelopes + zero-copy
        // rendezvous) is fully recovered by the reliability layer.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.seed = 23;
        spec.drop_p = 0.3;
        let mut cfg = MachineConfig::default();
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        let size = 1u64 << 20;
        let small = host_buf(&mut sim, 0, 64);
        let big = dev_buf(&mut sim, 0, size);
        let rb_small = host_buf(&mut sim, 1, 64);
        let rb_big = dev_buf(&mut sim, 6, size);
        sim.world_mut().gpu.pool.write(small, &[0x5A; 64]).unwrap();
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let d2 = data.clone();
        sim.world_mut().gpu.pool.write(big, &d2).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => {
                let r1 = mpi.isend(ctx, small, 6, 1);
                assert!(mpi.wait(ctx, r1).is_none());
                let r2 = mpi.isend(ctx, big, 6, 2);
                assert!(mpi.wait(ctx, r2).is_none());
            }
            6 => {
                assert_eq!(mpi.recv(ctx, rb_small, 0, 1).error, MPI_SUCCESS);
                assert_eq!(mpi.recv(ctx, rb_big, 0, 2).error, MPI_SUCCESS);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(rb_small).unwrap(), vec![0x5A; 64]);
        assert_eq!(sim.world().gpu.pool.read(rb_big).unwrap(), data);
        assert!(sim.world().ucp.counters.get("fault.drop") > 0);
        assert_eq!(sim.world().ucp.counters.get("ucp.unreachable"), 0);
    }

    #[test]
    fn isend_from_freed_handle_reports_mpi_err_other() {
        // Freeing a buffer and then sending it is a caller error; the rank
        // must survive it and report MPI_ERR_OTHER at MPI_Wait, not crash.
        let mut sim = sim(1);
        let a = host_buf(&mut sim, 0, 64);
        let got = Arc::new(rucx_compat::sync::Mutex::new(None));
        let got2 = got.clone();
        launch(&mut sim, move |mpi, ctx| {
            if mpi.rank() == 0 {
                ctx.with_world(move |w, _| w.gpu.pool.free(a.id).unwrap());
                let req = mpi.isend(ctx, a, 1, 9);
                *got2.lock() = mpi.wait(ctx, req);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let st = got.lock().take().expect("bad-handle send yields a status");
        assert_eq!(st.error, MPI_ERR_OTHER);
        assert_eq!(st.size, 0);
    }

    #[test]
    fn ping_pong_latency_in_ampi_range() {
        // Small device message one-way latency should land in the ~8-12us
        // band the paper attributes to AMPI (vs ~2-3us for OpenMPI).
        let mut sim = sim(1);
        let a = dev_buf(&mut sim, 0, 8);
        let b = dev_buf(&mut sim, 1, 8);
        let out = Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let out2 = out.clone();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => {
                let iters = 20;
                let t0 = ctx.now();
                for i in 0..iters {
                    mpi.send(ctx, a, 1, i);
                    mpi.recv(ctx, a, 1, i);
                }
                *out2.lock() = (ctx.now() - t0) / (2 * iters as u64);
            }
            1 => {
                for i in 0..20 {
                    mpi.recv(ctx, b, 0, i);
                    mpi.send(ctx, b, 0, i);
                }
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let lat = *out.lock();
        assert!(
            lat > us(5.0) && lat < us(16.0),
            "AMPI small-device latency {}us out of expected band",
            as_us(lat)
        );
    }
}
