//! The user-facing MPI interface of AMPI: blocking and non-blocking
//! point-to-point, barrier, and timing, with transparent GPU-awareness —
//! device buffers can be passed to `send`/`recv` directly, like any
//! CUDA-aware MPI implementation (§III-C).

use std::collections::{HashMap, HashSet};

use rucx_charm::{ChareRef, Collection, EpId, Msg, Pe};
use rucx_gpu::MemRef;
use rucx_sim::sched::Trigger;
use rucx_ucp::MCtx;

use crate::msg::{AmpiMsg, AmpiPayload, Status};
use crate::rank::{status_into, status_of, AmpiParams, PostedRecv, RankState, SlotState};

/// A non-blocking communication request.
#[derive(Debug, Clone, Copy)]
pub enum Request {
    /// An in-flight send; `None` means already complete (eager/inline).
    Send(Option<Trigger>),
    /// A receive request identified by its slot.
    Recv(u64),
}

/// One AMPI rank: owns the PE runtime (non-SMP, one rank per PE, matching
/// the paper's configuration) and provides the MPI API.
pub struct MpiRank {
    pub pe: Pe,
    rank: usize,
    nranks: usize,
    col: Collection,
    ep_msg: EpId,
    ep_barrier: EpId,
    next_slot: u64,
    params: AmpiParams,
    /// Software cache of addresses known to be on the GPU (§III-C1).
    gpu_cache: HashSet<u64>,
    /// Next send-sequence number per destination rank (stamped into every
    /// outgoing message so the receiver can restore send order).
    send_seq: HashMap<usize, u64>,
}

impl MpiRank {
    /// This rank's index in `MPI_COMM_WORLD`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// `MPI_Wtime` (virtual seconds).
    pub fn wtime(&self, ctx: &MCtx) -> f64 {
        rucx_sim::time::as_secs(ctx.now())
    }

    /// Set up the AMPI runtime on one PE. Used by [`crate::launch`]; direct
    /// use is for custom harnesses.
    pub fn create(pe_index: usize, n_pes: usize, params: AmpiParams) -> Self {
        let mut pe = Pe::new(pe_index, n_pes);
        let n = n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        // Entry method 0: AMPI message (metadata or inline payload).
        let ep_msg = pe.register_ep(
            col,
            None,
            Box::new(move |chare, msg: &Msg, pe, ctx| {
                // Invariant: this collection only ever holds RankState
                // chares (inserted a few lines below).
                let st = chare.downcast_mut::<RankState>().expect("rank state");
                handle_ampi_msg(st, msg, pe, ctx);
            }),
        );
        // Entry method 1: barrier release.
        let ep_barrier = pe.register_ep(
            col,
            None,
            Box::new(move |chare, _msg, _pe, _ctx| {
                // Invariant: same collection, same RankState-only contents.
                let st = chare.downcast_mut::<RankState>().expect("rank state");
                st.barrier_epoch += 1;
            }),
        );
        pe.insert_chare(
            col,
            pe_index as u64,
            Box::new(RankState::new(params.clone())),
        );
        // Reliability give-ups surface as MPI_ERR_OTHER statuses: queue
        // them at the rank and let MPI_Wait report them.
        let idx = pe_index as u64;
        pe.set_default_error_handler(Box::new(move |err, pe, _ctx| {
            pe.chare_mut::<RankState>(col, idx)
                .comm_errors
                .push_back(err.clone());
        }));
        MpiRank {
            pe,
            rank: pe_index,
            nranks: n_pes,
            col,
            ep_msg,
            ep_barrier,
            next_slot: 1,
            params,
            gpu_cache: HashSet::new(),
            send_seq: HashMap::new(),
        }
    }

    fn state(&mut self) -> &mut RankState {
        let (col, idx) = (self.col, self.rank as u64);
        self.pe.chare_mut::<RankState>(col, idx)
    }

    /// Model the GPU-pointer detection with its software cache. `None`
    /// when the handle is stale (freed before the send was posted).
    fn detect_device(&mut self, ctx: &mut MCtx, buf: MemRef) -> Option<bool> {
        let is_dev = ctx
            .with_world_ref(|w, _| w.gpu.pool.kind(buf.id).map(|k| k.is_device()))
            .ok()?;
        if is_dev && self.gpu_cache.contains(&buf.id.0) {
            ctx.advance(self.params.cache_hit);
        } else {
            ctx.advance(self.params.cache_miss);
            if is_dev {
                self.gpu_cache.insert(buf.id.0);
            }
        }
        Some(is_dev)
    }

    /// `MPI_Isend`: non-blocking standard send.
    pub fn isend(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) -> Request {
        ctx.advance(self.params.send_overhead);
        let Some(is_dev) = self.detect_device(ctx, buf) else {
            // Freed-before-send is a caller error, not a crash: MPI_Wait
            // on this request reports MPI_ERR_OTHER.
            let me = self.rank;
            self.state()
                .comm_errors
                .push_back(rucx_ucp::UcpError::InvalidHandle {
                    op: "MPI_Isend",
                    proc: me,
                });
            return Request::Send(None);
        };
        let payload_inline = !is_dev && buf.len <= self.params.inline_max;
        let (payload, trig) = if payload_inline {
            let copy = self.params.copy_cost(buf.len);
            ctx.advance(copy);
            let bytes = ctx.with_world_ref(|w, _| {
                w.gpu
                    .pool
                    .is_materialized(buf.id)
                    .unwrap_or(false)
                    .then(|| w.gpu.pool.read(buf).expect("inline read"))
            });
            (
                AmpiPayload::Inline {
                    bytes,
                    size: buf.len,
                },
                None,
            )
        } else {
            // Zero Copy path: CkDeviceBuffer created, buffer handed to the
            // machine layer, ML tag stored in the metadata (Fig. 7).
            let (ml_tag, trig) = self.pe.ml_send_device(ctx, dst, buf, true);
            (
                AmpiPayload::ZeroCopy {
                    ml_tag,
                    size: buf.len,
                },
                trig,
            )
        };
        let seq = {
            let c = self.send_seq.entry(dst).or_insert(0);
            let seq = *c;
            *c += 1;
            seq
        };
        let m = AmpiMsg {
            src_rank: self.rank as u32,
            tag,
            seq,
            payload,
        };
        let col = self.col;
        let ep = self.ep_msg;
        self.pe.send(
            ctx,
            ChareRef {
                col,
                index: dst as u64,
            },
            ep,
            m.encode(),
            0,
            vec![],
        );
        Request::Send(trig)
    }

    /// `MPI_Send`: blocking standard send.
    pub fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) {
        let req = self.isend(ctx, buf, dst, tag);
        self.wait(ctx, req);
    }

    /// `MPI_Irecv`: non-blocking receive.
    pub fn irecv(&mut self, ctx: &mut MCtx, buf: MemRef, src: i32, tag: i32) -> Request {
        ctx.advance(self.params.recv_overhead);
        let slot = self.next_slot;
        self.next_slot += 1;
        // Fast path: already in the unexpected queue?
        let matched = {
            let st = self.state();
            st.match_unexpected(src, tag)
                // Invariant: the index came from match_unexpected on the
                // same queue with no intervening mutation.
                .map(|i| st.unexpected.remove(i).expect("matched msg"))
        };
        match matched {
            Some(msg) => {
                let status = status_into(&msg, &buf);
                match msg.payload {
                    AmpiPayload::Inline { bytes, size } => {
                        deliver_inline(ctx, &self.params, buf, bytes, size);
                        self.state().slots.insert(slot, SlotState::Done { status });
                    }
                    AmpiPayload::ZeroCopy { ml_tag, size } => {
                        let n = size.min(buf.len);
                        let trigger = self.pe.ml_recv_device(ctx, ml_tag, buf.slice(0, n));
                        self.state()
                            .slots
                            .insert(slot, SlotState::Matched { trigger, status });
                    }
                }
            }
            None => {
                let st = self.state();
                st.slots.insert(slot, SlotState::Pending);
                st.posted.push(PostedRecv {
                    slot,
                    src,
                    tag,
                    buf,
                });
            }
        }
        Request::Recv(slot)
    }

    /// `MPI_Recv`: blocking receive. Returns the completion status.
    pub fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: i32, tag: i32) -> Status {
        let req = self.irecv(ctx, buf, src, tag);
        // Invariant: wait on a Recv request always yields a status.
        self.wait(ctx, req).expect("recv yields a status")
    }

    /// Drain one pending communication failure into an `MPI_ERR_OTHER`
    /// status. Pulls errors still sitting at the UCP worker first (the PE
    /// scheduler may not have stepped since the failure was recorded).
    /// `src`/`tag` identify the failing *operation's* endpoint when known
    /// from the error, else wildcards.
    pub fn take_comm_error(&mut self, ctx: &mut MCtx) -> Option<Status> {
        let me = self.rank;
        while let Some(e) = ctx.with_world(move |w, _| w.ucp.take_worker_error(me)) {
            self.state().comm_errors.push_back(e);
        }
        let err = self.state().comm_errors.pop_front()?;
        let (src, tag) = match &err {
            rucx_ucp::UcpError::EndpointTimeout { dst, .. } => (*dst as i32, crate::msg::ANY_TAG),
            _ => (crate::msg::ANY_SOURCE, crate::msg::ANY_TAG),
        };
        Some(Status {
            src,
            tag,
            size: 0,
            error: crate::msg::MPI_ERR_OTHER,
        })
    }

    /// `MPI_Wait`: block until the request completes, pumping the scheduler
    /// (the PE keeps delivering messages while this rank waits).
    ///
    /// A completed *send* normally yields `None`; when the reliability
    /// layer abandoned the transfer, the failure is reported here as a
    /// status with [`crate::msg::MPI_ERR_OTHER`].
    pub fn wait(&mut self, ctx: &mut MCtx, req: Request) -> Option<Status> {
        match req {
            Request::Send(None) => self.take_comm_error(ctx),
            Request::Send(Some(t)) => {
                self.pe
                    .pump_until(ctx, move |_, ctx| ctx.with_world_ref(|_, s| s.fired(t)));
                ctx.with_world(move |_, s| s.recycle_trigger(t));
                self.take_comm_error(ctx)
            }
            Request::Recv(slot) => {
                let (col, idx) = (self.col, self.rank as u64);
                self.pe.pump_until(ctx, move |pe, _| {
                    !matches!(
                        pe.chare_mut::<RankState>(col, idx).slots.get(&slot),
                        Some(SlotState::Pending)
                    )
                });
                // Invariant: irecv created the slot and nothing removes
                // it before wait consumes it here.
                let state = *self.state().slots.get(&slot).expect("slot");
                let status = match state {
                    SlotState::Pending => unreachable!(),
                    SlotState::Done { status } => status,
                    SlotState::Matched { trigger, status } => {
                        self.pe.pump_until(ctx, move |_, ctx| {
                            ctx.with_world_ref(|_, s| s.fired(trigger))
                        });
                        ctx.with_world(move |_, s| s.recycle_trigger(trigger));
                        status
                    }
                };
                self.state().slots.remove(&slot);
                Some(status)
            }
        }
    }

    /// `MPI_Waitall`.
    pub fn waitall(&mut self, ctx: &mut MCtx, reqs: &[Request]) {
        for &r in reqs {
            self.wait(ctx, r);
        }
    }

    /// `MPI_Sendrecv`: simultaneous send and receive without deadlock.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        ctx: &mut MCtx,
        send_buf: MemRef,
        dst: usize,
        send_tag: i32,
        recv_buf: MemRef,
        src: i32,
        recv_tag: i32,
    ) -> Status {
        let r = self.irecv(ctx, recv_buf, src, recv_tag);
        let s = self.isend(ctx, send_buf, dst, send_tag);
        // Invariant: wait on a Recv request always yields a status.
        let status = self.wait(ctx, r).expect("recv status");
        self.wait(ctx, s);
        status
    }

    /// `MPI_Iprobe`: non-blocking check for a matching message. Pumps the
    /// scheduler once so pending metadata gets a chance to land.
    pub fn iprobe(&mut self, ctx: &mut MCtx, src: i32, tag: i32) -> Option<Status> {
        self.pe.try_step(ctx);
        let st = self.state();
        st.match_unexpected(src, tag)
            .map(|i| crate::rank::status_of(&st.unexpected[i]))
    }

    /// `MPI_Probe`: block until a matching message is available (without
    /// receiving it). The returned status identifies a concrete message: a
    /// subsequent `recv(status.src, status.tag)` receives *that* message
    /// (FIFO matching makes the probed message the first match).
    pub fn probe(&mut self, ctx: &mut MCtx, src: i32, tag: i32) -> Status {
        let (col, idx) = (self.col, self.rank() as u64);
        loop {
            self.pe.pump_until(ctx, move |pe, _| {
                pe.chare_mut::<RankState>(col, idx)
                    .match_unexpected(src, tag)
                    .is_some()
            });
            // Re-match rather than assuming the wakeup's message is still
            // queued: a message can be consumed between the predicate pass
            // and this read once probes and receives interleave.
            let st = self.state();
            if let Some(i) = st.match_unexpected(src, tag) {
                return status_of(&st.unexpected[i]);
            }
        }
    }

    /// `MPI_Barrier` over `MPI_COMM_WORLD`.
    pub fn barrier(&mut self, ctx: &mut MCtx) {
        let old = self.state().barrier_epoch;
        let (col, ep) = (self.col, self.ep_barrier);
        let elem = self.rank as u64;
        self.pe.contribute(
            ctx,
            col,
            elem,
            rucx_charm::RedOp::Barrier,
            0.0,
            rucx_charm::RedTarget::Broadcast(col, ep),
        );
        let idx = self.rank as u64;
        self.pe.pump_until(ctx, move |pe, _| {
            pe.chare_mut::<RankState>(col, idx).barrier_epoch > old
        });
    }
}

/// Copy an inline payload into the receive buffer.
fn deliver_inline(
    ctx: &mut MCtx,
    params: &AmpiParams,
    buf: MemRef,
    bytes: Option<Vec<u8>>,
    size: u64,
) {
    ctx.advance(params.copy_cost(size));
    if let Some(b) = bytes {
        let n = (buf.len as usize).min(b.len());
        ctx.with_world(move |w, _| {
            w.gpu
                .pool
                // Invariant: posted-receive buffers stay owned by the rank
                // until the matching wait, and the slice is clamped to the
                // buffer length, so the write cannot fail.
                .write(buf.slice(0, n as u64), &b[..n])
                .expect("inline deliver")
        });
    }
}

/// Entry-method handler: an AMPI message arrived at this rank.
///
/// Envelopes may complete out of send order at the machine layer: a large
/// envelope goes rendezvous and its bytes are re-injected asynchronously,
/// while a later small envelope arrives eagerly and is dispatched first.
/// MPI's non-overtaking rule is restored here with the sender-stamped
/// sequence number: an envelope from source `s` is matched only when every
/// earlier envelope from `s` has been matched; early arrivals wait in the
/// reorder stash.
fn handle_ampi_msg(st: &mut RankState, msg: &Msg, pe: &mut Pe, ctx: &mut MCtx) {
    ctx.advance(st.params.recv_overhead);
    let am = AmpiMsg::decode(&msg.params);
    let src = am.src_rank;
    let expected = *st.next_recv_seq.get(&src).unwrap_or(&0);
    if am.seq != expected {
        debug_assert!(am.seq > expected, "duplicate AMPI envelope");
        st.reorder_stash.push(am);
        return;
    }
    accept_msg(st, am, pe, ctx);
    // The gap closed: release consecutively-sequenced stashed envelopes.
    loop {
        // Invariant: accept_msg above bumped next_recv_seq[src].
        let next = *st.next_recv_seq.get(&src).expect("seq just advanced");
        let Some(i) = st
            .reorder_stash
            .iter()
            .position(|m| m.src_rank == src && m.seq == next)
        else {
            break;
        };
        let held = st.reorder_stash.swap_remove(i);
        accept_msg(st, held, pe, ctx);
    }
}

/// Match one in-order message against the posted queue (or park it as
/// unexpected).
fn accept_msg(st: &mut RankState, am: AmpiMsg, pe: &mut Pe, ctx: &mut MCtx) {
    *st.next_recv_seq.entry(am.src_rank).or_insert(0) = am.seq + 1;
    match st.match_posted(&am) {
        Some(i) => {
            let p = st.posted.remove(i);
            let status = status_into(&am, &p.buf);
            match am.payload {
                AmpiPayload::Inline { bytes, size } => {
                    deliver_inline(ctx, &st.params, p.buf, bytes, size);
                    st.slots.insert(p.slot, SlotState::Done { status });
                }
                AmpiPayload::ZeroCopy { ml_tag, size } => {
                    // The receive for the GPU data can only be posted now
                    // that the metadata has arrived (the delay the paper
                    // discusses in §III and plans to eliminate). Clamp to
                    // the posted buffer; `status` carries the truncation.
                    let n = size.min(p.buf.len);
                    let trigger = pe.ml_recv_device(ctx, ml_tag, p.buf.slice(0, n));
                    st.slots
                        .insert(p.slot, SlotState::Matched { trigger, status });
                }
            }
        }
        None => {
            let (me, seq, size) = (pe.index as u32, am.seq, am.payload.size());
            ctx.with_world(move |_, s| s.trace_instant("ampi.unexpected.enqueue", me, seq, size));
            st.unexpected.push_back(am);
        }
    }
}
