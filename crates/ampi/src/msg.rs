//! AMPI message representation (paper §III-C).
//!
//! An AMPI message is a Charm++ message carrying MPI-specific metadata: the
//! source rank, the user's MPI tag, and either the payload itself (small
//! host buffers, packed eagerly into the message) or a zero-copy descriptor
//! — the machine-layer tag of a buffer sent separately through
//! `LrtsSendDevice`. Note the machine-layer tag is distinct from the MPI
//! tag, exactly as the paper describes.

use rucx_charm::marshal::{self, Reader};

/// MPI wildcard source.
pub const ANY_SOURCE: i32 = -1;
/// MPI wildcard tag.
pub const ANY_TAG: i32 = -1;
/// Receive completed normally.
pub const MPI_SUCCESS: i32 = 0;
/// The message was longer than the posted receive buffer; only the
/// buffer-sized prefix was delivered.
pub const MPI_ERR_TRUNCATE: i32 = 15;
/// A communication operation failed: the UCP reliability layer exhausted
/// its retransmission budget (peer unreachable) or a rendezvous could not
/// be completed.
pub const MPI_ERR_OTHER: i32 = 16;

/// How the payload travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmpiPayload {
    /// Packed in the message (eager path for small host buffers). `bytes`
    /// is `None` when the source buffer was phantom.
    Inline { bytes: Option<Vec<u8>>, size: u64 },
    /// Sent separately through the machine layer under `ml_tag`
    /// (Zero Copy API: large host buffers and all device buffers).
    ZeroCopy { ml_tag: u64, size: u64 },
}

impl AmpiPayload {
    pub fn size(&self) -> u64 {
        match self {
            AmpiPayload::Inline { size, .. } | AmpiPayload::ZeroCopy { size, .. } => *size,
        }
    }
}

/// A decoded AMPI message (the metadata that rides in the Charm++ message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmpiMsg {
    pub src_rank: u32,
    pub tag: i32,
    /// Per-(sender, receiver) send sequence number. The machine layer may
    /// complete a large (rendezvous) envelope *after* a later small (eager)
    /// one; the receiver uses this to restore MPI's non-overtaking order
    /// before matching.
    pub seq: u64,
    pub payload: AmpiPayload,
}

impl AmpiMsg {
    /// Serialize into entry-method parameter bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        marshal::put_u32(&mut b, self.src_rank);
        marshal::put_i64(&mut b, self.tag as i64);
        marshal::put_u64(&mut b, self.seq);
        match &self.payload {
            AmpiPayload::Inline { bytes, size } => {
                marshal::put_u8(&mut b, 0);
                marshal::put_u64(&mut b, *size);
                match bytes {
                    Some(d) => {
                        marshal::put_u8(&mut b, 1);
                        marshal::put_bytes(&mut b, d);
                    }
                    None => marshal::put_u8(&mut b, 0),
                }
            }
            AmpiPayload::ZeroCopy { ml_tag, size } => {
                marshal::put_u8(&mut b, 1);
                marshal::put_u64(&mut b, *ml_tag);
                marshal::put_u64(&mut b, *size);
            }
        }
        b
    }

    /// Deserialize from entry-method parameter bytes.
    pub fn decode(params: &[u8]) -> AmpiMsg {
        let mut r = Reader(params);
        let src_rank = r.u32();
        let tag = r.i64() as i32;
        let seq = r.u64();
        let payload = match r.u8() {
            0 => {
                let size = r.u64();
                let bytes = match r.u8() {
                    1 => Some(r.bytes().to_vec()),
                    _ => None,
                };
                AmpiPayload::Inline { bytes, size }
            }
            1 => AmpiPayload::ZeroCopy {
                ml_tag: r.u64(),
                size: r.u64(),
            },
            k => panic!("bad AMPI payload kind {k}"),
        };
        AmpiMsg {
            src_rank,
            tag,
            seq,
            payload,
        }
    }
}

/// MPI receive matching: wildcards per the MPI standard.
pub fn recv_matches(want_src: i32, want_tag: i32, msg: &AmpiMsg) -> bool {
    (want_src == ANY_SOURCE || want_src as u32 == msg.src_rank)
        && (want_tag == ANY_TAG || want_tag == msg.tag)
}

/// Completion status of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    pub src: i32,
    pub tag: i32,
    /// Wire size of the matched message (may exceed the receive buffer —
    /// see `error`).
    pub size: u64,
    /// [`MPI_SUCCESS`], or [`MPI_ERR_TRUNCATE`] when the message was
    /// longer than the posted buffer.
    pub error: i32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_roundtrip() {
        let m = AmpiMsg {
            src_rank: 3,
            tag: 42,
            seq: 17,
            payload: AmpiPayload::Inline {
                bytes: Some(vec![1, 2, 3]),
                size: 3,
            },
        };
        assert_eq!(AmpiMsg::decode(&m.encode()), m);
    }

    #[test]
    fn phantom_inline_roundtrip() {
        let m = AmpiMsg {
            src_rank: 0,
            tag: -5,
            seq: 0,
            payload: AmpiPayload::Inline {
                bytes: None,
                size: 4096,
            },
        };
        assert_eq!(AmpiMsg::decode(&m.encode()), m);
    }

    #[test]
    fn zerocopy_roundtrip() {
        let m = AmpiMsg {
            src_rank: 1535,
            tag: i32::MAX,
            seq: u64::MAX,
            payload: AmpiPayload::ZeroCopy {
                ml_tag: 0x2FFF_FFFF_0000_0001,
                size: 4 << 20,
            },
        };
        assert_eq!(AmpiMsg::decode(&m.encode()), m);
    }

    #[test]
    fn wildcard_matching() {
        let m = AmpiMsg {
            src_rank: 2,
            tag: 7,
            seq: 0,
            payload: AmpiPayload::Inline {
                bytes: None,
                size: 0,
            },
        };
        assert!(recv_matches(2, 7, &m));
        assert!(recv_matches(ANY_SOURCE, 7, &m));
        assert!(recv_matches(2, ANY_TAG, &m));
        assert!(recv_matches(ANY_SOURCE, ANY_TAG, &m));
        assert!(!recv_matches(3, 7, &m));
        assert!(!recv_matches(2, 8, &m));
    }
}
