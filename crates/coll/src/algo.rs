//! The pluggable collective algorithms, written once over [`CollComm`].
//!
//! Every edge of every schedule is one GPU-aware point-to-point message,
//! so the full eager/rendezvous/IPC/pipeline machinery applies per hop;
//! local combining is the shared [`crate::op::combine`] model. All loops
//! are deterministic functions of (rank, nranks, topology) — no clocks, no
//! randomness — which is what makes cross-model conformance and the CI
//! byte-identical-JSON gates possible.

use rucx_gpu::MemRef;
use rucx_ucp::MCtx;

use crate::op::{combine, ReduceOp};
use crate::tags::*;
use crate::{send_counted, sendrecv_counted, stream_of, CollComm};

/// Node-major rank groups of the collective (ranks `0..n` under the SPMD
/// identity mapping), each sorted ascending; group order follows the
/// lowest rank in the group.
pub(crate) fn node_groups(ctx: &mut MCtx, n: usize) -> Vec<Vec<usize>> {
    ctx.with_world_ref(|w, _| {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for r in 0..n {
            let node = w.topo.node_of(r);
            if node >= groups.len() {
                groups.resize(node + 1, Vec::new());
            }
            groups[node].push(r);
        }
        groups.retain(|g| !g.is_empty());
        groups
    })
}

/// Binomial-tree broadcast among `members` (sorted global ranks), rooted
/// at `members[root_idx]`.
fn bcast_among<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    members: &[usize],
    root_idx: usize,
    tag: i32,
) {
    let p = members.len();
    if p <= 1 {
        return;
    }
    let me = c.rank();
    // Invariant: callers only invoke this for their own group.
    let li = members.binary_search(&me).expect("rank not in group");
    let vrank = (li + p - root_idx) % p;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let parent = members[(vrank - mask + root_idx) % p];
            c.recv(ctx, buf, parent, tag);
            break;
        }
        mask <<= 1;
    }
    let mut child = mask >> 1;
    while child > 0 {
        let vchild = vrank + child;
        if vchild < p {
            let dst = members[(vchild + root_idx) % p];
            send_counted(c, ctx, buf, dst, tag);
        }
        child >>= 1;
    }
}

/// Flat binomial-tree broadcast from global rank `root`.
pub fn bcast_binomial<C: CollComm>(c: &mut C, ctx: &mut MCtx, buf: MemRef, root: usize) {
    let members: Vec<usize> = (0..c.nranks()).collect();
    bcast_among(c, ctx, buf, &members, root, TAG_BCAST)
}

/// Hierarchical broadcast: the root hands the payload to its node leader,
/// leaders relay it across nodes (binomial over leaders), then each leader
/// broadcasts within its node over NVLink/X-Bus.
pub fn bcast_hier<C: CollComm>(c: &mut C, ctx: &mut MCtx, buf: MemRef, root: usize) {
    let n = c.nranks();
    let me = c.rank();
    let groups = node_groups(ctx, n);
    if groups.len() <= 1 {
        return bcast_binomial(c, ctx, buf, root);
    }
    let my_gi = groups
        .iter()
        .position(|g| g.binary_search(&me).is_ok())
        .expect("rank not in any node group");
    let leader = groups[my_gi][0];
    let root_gi = groups
        .iter()
        .position(|g| g.binary_search(&root).is_ok())
        .expect("root not in any node group");
    let root_leader = groups[root_gi][0];
    // Hand the payload from the root to its node leader if they differ.
    if root != root_leader {
        if me == root {
            send_counted(c, ctx, buf, root_leader, TAG_BCAST);
        } else if me == root_leader {
            c.recv(ctx, buf, root, TAG_BCAST);
        }
    }
    // Leaders relay across nodes.
    if me == leader {
        let leaders: Vec<usize> = groups.iter().map(|g| g[0]).collect();
        bcast_among(c, ctx, buf, &leaders, root_gi, TAG_BCAST);
    }
    // Intra-node broadcast from each leader.
    bcast_among(c, ctx, buf, &groups[my_gi], 0, TAG_HIER_BCAST)
}

/// Recursive-doubling allreduce among `members` (sorted global ranks),
/// with fold-in/fold-out for non-power-of-two group sizes.
fn rd_among<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
    members: &[usize],
) {
    let p = members.len();
    if p <= 1 {
        return;
    }
    let me = c.rank();
    let li = members.binary_search(&me).expect("rank not in group");
    let stream = stream_of(ctx, me);
    let p2 = p.next_power_of_two() / if p.is_power_of_two() { 1 } else { 2 };
    let extra = p - p2;
    // Fold-in: the trailing `extra` ranks park their contribution.
    if li >= p2 {
        send_counted(c, ctx, buf, members[li - p2], TAG_FOLD_IN);
    } else if li < extra {
        c.recv(ctx, scratch, members[li + p2], TAG_FOLD_IN);
        combine(ctx, buf, scratch, op, stream);
    }
    // Butterfly exchange among the first p2 ranks.
    if li < p2 {
        let mut mask = 1usize;
        while mask < p2 {
            let partner = members[li ^ mask];
            sendrecv_counted(
                c,
                ctx,
                buf,
                partner,
                TAG_EXCHANGE,
                scratch,
                partner,
                TAG_EXCHANGE,
            );
            combine(ctx, buf, scratch, op, stream);
            mask <<= 1;
        }
    }
    // Fold-out: hand the full result back.
    if li < extra {
        send_counted(c, ctx, buf, members[li + p2], TAG_FOLD_OUT);
    } else if li >= p2 {
        c.recv(ctx, buf, members[li - p2], TAG_FOLD_OUT);
    }
}

/// Flat recursive-doubling allreduce over all ranks.
pub fn allreduce_rd<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
) {
    let members: Vec<usize> = (0..c.nranks()).collect();
    rd_among(c, ctx, buf, scratch, op, &members)
}

/// Byte offset/length of ring segment `s` of `n` over an `len`-byte `f64`
/// payload: 8-byte aligned, remainder spread over the leading segments.
fn ring_seg(len: u64, n: u64, s: u64) -> (u64, u64) {
    let elems = len / 8;
    let base = elems / n;
    let rem = elems % n;
    let off = s * base + s.min(rem);
    let cnt = base + u64::from(s < rem);
    (off * 8, cnt * 8)
}

/// Ring allreduce: bandwidth-optimal reduce-scatter + allgather over
/// 8-byte-aligned segments. Requires at least one element per rank
/// (the dispatcher degrades smaller payloads to recursive doubling).
pub fn allreduce_ring<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
) {
    let n = c.nranks() as u64;
    if n <= 1 {
        return;
    }
    let me = c.rank() as u64;
    let stream = stream_of(ctx, me as usize);
    let right = ((me + 1) % n) as usize;
    let left = ((me + n - 1) % n) as usize;
    // Reduce-scatter: after n-1 steps, this rank owns the full reduction
    // of segment (me + 1) % n.
    for k in 0..n - 1 {
        let s_send = (me + n - k) % n;
        let s_recv = (me + n - k - 1) % n;
        let (so, sl) = ring_seg(buf.len, n, s_send);
        let (ro, rl) = ring_seg(buf.len, n, s_recv);
        sendrecv_counted(
            c,
            ctx,
            buf.slice(so, sl),
            right,
            TAG_RING_RS,
            scratch.slice(ro, rl),
            left,
            TAG_RING_RS,
        );
        combine(ctx, buf.slice(ro, rl), scratch.slice(ro, rl), op, stream);
    }
    // Allgather: circulate the owned segments.
    for k in 0..n - 1 {
        let s_send = (me + 1 + n - k) % n;
        let s_recv = (me + n - k) % n;
        let (so, sl) = ring_seg(buf.len, n, s_send);
        let (ro, rl) = ring_seg(buf.len, n, s_recv);
        sendrecv_counted(
            c,
            ctx,
            buf.slice(so, sl),
            right,
            TAG_RING_AG,
            buf.slice(ro, rl),
            left,
            TAG_RING_AG,
        );
    }
}

/// Hierarchical NVLink-aware allreduce: gather+reduce to one leader per
/// node over the intra-node links, recursive doubling among leaders over
/// the inter-node links, then an intra-node broadcast of the result.
pub fn allreduce_hier<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
) {
    let n = c.nranks();
    let me = c.rank();
    let groups = node_groups(ctx, n);
    if groups.len() <= 1 {
        return allreduce_rd(c, ctx, buf, scratch, op);
    }
    let my_gi = groups
        .iter()
        .position(|g| g.binary_search(&me).is_ok())
        .expect("rank not in any node group");
    let group = groups[my_gi].clone();
    let leader = group[0];
    let stream = stream_of(ctx, me);
    // Phase 1: reduce to the node leader. Contributions arrive in rank
    // order so the floating-point combine order is deterministic.
    if me == leader {
        for &r in &group[1..] {
            c.recv(ctx, scratch, r, TAG_HIER_GATHER);
            combine(ctx, buf, scratch, op, stream);
        }
    } else {
        send_counted(c, ctx, buf, leader, TAG_HIER_GATHER);
    }
    // Phase 2: one flow per node crosses the network.
    if me == leader {
        let leaders: Vec<usize> = groups.iter().map(|g| g[0]).collect();
        rd_among(c, ctx, buf, scratch, op, &leaders);
    }
    // Phase 3: fan the result back out over NVLink/X-Bus.
    bcast_among(c, ctx, buf, &group, 0, TAG_HIER_BCAST)
}

/// Rooted binomial-tree reduce; the result lands in `buf` on `root`.
pub fn reduce_binomial<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
    root: usize,
) {
    assert_eq!(buf.len, scratch.len, "scratch must match buffer size");
    assert_eq!(buf.len % 8, 0, "f64 payload");
    let n = c.nranks();
    if n <= 1 {
        return;
    }
    let me = c.rank();
    let stream = stream_of(ctx, me);
    let vrank = (me + n - root) % n;
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask == 0 {
            let vchild = vrank | mask;
            if vchild < n {
                let child = (vchild + root) % n;
                c.recv(ctx, scratch, child, TAG_REDUCE);
                combine(ctx, buf, scratch, op, stream);
            }
        } else {
            let parent = (vrank - mask + root) % n;
            send_counted(c, ctx, buf, parent, TAG_REDUCE);
            break;
        }
        mask <<= 1;
    }
}

/// Dissemination barrier over small token buffers.
pub fn barrier_dissemination<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    token: MemRef,
    scratch: MemRef,
) {
    let n = c.nranks();
    let me = c.rank();
    let mut mask = 1usize;
    while mask < n {
        let to = (me + mask) % n;
        let from = (me + n - mask) % n;
        sendrecv_counted(c, ctx, token, to, TAG_BARRIER, scratch, from, TAG_BARRIER);
        mask <<= 1;
    }
}

/// Pairwise-exchange all-to-all over `nranks` equal contiguous blocks.
pub fn alltoall_pairwise<C: CollComm>(c: &mut C, ctx: &mut MCtx, sbuf: MemRef, rbuf: MemRef) {
    let n = c.nranks() as u64;
    assert_eq!(sbuf.len, rbuf.len, "alltoall buffer mismatch");
    assert_eq!(sbuf.len % n, 0, "payload must split into nranks blocks");
    let me = c.rank() as u64;
    let block = sbuf.len / n;
    // Own block: a local device copy.
    let stream = stream_of(ctx, me as usize);
    let (src, dst) = (sbuf.slice(me * block, block), rbuf.slice(me * block, block));
    let launch = ctx.with_world_ref(|w, _| w.gpu.params.copy_launch);
    ctx.advance(launch);
    let t = ctx.with_world(move |w, s| {
        let t = s.new_trigger();
        rucx_gpu::copy_async(w, s, src, dst, stream, Some(t));
        t
    });
    ctx.wait(t);
    ctx.with_world(move |_, s| s.recycle_trigger(t));
    // Pairwise exchange, skewed so every step is a perfect matching.
    for k in 1..n {
        let dst_rank = ((me + k) % n) as usize;
        let src_rank = ((me + n - k) % n) as usize;
        sendrecv_counted(
            c,
            ctx,
            sbuf.slice(dst_rank as u64 * block, block),
            dst_rank,
            TAG_ALLTOALL,
            rbuf.slice(src_rank as u64 * block, block),
            src_rank,
            TAG_ALLTOALL,
        );
    }
}
