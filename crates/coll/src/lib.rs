//! # rucx-coll — the topology-aware collective engine
//!
//! One place that owns algorithm choice and schedule construction for
//! collective communication of GPU data (the paper's §VI follow-on). Every
//! programming model routes its collectives through here:
//!
//! - AMPI `MPI_Allreduce` / `MPI_Bcast` ([`rucx-ampi`]) and the OSU generic
//!   `P2p` collectives ([`rucx-osu`]) are thin [`CollComm`] adapters;
//! - Charm++ section reductions take their tree from [`schedule::Tree`];
//! - Charm4py `allreduce` / `bcast` run over its channels, so Python
//!   pickle/buffer-protocol costs apply per hop.
//!
//! Algorithms are pluggable ([`Algo`]): binomial tree, recursive doubling,
//! ring (reduce-scatter + allgather), and a hierarchical NVLink-aware
//! schedule (intra-node phase over NVLink/X-Bus, one leader per node over
//! the inter-node links, then an intra-node broadcast). Dispatch picks per
//! (message size, topology placement) via [`engine`]'s integer cost model,
//! which consults the machine's [`rucx_fabric::Topology`] and the
//! protocol engine's per-endpoint RTT state.

pub mod algo;
pub mod engine;
pub mod metrics;
pub mod op;
pub mod schedule;
pub mod tags;

pub use engine::Algo;
pub use op::{combine, ReduceOp};
pub use schedule::Tree;

use rucx_gpu::{MemRef, StreamId};
use rucx_ucp::MCtx;

/// The point-to-point surface a model layer exposes to the engine.
///
/// Collective rank `r` is process `r` of the simulated machine (the SPMD
/// identity mapping every model layer uses); the engine consults the
/// topology under that mapping. `send` may be asynchronous under the hood;
/// `sendrecv` must not deadlock when every rank of a pair calls it
/// simultaneously (models with blocking rendezvous sends implement it with
/// nonblocking pairs).
pub trait CollComm {
    fn rank(&self) -> usize;
    fn nranks(&self) -> usize;
    fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32);
    fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32);
    #[allow(clippy::too_many_arguments)]
    fn sendrecv(
        &mut self,
        ctx: &mut MCtx,
        sbuf: MemRef,
        dst: usize,
        stag: i32,
        rbuf: MemRef,
        src: usize,
        rtag: i32,
    );
}

/// Broadcast `buf` from `root` to every rank, algorithm chosen by the
/// engine.
pub fn bcast<C: CollComm>(c: &mut C, ctx: &mut MCtx, buf: MemRef, root: usize) {
    let a = engine::select_bcast(ctx, c.nranks(), buf.len);
    bcast_with(c, ctx, buf, root, a)
}

/// Broadcast with a forced algorithm (benchmarks, ablations).
pub fn bcast_with<C: CollComm>(c: &mut C, ctx: &mut MCtx, buf: MemRef, root: usize, a: Algo) {
    let a = match a {
        Algo::Hierarchical => Algo::Hierarchical,
        _ => Algo::Tree,
    };
    record_algo(ctx, a);
    match a {
        Algo::Hierarchical => algo::bcast_hier(c, ctx, buf, root),
        _ => algo::bcast_binomial(c, ctx, buf, root),
    }
}

/// Allreduce of an `f64` payload, algorithm chosen by the engine.
/// `scratch` must be a same-size buffer on the same device.
pub fn allreduce<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
) {
    let a = engine::select_allreduce(ctx, c.nranks(), buf.len);
    allreduce_with(c, ctx, buf, scratch, op, a)
}

/// Allreduce with a forced algorithm (benchmarks, ablations).
pub fn allreduce_with<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
    a: Algo,
) {
    assert_eq!(buf.len, scratch.len, "scratch must match buffer size");
    assert_eq!(buf.len % 8, 0, "f64 payload");
    // A ring needs at least one element per rank; degrade to doubling.
    let a = match a {
        Algo::Ring if buf.len / 8 < c.nranks() as u64 => Algo::RecursiveDoubling,
        Algo::Tree => Algo::RecursiveDoubling,
        other => other,
    };
    record_algo(ctx, a);
    match a {
        Algo::Ring => algo::allreduce_ring(c, ctx, buf, scratch, op),
        Algo::Hierarchical => algo::allreduce_hier(c, ctx, buf, scratch, op),
        _ => algo::allreduce_rd(c, ctx, buf, scratch, op),
    }
}

/// Rooted reduce of an `f64` payload along a binomial tree; the result
/// lands in `buf` on `root` (other ranks' buffers are clobbered with
/// partial reductions, as in MPI implementations' in-place tree reduce).
pub fn reduce<C: CollComm>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: ReduceOp,
    root: usize,
) {
    record_algo(ctx, Algo::Tree);
    algo::reduce_binomial(c, ctx, buf, scratch, op, root)
}

/// Dissemination barrier. `token` and `scratch` are small (≥1 byte)
/// buffers used as round tokens.
pub fn barrier<C: CollComm>(c: &mut C, ctx: &mut MCtx, token: MemRef, scratch: MemRef) {
    record_algo(ctx, Algo::RecursiveDoubling);
    algo::barrier_dissemination(c, ctx, token, scratch)
}

/// Pairwise-exchange all-to-all: `sbuf`/`rbuf` hold `nranks` equal
/// contiguous blocks; block `i` of `sbuf` lands in block `rank` of rank
/// `i`'s `rbuf`.
pub fn alltoall<C: CollComm>(c: &mut C, ctx: &mut MCtx, sbuf: MemRef, rbuf: MemRef) {
    record_algo(ctx, Algo::Ring);
    algo::alltoall_pairwise(c, ctx, sbuf, rbuf)
}

fn record_algo(ctx: &mut MCtx, a: Algo) {
    ctx.with_world(move |w, _| w.ucp.counters.bump(metrics::algo(a)));
}

/// The default stream of the device that process `me` drives.
pub(crate) fn stream_of(ctx: &mut MCtx, me: usize) -> StreamId {
    ctx.with_world_ref(|w, _| {
        let d = w.topo.device_of(me);
        w.gpu.default_stream(d)
    })
}

/// Account a collective payload hop on the link class it rides, and send.
pub(crate) fn send_counted<C: CollComm + ?Sized>(
    c: &mut C,
    ctx: &mut MCtx,
    buf: MemRef,
    dst: usize,
    tag: i32,
) {
    let src = c.rank();
    account_hop(ctx, src, dst, buf.len);
    c.send(ctx, buf, dst, tag);
}

/// Account + sendrecv (the send half is the hop this rank pays for).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sendrecv_counted<C: CollComm + ?Sized>(
    c: &mut C,
    ctx: &mut MCtx,
    sbuf: MemRef,
    dst: usize,
    stag: i32,
    rbuf: MemRef,
    src: usize,
    rtag: i32,
) {
    let me = c.rank();
    account_hop(ctx, me, dst, sbuf.len);
    c.sendrecv(ctx, sbuf, dst, stag, rbuf, src, rtag);
}

fn account_hop(ctx: &mut MCtx, src: usize, dst: usize, bytes: u64) {
    ctx.with_world(move |w, _| {
        let m = if w.topo.same_socket(src, dst) {
            metrics::BYTES_NVLINK
        } else if w.topo.same_node(src, dst) {
            metrics::BYTES_XBUS
        } else {
            metrics::BYTES_INTER
        };
        w.ucp.counters.add(m, bytes);
    });
}
