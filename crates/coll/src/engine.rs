//! Algorithm selection: a closed-form integer cost model over the machine.
//!
//! Mirrors the protocol engine's style (`rucx_ucp::engine::CostModel`):
//! pure integer-nanosecond estimates, no floating-point accumulation in
//! the decision path beyond the shared `transfer_time` helper, so the
//! choice is a deterministic function of (message size, rank placement,
//! machine parameters, observed RTT). It consults:
//!
//! - `Topology::{same_node, node_of}` — how many nodes the group spans and
//!   how many ranks share each node/NIC;
//! - the PR-6 protocol engine's per-endpoint RTT EWMA when it has one for
//!   a representative cross-node pair (measured reality beats the static
//!   alpha once traffic has flowed);
//! - GPU/NIC bandwidth parameters for the wire terms and the HBM-bound
//!   combine-kernel term.

use rucx_gpu::KernelCost;
use rucx_sim::time::{transfer_time, us};
use rucx_ucp::{MCtx, Machine};

/// A collective schedule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Binomial tree (broadcast / rooted reduce).
    Tree,
    /// Recursive doubling (latency-optimal butterfly).
    RecursiveDoubling,
    /// Ring reduce-scatter + allgather (bandwidth-optimal).
    Ring,
    /// Hierarchical NVLink-aware: intra-node phase, one leader per node
    /// across the network, intra-node broadcast.
    Hierarchical,
}

impl Algo {
    /// Parse a CLI algorithm name; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "tree" => Some(Algo::Tree),
            "rd" => Some(Algo::RecursiveDoubling),
            "ring" => Some(Algo::Ring),
            "hier" => Some(Algo::Hierarchical),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Algo::Tree => "tree",
            Algo::RecursiveDoubling => "rd",
            Algo::Ring => "ring",
            Algo::Hierarchical => "hier",
        }
    }
}

/// ceil(log2(x)) for x >= 1.
fn ceil_log2(x: usize) -> u64 {
    debug_assert!(x >= 1);
    (usize::BITS - (x - 1).leading_zeros()) as u64
}

/// The gathered machine facts one selection needs.
struct Estimator {
    n: usize,
    /// Nodes the group spans.
    nodes: usize,
    /// Largest rank count sharing one node (and its NIC rails).
    per_node: usize,
    rails: usize,
    alpha_intra: u64,
    alpha_inter: u64,
    nvlink_gbps: f64,
    nic_gbps: f64,
    combine_fixed: u64,
    hbm_gbps: f64,
}

impl Estimator {
    fn of(w: &Machine, n: usize) -> Estimator {
        let mut per_node_counts: Vec<usize> = Vec::new();
        for r in 0..n {
            let node = w.topo.node_of(r);
            if node >= per_node_counts.len() {
                per_node_counts.resize(node + 1, 0);
            }
            per_node_counts[node] += 1;
        }
        let nodes = per_node_counts.iter().filter(|&&c| c > 0).count();
        let per_node = per_node_counts.iter().copied().max().unwrap_or(1);
        let g = &w.gpu.params;
        let np = &w.net.params;
        // Static inter-node alpha: injection + switch transit; replaced by
        // half the best measured RTT across any participating cross-node
        // pair once the protocol engine has observed one. Probing only
        // (0, peer) here used to miss fresh samples whenever rank 0 had no
        // cross-node traffic (e.g. a sub-communicator without rank 0).
        let static_inter = np.injection + np.hop_latency * np.hops as u64;
        let alpha_inter = if nodes > 1 {
            w.ucp
                .engine
                .cross_node_rtt(&w.topo, n)
                .map(|rtt| rtt / 2)
                .unwrap_or(static_inter)
        } else {
            static_inter
        };
        Estimator {
            n,
            nodes,
            per_node,
            rails: np.rails_per_node.max(1),
            alpha_intra: g.copy_launch + g.dma_setup + g.sync_overhead,
            alpha_inter,
            nvlink_gbps: g.nvlink_gbps,
            nic_gbps: np.nic_gbps,
            combine_fixed: g.kernel_launch + g.sync_overhead,
            hbm_gbps: g.hbm_gbps,
        }
    }

    /// The combine-kernel model: launch + memory-bound kernel + sync.
    fn combine(&self, size: u64) -> u64 {
        self.combine_fixed
            + KernelCost {
                fixed: us(3.0),
                bytes: size * 3,
            }
            .fixed
            + transfer_time(size * 3, self.hbm_gbps)
    }

    fn t_intra(&self, size: u64) -> u64 {
        transfer_time(size, self.nvlink_gbps)
    }

    /// Inter-node wire time for one flow, accounting for the NIC-rail
    /// serialization a flat multi-node round suffers when `flows` ranks of
    /// one node all cross at once.
    fn t_inter(&self, size: u64, flows: usize) -> u64 {
        transfer_time(size, self.nic_gbps) * flows.div_ceil(self.rails) as u64
    }

    fn rd_rounds(&self) -> u64 {
        let p2 = self.n.next_power_of_two() / if self.n.is_power_of_two() { 1 } else { 2 };
        ceil_log2(p2.max(1)) + if self.n.is_power_of_two() { 0 } else { 2 }
    }

    fn est_rd(&self, size: u64) -> u64 {
        let (alpha, wire) = if self.nodes > 1 {
            (self.alpha_inter, self.t_inter(size, self.per_node))
        } else {
            (self.alpha_intra, self.t_intra(size))
        };
        self.rd_rounds() * (alpha + wire + self.combine(size))
    }

    fn est_ring(&self, size: u64) -> u64 {
        let n = self.n as u64;
        let seg = (size / n).max(8);
        // Synchronized ring: the slowest edge (a cross-node one if the
        // group spans nodes) paces every step.
        let (alpha, wire) = if self.nodes > 1 {
            (self.alpha_inter, self.t_inter(seg, 1))
        } else {
            (self.alpha_intra, self.t_intra(seg))
        };
        // Every step is a full sendrecv of a fresh message: a GPU-direct
        // rendezvous per hop (DMA setup, copy launch, stream sync) plus
        // request bookkeeping at kernel-launch scale. The 2(n-1) small
        // steps are where a ring loses to fewer, fatter rounds; omitting
        // this term makes the ring look latency-free (calibrated against
        // the simulated OSU allreduce sweep).
        let step_sw = self.alpha_intra + self.combine_fixed;
        2 * (n - 1) * (alpha + wire + step_sw) + (n - 1) * self.combine(seg)
    }

    fn est_hier(&self, size: u64) -> u64 {
        let g = self.per_node as u64;
        let nn = self.nodes;
        let gather = (g - 1) * (self.alpha_intra + self.t_intra(size) + self.combine(size));
        let leader_rounds = ceil_log2(nn) + if nn.is_power_of_two() { 0 } else { 2 };
        let inter = leader_rounds * (self.alpha_inter + self.t_inter(size, 1) + self.combine(size));
        let fan_out = ceil_log2(self.per_node) * (self.alpha_intra + self.t_intra(size));
        gather + inter + fan_out
    }

    fn est_bcast_flat(&self, size: u64) -> u64 {
        let (alpha, wire) = if self.nodes > 1 {
            (self.alpha_inter, self.t_inter(size, self.per_node))
        } else {
            (self.alpha_intra, self.t_intra(size))
        };
        ceil_log2(self.n) * (alpha + wire)
    }

    fn est_bcast_hier(&self, size: u64) -> u64 {
        let handoff = self.alpha_intra + self.t_intra(size);
        let leaders = ceil_log2(self.nodes) * (self.alpha_inter + self.t_inter(size, 1));
        let fan_out = ceil_log2(self.per_node) * (self.alpha_intra + self.t_intra(size));
        handoff + leaders + fan_out
    }
}

/// Choose the allreduce schedule for `n` ranks moving `size` bytes.
pub fn choose_allreduce(w: &Machine, n: usize, size: u64) -> Algo {
    if n <= 1 {
        return Algo::RecursiveDoubling;
    }
    let e = Estimator::of(w, n);
    let mut best = (e.est_rd(size), Algo::RecursiveDoubling);
    // Ring needs one element per rank; hierarchical needs multiple nodes.
    if size / 8 >= n as u64 {
        let ring = e.est_ring(size);
        if ring < best.0 {
            best = (ring, Algo::Ring);
        }
    }
    if e.nodes > 1 {
        let hier = e.est_hier(size);
        if hier < best.0 {
            best = (hier, Algo::Hierarchical);
        }
    }
    best.1
}

/// Choose the broadcast schedule for `n` ranks moving `size` bytes.
pub fn choose_bcast(w: &Machine, n: usize, size: u64) -> Algo {
    if n <= 1 {
        return Algo::Tree;
    }
    let e = Estimator::of(w, n);
    if e.nodes > 1 && e.est_bcast_hier(size) < e.est_bcast_flat(size) {
        Algo::Hierarchical
    } else {
        Algo::Tree
    }
}

/// Selection entry points used by the dispatchers (read-only world access).
pub fn select_allreduce(ctx: &mut MCtx, n: usize, size: u64) -> Algo {
    ctx.with_world_ref(|w, _| choose_allreduce(w, n, size))
}

pub fn select_bcast(ctx: &mut MCtx, n: usize, size: u64) -> Algo {
    ctx.with_world_ref(|w, _| choose_bcast(w, n, size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_fabric::Topology;
    use rucx_ucp::{build_sim, MachineConfig};

    #[test]
    fn small_messages_pick_recursive_doubling() {
        let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
        let w = sim.world_mut();
        assert_eq!(choose_allreduce(w, 12, 8), Algo::RecursiveDoubling);
        assert_eq!(choose_allreduce(w, 12, 1024), Algo::RecursiveDoubling);
    }

    #[test]
    fn mid_sizes_pick_hierarchical_large_pick_ring() {
        // Matches the measured ordering of the simulated OSU allreduce
        // sweep on Summit(2): the NVLink-aware schedule wins once payloads
        // dwarf the per-hop alphas, and the bandwidth-optimal ring takes
        // over when segment transfer time dominates its 2(n-1) steps.
        let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
        let w = sim.world_mut();
        for size in [256u64 << 10, 1 << 20] {
            assert_eq!(choose_allreduce(w, 12, size), Algo::Hierarchical, "{size}");
        }
        for size in [4u64 << 20, 16 << 20] {
            assert_eq!(choose_allreduce(w, 12, size), Algo::Ring, "{size}");
        }
    }

    #[test]
    fn single_node_never_picks_hierarchical() {
        let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
        let w = sim.world_mut();
        for size in [8u64, 4096, 1 << 20, 16 << 20] {
            assert_ne!(choose_allreduce(w, 6, size), Algo::Hierarchical);
        }
    }

    #[test]
    fn bcast_goes_hierarchical_for_large_multi_node() {
        let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
        let w = sim.world_mut();
        assert_eq!(choose_bcast(w, 12, 64), Algo::Tree);
        assert_eq!(choose_bcast(w, 12, 4 << 20), Algo::Hierarchical);
    }

    /// Regression: the estimator used to probe only the endpoint pair
    /// `(0, peer)`, so observed RTT from other participating pairs was
    /// ignored whenever rank 0 had no cross-node traffic. Any cross-node
    /// pair inside the communicator must refresh the inter-node alpha.
    #[test]
    fn estimator_uses_rtt_from_rank0_less_pairs() {
        let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
        let w = sim.world_mut();
        let static_alpha = Estimator::of(w, 12).alpha_inter;
        // A fresh cross-node sample on (2, 8) — ranks on node 0 and node 1,
        // neither of them rank 0 — and nothing at all on (0, *).
        let rtt = 4 * static_alpha + 10_000;
        w.ucp.engine.observe_rtt((2, 8), rtt);
        assert_eq!(
            Estimator::of(w, 12).alpha_inter,
            rtt / 2,
            "observed RTT from a non-rank-0 pair must be picked up"
        );
        // A pair outside the communicator must not leak in.
        assert_eq!(Estimator::of(w, 8).alpha_inter, static_alpha);
        // Same-node samples never count as inter-node alpha.
        w.ucp.engine.observe_rtt((1, 3), 50);
        assert_eq!(Estimator::of(w, 12).alpha_inter, rtt / 2);
    }

    #[test]
    fn algo_parse_round_trips() {
        for a in [
            Algo::Tree,
            Algo::RecursiveDoubling,
            Algo::Ring,
            Algo::Hierarchical,
        ] {
            assert_eq!(Algo::parse(a.label()), Some(a));
        }
        assert_eq!(Algo::parse("auto"), None);
    }
}
