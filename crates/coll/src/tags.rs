//! The one reserved collective tag space, shared by every model layer.
//!
//! Historically `ampi::coll` reserved `(1 << 20) + 7000` and `osu::coll`
//! reserved `1 << 20` independently — two adapters running concurrently
//! could collide. The reservation now lives here; model crates re-export
//! these constants instead of minting their own.
//!
//! Every phase of every algorithm gets its own offset so that fragments
//! from different phases of one collective (or from an aborted collective
//! under fault injection) can never tag-match each other.

/// Base of the reserved collective tag space (user point-to-point tags must
/// stay below this).
pub const COLL_TAG_BASE: i32 = 1 << 20;

/// Binomial-tree broadcast edges.
pub const TAG_BCAST: i32 = COLL_TAG_BASE;
/// Allreduce fold-in phase (non-power-of-two rank counts).
pub const TAG_FOLD_IN: i32 = COLL_TAG_BASE + 1;
/// Allreduce butterfly exchange rounds.
pub const TAG_EXCHANGE: i32 = COLL_TAG_BASE + 2;
/// Allreduce fold-out phase.
pub const TAG_FOLD_OUT: i32 = COLL_TAG_BASE + 3;
/// Ring reduce-scatter segments.
pub const TAG_RING_RS: i32 = COLL_TAG_BASE + 4;
/// Ring allgather segments.
pub const TAG_RING_AG: i32 = COLL_TAG_BASE + 5;
/// Hierarchical intra-node gather to the node leader.
pub const TAG_HIER_GATHER: i32 = COLL_TAG_BASE + 6;
/// Hierarchical intra-node result broadcast from the node leader.
pub const TAG_HIER_BCAST: i32 = COLL_TAG_BASE + 7;
/// Rooted reduce tree edges.
pub const TAG_REDUCE: i32 = COLL_TAG_BASE + 8;
/// Dissemination barrier rounds.
pub const TAG_BARRIER: i32 = COLL_TAG_BASE + 9;
/// All-to-all pairwise exchange.
pub const TAG_ALLTOALL: i32 = COLL_TAG_BASE + 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tags_are_distinct_and_reserved() {
        let tags = [
            TAG_BCAST,
            TAG_FOLD_IN,
            TAG_EXCHANGE,
            TAG_FOLD_OUT,
            TAG_RING_RS,
            TAG_RING_AG,
            TAG_HIER_GATHER,
            TAG_HIER_BCAST,
            TAG_REDUCE,
            TAG_BARRIER,
            TAG_ALLTOALL,
        ];
        for (i, a) in tags.iter().enumerate() {
            assert!(*a >= COLL_TAG_BASE, "tag below the reserved space");
            for b in &tags[i + 1..] {
                assert_ne!(a, b, "two phases share a tag");
            }
        }
    }
}
