//! Collective-engine metrics registry: every counter the engine emits,
//! declared once as typed [`Metric`] handles (ad-hoc string literals at
//! call sites are rejected by `scripts/check.sh`).

use rucx_sim::Metric;

use crate::Algo;

/// Collectives dispatched onto a tree schedule (binomial bcast/reduce).
pub const ALGO_TREE: Metric = Metric::counter("coll.algo.tree");
/// Collectives dispatched onto recursive doubling.
pub const ALGO_RD: Metric = Metric::counter("coll.algo.rd");
/// Collectives dispatched onto the ring (reduce-scatter + allgather).
pub const ALGO_RING: Metric = Metric::counter("coll.algo.ring");
/// Collectives dispatched onto the hierarchical NVLink-aware schedule.
pub const ALGO_HIER: Metric = Metric::counter("coll.algo.hier");

/// The dispatch counter for a selected algorithm.
pub const fn algo(a: Algo) -> Metric {
    match a {
        Algo::Tree => ALGO_TREE,
        Algo::RecursiveDoubling => ALGO_RD,
        Algo::Ring => ALGO_RING,
        Algo::Hierarchical => ALGO_HIER,
    }
}

/// Collective payload bytes sent over same-socket NVLink hops.
pub const BYTES_NVLINK: Metric = Metric::counter("coll.bytes.nvlink");
/// Collective payload bytes sent over cross-socket X-Bus hops.
pub const BYTES_XBUS: Metric = Metric::counter("coll.bytes.xbus");
/// Collective payload bytes sent over inter-node (NIC) hops.
pub const BYTES_INTER: Metric = Metric::counter("coll.bytes.inter");
