//! Reduction/broadcast tree schedules.
//!
//! A [`Tree`] is an explicit parent/children table over participants
//! `0..n`, with node 0 as the root. The Charm++ runtime's section
//! reductions route contributions along one of these (historically a
//! hardcoded `parent = (p - 1) / 2` scattered through `pe.rs`); the
//! hierarchical collective algorithms use the topology-aware variant.
//!
//! Invariant: `parent(p) < p` for every non-root `p`. Both constructors
//! guarantee it, which keeps subtree accumulation a single reverse sweep
//! and, for the Charm++ runtime, keeps message flow acyclic.

use rucx_fabric::Topology;

/// An explicit tree over participants `0..n`, rooted at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl Tree {
    fn from_parents(parent: Vec<Option<usize>>) -> Tree {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        for p in 0..n {
            if let Some(q) = parent[p] {
                assert!(q < p, "tree parent must precede child ({q} !< {p})");
                children[q].push(p);
            } else {
                assert_eq!(p, 0, "only participant 0 may be the root");
            }
        }
        Tree { parent, children }
    }

    /// The classic complete binary tree: `parent(p) = (p - 1) / 2`. This is
    /// the Charm++ runtime's historical default; keeping it the default
    /// preserves byte-identical reduction traffic.
    pub fn binary(n: usize) -> Tree {
        assert!(n > 0, "empty tree");
        let parent = (0..n)
            .map(|p| if p == 0 { None } else { Some((p - 1) / 2) })
            .collect();
        Tree::from_parents(parent)
    }

    /// Topology-aware tree: within each node, participants form a binary
    /// tree rooted at the node leader (lowest participant on the node);
    /// node leaders form a binary tree over nodes. Cross-node edges carry
    /// one message per node instead of one per participant.
    ///
    /// Participant `p` is process `p` of `topo` (the SPMD identity mapping
    /// every model layer uses); `n` may cover a prefix of the machine.
    pub fn topology(topo: &Topology, n: usize) -> Tree {
        assert!(n > 0 && n <= topo.procs(), "participants exceed topology");
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for p in 0..n {
            let node = topo.node_of(p);
            if node >= groups.len() {
                groups.resize(node + 1, Vec::new());
            }
            groups[node].push(p);
        }
        groups.retain(|g| !g.is_empty());
        let mut parent = vec![None; n];
        for (k, g) in groups.iter().enumerate() {
            // Leaders in a binary tree over nodes; node (k-1)/2's leader
            // has a smaller rank than node k's, preserving the invariant.
            if k > 0 {
                parent[g[0]] = Some(groups[(k - 1) / 2][0]);
            }
            // Members in a binary tree under their leader (local indices).
            for (l, &p) in g.iter().enumerate().skip(1) {
                parent[p] = Some(g[(l - 1) / 2]);
            }
        }
        Tree::from_parents(parent)
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `p` (`None` for the root).
    pub fn parent(&self, p: usize) -> Option<usize> {
        self.parent[p]
    }

    /// Children of `p`.
    pub fn children(&self, p: usize) -> &[usize] {
        &self.children[p]
    }

    /// Per-participant subtree totals of `weight` (e.g. chare elements per
    /// PE): `out[p]` sums `weight` over `p`'s whole subtree. Single reverse
    /// sweep, valid because parents precede children.
    pub fn subtree_weights(&self, weight: &[u64]) -> Vec<u64> {
        assert_eq!(weight.len(), self.len());
        let mut sub = weight.to_vec();
        for p in (1..self.len()).rev() {
            // Invariant: non-root participants always have a parent.
            let q = self.parent[p].expect("non-root without parent");
            sub[q] += sub[p];
        }
        sub
    }

    /// Number of children of `p` whose subtrees have nonzero weight (only
    /// those will send contributions up the tree).
    pub fn expected_children(&self, p: usize, subtree: &[u64]) -> usize {
        self.children[p].iter().filter(|&&c| subtree[c] > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_matches_historical_charm_tree() {
        let t = Tree::binary(7);
        for p in 1..7 {
            assert_eq!(t.parent(p), Some((p - 1) / 2));
        }
        assert_eq!(t.parent(0), None);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
    }

    #[test]
    fn expected_children_skips_empty_subtrees() {
        // 7 PEs, elements only on PEs 0..3.
        //        0
        //      1   2
        //     3 4 5 6
        let t = Tree::binary(7);
        let per_pe = [1u64, 1, 1, 1, 0, 0, 0];
        let sub = t.subtree_weights(&per_pe);
        assert_eq!(t.expected_children(0, &sub), 2); // both subtrees have elems
        assert_eq!(t.expected_children(1, &sub), 1); // only child 3
        assert_eq!(t.expected_children(2, &sub), 0); // 5,6 empty
    }

    #[test]
    fn topology_tree_crosses_nodes_once_per_node() {
        let topo = Topology::summit(2); // 12 procs, 6 per node
        let t = Tree::topology(&topo, 12);
        // Exactly one cross-node edge: node 1's leader (6) under rank 0.
        let cross: Vec<usize> = (1..12)
            .filter(|&p| !topo.same_node(p, t.parent(p).unwrap()))
            .collect();
        assert_eq!(cross, vec![6]);
        // All members hang under their node leader's subtree.
        for p in [1, 2, 3, 4, 5] {
            let mut q = p;
            while let Some(par) = t.parent(q) {
                q = par;
            }
            assert_eq!(q, 0);
        }
        for p in [7, 8, 9, 10, 11] {
            assert!(topo.same_node(p, t.parent(p).unwrap()));
        }
    }

    #[test]
    fn subtree_weights_total_at_root() {
        let topo = Topology::summit(4);
        let t = Tree::topology(&topo, 24);
        let w = vec![2u64; 24];
        let sub = t.subtree_weights(&w);
        assert_eq!(sub[0], 48);
    }
}
