//! Element-wise reduction operators over `f64` payloads, and the shared
//! local-combine step every reduction algorithm uses.
//!
//! This is the one copy of the combine model that used to be duplicated in
//! `ampi::coll` and `osu::coll`: a memory-bound GPU kernel (launch + 3×
//! payload HBM traffic + sync) plus the actual element-wise math on the
//! backing bytes, so reduced results stay verifiable.

use rucx_gpu::{KernelCost, MemRef, StreamId};
use rucx_sim::time::us;
use rucx_ucp::MCtx;

/// Element-wise reduction operators over `f64` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    /// Apply the operator to one element pair.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }
}

/// Combine `other` into `mine` (both `f64` arrays of equal byte length):
/// models the GPU reduction kernel and performs the real element-wise
/// operation on the backing bytes. Phantom (unmaterialized) buffers pay the
/// kernel time but skip the math — timing-only benchmarks reduce nothing.
pub fn combine(ctx: &mut MCtx, mine: MemRef, other: MemRef, op: ReduceOp, stream: StreamId) {
    assert_eq!(mine.len, other.len, "combine length mismatch");
    // Launch + kernel + sync, like any small CUDA reduction. Memory-bound:
    // read both inputs, write one output.
    let (launch, sync) =
        ctx.with_world_ref(|w, _| (w.gpu.params.kernel_launch, w.gpu.params.sync_overhead));
    ctx.advance(launch);
    let done = ctx.with_world(move |w, s| {
        let t = s.new_trigger();
        rucx_gpu::kernel_async(
            w,
            s,
            stream,
            KernelCost {
                fixed: us(3.0),
                bytes: mine.len * 3,
            },
            Some(t),
        );
        t
    });
    ctx.wait(done);
    ctx.with_world(move |_, s| s.recycle_trigger(done));
    ctx.advance(sync);
    ctx.with_world(move |w, _| {
        if !w.gpu.pool.is_materialized(mine.id).unwrap_or(false)
            || !w.gpu.pool.is_materialized(other.id).unwrap_or(false)
        {
            return;
        }
        // Invariant: both handles are the collective's own live,
        // materialized buffers (checked just above).
        let a = w.gpu.pool.read(mine).expect("combine lhs");
        let b = w.gpu.pool.read(other).expect("combine rhs");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            // Invariant: chunks_exact(8) yields exactly 8 bytes.
            let x = f64::from_le_bytes(ca.try_into().unwrap());
            let y = f64::from_le_bytes(cb.try_into().unwrap());
            out.extend_from_slice(&op.apply(x, y).to_le_bytes());
        }
        let len = out.len() as u64;
        w.gpu
            .pool
            // Invariant: `out` is at most `mine.len` bytes (element-wise
            // combine of a read of `mine`), into a live handle.
            .write(mine.slice(0, len), &out)
            .expect("combine write");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_and_apply() {
        assert_eq!(ReduceOp::Sum.apply(ReduceOp::Sum.identity(), 5.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(ReduceOp::Max.identity(), -5.0), -5.0);
        assert_eq!(ReduceOp::Min.apply(ReduceOp::Min.identity(), 5.0), 5.0);
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
    }
}
