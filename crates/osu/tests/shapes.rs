//! Integration tests: the microbenchmarks must reproduce the qualitative
//! shapes of the paper's Figures 10–13 (who wins, and roughly by how much).

use rucx_osu::{bandwidth, latency, Mode, Model, OsuConfig, Placement};

fn cfg() -> OsuConfig {
    OsuConfig::quick()
}

#[test]
fn gpu_direct_beats_host_staging_everywhere() {
    let cfg = cfg();
    for model in [Model::Charm, Model::Ampi, Model::Ompi, Model::Charm4py] {
        for place in [Placement::IntraNode, Placement::InterNode] {
            let d = latency(&cfg, model, Mode::Device, place);
            let h = latency(&cfg, model, Mode::HostStaging, place);
            for (size, lat_d) in &d.points {
                let lat_h = h.at(*size).unwrap();
                assert!(
                    lat_h > *lat_d,
                    "{} {} size {size}: H {lat_h:.1}us must exceed D {lat_d:.1}us",
                    model.label(),
                    place.label()
                );
            }
        }
    }
}

#[test]
fn intra_node_large_message_latency_improvement_is_big() {
    // Paper Table I: intra-node latency improvements reach ~10x at large
    // sizes for Charm++/AMPI.
    let cfg = cfg();
    for model in [Model::Charm, Model::Ampi] {
        let d = latency(&cfg, model, Mode::Device, Placement::IntraNode);
        let h = latency(&cfg, model, Mode::HostStaging, Placement::IntraNode);
        let size = 1 << 20;
        let ratio = h.at(size).unwrap() / d.at(size).unwrap();
        assert!(
            ratio > 4.0,
            "{}: 1MB intra-node improvement only {ratio:.2}x",
            model.label()
        );
    }
}

#[test]
fn ampi_slower_than_openmpi_small_but_same_ucx_floor_large() {
    let cfg = cfg();
    let ampi = latency(&cfg, Model::Ampi, Mode::Device, Placement::IntraNode);
    let ompi = latency(&cfg, Model::Ompi, Mode::Device, Placement::IntraNode);
    // Small messages: AMPI pays its runtime overhead (paper: ~8us vs ~2us).
    let (a8, o8) = (ampi.at(8).unwrap(), ompi.at(8).unwrap());
    assert!(a8 > o8 + 3.0, "AMPI {a8:.1}us vs OpenMPI {o8:.1}us at 8B");
    // Large messages: both converge to the UCX transfer time.
    let (a4m, o4m) = (ampi.at(1 << 20).unwrap(), ompi.at(1 << 20).unwrap());
    assert!(
        (a4m - o4m) / o4m < 0.25,
        "AMPI {a4m:.1}us vs OpenMPI {o4m:.1}us at 1MB"
    );
}

#[test]
fn charm4py_has_highest_small_message_latency() {
    let cfg = cfg();
    let py = latency(&cfg, Model::Charm4py, Mode::Device, Placement::IntraNode);
    let charm = latency(&cfg, Model::Charm, Mode::Device, Placement::IntraNode);
    let ompi = latency(&cfg, Model::Ompi, Mode::Device, Placement::IntraNode);
    let s = 8;
    assert!(py.at(s).unwrap() > charm.at(s).unwrap());
    assert!(charm.at(s).unwrap() > ompi.at(s).unwrap());
}

#[test]
fn intra_node_device_bandwidth_approaches_nvlink() {
    let cfg = cfg();
    for model in [Model::Charm, Model::Ampi, Model::Ompi] {
        let bw = bandwidth(&cfg, model, Mode::Device, Placement::IntraNode);
        let at_1m = bw.at(1 << 20).unwrap();
        assert!(
            at_1m > 25_000.0,
            "{}: 1MB intra-node D bandwidth {at_1m:.0} MB/s too low",
            model.label()
        );
        let h = bandwidth(&cfg, model, Mode::HostStaging, Placement::IntraNode);
        assert!(
            h.at(1 << 20).unwrap() < at_1m / 3.0,
            "{}: H bandwidth should collapse vs D",
            model.label()
        );
    }
}

#[test]
fn inter_node_device_bandwidth_approaches_nic() {
    let cfg = cfg();
    let bw = bandwidth(&cfg, Model::Ompi, Mode::Device, Placement::InterNode);
    let at_1m = bw.at(1 << 20).unwrap();
    assert!(
        at_1m > 7_000.0 && at_1m < 12_500.0,
        "inter-node D bandwidth {at_1m:.0} MB/s out of EDR band"
    );
}

#[test]
fn charm4py_bandwidth_below_charm() {
    let cfg = cfg();
    let py = bandwidth(&cfg, Model::Charm4py, Mode::Device, Placement::IntraNode);
    let charm = bandwidth(&cfg, Model::Charm, Mode::Device, Placement::IntraNode);
    let s = 1 << 20;
    assert!(
        py.at(s).unwrap() < charm.at(s).unwrap(),
        "Charm4py {py:?} must stay under Charm++ {charm:?}"
    );
}

#[test]
fn latency_grows_with_size() {
    let cfg = cfg();
    for place in [Placement::IntraNode, Placement::InterNode] {
        let d = latency(&cfg, Model::Ompi, Mode::Device, place);
        let v: Vec<f64> = d.points.iter().map(|(_, v)| *v).collect();
        assert!(v.windows(2).all(|w| w[1] >= w[0]), "{place:?}: {v:?}");
    }
}
