//! # rucx-osu — OSU-style microbenchmarks for all four models
//!
//! Point-to-point latency and bandwidth benchmarks adapted from the OSU
//! suite (paper §IV-B), each in a GPU-direct (`-D`) and a host-staging
//! (`-H`) variant, for Charm++, AMPI, OpenMPI, and Charm4py, intra-node and
//! inter-node. These generate the series behind Figures 10–13 and Table I.

pub mod bandwidth;
pub mod bibw;
pub mod charm_osu;
pub mod coll;
pub mod coll_bench;
pub mod cuda;
pub mod latency;
pub mod mpi_like;
pub mod py_osu;

use rucx_compat::json::{JsonObject, ToJson};
use rucx_fabric::Topology;
use rucx_gpu::MemRef;
use rucx_ucp::{build_sim, MSim, MachineConfig};

/// Which programming model to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    Charm,
    Ampi,
    Ompi,
    Charm4py,
}

impl Model {
    pub fn label(self) -> &'static str {
        match self {
            Model::Charm => "Charm++",
            Model::Ampi => "AMPI",
            Model::Ompi => "OpenMPI",
            Model::Charm4py => "Charm4py",
        }
    }
}

/// GPU-direct (`-D`) vs host-staging (`-H`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Device,
    HostStaging,
}

impl Mode {
    pub fn suffix(self) -> &'static str {
        match self {
            Mode::Device => "D",
            Mode::HostStaging => "H",
        }
    }
}

/// Peer placement: adjacent GPUs on one node, or across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    IntraNode,
    InterNode,
}

impl Placement {
    /// The peer process of process 0.
    pub fn peer(self) -> usize {
        match self {
            Placement::IntraNode => 1,
            Placement::InterNode => 6,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Placement::IntraNode => "intra-node",
            Placement::InterNode => "inter-node",
        }
    }
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct OsuConfig {
    /// Message sizes in bytes.
    pub sizes: Vec<u64>,
    pub lat_iters: u32,
    pub lat_warmup: u32,
    pub bw_iters: u32,
    pub bw_warmup: u32,
    pub bw_window: u32,
    pub machine: MachineConfig,
}

impl Default for OsuConfig {
    fn default() -> Self {
        OsuConfig {
            sizes: default_sizes(),
            lat_iters: 50,
            lat_warmup: 5,
            bw_iters: 6,
            bw_warmup: 1,
            bw_window: 32,
            machine: MachineConfig::default(),
        }
    }
}

impl OsuConfig {
    /// A reduced configuration for fast tests.
    pub fn quick() -> Self {
        OsuConfig {
            sizes: vec![8, 4 * 1024, 1 << 20],
            lat_iters: 5,
            lat_warmup: 1,
            bw_iters: 2,
            bw_warmup: 1,
            bw_window: 8,
            machine: MachineConfig::default(),
        }
    }
}

/// The paper's message-size sweep: 1 B – 4 MB, powers of two.
pub fn default_sizes() -> Vec<u64> {
    (0..=22).map(|i| 1u64 << i).collect()
}

/// One benchmark curve: `(message size, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// e.g. "Charm++-D intra-node latency".
    pub label: String,
    /// "us" or "MB/s".
    pub unit: &'static str,
    pub points: Vec<(u64, f64)>,
}

impl ToJson for Series {
    fn write_json(&self, out: &mut String) {
        JsonObject::new(out)
            .field("label", &self.label)
            .field("unit", self.unit)
            .field("points", &self.points)
            .finish();
    }
}

impl Series {
    /// Value at a given size (exact match).
    pub fn at(&self, size: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(_, v)| *v)
    }
}

/// Per-size ratio `h / d` (latency improvement) or `d / h` (bandwidth
/// improvement), depending on the metric the caller passes in.
pub fn ratio(num: &Series, den: &Series) -> Vec<(u64, f64)> {
    num.points
        .iter()
        .filter_map(|(s, n)| den.at(*s).map(|d| (*s, n / d)))
        .collect()
}

/// Min/max of a ratio series.
pub fn ratio_range(r: &[(u64, f64)]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &(_, v) in r {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Shared per-run setup: a 2-node Summit simulation plus one device buffer,
/// one pinned host buffer, and one small ack buffer per process (phantom:
/// microbenchmark timing never depends on payload content).
pub struct BenchSetup {
    pub sim: MSim,
    pub d: Vec<MemRef>,
    pub h: Vec<MemRef>,
    pub ack: Vec<MemRef>,
}

/// Build the simulation and buffers for one benchmark point.
pub fn setup(machine: &MachineConfig, size: u64) -> BenchSetup {
    let topo = Topology::summit(2);
    let mut sim = build_sim(topo.clone(), machine.clone());
    let mut d = Vec::new();
    let mut h = Vec::new();
    let mut ack = Vec::new();
    {
        let m = sim.world_mut();
        for p in 0..topo.procs() {
            d.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size.max(1), false)
                    .expect("device alloc"),
            );
            h.push(
                m.gpu
                    .pool
                    .alloc_host(topo.node_of(p), size.max(1), true, false),
            );
            ack.push(m.gpu.pool.alloc_host(topo.node_of(p), 8, true, false));
        }
    }
    BenchSetup { sim, d, h, ack }
}

/// Run the latency benchmark for one model/mode/placement.
pub fn latency(cfg: &OsuConfig, model: Model, mode: Mode, place: Placement) -> Series {
    let points = cfg
        .sizes
        .iter()
        .map(|&size| {
            let us = match model {
                Model::Ampi => {
                    latency::mpi_latency_point(cfg, size, place, mode, mpi_like::AmpiFactory)
                }
                Model::Ompi => {
                    latency::mpi_latency_point(cfg, size, place, mode, mpi_like::OmpiFactory)
                }
                Model::Charm => charm_osu::latency_point(cfg, size, place, mode),
                Model::Charm4py => py_osu::latency_point(cfg, size, place, mode),
            };
            (size, us)
        })
        .collect();
    Series {
        label: format!(
            "{}-{} {} latency",
            model.label(),
            mode.suffix(),
            place.label()
        ),
        unit: "us",
        points,
    }
}

/// Run the bandwidth benchmark for one model/mode/placement.
pub fn bandwidth(cfg: &OsuConfig, model: Model, mode: Mode, place: Placement) -> Series {
    let points = cfg
        .sizes
        .iter()
        .map(|&size| {
            let mbps = match model {
                Model::Ampi => {
                    bandwidth::mpi_bw_point(cfg, size, place, mode, mpi_like::AmpiFactory)
                }
                Model::Ompi => {
                    bandwidth::mpi_bw_point(cfg, size, place, mode, mpi_like::OmpiFactory)
                }
                Model::Charm => charm_osu::bandwidth_point(cfg, size, place, mode),
                Model::Charm4py => py_osu::bandwidth_point(cfg, size, place, mode),
            };
            (size, mbps)
        })
        .collect();
    Series {
        label: format!(
            "{}-{} {} bandwidth",
            model.label(),
            mode.suffix(),
            place.label()
        ),
        unit: "MB/s",
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_cover_paper_sweep() {
        let s = default_sizes();
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&(4 << 20)));
        assert_eq!(s.len(), 23);
    }

    #[test]
    fn series_ratio_helpers() {
        let a = Series {
            label: "a".into(),
            unit: "us",
            points: vec![(1, 10.0), (2, 20.0)],
        };
        let b = Series {
            label: "b".into(),
            unit: "us",
            points: vec![(1, 5.0), (2, 2.0)],
        };
        let r = ratio(&a, &b);
        assert_eq!(r, vec![(1, 2.0), (2, 10.0)]);
        assert_eq!(ratio_range(&r), (2.0, 10.0));
        assert_eq!(a.at(2), Some(20.0));
        assert_eq!(a.at(3), None);
    }
}
