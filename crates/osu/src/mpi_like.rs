//! A common point-to-point interface over AMPI and OpenMPI so the MPI-style
//! benchmarks are written once (the OSU sources are likewise shared between
//! MPI implementations).

use rucx_ampi::{AmpiParams, MpiRank};
use rucx_gpu::MemRef;
use rucx_ompi::{OmpiParams, OmpiRank};
use rucx_ucp::{MCtx, MSim};

/// Minimal MPI-ish p2p surface used by the benchmarks.
pub trait P2p {
    type Req;
    fn rank(&self) -> usize;
    fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32);
    fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32);
    /// Receive from any source with the given tag.
    fn recv_any(&mut self, ctx: &mut MCtx, buf: MemRef, tag: i32);
    fn isend(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) -> Self::Req;
    fn irecv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32) -> Self::Req;
    fn waitall(&mut self, ctx: &mut MCtx, reqs: Vec<Self::Req>);
    fn barrier(&mut self, ctx: &mut MCtx);
}

impl P2p for MpiRank {
    type Req = rucx_ampi::Request;
    fn rank(&self) -> usize {
        MpiRank::rank(self)
    }
    fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) {
        MpiRank::send(self, ctx, buf, dst, tag)
    }
    fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32) {
        MpiRank::recv(self, ctx, buf, src as i32, tag);
    }
    fn recv_any(&mut self, ctx: &mut MCtx, buf: MemRef, tag: i32) {
        MpiRank::recv(self, ctx, buf, rucx_ampi::ANY_SOURCE, tag);
    }
    fn isend(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) -> Self::Req {
        MpiRank::isend(self, ctx, buf, dst, tag)
    }
    fn irecv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32) -> Self::Req {
        MpiRank::irecv(self, ctx, buf, src as i32, tag)
    }
    fn waitall(&mut self, ctx: &mut MCtx, reqs: Vec<Self::Req>) {
        MpiRank::waitall(self, ctx, &reqs)
    }
    fn barrier(&mut self, ctx: &mut MCtx) {
        MpiRank::barrier(self, ctx)
    }
}

impl P2p for OmpiRank {
    type Req = rucx_ompi::Request;
    fn rank(&self) -> usize {
        OmpiRank::rank(self)
    }
    fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) {
        OmpiRank::send(self, ctx, buf, dst, tag)
    }
    fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32) {
        OmpiRank::recv(self, ctx, buf, src as i32, tag);
    }
    fn recv_any(&mut self, ctx: &mut MCtx, buf: MemRef, tag: i32) {
        OmpiRank::recv(self, ctx, buf, rucx_ompi::ANY_SOURCE, tag);
    }
    fn isend(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) -> Self::Req {
        OmpiRank::isend(self, ctx, buf, dst, tag)
    }
    fn irecv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32) -> Self::Req {
        OmpiRank::irecv(self, ctx, buf, src as i32, tag)
    }
    fn waitall(&mut self, ctx: &mut MCtx, reqs: Vec<Self::Req>) {
        OmpiRank::waitall(self, ctx, reqs)
    }
    fn barrier(&mut self, ctx: &mut MCtx) {
        OmpiRank::barrier(self, ctx)
    }
}

/// Launches a per-process body with the model's runtime constructed.
pub trait RankFactory: Clone + Send + Sync + 'static {
    type Rank: P2p;
    fn launch<F>(&self, sim: &mut MSim, body: F)
    where
        F: Fn(&mut Self::Rank, &mut MCtx) + Send + Sync + Clone + 'static;
}

/// Factory for AMPI ranks.
#[derive(Clone, Copy)]
pub struct AmpiFactory;

impl RankFactory for AmpiFactory {
    type Rank = MpiRank;
    fn launch<F>(&self, sim: &mut MSim, body: F)
    where
        F: Fn(&mut Self::Rank, &mut MCtx) + Send + Sync + Clone + 'static,
    {
        rucx_ampi::launch_with(sim, AmpiParams::default(), body);
    }
}

/// Factory for OpenMPI ranks.
#[derive(Clone, Copy)]
pub struct OmpiFactory;

impl RankFactory for OmpiFactory {
    type Rank = OmpiRank;
    fn launch<F>(&self, sim: &mut MSim, body: F)
    where
        F: Fn(&mut Self::Rank, &mut MCtx) + Send + Sync + Clone + 'static,
    {
        rucx_ompi::launch_with(sim, OmpiParams::default(), body);
    }
}
