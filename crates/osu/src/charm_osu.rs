//! OSU benchmarks for Charm++: message-driven chares exchanging entry-method
//! invocations, with GPU buffers declared `nocopydevice` (the `-D` path,
//! paper Fig. 4) or staged through host memory and packed into the message
//! (the `-H` path).

use std::sync::Arc;

use rucx_charm::{launch, ChareRef, Msg, Pe};
use rucx_gpu::MemRef;
use rucx_sim::time::{as_us, bandwidth_mbps, Time};
use rucx_sim::RunOutcome;
use rucx_ucp::MCtx;

use crate::cuda;
use crate::{setup, Mode, OsuConfig, Placement};

struct LatChare {
    d: MemRef,
    h: MemRef,
    size: u64,
    me: u64,
    peer: u64,
    mode: Mode,
    iters: u32,
    warmup: u32,
    count: u32,
    t0: Time,
    result: Arc<rucx_compat::sync::Mutex<f64>>,
}

impl LatChare {
    fn send_ping(&mut self, pe: &mut Pe, ctx: &mut MCtx, col: rucx_charm::Collection, ep: u16) {
        let to = ChareRef {
            col,
            index: self.peer,
        };
        match self.mode {
            Mode::Device => {
                pe.send(ctx, to, ep, vec![], 0, vec![self.d.slice(0, self.size)]);
            }
            Mode::HostStaging => {
                let dev = pe.index;
                let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(w.topo.device_of(dev)));
                cuda::copy_sync(
                    ctx,
                    self.d.slice(0, self.size),
                    self.h.slice(0, self.size),
                    stream,
                );
                // The staged host data is packed into the message (phantom
                // payload models its wire size and packing cost).
                pe.send(ctx, to, ep, vec![], self.size, vec![]);
            }
        }
    }

    fn on_msg(&mut self, pe: &mut Pe, ctx: &mut MCtx, col: rucx_charm::Collection, ep: u16) {
        if self.mode == Mode::HostStaging {
            // Unpack: stage received host data to the device.
            let dev = pe.index;
            let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(w.topo.device_of(dev)));
            cuda::copy_sync(
                ctx,
                self.h.slice(0, self.size),
                self.d.slice(0, self.size),
                stream,
            );
        }
        if self.me == 0 {
            self.count += 1;
            if self.count == self.warmup {
                self.t0 = ctx.now();
            }
            if self.count == self.warmup + self.iters {
                let elapsed = ctx.now() - self.t0;
                *self.result.lock() = as_us(elapsed) / (2.0 * self.iters as f64);
                pe.exit_all(ctx);
                return;
            }
            self.send_ping(pe, ctx, col, ep);
        } else {
            self.send_ping(pe, ctx, col, ep);
        }
    }
}

/// One Charm++ latency measurement (µs).
pub fn latency_point(cfg: &OsuConfig, size: u64, place: Placement, mode: Mode) -> f64 {
    let mut s = setup(&cfg.machine, size);
    let peer = place.peer() as u64;
    let (d, h) = (Arc::new(s.d.clone()), Arc::new(s.h.clone()));
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup) = (cfg.lat_iters, cfg.lat_warmup);

    launch(&mut s.sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        let ep = pe.register_ep(
            col,
            Some(Box::new(|chare, _msg| {
                let c = chare.downcast_mut::<LatChare>().unwrap();
                vec![c.d.slice(0, c.size)]
            })),
            Box::new(move |chare, _msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<LatChare>().unwrap();
                // Take the state out to appease the borrow checker: the
                // chare is already detached from the PE table during exec.
                c_on_msg(c, pe, ctx);
            }),
        );
        for &i in pe.local_indices(col).to_vec().iter() {
            let me = i;
            pe.insert_chare(
                col,
                i,
                Box::new(LatChare {
                    d: d[i as usize],
                    h: h[i as usize],
                    size,
                    me,
                    peer: if me == 0 { peer } else { 0 },
                    mode,
                    iters,
                    warmup,
                    count: 0,
                    t0: 0,
                    result: result2.clone(),
                }),
            );
        }
        // Stash ids so the entry method can re-send (see c_on_msg).
        COL_EP.with(|ce| ce.set(Some((col, ep))));
        if pe.index == 0 {
            // Kick off the first ping from the driver (main chare role).
            pe.with_chare::<LatChare, _>(ctx, col, 0, |c, pe, ctx| {
                c.send_ping(pe, ctx, col, ep);
            });
        }
        pe.run(ctx);
    });
    assert_eq!(s.sim.run(), RunOutcome::Completed);
    let r = *result.lock();
    r
}

thread_local! {
    static COL_EP: std::cell::Cell<Option<(rucx_charm::Collection, u16)>> =
        const { std::cell::Cell::new(None) };
}

fn c_on_msg(c: &mut LatChare, pe: &mut Pe, ctx: &mut MCtx) {
    let (col, ep) = COL_EP.with(|ce| ce.get()).expect("collection ids");
    c.on_msg(pe, ctx, col, ep);
}

struct BwChare {
    d: MemRef,
    h: MemRef,
    size: u64,
    peer: u64,
    mode: Mode,
    iters: u32,
    warmup: u32,
    window: u32,
    iter: u32,
    recvd: u32,
    t0: Time,
    result: Arc<rucx_compat::sync::Mutex<f64>>,
}

impl BwChare {
    fn start_iteration(&mut self, pe: &mut Pe, ctx: &mut MCtx) {
        let (col, ep_data, _) = BW_IDS.with(|c| c.get()).unwrap();
        if self.iter == self.warmup {
            self.t0 = ctx.now();
        }
        if self.iter == self.warmup + self.iters {
            let elapsed = ctx.now() - self.t0;
            let bytes = self.size * self.window as u64 * self.iters as u64;
            *self.result.lock() = bandwidth_mbps(bytes, elapsed);
            pe.exit_all(ctx);
            return;
        }
        self.iter += 1;
        let to = ChareRef {
            col,
            index: self.peer,
        };
        for _ in 0..self.window {
            match self.mode {
                Mode::Device => {
                    pe.send(
                        ctx,
                        to,
                        ep_data,
                        vec![],
                        0,
                        vec![self.d.slice(0, self.size)],
                    );
                }
                Mode::HostStaging => {
                    let dev = pe.index;
                    let stream =
                        ctx.with_world_ref(|w, _| w.gpu.default_stream(w.topo.device_of(dev)));
                    cuda::copy_sync(
                        ctx,
                        self.d.slice(0, self.size),
                        self.h.slice(0, self.size),
                        stream,
                    );
                    pe.send(ctx, to, ep_data, vec![], self.size, vec![]);
                }
            }
        }
    }

    fn on_data(&mut self, pe: &mut Pe, ctx: &mut MCtx) {
        let (col, _, ep_ack) = BW_IDS.with(|c| c.get()).unwrap();
        if self.mode == Mode::HostStaging {
            let dev = pe.index;
            let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(w.topo.device_of(dev)));
            cuda::copy_sync(
                ctx,
                self.h.slice(0, self.size),
                self.d.slice(0, self.size),
                stream,
            );
        }
        self.recvd += 1;
        if self.recvd == self.window {
            self.recvd = 0;
            pe.send(
                ctx,
                ChareRef {
                    col,
                    index: self.peer,
                },
                ep_ack,
                vec![],
                0,
                vec![],
            );
        }
    }
}

thread_local! {
    static BW_IDS: std::cell::Cell<Option<(rucx_charm::Collection, u16, u16)>> =
        const { std::cell::Cell::new(None) };
}

/// One Charm++ bandwidth measurement (MB/s).
pub fn bandwidth_point(cfg: &OsuConfig, size: u64, place: Placement, mode: Mode) -> f64 {
    let mut s = setup(&cfg.machine, size);
    let peer = place.peer() as u64;
    let (d, h) = (Arc::new(s.d.clone()), Arc::new(s.h.clone()));
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup, window) = (cfg.bw_iters, cfg.bw_warmup, cfg.bw_window);

    launch(&mut s.sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        let ep_data = pe.register_ep(
            col,
            Some(Box::new(|chare, _msg| {
                let c = chare.downcast_mut::<BwChare>().unwrap();
                vec![c.d.slice(0, c.size)]
            })),
            Box::new(|chare, _msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<BwChare>().unwrap();
                c.on_data(pe, ctx);
            }),
        );
        let ep_ack = pe.register_ep(
            col,
            None,
            Box::new(|chare, _msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<BwChare>().unwrap();
                c.start_iteration(pe, ctx);
            }),
        );
        BW_IDS.with(|c| c.set(Some((col, ep_data, ep_ack))));
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(
                col,
                i,
                Box::new(BwChare {
                    d: d[i as usize],
                    h: h[i as usize],
                    size,
                    peer: if i == 0 { peer } else { 0 },
                    mode,
                    iters,
                    warmup,
                    window,
                    iter: 0,
                    recvd: 0,
                    t0: 0,
                    result: result2.clone(),
                }),
            );
        }
        if pe.index == 0 {
            pe.with_chare::<BwChare, _>(ctx, col, 0, |c, pe, ctx| {
                c.start_iteration(pe, ctx);
            });
        }
        pe.run(ctx);
    });
    assert_eq!(s.sim.run(), RunOutcome::Completed);
    let r = *result.lock();
    r
}
