//! Additional OSU-suite benchmarks beyond the paper's two: bi-directional
//! bandwidth (`osu_bibw`) and multi-pair aggregate bandwidth
//! (`osu_mbw_mr`-style). The paper evaluates uni-directional curves; these
//! extend the harness to the rest of the suite's point-to-point coverage
//! and expose full-duplex and multi-rail behaviour of the fabric model.

use std::sync::Arc;

use rucx_sim::time::bandwidth_mbps;
use rucx_sim::RunOutcome;

use crate::mpi_like::{P2p, RankFactory};
use crate::{setup, OsuConfig, Placement, Series};

/// Bi-directional bandwidth: both endpoints send a window simultaneously
/// each iteration (non-blocking both ways), reported as aggregate MB/s.
pub fn mpi_bibw_point<F: RankFactory>(
    cfg: &OsuConfig,
    size: u64,
    place: Placement,
    factory: F,
) -> f64 {
    let mut s = setup(&cfg.machine, size);
    let peer = place.peer();
    let d = Arc::new(s.d.clone());
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup, window) = (cfg.bw_iters, cfg.bw_warmup, cfg.bw_window);

    factory.launch(&mut s.sim, move |mpi, ctx| {
        let me = mpi.rank();
        if me != 0 && me != peer {
            return;
        }
        let other = if me == 0 { peer } else { 0 };
        let my_d = d[me].slice(0, size);
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                t0 = ctx.now();
            }
            let mut reqs = Vec::with_capacity(2 * window as usize);
            for w in 0..window {
                reqs.push(mpi.irecv(ctx, my_d, other as i32 as usize, w as i32));
            }
            for w in 0..window {
                reqs.push(mpi.isend(ctx, my_d, other, w as i32));
            }
            // The waitall itself synchronizes the pair: each side holds
            // until the other's window has fully arrived. (No barrier: only
            // two of the twelve ranks participate.)
            mpi.waitall(ctx, reqs);
        }
        if me == 0 {
            // Both directions moved `size * window * iters` bytes.
            let bytes = 2 * size * window as u64 * iters as u64;
            *result2.lock() = bandwidth_mbps(bytes, ctx.now() - t0);
        }
    });
    assert_eq!(s.sim.run(), RunOutcome::Completed, "bibw deadlocked");
    let r = *result.lock();
    r
}

/// Multi-pair bandwidth: `pairs` disjoint sender/receiver pairs drive the
/// fabric simultaneously (senders on node 0, receivers on node 1 for the
/// inter-node variant — exercising both NIC rails). Aggregate MB/s.
pub fn mpi_mbw_point<F: RankFactory>(cfg: &OsuConfig, size: u64, pairs: usize, factory: F) -> f64 {
    assert!(pairs <= 6, "one pair per GPU pair");
    let mut s = setup(&cfg.machine, size);
    let d = Arc::new(s.d.clone());
    let ack = Arc::new(s.ack.clone());
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup, window) = (cfg.bw_iters, cfg.bw_warmup, cfg.bw_window);

    factory.launch(&mut s.sim, move |mpi, ctx| {
        let me = mpi.rank();
        // Senders: ranks 0..pairs (node 0); receivers: 6..6+pairs (node 1).
        let is_sender = me < pairs;
        let is_receiver = (6..6 + pairs).contains(&me);
        if !is_sender && !is_receiver {
            return;
        }
        let other = if is_sender { me + 6 } else { me - 6 };
        let my_d = d[me].slice(0, size);
        let my_ack = ack[me].slice(0, 4);
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                t0 = ctx.now();
            }
            if is_sender {
                let mut reqs = Vec::with_capacity(window as usize);
                for w in 0..window {
                    reqs.push(mpi.isend(ctx, my_d, other, w as i32));
                }
                mpi.waitall(ctx, reqs);
                mpi.recv(ctx, my_ack, other as i32 as usize, 99);
            } else {
                let mut reqs = Vec::with_capacity(window as usize);
                for w in 0..window {
                    reqs.push(mpi.irecv(ctx, my_d, other as i32 as usize, w as i32));
                }
                mpi.waitall(ctx, reqs);
                mpi.send(ctx, my_ack, other, 99);
            }
        }
        if me == 0 {
            let bytes = pairs as u64 * size * window as u64 * iters as u64;
            *result2.lock() = bandwidth_mbps(bytes, ctx.now() - t0);
        }
    });
    assert_eq!(s.sim.run(), RunOutcome::Completed, "mbw deadlocked");
    let r = *result.lock();
    r
}

/// Bi-directional bandwidth series for one model.
pub fn bibw_series<F: RankFactory + Copy>(
    cfg: &OsuConfig,
    label: &str,
    place: Placement,
    factory: F,
) -> Series {
    Series {
        label: format!("{label} {} bi-bandwidth", place.label()),
        unit: "MB/s",
        points: cfg
            .sizes
            .iter()
            .map(|&s| (s, mpi_bibw_point(cfg, s, place, factory)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_like::{AmpiFactory, OmpiFactory};
    use crate::Mode;

    fn cfg() -> OsuConfig {
        let mut c = OsuConfig::quick();
        c.sizes = vec![1 << 20];
        c
    }

    #[test]
    fn bibw_exceeds_unidirectional_inter_node() {
        // Full duplex: bi-directional inter-node bandwidth must beat the
        // one-way rate (TX and RX ports are independent).
        let c = cfg();
        let uni = crate::bandwidth(&c, crate::Model::Ompi, Mode::Device, Placement::InterNode);
        let bi = mpi_bibw_point(&c, 1 << 20, Placement::InterNode, OmpiFactory);
        let uni_v = uni.at(1 << 20).unwrap();
        assert!(
            bi > uni_v * 1.4,
            "bibw {bi:.0} should exceed unidirectional {uni_v:.0} by well over 1.4x"
        );
    }

    #[test]
    fn multi_pair_uses_both_rails() {
        // 1 pair is capped by one rail; 6 pairs (3 per socket) drive both
        // rails and must exceed a single rail's rate.
        let c = cfg();
        let one = mpi_mbw_point(&c, 1 << 20, 1, OmpiFactory);
        let six = mpi_mbw_point(&c, 1 << 20, 6, OmpiFactory);
        assert!(one < 12_500.0, "single pair capped by one rail: {one:.0}");
        assert!(
            six > one * 1.5,
            "six pairs {six:.0} should beat one pair {one:.0} via dual rails"
        );
    }

    #[test]
    fn ampi_bibw_works() {
        let c = cfg();
        let bi = mpi_bibw_point(&c, 1 << 20, Placement::IntraNode, AmpiFactory);
        assert!(bi > 10_000.0, "intra-node bibw {bi:.0}");
    }
}
