//! OSU benchmarks for Charm4py: channel-based ping-pong and windowed
//! bandwidth, with the GPU-direct and host-staging code paths of Fig. 8.

use std::sync::Arc;

use rucx_charm4py::{launch_with, PyParams};
use rucx_sim::time::{as_us, bandwidth_mbps};
use rucx_sim::RunOutcome;

use crate::{setup, Mode, OsuConfig, Placement};

/// One Charm4py latency measurement (µs).
pub fn latency_point(cfg: &OsuConfig, size: u64, place: Placement, mode: Mode) -> f64 {
    let mut s = setup(&cfg.machine, size);
    let peer = place.peer();
    let (d, h) = (Arc::new(s.d.clone()), Arc::new(s.h.clone()));
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup) = (cfg.lat_iters, cfg.lat_warmup);

    launch_with(&mut s.sim, PyParams::default(), move |py, ctx| {
        let me = py.rank();
        if me != 0 && me != peer {
            return;
        }
        let other = if me == 0 { peer } else { 0 };
        let ch = py.channel(other);
        let my_d = d[me].slice(0, size);
        let my_h = h[me].slice(0, size);
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(dev));
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                t0 = ctx.now();
            }
            match (me == 0, mode) {
                (true, Mode::Device) => {
                    py.send(ctx, ch, my_d);
                    py.recv(ctx, ch, my_d);
                }
                (false, Mode::Device) => {
                    py.recv(ctx, ch, my_d);
                    py.send(ctx, ch, my_d);
                }
                (true, Mode::HostStaging) => {
                    // Fig. 8 top half: explicit CUDA staging around the
                    // host-object channel operations.
                    py.cuda_copy(ctx, my_d, my_h, stream);
                    py.cuda_stream_sync(ctx, stream);
                    py.send_host_payload(ctx, ch, None, size);
                    py.recv(ctx, ch, my_h);
                    py.cuda_copy(ctx, my_h, my_d, stream);
                    py.cuda_stream_sync(ctx, stream);
                }
                (false, Mode::HostStaging) => {
                    py.recv(ctx, ch, my_h);
                    py.cuda_copy(ctx, my_h, my_d, stream);
                    py.cuda_stream_sync(ctx, stream);
                    py.cuda_copy(ctx, my_d, my_h, stream);
                    py.cuda_stream_sync(ctx, stream);
                    py.send_host_payload(ctx, ch, None, size);
                }
            }
        }
        if me == 0 {
            *result2.lock() = as_us(ctx.now() - t0) / (2.0 * iters as f64);
        }
    });
    assert_eq!(s.sim.run(), RunOutcome::Completed);
    let r = *result.lock();
    r
}

/// One Charm4py bandwidth measurement (MB/s).
pub fn bandwidth_point(cfg: &OsuConfig, size: u64, place: Placement, mode: Mode) -> f64 {
    let mut s = setup(&cfg.machine, size);
    let peer = place.peer();
    let (d, h) = (Arc::new(s.d.clone()), Arc::new(s.h.clone()));
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup, window) = (cfg.bw_iters, cfg.bw_warmup, cfg.bw_window);

    launch_with(&mut s.sim, PyParams::default(), move |py, ctx| {
        let me = py.rank();
        if me != 0 && me != peer {
            return;
        }
        let other = if me == 0 { peer } else { 0 };
        let ch = py.channel(other);
        let my_d = d[me].slice(0, size);
        let my_h = h[me].slice(0, size);
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(dev));
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                t0 = ctx.now();
            }
            if me == 0 {
                for _ in 0..window {
                    match mode {
                        Mode::Device => py.send(ctx, ch, my_d),
                        Mode::HostStaging => {
                            py.cuda_copy(ctx, my_d, my_h, stream);
                            py.cuda_stream_sync(ctx, stream);
                            py.send_host_payload(ctx, ch, None, size);
                        }
                    }
                }
                // Ack.
                py.recv_host(ctx, ch);
            } else {
                for _ in 0..window {
                    match mode {
                        Mode::Device => {
                            py.recv(ctx, ch, my_d);
                        }
                        Mode::HostStaging => {
                            py.recv(ctx, ch, my_h);
                            py.cuda_copy(ctx, my_h, my_d, stream);
                            py.cuda_stream_sync(ctx, stream);
                        }
                    }
                }
                py.send_host_payload(ctx, ch, None, 4);
            }
        }
        if me == 0 {
            let bytes = size * window as u64 * iters as u64;
            *result2.lock() = bandwidth_mbps(bytes, ctx.now() - t0);
        }
    });
    assert_eq!(s.sim.run(), RunOutcome::Completed);
    let r = *result.lock();
    r
}
