//! OSU latency benchmark (ping-pong), MPI-style models.
//!
//! The sender sends a message and waits for a same-size reply; one-way
//! latency is half the measured round trip (§IV-B1). The `-H` variant
//! stages the GPU buffer through host memory with explicit copies around
//! each communication call, as in the adapted OSU sources.

use std::sync::Arc;

use rucx_sim::time::as_us;
use rucx_sim::RunOutcome;

use crate::cuda;
use crate::mpi_like::{P2p, RankFactory};
use crate::{setup, Mode, OsuConfig, Placement};

/// One latency measurement (µs) for an MPI-style model.
pub fn mpi_latency_point<F: RankFactory>(
    cfg: &OsuConfig,
    size: u64,
    place: Placement,
    mode: Mode,
    factory: F,
) -> f64 {
    let mut s = setup(&cfg.machine, size);
    let peer = place.peer();
    let (d, h) = (Arc::new(s.d.clone()), Arc::new(s.h.clone()));
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup) = (cfg.lat_iters, cfg.lat_warmup);

    factory.launch(&mut s.sim, move |mpi, ctx| {
        let me = mpi.rank();
        if me != 0 && me != peer {
            return;
        }
        let other = if me == 0 { peer } else { 0 };
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(dev));
        let my_d = d[me].slice(0, size);
        let my_h = h[me].slice(0, size);
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                t0 = ctx.now();
            }
            match (me == 0, mode) {
                (true, Mode::Device) => {
                    mpi.send(ctx, my_d, other, 1);
                    mpi.recv(ctx, my_d, other, 2);
                }
                (false, Mode::Device) => {
                    mpi.recv(ctx, my_d, other, 1);
                    mpi.send(ctx, my_d, other, 2);
                }
                (true, Mode::HostStaging) => {
                    cuda::copy_sync(ctx, my_d, my_h, stream);
                    mpi.send(ctx, my_h, other, 1);
                    mpi.recv(ctx, my_h, other, 2);
                    cuda::copy_sync(ctx, my_h, my_d, stream);
                }
                (false, Mode::HostStaging) => {
                    mpi.recv(ctx, my_h, other, 1);
                    cuda::copy_sync(ctx, my_h, my_d, stream);
                    cuda::copy_sync(ctx, my_d, my_h, stream);
                    mpi.send(ctx, my_h, other, 2);
                }
            }
        }
        if me == 0 {
            let elapsed = ctx.now() - t0;
            *result2.lock() = as_us(elapsed) / (2.0 * iters as f64);
        }
    });
    assert_eq!(
        s.sim.run(),
        RunOutcome::Completed,
        "latency bench deadlocked"
    );
    let r = *result.lock();
    r
}
