//! OSU-style collective latency benchmark (`osu_allreduce` / `osu_bcast`):
//! all 12 ranks of a two-node Summit slice run the collective repeatedly;
//! reported latency is the per-iteration time of one (collective +
//! barrier) round measured on rank 0. Buffers are phantom (timing never
//! depends on payload content), so the combine kernels pay their launch
//! and memory-bound time without the element-wise math.
//!
//! `algo: None` lets the engine's cost model pick per size — the curve a
//! user sees; forcing an [`Algo`] produces the ablation curves
//! (flat recursive doubling vs ring vs hierarchical NVLink-aware).

use std::sync::Arc;

use rucx_coll::Algo;
use rucx_fabric::Topology;
use rucx_gpu::MemRef;
use rucx_sim::time::as_us;
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MSim, MachineConfig};

use crate::coll::{self, CollOp};
use crate::mpi_like::{P2p, RankFactory};
use crate::{Model, OsuConfig, Series};

/// Which collective to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    Allreduce,
    Bcast,
}

impl CollKind {
    pub fn label(self) -> &'static str {
        match self {
            CollKind::Allreduce => "allreduce",
            CollKind::Bcast => "bcast",
        }
    }
}

/// Per-process phantom device buffer + scratch on a 2-node Summit slice.
fn coll_setup(machine: &MachineConfig, size: u64) -> (MSim, Vec<MemRef>, Vec<MemRef>) {
    let topo = Topology::summit(2);
    let mut sim = build_sim(topo.clone(), machine.clone());
    let mut bufs = Vec::new();
    let mut scratch = Vec::new();
    {
        let m = sim.world_mut();
        for p in 0..topo.procs() {
            bufs.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, false)
                    .expect("device alloc"),
            );
            scratch.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, false)
                    .expect("device alloc"),
            );
        }
    }
    (sim, bufs, scratch)
}

fn mpi_coll_point<F: RankFactory>(
    cfg: &OsuConfig,
    size: u64,
    kind: CollKind,
    algo: Option<Algo>,
    factory: F,
) -> f64 {
    let (mut sim, bufs, scratch) = coll_setup(&cfg.machine, size);
    let n = bufs.len();
    let (bufs, scratch) = (Arc::new(bufs), Arc::new(scratch));
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup) = (cfg.lat_iters, cfg.lat_warmup);

    factory.launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let buf = bufs[me];
        let scr = scratch[me];
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                mpi.barrier(ctx);
                t0 = ctx.now();
            }
            run_one(mpi, ctx, kind, algo, buf, scr, n);
            mpi.barrier(ctx);
        }
        if me == 0 {
            *result2.lock() = as_us(ctx.now() - t0) / iters as f64;
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "collective deadlocked");
    let r = *result.lock();
    r
}

fn run_one<M: P2p>(
    mpi: &mut M,
    ctx: &mut rucx_ucp::MCtx,
    kind: CollKind,
    algo: Option<Algo>,
    buf: MemRef,
    scr: MemRef,
    n: usize,
) {
    match (kind, algo) {
        (CollKind::Allreduce, Some(a)) => {
            coll::allreduce_with(mpi, ctx, buf, scr, CollOp::Sum, n, a)
        }
        (CollKind::Allreduce, None) => {
            let me = mpi.rank();
            let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
            coll::allreduce(mpi, ctx, buf, scr, CollOp::Sum, n, dev)
        }
        (CollKind::Bcast, Some(a)) => coll::bcast_with(mpi, ctx, buf, 0, n, a),
        (CollKind::Bcast, None) => coll::bcast(mpi, ctx, buf, 0, n),
    }
}

fn py_coll_point(cfg: &OsuConfig, size: u64, kind: CollKind, algo: Option<Algo>) -> f64 {
    let (mut sim, bufs, scratch) = coll_setup(&cfg.machine, size);
    let (bufs, scratch) = (Arc::new(bufs), Arc::new(scratch));
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup) = (cfg.lat_iters, cfg.lat_warmup);

    rucx_charm4py::launch(&mut sim, move |py, ctx| {
        let me = py.rank();
        let buf = bufs[me];
        let scr = scratch[me];
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                py.barrier(ctx);
                t0 = ctx.now();
            }
            match (kind, algo) {
                (CollKind::Allreduce, Some(a)) => {
                    py.allreduce_with(ctx, buf, scr, rucx_charm4py::ReduceOp::Sum, a)
                }
                (CollKind::Allreduce, None) => {
                    py.allreduce(ctx, buf, scr, rucx_charm4py::ReduceOp::Sum)
                }
                (CollKind::Bcast, Some(a)) => py.bcast_with(ctx, buf, 0, a),
                (CollKind::Bcast, None) => py.bcast(ctx, buf, 0),
            }
            py.barrier(ctx);
        }
        if me == 0 {
            *result2.lock() = as_us(ctx.now() - t0) / iters as f64;
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "collective deadlocked");
    let r = *result.lock();
    r
}

/// Latency-vs-size sweep for one model/collective/algorithm. Sizes are
/// rounded up to one `f64` (the engine's payload unit).
pub fn coll_latency(cfg: &OsuConfig, model: Model, kind: CollKind, algo: Option<Algo>) -> Series {
    let points = cfg
        .sizes
        .iter()
        .map(|&raw| {
            let size = raw.max(8).next_multiple_of(8);
            let us = match model {
                Model::Ampi => mpi_coll_point(cfg, size, kind, algo, crate::mpi_like::AmpiFactory),
                Model::Ompi => mpi_coll_point(cfg, size, kind, algo, crate::mpi_like::OmpiFactory),
                Model::Charm4py => py_coll_point(cfg, size, kind, algo),
                Model::Charm => panic!(
                    "collective benchmark supports AMPI/OpenMPI/Charm4py \
                     (Charm++ reductions are scalar contributions)"
                ),
            };
            (size, us)
        })
        .collect();
    Series {
        label: format!(
            "{}-D {} [{}] latency",
            model.label(),
            kind.label(),
            algo.map_or("auto", Algo::label),
        ),
        unit: "us",
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_latency_sweeps_all_models() {
        let mut cfg = OsuConfig::quick();
        cfg.sizes = vec![256];
        for model in [Model::Ampi, Model::Ompi, Model::Charm4py] {
            let s = coll_latency(&cfg, model, CollKind::Allreduce, None);
            assert_eq!(s.points.len(), 1);
            assert!(s.points[0].1 > 0.0, "{model:?}");
        }
    }

    #[test]
    fn hierarchical_beats_flat_doubling_at_1mib() {
        let mut cfg = OsuConfig::quick();
        cfg.sizes = vec![1 << 20];
        cfg.lat_iters = 3;
        cfg.lat_warmup = 1;
        let rd = coll_latency(
            &cfg,
            Model::Ompi,
            CollKind::Allreduce,
            Some(Algo::RecursiveDoubling),
        );
        let hier = coll_latency(
            &cfg,
            Model::Ompi,
            CollKind::Allreduce,
            Some(Algo::Hierarchical),
        );
        assert!(
            hier.points[0].1 < rd.points[0].1,
            "hier {} us !< flat rd {} us",
            hier.points[0].1,
            rd.points[0].1
        );
    }

    #[test]
    fn bcast_latency_runs() {
        let mut cfg = OsuConfig::quick();
        cfg.sizes = vec![4096];
        let s = coll_latency(&cfg, Model::Ampi, CollKind::Bcast, None);
        assert!(s.points[0].1 > 0.0);
    }
}
