//! OSU bandwidth benchmark (windowed non-blocking sends), MPI-style models.
//!
//! The sender posts `window` back-to-back non-blocking sends per iteration
//! and waits for a small reply; the receiver posts `window` non-blocking
//! receives and acknowledges (§IV-B2).

use std::sync::Arc;

use rucx_sim::time::bandwidth_mbps;
use rucx_sim::RunOutcome;

use crate::cuda;
use crate::mpi_like::{P2p, RankFactory};
use crate::{setup, Mode, OsuConfig, Placement};

/// One bandwidth measurement (MB/s) for an MPI-style model.
pub fn mpi_bw_point<F: RankFactory>(
    cfg: &OsuConfig,
    size: u64,
    place: Placement,
    mode: Mode,
    factory: F,
) -> f64 {
    let mut s = setup(&cfg.machine, size);
    let peer = place.peer();
    let (d, h, ack) = (
        Arc::new(s.d.clone()),
        Arc::new(s.h.clone()),
        Arc::new(s.ack.clone()),
    );
    let result = Arc::new(rucx_compat::sync::Mutex::new(0.0f64));
    let result2 = result.clone();
    let (iters, warmup, window) = (cfg.bw_iters, cfg.bw_warmup, cfg.bw_window);

    factory.launch(&mut s.sim, move |mpi, ctx| {
        let me = mpi.rank();
        if me != 0 && me != peer {
            return;
        }
        let other = if me == 0 { peer } else { 0 };
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(dev));
        let my_d = d[me].slice(0, size);
        let my_h = h[me].slice(0, size);
        let my_ack = ack[me].slice(0, 4);
        let mut t0 = 0;
        for i in 0..(warmup + iters) {
            if i == warmup {
                t0 = ctx.now();
            }
            if me == 0 {
                // Sender: window of non-blocking sends, then wait for ack.
                let mut reqs = Vec::with_capacity(window as usize);
                for w in 0..window {
                    let buf = match mode {
                        Mode::Device => my_d,
                        Mode::HostStaging => {
                            cuda::copy_sync(ctx, my_d, my_h, stream);
                            my_h
                        }
                    };
                    reqs.push(mpi.isend(ctx, buf, other, w as i32));
                }
                mpi.waitall(ctx, reqs);
                mpi.recv(ctx, my_ack, other, 99);
            } else {
                // Receiver: window of non-blocking receives, then ack.
                let mut reqs = Vec::with_capacity(window as usize);
                let buf = match mode {
                    Mode::Device => my_d,
                    Mode::HostStaging => my_h,
                };
                for w in 0..window {
                    reqs.push(mpi.irecv(ctx, buf, other, w as i32));
                }
                mpi.waitall(ctx, reqs);
                if mode == Mode::HostStaging {
                    for _ in 0..window {
                        cuda::copy_sync(ctx, my_h, my_d, stream);
                    }
                }
                mpi.send(ctx, my_ack, other, 99);
            }
        }
        if me == 0 {
            let elapsed = ctx.now() - t0;
            let bytes = size * window as u64 * iters as u64;
            *result2.lock() = bandwidth_mbps(bytes, elapsed);
        }
    });
    assert_eq!(s.sim.run(), RunOutcome::Completed, "bw bench deadlocked");
    let r = *result.lock();
    r
}
