//! Blocking CUDA-style staging helpers used by the host-staging (`-H`)
//! benchmark variants: `cudaMemcpyAsync` + `cudaStreamSynchronize` with
//! their CPU-side costs, as plain (non-Python) runtime calls.

use rucx_gpu::{copy_async, stream_sync_trigger, MemRef, StreamId};
use rucx_ucp::MCtx;

/// Issue an async copy and wait for it (memcpy + stream synchronize),
/// charging the CPU-side launch and sync costs.
pub fn copy_sync(ctx: &mut MCtx, src: MemRef, dst: MemRef, stream: StreamId) {
    let (launch, sync) =
        ctx.with_world(|w, _| (w.gpu.params.copy_launch, w.gpu.params.sync_overhead));
    ctx.advance(launch);
    let t = ctx.with_world(move |w, s| {
        copy_async(w, s, src, dst, stream, None);
        stream_sync_trigger(w, s, stream)
    });
    ctx.wait(t);
    ctx.with_world(move |_, s| s.recycle_trigger(t));
    ctx.advance(sync);
}

/// Issue an async copy without waiting (returns immediately after the
/// launch cost).
pub fn copy_nosync(ctx: &mut MCtx, src: MemRef, dst: MemRef, stream: StreamId) {
    let launch = ctx.with_world_ref(|w, _| w.gpu.params.copy_launch);
    ctx.advance(launch);
    ctx.with_world(move |w, s| {
        copy_async(w, s, src, dst, stream, None);
    });
}

/// Launch a kernel and wait for it (launch cost + device time + sync cost).
pub fn kernel_sync(ctx: &mut MCtx, cost: rucx_gpu::KernelCost, stream: StreamId) {
    let (launch, sync) =
        ctx.with_world(|w, _| (w.gpu.params.kernel_launch, w.gpu.params.sync_overhead));
    ctx.advance(launch);
    let t = ctx.with_world(move |w, s| {
        let done = s.new_trigger();
        rucx_gpu::kernel_async(w, s, stream, cost, Some(done));
        done
    });
    ctx.wait(t);
    ctx.with_world(move |_, s| s.recycle_trigger(t));
    ctx.advance(sync);
}

/// Launch a kernel without waiting.
pub fn kernel_nosync(ctx: &mut MCtx, cost: rucx_gpu::KernelCost, stream: StreamId) {
    let launch = ctx.with_world_ref(|w, _| w.gpu.params.kernel_launch);
    ctx.advance(launch);
    ctx.with_world(move |w, s| {
        rucx_gpu::kernel_async(w, s, stream, cost, None);
    });
}

/// Wait for everything enqueued on `stream`.
pub fn stream_sync(ctx: &mut MCtx, stream: StreamId) {
    let sync = ctx.with_world_ref(|w, _| w.gpu.params.sync_overhead);
    let t = ctx.with_world(move |w, s| stream_sync_trigger(w, s, stream));
    ctx.wait(t);
    ctx.with_world(move |_, s| s.recycle_trigger(t));
    ctx.advance(sync);
}
