//! Collective communication of GPU data, translated to point-to-point
//! calls — the paper's §VI future-work item ("supporting collective
//! communication of GPU data, using this work as the basis to translate
//! collective communication primitives to point-to-point calls").
//!
//! The algorithms and their selection live in the shared topology-aware
//! engine ([`rucx_coll`]); this module adapts the generic
//! [`crate::mpi_like::P2p`] surface to [`CollComm`], so the same schedules
//! run on AMPI and OpenMPI. GPU payloads ride the GPU-aware point-to-point
//! path per hop.

use rucx_coll::CollComm;
use rucx_gpu::{DeviceId, MemRef};
use rucx_ucp::MCtx;

use crate::mpi_like::P2p;

/// Tag space reserved for collectives (distinct from user point-to-point).
pub const COLL_TAG_BASE: i32 = rucx_coll::tags::COLL_TAG_BASE;

/// Element-wise reduction operator for collectives over `f64` payloads.
pub use rucx_coll::ReduceOp as CollOp;

/// Adapts any [`P2p`] model to the collective engine's [`CollComm`].
pub struct P2pComm<'a, M: P2p> {
    mpi: &'a mut M,
    nranks: usize,
}

impl<'a, M: P2p> P2pComm<'a, M> {
    pub fn new(mpi: &'a mut M, nranks: usize) -> Self {
        P2pComm { mpi, nranks }
    }
}

impl<M: P2p> CollComm for P2pComm<'_, M> {
    fn rank(&self) -> usize {
        self.mpi.rank()
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) {
        self.mpi.send(ctx, buf, dst, tag)
    }

    fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: usize, tag: i32) {
        self.mpi.recv(ctx, buf, src, tag)
    }

    fn sendrecv(
        &mut self,
        ctx: &mut MCtx,
        sbuf: MemRef,
        dst: usize,
        stag: i32,
        rbuf: MemRef,
        src: usize,
        rtag: i32,
    ) {
        // Nonblocking both ways so a symmetric exchange cannot deadlock on
        // models whose blocking send is rendezvous-gated (AMPI).
        let r = self.mpi.irecv(ctx, rbuf, src, rtag);
        let s = self.mpi.isend(ctx, sbuf, dst, stag);
        self.mpi.waitall(ctx, vec![r, s]);
    }
}

/// Broadcast of `buf` from `root` to all ranks; the engine picks the
/// schedule (binomial tree or hierarchical) per size and placement.
pub fn bcast<M: P2p>(mpi: &mut M, ctx: &mut MCtx, buf: MemRef, root: usize, nranks: usize) {
    rucx_coll::bcast(&mut P2pComm::new(mpi, nranks), ctx, buf, root)
}

/// Broadcast with a forced algorithm (benchmarks, ablations).
#[allow(clippy::too_many_arguments)]
pub fn bcast_with<M: P2p>(
    mpi: &mut M,
    ctx: &mut MCtx,
    buf: MemRef,
    root: usize,
    nranks: usize,
    algo: rucx_coll::Algo,
) {
    rucx_coll::bcast_with(&mut P2pComm::new(mpi, nranks), ctx, buf, root, algo)
}

/// Allreduce over `f64` GPU buffers; the engine picks the schedule
/// (recursive doubling, ring, or hierarchical) per size and placement.
///
/// `scratch` is a device buffer of the same size used to receive partner
/// contributions. `device` is retained for API stability; the engine
/// derives each rank's stream from the topology.
#[allow(clippy::too_many_arguments)]
pub fn allreduce<M: P2p>(
    mpi: &mut M,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: CollOp,
    nranks: usize,
    device: DeviceId,
) {
    let _ = device;
    rucx_coll::allreduce(&mut P2pComm::new(mpi, nranks), ctx, buf, scratch, op)
}

/// Allreduce with a forced algorithm (benchmarks, ablations).
#[allow(clippy::too_many_arguments)]
pub fn allreduce_with<M: P2p>(
    mpi: &mut M,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: CollOp,
    nranks: usize,
    algo: rucx_coll::Algo,
) {
    rucx_coll::allreduce_with(&mut P2pComm::new(mpi, nranks), ctx, buf, scratch, op, algo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_like::RankFactory;
    use rucx_coll::Algo;
    use rucx_fabric::Topology;
    use rucx_sim::RunOutcome;
    use rucx_ucp::{build_sim, MSim, MachineConfig};
    use std::sync::Arc;

    fn setup(nodes: usize, size: u64) -> (MSim, Vec<MemRef>, Vec<MemRef>) {
        let topo = Topology::summit(nodes);
        let mut sim = build_sim(topo.clone(), MachineConfig::default());
        let mut bufs = vec![];
        let mut scratch = vec![];
        for p in 0..topo.procs() {
            let m = sim.world_mut();
            bufs.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, true)
                    .unwrap(),
            );
            scratch.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, true)
                    .unwrap(),
            );
        }
        (sim, bufs, scratch)
    }

    fn write_f64s(sim: &mut MSim, buf: MemRef, vals: &[f64]) {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        sim.world_mut().gpu.pool.write(buf, &bytes).unwrap();
    }

    fn read_f64s(sim: &MSim, buf: MemRef) -> Vec<f64> {
        sim.world()
            .gpu
            .pool
            .read(buf)
            .unwrap()
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn run_bcast<F: RankFactory>(factory: F, root: usize) {
        let (mut sim, bufs, _) = setup(2, 64);
        write_f64s(&mut sim, bufs[root], &[1.5; 8]);
        let bufs2 = Arc::new(bufs.clone());
        let n = 12;
        factory.launch(&mut sim, move |mpi, ctx| {
            bcast(mpi, ctx, bufs2[mpi.rank()], root, n);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        for b in &bufs {
            assert_eq!(read_f64s(&sim, *b), vec![1.5; 8]);
        }
    }

    #[test]
    fn bcast_openmpi_all_roots() {
        for root in [0usize, 3, 11] {
            run_bcast(crate::mpi_like::OmpiFactory, root);
        }
    }

    #[test]
    fn bcast_ampi() {
        run_bcast(crate::mpi_like::AmpiFactory, 5);
    }

    fn run_allreduce<F: RankFactory>(factory: F, nodes: usize, op: CollOp, algo: Option<Algo>) {
        // 8 elements/rank: enough for a 12-rank ring's per-rank segments.
        let (mut sim, bufs, scratch) = setup(nodes, 96);
        let n = nodes * 6;
        for (r, b) in bufs.iter().enumerate() {
            let vals: Vec<f64> = (0..12).map(|i| (r * 10 + i) as f64).collect();
            write_f64s(&mut sim, *b, &vals);
        }
        let bufs2 = Arc::new(bufs.clone());
        let scratch2 = Arc::new(scratch);
        factory.launch(&mut sim, move |mpi, ctx| {
            let me = mpi.rank();
            match algo {
                Some(a) => allreduce_with(mpi, ctx, bufs2[me], scratch2[me], op, n, a),
                None => {
                    let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
                    allreduce(mpi, ctx, bufs2[me], scratch2[me], op, n, dev)
                }
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let expected: Vec<f64> = (0..12)
            .map(|i| {
                let vals = (0..n).map(|r| (r * 10 + i) as f64);
                match op {
                    CollOp::Sum => vals.sum(),
                    CollOp::Max => vals.fold(f64::NEG_INFINITY, f64::max),
                    CollOp::Min => vals.fold(f64::INFINITY, f64::min),
                }
            })
            .collect();
        for (r, b) in bufs.iter().enumerate() {
            assert_eq!(read_f64s(&sim, *b), expected, "rank {r}");
        }
    }

    #[test]
    fn allreduce_sum_openmpi_nonpow2() {
        // 12 ranks: exercises the fold-in/fold-out phases.
        run_allreduce(crate::mpi_like::OmpiFactory, 2, CollOp::Sum, None);
    }

    #[test]
    fn allreduce_max_openmpi() {
        run_allreduce(crate::mpi_like::OmpiFactory, 1, CollOp::Max, None);
    }

    #[test]
    fn allreduce_sum_ampi() {
        run_allreduce(crate::mpi_like::AmpiFactory, 1, CollOp::Sum, None);
    }

    #[test]
    fn allreduce_ring_both_models() {
        run_allreduce(
            crate::mpi_like::OmpiFactory,
            2,
            CollOp::Sum,
            Some(Algo::Ring),
        );
        run_allreduce(
            crate::mpi_like::AmpiFactory,
            2,
            CollOp::Sum,
            Some(Algo::Ring),
        );
    }

    #[test]
    fn allreduce_hierarchical_both_models() {
        run_allreduce(
            crate::mpi_like::OmpiFactory,
            2,
            CollOp::Max,
            Some(Algo::Hierarchical),
        );
        run_allreduce(
            crate::mpi_like::AmpiFactory,
            2,
            CollOp::Sum,
            Some(Algo::Hierarchical),
        );
    }
}
