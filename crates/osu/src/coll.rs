//! Collective communication of GPU data, translated to point-to-point
//! calls — the paper's §VI future-work item ("supporting collective
//! communication of GPU data, using this work as the basis to translate
//! collective communication primitives to point-to-point calls").
//!
//! Implemented generically over the [`crate::mpi_like::P2p`] surface, so
//! the same algorithms run on AMPI and OpenMPI. GPU payloads ride the
//! GPU-aware point-to-point path; local combining is modeled as a GPU
//! kernel (memory-bound) plus the actual element-wise operation on the
//! backing bytes, so results are verifiable.

use rucx_gpu::{DeviceId, KernelCost, MemRef};
use rucx_sim::time::us;
use rucx_ucp::MCtx;

use crate::cuda;
use crate::mpi_like::P2p;

/// Tag space reserved for collectives (distinct from user point-to-point).
const COLL_TAG_BASE: i32 = 1 << 20;

/// Binomial-tree broadcast of `buf` from `root` to all ranks.
///
/// Every edge of the tree is one GPU-aware point-to-point message, so the
/// same eager/rendezvous/IPC/pipeline machinery applies per hop.
pub fn bcast<M: P2p>(mpi: &mut M, ctx: &mut MCtx, buf: MemRef, root: usize, nranks: usize) {
    let me = mpi.rank();
    // Rotate so the root is rank 0 in tree coordinates.
    let vrank = (me + nranks - root) % nranks;
    let mut mask = 1usize;
    // Receive phase: find my parent.
    while mask < nranks {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % nranks;
            mpi.recv(ctx, buf, parent, COLL_TAG_BASE);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children.
    let mut child_mask = mask >> 1;
    while child_mask > 0 {
        let vchild = vrank + child_mask;
        if vchild < nranks {
            let child = (vchild + root) % nranks;
            mpi.send(ctx, buf, child, COLL_TAG_BASE);
        }
        child_mask >>= 1;
    }
}

/// Element-wise reduction operator for collectives over `f64` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    Sum,
    Max,
}

/// Combine `other` into `mine` (both `f64` arrays of equal byte length):
/// models the GPU reduction kernel and performs the real element-wise
/// operation on the backing bytes so results stay verifiable.
fn combine_into(
    ctx: &mut MCtx,
    mine: MemRef,
    other: MemRef,
    op: CollOp,
    stream: rucx_gpu::StreamId,
) {
    // Memory-bound kernel: read both inputs, write one output.
    cuda::kernel_sync(
        ctx,
        KernelCost {
            fixed: us(3.0),
            bytes: mine.len * 3,
        },
        stream,
    );
    ctx.with_world(move |w, _| {
        let a = w.gpu.pool.read(mine).expect("combine lhs");
        let b = w.gpu.pool.read(other).expect("combine rhs");
        if !w.gpu.pool.is_materialized(mine.id).unwrap_or(false) {
            return;
        }
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            let x = f64::from_le_bytes(ca.try_into().unwrap());
            let y = f64::from_le_bytes(cb.try_into().unwrap());
            let r = match op {
                CollOp::Sum => x + y,
                CollOp::Max => x.max(y),
            };
            out.extend_from_slice(&r.to_le_bytes());
        }
        let n = out.len() as u64;
        w.gpu
            .pool
            .write(mine.slice(0, n), &out)
            .expect("combine write");
    });
}

/// Recursive-doubling allreduce over `f64` GPU buffers (any rank count:
/// non-power-of-two ranks fold into the nearest power of two first).
///
/// `scratch` is a device buffer of the same size used to receive partner
/// contributions.
#[allow(clippy::too_many_arguments)]
pub fn allreduce<M: P2p>(
    mpi: &mut M,
    ctx: &mut MCtx,
    buf: MemRef,
    scratch: MemRef,
    op: CollOp,
    nranks: usize,
    device: DeviceId,
) {
    assert_eq!(buf.len, scratch.len, "scratch must match buffer size");
    assert_eq!(buf.len % 8, 0, "f64 payload");
    let me = mpi.rank();
    let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(device));
    let p2 = nranks.next_power_of_two() / if nranks.is_power_of_two() { 1 } else { 2 };
    let extra = nranks - p2;

    // Fold-in phase: ranks >= p2 send to (rank - p2).
    if me >= p2 {
        mpi.send(ctx, buf, me - p2, COLL_TAG_BASE + 1);
    } else if me < extra {
        mpi.recv(ctx, scratch, me + p2, COLL_TAG_BASE + 1);
        combine_into(ctx, buf, scratch, op, stream);
    }

    // Recursive doubling among the first p2 ranks.
    if me < p2 {
        let mut mask = 1usize;
        while mask < p2 {
            let partner = me ^ mask;
            // Exchange without deadlock: non-blocking both ways.
            let r = mpi.irecv(ctx, scratch, partner as i32 as usize, COLL_TAG_BASE + 2);
            let s = mpi.isend(ctx, buf, partner, COLL_TAG_BASE + 2);
            mpi.waitall(ctx, vec![r, s]);
            combine_into(ctx, buf, scratch, op, stream);
            mask <<= 1;
        }
    }

    // Fold-out phase: send the result back to the extra ranks.
    if me < extra {
        mpi.send(ctx, buf, me + p2, COLL_TAG_BASE + 3);
    } else if me >= p2 {
        mpi.recv(ctx, buf, me - p2, COLL_TAG_BASE + 3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_like::RankFactory;
    use rucx_fabric::Topology;
    use rucx_sim::RunOutcome;
    use rucx_ucp::{build_sim, MSim, MachineConfig};
    use std::sync::Arc;

    fn setup(nodes: usize, size: u64) -> (MSim, Vec<MemRef>, Vec<MemRef>) {
        let topo = Topology::summit(nodes);
        let mut sim = build_sim(topo.clone(), MachineConfig::default());
        let mut bufs = vec![];
        let mut scratch = vec![];
        for p in 0..topo.procs() {
            let m = sim.world_mut();
            bufs.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, true)
                    .unwrap(),
            );
            scratch.push(
                m.gpu
                    .pool
                    .alloc_device(topo.device_of(p), size, true)
                    .unwrap(),
            );
        }
        (sim, bufs, scratch)
    }

    fn write_f64s(sim: &mut MSim, buf: MemRef, vals: &[f64]) {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        sim.world_mut().gpu.pool.write(buf, &bytes).unwrap();
    }

    fn read_f64s(sim: &MSim, buf: MemRef) -> Vec<f64> {
        sim.world()
            .gpu
            .pool
            .read(buf)
            .unwrap()
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn run_bcast<F: RankFactory>(factory: F, root: usize) {
        let (mut sim, bufs, _) = setup(2, 64);
        write_f64s(&mut sim, bufs[root], &[1.5; 8]);
        let bufs2 = Arc::new(bufs.clone());
        let n = 12;
        factory.launch(&mut sim, move |mpi, ctx| {
            bcast(mpi, ctx, bufs2[mpi.rank()], root, n);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        for b in &bufs {
            assert_eq!(read_f64s(&sim, *b), vec![1.5; 8]);
        }
    }

    #[test]
    fn bcast_openmpi_all_roots() {
        for root in [0usize, 3, 11] {
            run_bcast(crate::mpi_like::OmpiFactory, root);
        }
    }

    #[test]
    fn bcast_ampi() {
        run_bcast(crate::mpi_like::AmpiFactory, 5);
    }

    fn run_allreduce<F: RankFactory>(factory: F, nodes: usize, op: CollOp) {
        let (mut sim, bufs, scratch) = setup(nodes, 64);
        let n = nodes * 6;
        for (r, b) in bufs.iter().enumerate() {
            let vals: Vec<f64> = (0..8).map(|i| (r * 10 + i) as f64).collect();
            write_f64s(&mut sim, *b, &vals);
        }
        let bufs2 = Arc::new(bufs.clone());
        let scratch2 = Arc::new(scratch);
        factory.launch(&mut sim, move |mpi, ctx| {
            let me = mpi.rank();
            let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
            allreduce(mpi, ctx, bufs2[me], scratch2[me], op, n, dev);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let expected: Vec<f64> = (0..8)
            .map(|i| {
                let vals = (0..n).map(|r| (r * 10 + i) as f64);
                match op {
                    CollOp::Sum => vals.sum(),
                    CollOp::Max => vals.fold(f64::NEG_INFINITY, f64::max),
                }
            })
            .collect();
        for (r, b) in bufs.iter().enumerate() {
            assert_eq!(read_f64s(&sim, *b), expected, "rank {r}");
        }
    }

    #[test]
    fn allreduce_sum_openmpi_nonpow2() {
        // 12 ranks: exercises the fold-in/fold-out phases.
        run_allreduce(crate::mpi_like::OmpiFactory, 2, CollOp::Sum);
    }

    #[test]
    fn allreduce_max_openmpi() {
        run_allreduce(crate::mpi_like::OmpiFactory, 1, CollOp::Max);
    }

    #[test]
    fn allreduce_sum_ampi() {
        run_allreduce(crate::mpi_like::AmpiFactory, 1, CollOp::Sum);
    }
}
