//! The fault specification: what to inject, where, and when — plus the
//! compact text form the `--fault-spec` driver knob accepts.
//!
//! Text grammar (comma-separated `key=value` fields, times in virtual
//! microseconds):
//!
//! ```text
//! seed=42                  decision-RNG seed (default 1)
//! drop=0.01                per-envelope drop probability
//! dup=0.005                per-envelope duplication probability
//! delay=0.05:20            delay probability : extra delay bound (us)
//! corrupt=0.001            per-envelope detected-corruption probability
//! link=0-1                 target only this node pair (repeatable; default all)
//! degrade=0.5@100-500      bandwidth x0.5 between 100us and 500us (repeatable)
//! partition=200-300        full partition window in us (repeatable)
//! gpufail=0@250            device 0 loses GPU-direct paths at 250us (repeatable)
//! heal=0-1@500             link 0-1 heals at 500us: partition/degrade
//!                          windows stop applying to it (repeatable)
//! scenario=partition       named scenario shorthand, one of
//!                          drop1|drop5|partition|gpufail|degrade —
//!                          expands in place; later fields still override
//! maxfaults=100            stop injecting after this many faults
//! ```
//!
//! Example: `drop=0.01,delay=0.02:15,corrupt=0.002,link=0-1,seed=7`.
//!
//! [`FaultSpec`] implements `Display` emitting the canonical text form:
//! `FaultSpec::parse(&spec.to_string())` round-trips every effective field
//! (a non-default `delay` bound with `delay_p == 0` is inert and elided).

use rucx_sim::time::{us, Duration, Time};

/// Which node-pair links the envelope/partition/degrade faults target.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum LinkFilter {
    /// Every inter-node link.
    #[default]
    Any,
    /// Only the listed unordered node pairs.
    Pairs(Vec<(usize, usize)>),
}

impl LinkFilter {
    /// Whether the `(a, b)` link is targeted (order-insensitive).
    pub fn matches(&self, a: usize, b: usize) -> bool {
        match self {
            LinkFilter::Any => true,
            LinkFilter::Pairs(ps) => ps
                .iter()
                .any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b)),
        }
    }
}

/// A bandwidth-degradation window: the link runs at `factor` of nominal
/// bandwidth for `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeWindow {
    pub from: Time,
    pub until: Time,
    pub factor: f64,
}

/// A full-partition window: every envelope on targeted links is dropped
/// for `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    pub from: Time,
    pub until: Time,
}

/// A GPU copy-engine failure: device `device` permanently loses its
/// GPU-direct paths (GDRCopy / CUDA IPC / GPUDirect RDMA) at time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuFail {
    pub device: u32,
    pub at: Time,
}

/// A link-heal event: from time `at`, partition and bandwidth-degradation
/// windows stop applying to the unordered `(a, b)` node link (the physical
/// fault is repaired before its scheduled window would have ended).
/// Probabilistic envelope faults are unaffected — they model steady-state
/// loss, not a discrete outage.
#[derive(Debug, Clone, PartialEq)]
pub struct HealEvent {
    pub a: usize,
    pub b: usize,
    pub at: Time,
}

/// Everything a chaos run injects. `Default` is the all-zero spec (no
/// faults even if loaded), so tests can flip one field at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the decision RNG (and of the reliability layer's backoff
    /// jitter, which derives its own stream from it).
    pub seed: u64,
    /// Per-envelope drop probability on targeted links.
    pub drop_p: f64,
    /// Per-envelope duplication probability.
    pub dup_p: f64,
    /// Per-envelope extra-delay probability.
    pub delay_p: f64,
    /// Extra-delay bound; the drawn delay is uniform in `(delay/2, delay]`.
    pub delay: Duration,
    /// Per-envelope detected-corruption probability (receiver checksums and
    /// discards, so unlike a drop the loss is observed at arrival).
    pub corrupt_p: f64,
    /// Which links the envelope faults, partitions, and degradations hit.
    pub links: LinkFilter,
    /// Bandwidth-degradation windows.
    pub degrade: Vec<DegradeWindow>,
    /// Full-partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// GPU copy-engine failures.
    pub gpu_fail: Vec<GpuFail>,
    /// Link-heal events terminating partition/degrade windows early.
    pub heal: Vec<HealEvent>,
    /// Injection budget: stop injecting after this many faults.
    pub max_faults: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay: us(10.0),
            corrupt_p: 0.0,
            links: LinkFilter::Any,
            degrade: Vec::new(),
            partitions: Vec::new(),
            gpu_fail: Vec::new(),
            heal: Vec::new(),
            max_faults: u64::MAX,
        }
    }
}

impl FaultSpec {
    /// The canned lossy-link spec used by the CI chaos smoke gate: 1% drop
    /// on every link, fixed seed.
    pub fn canned_one_percent_drop() -> Self {
        let mut s = FaultSpec::default();
        s.seed = 7;
        s.drop_p = 0.01;
        s
    }

    /// Parse the `--fault-spec` text form. Returns a message naming the
    /// offending field on error.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for field in text.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault-spec field `{field}` is not key=value"))?;
            match key {
                "seed" => spec.seed = parse_num(key, value)?,
                "drop" => spec.drop_p = parse_prob(key, value)?,
                "dup" => spec.dup_p = parse_prob(key, value)?,
                "corrupt" => spec.corrupt_p = parse_prob(key, value)?,
                "maxfaults" => spec.max_faults = parse_num(key, value)?,
                "delay" => {
                    let (p, d) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay=`{value}`: want PROB:US"))?;
                    spec.delay_p = parse_prob(key, p)?;
                    spec.delay = parse_us(key, d)?;
                }
                "link" => {
                    let (a, b) = value
                        .split_once('-')
                        .ok_or_else(|| format!("link=`{value}`: want A-B node pair"))?;
                    pairs.push((parse_num(key, a)? as usize, parse_num(key, b)? as usize));
                }
                "degrade" => {
                    let (factor, window) = value
                        .split_once('@')
                        .ok_or_else(|| format!("degrade=`{value}`: want FACTOR@FROM-UNTIL"))?;
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| format!("degrade factor `{factor}` is not a number"))?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!("degrade factor {factor} outside (0, 1]"));
                    }
                    let (from, until) = parse_window(key, window)?;
                    spec.degrade.push(DegradeWindow {
                        from,
                        until,
                        factor,
                    });
                }
                "partition" => {
                    let (from, until) = parse_window(key, value)?;
                    spec.partitions.push(PartitionWindow { from, until });
                }
                "gpufail" => {
                    let (dev, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("gpufail=`{value}`: want DEV@US"))?;
                    spec.gpu_fail.push(GpuFail {
                        device: parse_num(key, dev)? as u32,
                        at: parse_us(key, at)?,
                    });
                }
                "heal" => {
                    let (pair, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("heal=`{value}`: want A-B@US"))?;
                    let (a, b) = pair
                        .split_once('-')
                        .ok_or_else(|| format!("heal=`{value}`: want A-B node pair"))?;
                    spec.heal.push(HealEvent {
                        a: parse_num(key, a)? as usize,
                        b: parse_num(key, b)? as usize,
                        at: parse_us(key, at)?,
                    });
                }
                "scenario" => apply_scenario(&mut spec, value)?,
                other => return Err(format!("unknown fault-spec key `{other}`")),
            }
        }
        if !pairs.is_empty() {
            spec.links = LinkFilter::Pairs(pairs);
        }
        let total = spec.drop_p + spec.dup_p + spec.delay_p + spec.corrupt_p;
        if total > 1.0 {
            return Err(format!("fault probabilities sum to {total} > 1"));
        }
        Ok(spec)
    }

    /// Whether the `(a, b)` link has healed by `now` (order-insensitive):
    /// partition and degrade windows stop applying to it from the first
    /// matching heal event.
    pub fn healed(&self, a: usize, b: usize, now: Time) -> bool {
        self.heal
            .iter()
            .any(|h| h.at <= now && ((h.a, h.b) == (a, b) || (h.b, h.a) == (a, b)))
    }
}

/// Expand one `scenario=NAME` shorthand into the spec being parsed. The
/// names are the scenario-matrix axes; each pins `seed=7` (the canned
/// chaos seed) so a bare `scenario=...` spec is fully reproducible.
fn apply_scenario(spec: &mut FaultSpec, name: &str) -> Result<(), String> {
    spec.seed = 7;
    match name {
        "drop1" => spec.drop_p = 0.01,
        "drop5" => spec.drop_p = 0.05,
        "partition" => {
            // All links partition at 150us; link 0-1 heals early at
            // 1.2ms, the rest recover when the window closes at 2ms.
            spec.partitions.push(PartitionWindow {
                from: us(150.0),
                until: us(2_000.0),
            });
            spec.heal.push(HealEvent {
                a: 0,
                b: 1,
                at: us(1_200.0),
            });
        }
        "gpufail" => spec.gpu_fail.push(GpuFail {
            device: 0,
            at: us(250.0),
        }),
        "degrade" => spec.degrade.push(DegradeWindow {
            from: us(150.0),
            until: us(50_000.0),
            factor: 0.25,
        }),
        other => {
            return Err(format!(
                "unknown scenario `{other}` (want drop1|drop5|partition|gpufail|degrade)"
            ))
        }
    }
    Ok(())
}

impl std::fmt::Display for FaultSpec {
    /// Canonical text form: every effective field in grammar order, one
    /// `key=value` per field, defaults elided. `FaultSpec::parse` accepts
    /// the output and reconstructs an equal spec (modulo an inert
    /// non-default `delay` bound when `delay_p == 0`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = FaultSpec::default();
        let mut parts: Vec<String> = Vec::new();
        if self.seed != d.seed {
            parts.push(format!("seed={}", self.seed));
        }
        if self.drop_p != 0.0 {
            parts.push(format!("drop={}", self.drop_p));
        }
        if self.dup_p != 0.0 {
            parts.push(format!("dup={}", self.dup_p));
        }
        if self.delay_p != 0.0 {
            parts.push(format!(
                "delay={}:{}",
                self.delay_p,
                rucx_sim::time::as_us(self.delay)
            ));
        }
        if self.corrupt_p != 0.0 {
            parts.push(format!("corrupt={}", self.corrupt_p));
        }
        if let LinkFilter::Pairs(ps) = &self.links {
            for (a, b) in ps {
                parts.push(format!("link={a}-{b}"));
            }
        }
        for w in &self.degrade {
            parts.push(format!(
                "degrade={}@{}-{}",
                w.factor,
                rucx_sim::time::as_us(w.from),
                rucx_sim::time::as_us(w.until)
            ));
        }
        for w in &self.partitions {
            parts.push(format!(
                "partition={}-{}",
                rucx_sim::time::as_us(w.from),
                rucx_sim::time::as_us(w.until)
            ));
        }
        for g in &self.gpu_fail {
            parts.push(format!(
                "gpufail={}@{}",
                g.device,
                rucx_sim::time::as_us(g.at)
            ));
        }
        for h in &self.heal {
            parts.push(format!(
                "heal={}-{}@{}",
                h.a,
                h.b,
                rucx_sim::time::as_us(h.at)
            ));
        }
        if self.max_faults != u64::MAX {
            parts.push(format!("maxfaults={}", self.max_faults));
        }
        write!(f, "{}", parts.join(","))
    }
}

fn parse_num(key: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("{key}=`{v}` is not an integer"))
}

fn parse_prob(key: &str, v: &str) -> Result<f64, String> {
    let p: f64 = v
        .parse()
        .map_err(|_| format!("{key}=`{v}` is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{key}={p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_us(key: &str, v: &str) -> Result<Duration, String> {
    let x: f64 = v
        .parse()
        .map_err(|_| format!("{key} time `{v}` is not a number"))?;
    if x < 0.0 {
        return Err(format!("{key} time {x} is negative"));
    }
    Ok(us(x))
}

fn parse_window(key: &str, v: &str) -> Result<(Time, Time), String> {
    let (from, until) = v
        .split_once('-')
        .ok_or_else(|| format!("{key} window `{v}`: want FROM-UNTIL (us)"))?;
    let (from, until) = (parse_us(key, from)?, parse_us(key, until)?);
    if until <= from {
        return Err(format!("{key} window `{v}` is empty"));
    }
    Ok((from, until))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let s = FaultSpec::parse(
            "seed=42,drop=0.01,dup=0.005,delay=0.05:20,corrupt=0.001,\
             link=0-1,degrade=0.5@100-500,partition=200-300,gpufail=0@250,maxfaults=100",
        )
        .unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.drop_p, 0.01);
        assert_eq!(s.dup_p, 0.005);
        assert_eq!(s.delay_p, 0.05);
        assert_eq!(s.delay, us(20.0));
        assert_eq!(s.corrupt_p, 0.001);
        assert_eq!(s.links, LinkFilter::Pairs(vec![(0, 1)]));
        assert_eq!(
            s.degrade,
            vec![DegradeWindow {
                from: us(100.0),
                until: us(500.0),
                factor: 0.5
            }]
        );
        assert_eq!(
            s.partitions,
            vec![PartitionWindow {
                from: us(200.0),
                until: us(300.0)
            }]
        );
        assert_eq!(
            s.gpu_fail,
            vec![GpuFail {
                device: 0,
                at: us(250.0)
            }]
        );
        assert_eq!(s.max_faults, 100);
    }

    #[test]
    fn empty_spec_is_default() {
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
    }

    #[test]
    fn rejects_malformed_fields() {
        for bad in [
            "drop",
            "drop=1.5",
            "drop=x",
            "delay=0.1",
            "delay=0.1:abc",
            "link=3",
            "degrade=2.0@0-10",
            "degrade=0.5@10-5",
            "partition=5-5",
            "gpufail=1",
            "wat=1",
            "drop=0.6,dup=0.6",
            "heal=0-1",
            "heal=3@100",
            "heal=a-b@100",
            "heal=0-1@-5",
            "scenario=flood",
            "scenario=",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn parses_heal_events() {
        let s = FaultSpec::parse("partition=100-1000,heal=0-1@500,heal=2-3@700").unwrap();
        assert_eq!(
            s.heal,
            vec![
                HealEvent {
                    a: 0,
                    b: 1,
                    at: us(500.0)
                },
                HealEvent {
                    a: 2,
                    b: 3,
                    at: us(700.0)
                }
            ]
        );
        // Order-insensitive, time-gated.
        assert!(!s.healed(0, 1, us(499.0)));
        assert!(s.healed(0, 1, us(500.0)));
        assert!(s.healed(1, 0, us(500.0)));
        assert!(!s.healed(0, 2, us(9_999.0)));
    }

    #[test]
    fn scenario_shorthands_expand() {
        let drop1 = FaultSpec::parse("scenario=drop1").unwrap();
        assert_eq!(drop1, FaultSpec::canned_one_percent_drop());
        let drop5 = FaultSpec::parse("scenario=drop5").unwrap();
        assert_eq!((drop5.seed, drop5.drop_p), (7, 0.05));
        let part = FaultSpec::parse("scenario=partition").unwrap();
        assert_eq!(part.partitions.len(), 1);
        assert_eq!(part.heal.len(), 1);
        assert!(part.heal[0].at < part.partitions[0].until);
        let gpu = FaultSpec::parse("scenario=gpufail").unwrap();
        assert_eq!(gpu.gpu_fail.len(), 1);
        let deg = FaultSpec::parse("scenario=degrade").unwrap();
        assert_eq!(deg.degrade.len(), 1);
        assert!(deg.degrade[0].factor < 1.0);
        // Later fields still override the expansion.
        let seeded = FaultSpec::parse("scenario=drop5,seed=11").unwrap();
        assert_eq!((seeded.seed, seeded.drop_p), (11, 0.05));
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "",
            "seed=42,drop=0.01,dup=0.005,delay=0.05:20,corrupt=0.001,\
             link=0-1,degrade=0.5@100-500,partition=200-300,gpufail=0@250,\
             heal=0-1@275,maxfaults=100",
            "scenario=drop1",
            "scenario=drop5",
            "scenario=partition",
            "scenario=gpufail",
            "scenario=degrade",
            "drop=0.25,link=2-5,link=1-3",
        ] {
            let spec = FaultSpec::parse(text).unwrap();
            let shown = spec.to_string();
            let back = FaultSpec::parse(&shown).unwrap();
            assert_eq!(back, spec, "`{text}` -> `{shown}` did not round-trip");
        }
        assert_eq!(FaultSpec::default().to_string(), "");
    }

    #[test]
    fn canned_smoke_spec_is_one_percent_drop() {
        let s = FaultSpec::canned_one_percent_drop();
        assert_eq!(s.drop_p, 0.01);
        assert_eq!(s.dup_p + s.delay_p + s.corrupt_p, 0.0);
    }
}
