//! The fault specification: what to inject, where, and when — plus the
//! compact text form the `--fault-spec` driver knob accepts.
//!
//! Text grammar (comma-separated `key=value` fields, times in virtual
//! microseconds):
//!
//! ```text
//! seed=42                  decision-RNG seed (default 1)
//! drop=0.01                per-envelope drop probability
//! dup=0.005                per-envelope duplication probability
//! delay=0.05:20            delay probability : extra delay bound (us)
//! corrupt=0.001            per-envelope detected-corruption probability
//! link=0-1                 target only this node pair (repeatable; default all)
//! degrade=0.5@100-500      bandwidth x0.5 between 100us and 500us (repeatable)
//! partition=200-300        full partition window in us (repeatable)
//! gpufail=0@250            device 0 loses GPU-direct paths at 250us (repeatable)
//! maxfaults=100            stop injecting after this many faults
//! ```
//!
//! Example: `drop=0.01,delay=0.02:15,corrupt=0.002,link=0-1,seed=7`.

use rucx_sim::time::{us, Duration, Time};

/// Which node-pair links the envelope/partition/degrade faults target.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum LinkFilter {
    /// Every inter-node link.
    #[default]
    Any,
    /// Only the listed unordered node pairs.
    Pairs(Vec<(usize, usize)>),
}

impl LinkFilter {
    /// Whether the `(a, b)` link is targeted (order-insensitive).
    pub fn matches(&self, a: usize, b: usize) -> bool {
        match self {
            LinkFilter::Any => true,
            LinkFilter::Pairs(ps) => ps
                .iter()
                .any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b)),
        }
    }
}

/// A bandwidth-degradation window: the link runs at `factor` of nominal
/// bandwidth for `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeWindow {
    pub from: Time,
    pub until: Time,
    pub factor: f64,
}

/// A full-partition window: every envelope on targeted links is dropped
/// for `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    pub from: Time,
    pub until: Time,
}

/// A GPU copy-engine failure: device `device` permanently loses its
/// GPU-direct paths (GDRCopy / CUDA IPC / GPUDirect RDMA) at time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuFail {
    pub device: u32,
    pub at: Time,
}

/// Everything a chaos run injects. `Default` is the all-zero spec (no
/// faults even if loaded), so tests can flip one field at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the decision RNG (and of the reliability layer's backoff
    /// jitter, which derives its own stream from it).
    pub seed: u64,
    /// Per-envelope drop probability on targeted links.
    pub drop_p: f64,
    /// Per-envelope duplication probability.
    pub dup_p: f64,
    /// Per-envelope extra-delay probability.
    pub delay_p: f64,
    /// Extra-delay bound; the drawn delay is uniform in `(delay/2, delay]`.
    pub delay: Duration,
    /// Per-envelope detected-corruption probability (receiver checksums and
    /// discards, so unlike a drop the loss is observed at arrival).
    pub corrupt_p: f64,
    /// Which links the envelope faults, partitions, and degradations hit.
    pub links: LinkFilter,
    /// Bandwidth-degradation windows.
    pub degrade: Vec<DegradeWindow>,
    /// Full-partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// GPU copy-engine failures.
    pub gpu_fail: Vec<GpuFail>,
    /// Injection budget: stop injecting after this many faults.
    pub max_faults: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay: us(10.0),
            corrupt_p: 0.0,
            links: LinkFilter::Any,
            degrade: Vec::new(),
            partitions: Vec::new(),
            gpu_fail: Vec::new(),
            max_faults: u64::MAX,
        }
    }
}

impl FaultSpec {
    /// The canned lossy-link spec used by the CI chaos smoke gate: 1% drop
    /// on every link, fixed seed.
    pub fn canned_one_percent_drop() -> Self {
        let mut s = FaultSpec::default();
        s.seed = 7;
        s.drop_p = 0.01;
        s
    }

    /// Parse the `--fault-spec` text form. Returns a message naming the
    /// offending field on error.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for field in text.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault-spec field `{field}` is not key=value"))?;
            match key {
                "seed" => spec.seed = parse_num(key, value)?,
                "drop" => spec.drop_p = parse_prob(key, value)?,
                "dup" => spec.dup_p = parse_prob(key, value)?,
                "corrupt" => spec.corrupt_p = parse_prob(key, value)?,
                "maxfaults" => spec.max_faults = parse_num(key, value)?,
                "delay" => {
                    let (p, d) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay=`{value}`: want PROB:US"))?;
                    spec.delay_p = parse_prob(key, p)?;
                    spec.delay = parse_us(key, d)?;
                }
                "link" => {
                    let (a, b) = value
                        .split_once('-')
                        .ok_or_else(|| format!("link=`{value}`: want A-B node pair"))?;
                    pairs.push((parse_num(key, a)? as usize, parse_num(key, b)? as usize));
                }
                "degrade" => {
                    let (factor, window) = value
                        .split_once('@')
                        .ok_or_else(|| format!("degrade=`{value}`: want FACTOR@FROM-UNTIL"))?;
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| format!("degrade factor `{factor}` is not a number"))?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!("degrade factor {factor} outside (0, 1]"));
                    }
                    let (from, until) = parse_window(key, window)?;
                    spec.degrade.push(DegradeWindow {
                        from,
                        until,
                        factor,
                    });
                }
                "partition" => {
                    let (from, until) = parse_window(key, value)?;
                    spec.partitions.push(PartitionWindow { from, until });
                }
                "gpufail" => {
                    let (dev, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("gpufail=`{value}`: want DEV@US"))?;
                    spec.gpu_fail.push(GpuFail {
                        device: parse_num(key, dev)? as u32,
                        at: parse_us(key, at)?,
                    });
                }
                other => return Err(format!("unknown fault-spec key `{other}`")),
            }
        }
        if !pairs.is_empty() {
            spec.links = LinkFilter::Pairs(pairs);
        }
        let total = spec.drop_p + spec.dup_p + spec.delay_p + spec.corrupt_p;
        if total > 1.0 {
            return Err(format!("fault probabilities sum to {total} > 1"));
        }
        Ok(spec)
    }
}

fn parse_num(key: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("{key}=`{v}` is not an integer"))
}

fn parse_prob(key: &str, v: &str) -> Result<f64, String> {
    let p: f64 = v
        .parse()
        .map_err(|_| format!("{key}=`{v}` is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{key}={p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_us(key: &str, v: &str) -> Result<Duration, String> {
    let x: f64 = v
        .parse()
        .map_err(|_| format!("{key} time `{v}` is not a number"))?;
    if x < 0.0 {
        return Err(format!("{key} time {x} is negative"));
    }
    Ok(us(x))
}

fn parse_window(key: &str, v: &str) -> Result<(Time, Time), String> {
    let (from, until) = v
        .split_once('-')
        .ok_or_else(|| format!("{key} window `{v}`: want FROM-UNTIL (us)"))?;
    let (from, until) = (parse_us(key, from)?, parse_us(key, until)?);
    if until <= from {
        return Err(format!("{key} window `{v}` is empty"));
    }
    Ok((from, until))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let s = FaultSpec::parse(
            "seed=42,drop=0.01,dup=0.005,delay=0.05:20,corrupt=0.001,\
             link=0-1,degrade=0.5@100-500,partition=200-300,gpufail=0@250,maxfaults=100",
        )
        .unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.drop_p, 0.01);
        assert_eq!(s.dup_p, 0.005);
        assert_eq!(s.delay_p, 0.05);
        assert_eq!(s.delay, us(20.0));
        assert_eq!(s.corrupt_p, 0.001);
        assert_eq!(s.links, LinkFilter::Pairs(vec![(0, 1)]));
        assert_eq!(
            s.degrade,
            vec![DegradeWindow {
                from: us(100.0),
                until: us(500.0),
                factor: 0.5
            }]
        );
        assert_eq!(
            s.partitions,
            vec![PartitionWindow {
                from: us(200.0),
                until: us(300.0)
            }]
        );
        assert_eq!(
            s.gpu_fail,
            vec![GpuFail {
                device: 0,
                at: us(250.0)
            }]
        );
        assert_eq!(s.max_faults, 100);
    }

    #[test]
    fn empty_spec_is_default() {
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
    }

    #[test]
    fn rejects_malformed_fields() {
        for bad in [
            "drop",
            "drop=1.5",
            "drop=x",
            "delay=0.1",
            "delay=0.1:abc",
            "link=3",
            "degrade=2.0@0-10",
            "degrade=0.5@10-5",
            "partition=5-5",
            "gpufail=1",
            "wat=1",
            "drop=0.6,dup=0.6",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn canned_smoke_spec_is_one_percent_drop() {
        let s = FaultSpec::canned_one_percent_drop();
        assert_eq!(s.drop_p, 0.01);
        assert_eq!(s.dup_p + s.delay_p + s.corrupt_p, 0.0);
    }
}
