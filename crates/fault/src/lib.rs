//! # rucx-fault — seeded, deterministic fault injection
//!
//! The evaluation in the source paper assumes a perfect Summit fabric; the
//! real UCX machine layer it extends ships endpoint error handling,
//! keepalives, and transport failover. This crate supplies the adversary
//! those mechanisms exist for: a [`FaultSpec`] describes which faults to
//! inject (envelope drop / duplicate / delay / corrupt, link bandwidth
//! degradation and partition windows, GPU copy-engine failures), and a
//! [`FaultState`] turns the spec into per-event decisions driven by a
//! seeded [`SimRng`].
//!
//! Every decision is a pure function of `(spec, seed, query sequence)`, and
//! the query sequence is itself a pure function of the deterministic
//! discrete-event schedule — so a faulty run replays byte-identically from
//! one seed, which is what makes chaos runs diffable and regressions in the
//! recovery protocol pinnable.
//!
//! The injection points live above this crate: `rucx-ucp` consults
//! [`FaultState::wire_fault`] when it transmits an envelope and
//! [`FaultState::gpudirect_lost`] when it selects a GPU-direct transport;
//! `rucx-fabric` applies [`LinkFaults::bw_factor`] to the wire bandwidth.

pub mod metrics;
pub mod spec;

pub use spec::{DegradeWindow, FaultSpec, GpuFail, HealEvent, LinkFilter, PartitionWindow};

use rucx_sim::time::Time;
use rucx_sim::SimRng;

/// Outcome of the per-envelope fault lottery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Deliver normally.
    None,
    /// The envelope is silently lost in the fabric.
    Drop,
    /// The envelope is delivered twice (switch retransmission artifact).
    Duplicate,
    /// The envelope is delivered after an extra delay (congested queue,
    /// adaptive-routing detour).
    Delay(rucx_sim::time::Duration),
    /// The envelope arrives with a payload that fails its checksum; the
    /// receiver detects and discards it (observable, unlike a drop).
    Corrupt,
}

/// Link-level fault schedule handed to the fabric: bandwidth degradation
/// windows, filtered to the links the spec targets. Partition windows are
/// handled at the envelope layer (a partitioned link drops everything).
#[derive(Debug, Clone, Default)]
pub struct LinkFaults {
    filter: LinkFilter,
    degrade: Vec<DegradeWindow>,
    heal: Vec<HealEvent>,
}

impl LinkFaults {
    /// Bandwidth multiplier (in `(0, 1]`) for the `(a, b)` node link at
    /// virtual time `now`. Overlapping windows compound; a heal event on
    /// the link ends every window for it.
    pub fn bw_factor(&self, a: usize, b: usize, now: Time) -> f64 {
        if !self.filter.matches(a, b) {
            return 1.0;
        }
        if self
            .heal
            .iter()
            .any(|h| h.at <= now && ((h.a, h.b) == (a, b) || (h.b, h.a) == (a, b)))
        {
            return 1.0;
        }
        let mut f = 1.0;
        for w in &self.degrade {
            if w.from <= now && now < w.until {
                f *= w.factor;
            }
        }
        f
    }

    /// True when any degradation window can ever apply (lets the fabric
    /// skip the scan entirely for clean runs).
    pub fn is_empty(&self) -> bool {
        self.degrade.is_empty()
    }
}

/// Live fault-injection state: the spec plus the seeded decision RNG and
/// injection accounting. Embedded in the simulated world; a disabled state
/// costs one boolean check on the hot path.
#[derive(Debug)]
pub struct FaultState {
    spec: Option<FaultSpec>,
    rng: SimRng,
    injected: u64,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState::disabled()
    }
}

impl FaultState {
    /// No fault injection: every query answers "no fault" without touching
    /// the RNG.
    pub fn disabled() -> Self {
        FaultState {
            spec: None,
            rng: SimRng::new(0),
            injected: 0,
        }
    }

    /// Activate injection under `spec`.
    pub fn from_spec(spec: FaultSpec) -> Self {
        let rng = SimRng::new(spec.seed);
        FaultState {
            spec: Some(spec),
            rng,
            injected: 0,
        }
    }

    /// Whether a fault spec is loaded. This is the single branch the
    /// no-fault send path pays.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.spec.is_some()
    }

    /// The loaded spec, if any.
    pub fn spec(&self) -> Option<&FaultSpec> {
        self.spec.as_ref()
    }

    /// Total faults injected so far (drops + duplicates + delays +
    /// corruptions; degradation windows and GPU failures are schedules, not
    /// counted events).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The degradation schedule for the fabric, when one exists.
    pub fn link_faults(&self) -> Option<LinkFaults> {
        let spec = self.spec.as_ref()?;
        if spec.degrade.is_empty() {
            return None;
        }
        Some(LinkFaults {
            filter: spec.links.clone(),
            degrade: spec.degrade.clone(),
            heal: spec.heal.clone(),
        })
    }

    /// Per-envelope fault lottery for a transmission on the `(src_node,
    /// dst_node)` link at time `now`. At most one fault applies per
    /// envelope; a partition window turns every envelope on the link into a
    /// drop. Deterministic: the RNG is consulted only for envelopes on
    /// links the spec targets, in event order.
    pub fn wire_fault(&mut self, src_node: usize, dst_node: usize, now: Time) -> WireFault {
        let Some(spec) = self.spec.as_ref() else {
            return WireFault::None;
        };
        if !spec.links.matches(src_node, dst_node) {
            return WireFault::None;
        }
        if !spec.healed(src_node, dst_node, now) {
            for w in &spec.partitions {
                if w.from <= now && now < w.until {
                    self.injected += 1;
                    return WireFault::Drop;
                }
            }
        }
        if self.injected >= spec.max_faults {
            return WireFault::None;
        }
        let lottery = spec.drop_p + spec.dup_p + spec.delay_p + spec.corrupt_p;
        if lottery <= 0.0 {
            return WireFault::None;
        }
        let r = self.rng.next_f64();
        let fault = if r < spec.drop_p {
            WireFault::Drop
        } else if r < spec.drop_p + spec.dup_p {
            WireFault::Duplicate
        } else if r < spec.drop_p + spec.dup_p + spec.delay_p {
            // Extra delay uniform in (half, full] of the configured bound,
            // so delayed envelopes spread instead of synchronizing.
            let frac = 0.5 + self.rng.next_f64() * 0.5;
            WireFault::Delay((spec.delay as f64 * frac) as rucx_sim::time::Duration)
        } else if r < lottery {
            WireFault::Corrupt
        } else {
            WireFault::None
        };
        if fault != WireFault::None {
            self.injected += 1;
        }
        fault
    }

    /// Whether device `dev`'s GPU-direct capability (GDRCopy mapping, CUDA
    /// IPC, GPUDirect RDMA — the copy-engine-driven peer paths) has failed
    /// by time `now`. The UCP layer degrades affected transfers onto the
    /// host-staged pipeline instead of failing them.
    pub fn gpudirect_lost(&self, dev: u32, now: Time) -> bool {
        match self.spec.as_ref() {
            None => false,
            Some(spec) => spec.gpu_fail.iter().any(|g| g.device == dev && g.at <= now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_sim::time::us;

    fn lossy(drop: f64) -> FaultSpec {
        let mut s = FaultSpec::default();
        s.seed = 42;
        s.drop_p = drop;
        s
    }

    #[test]
    fn disabled_state_never_faults() {
        let mut f = FaultState::disabled();
        assert!(!f.enabled());
        for _ in 0..100 {
            assert_eq!(f.wire_fault(0, 1, 0), WireFault::None);
        }
        assert!(!f.gpudirect_lost(0, u64::MAX));
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn lottery_is_deterministic_for_seed() {
        let draw = || {
            let mut f = FaultState::from_spec(lossy(0.3));
            (0..256)
                .map(|i| f.wire_fault(0, 1, i as Time))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let mut f = FaultState::from_spec(lossy(0.25));
        let n = 10_000;
        let drops = (0..n)
            .filter(|_| f.wire_fault(0, 1, 0) == WireFault::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
        assert_eq!(f.injected(), drops as u64);
    }

    #[test]
    fn link_filter_shields_other_links() {
        let mut s = lossy(1.0);
        s.links = LinkFilter::Pairs(vec![(0, 1)]);
        let mut f = FaultState::from_spec(s);
        assert_eq!(f.wire_fault(0, 2, 0), WireFault::None);
        assert_eq!(f.wire_fault(2, 1, 0), WireFault::None);
        // Both directions of the targeted pair fault.
        assert_eq!(f.wire_fault(0, 1, 0), WireFault::Drop);
        assert_eq!(f.wire_fault(1, 0, 0), WireFault::Drop);
    }

    #[test]
    fn partition_window_drops_everything_inside_it() {
        let mut s = FaultSpec::default();
        s.partitions.push(PartitionWindow {
            from: us(100.0),
            until: us(200.0),
        });
        let mut f = FaultState::from_spec(s);
        assert_eq!(f.wire_fault(0, 1, us(50.0)), WireFault::None);
        assert_eq!(f.wire_fault(0, 1, us(150.0)), WireFault::Drop);
        assert_eq!(f.wire_fault(0, 1, us(250.0)), WireFault::None);
    }

    #[test]
    fn max_faults_bounds_injection() {
        let mut s = lossy(1.0);
        s.max_faults = 3;
        let mut f = FaultState::from_spec(s);
        let drops = (0..100)
            .filter(|_| f.wire_fault(0, 1, 0) == WireFault::Drop)
            .count();
        assert_eq!(drops, 3);
    }

    #[test]
    fn delay_amount_is_bounded_and_nonzero() {
        let mut s = FaultSpec::default();
        s.delay_p = 1.0;
        s.delay = us(20.0);
        let mut f = FaultState::from_spec(s);
        for _ in 0..64 {
            match f.wire_fault(0, 1, 0) {
                WireFault::Delay(d) => {
                    assert!(d > us(9.9) && d <= us(20.0), "d={d}");
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn gpu_failure_is_permanent_from_its_onset() {
        let mut s = FaultSpec::default();
        s.gpu_fail.push(GpuFail {
            device: 3,
            at: us(250.0),
        });
        let f = FaultState::from_spec(s);
        assert!(!f.gpudirect_lost(3, us(100.0)));
        assert!(f.gpudirect_lost(3, us(250.0)));
        assert!(f.gpudirect_lost(3, us(9_999.0)));
        assert!(!f.gpudirect_lost(2, us(9_999.0)));
    }

    #[test]
    fn heal_ends_partition_for_the_named_link_only() {
        let mut s = FaultSpec::default();
        s.partitions.push(PartitionWindow {
            from: us(100.0),
            until: us(1_000.0),
        });
        s.heal.push(spec::HealEvent {
            a: 0,
            b: 1,
            at: us(400.0),
        });
        let mut f = FaultState::from_spec(s);
        // Inside the window before the heal: both links drop.
        assert_eq!(f.wire_fault(0, 1, us(200.0)), WireFault::Drop);
        assert_eq!(f.wire_fault(0, 2, us(200.0)), WireFault::Drop);
        // After the heal: 0-1 (either direction) delivers, 0-2 still drops.
        assert_eq!(f.wire_fault(0, 1, us(500.0)), WireFault::None);
        assert_eq!(f.wire_fault(1, 0, us(500.0)), WireFault::None);
        assert_eq!(f.wire_fault(0, 2, us(500.0)), WireFault::Drop);
        // Window end recovers everyone.
        assert_eq!(f.wire_fault(0, 2, us(1_500.0)), WireFault::None);
    }

    #[test]
    fn heal_ends_degrade_windows() {
        let mut s = FaultSpec::default();
        s.degrade.push(DegradeWindow {
            from: 0,
            until: us(1_000.0),
            factor: 0.5,
        });
        s.heal.push(spec::HealEvent {
            a: 0,
            b: 1,
            at: us(300.0),
        });
        let f = FaultState::from_spec(s);
        let lf = f.link_faults().expect("degrade schedule present");
        assert_eq!(lf.bw_factor(0, 1, us(100.0)), 0.5);
        assert_eq!(lf.bw_factor(0, 1, us(300.0)), 1.0);
        assert_eq!(lf.bw_factor(0, 2, us(300.0)), 0.5);
    }

    #[test]
    fn degrade_windows_compound_and_filter() {
        let mut s = FaultSpec::default();
        s.links = LinkFilter::Pairs(vec![(0, 1)]);
        s.degrade.push(DegradeWindow {
            from: 0,
            until: us(100.0),
            factor: 0.5,
        });
        s.degrade.push(DegradeWindow {
            from: us(50.0),
            until: us(100.0),
            factor: 0.5,
        });
        let f = FaultState::from_spec(s);
        let lf = f.link_faults().expect("degrade schedule present");
        assert_eq!(lf.bw_factor(0, 1, us(10.0)), 0.5);
        assert_eq!(lf.bw_factor(0, 1, us(75.0)), 0.25);
        assert_eq!(lf.bw_factor(0, 1, us(150.0)), 1.0);
        assert_eq!(lf.bw_factor(0, 2, us(10.0)), 1.0);
    }
}
