//! Fault-injection metrics registry: counters bumped by the layers that
//! consult [`crate::FaultState`] (the injection decisions happen in the
//! communication layer, so the counters land on its `Counters` sink). Names
//! follow the `fault.*` namespace the trace attribution table groups on.

use rucx_sim::Metric;

/// Envelopes silently dropped by the fabric (includes partition windows).
pub const DROP: Metric = Metric::counter("fault.drop");
/// Envelopes delivered twice.
pub const DUPLICATE: Metric = Metric::counter("fault.duplicate");
/// Envelopes delivered late.
pub const DELAY: Metric = Metric::counter("fault.delay");
/// Envelopes discarded by the receiver's checksum.
pub const CORRUPT: Metric = Metric::counter("fault.corrupt");
/// Transfers that found a GPU-direct path failed and degraded.
pub const GPU_DEGRADED: Metric = Metric::counter("fault.gpu_degraded");
