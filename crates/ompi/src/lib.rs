//! # rucx-ompi — OpenMPI-style baseline directly on UCP
//!
//! The reference the paper compares AMPI against (§IV-A): an MPI whose
//! point-to-point path maps straight onto `ucp_tag_send_nb`/
//! `ucp_tag_recv_nb`, with MPI matching semantics encoded in the 64-bit UCP
//! tag. Both AMPI and this baseline move GPU data through the same UCX
//! layer, so comparing them isolates the overhead of the layers above UCX —
//! including AMPI's inability to post the device receive before its
//! metadata message arrives, which this baseline does not suffer from
//! (receives are posted immediately).

use rucx_gpu::MemRef;
use rucx_sim::sched::Trigger;
use rucx_sim::time::{us, Duration};
use rucx_ucp::{
    tag_recv_nb, tag_send_nb, Completion, MCtx, MSim, RecvCompletion, SendBuf, Tag, TagMask,
};

/// MPI wildcard source.
pub const ANY_SOURCE: i32 = -1;
/// MPI wildcard tag.
pub const ANY_TAG: i32 = -1;
/// Receive completed normally.
pub const MPI_SUCCESS: i32 = 0;
/// The message was longer than the posted receive buffer; only the
/// buffer-sized prefix was delivered.
pub const MPI_ERR_TRUNCATE: i32 = 15;

/// Tag layout: | comm:8 | src_rank:24 | user tag:32 |.
const SRC_SHIFT: u32 = 32;
const COMM_SHIFT: u32 = 56;
const USER_COMM: u64 = 1;
const COLL_COMM: u64 = 2;

fn encode_tag(comm: u64, src: usize, tag: i32) -> Tag {
    (comm << COMM_SHIFT) | ((src as u64) << SRC_SHIFT) | (tag as u32 as u64)
}

fn match_spec(comm: u64, src: i32, tag: i32) -> (Tag, TagMask) {
    let mut want = comm << COMM_SHIFT;
    let mut mask = 0xFFu64 << COMM_SHIFT;
    if src != ANY_SOURCE {
        want |= (src as u64) << SRC_SHIFT;
        mask |= 0xFF_FFFFu64 << SRC_SHIFT;
    }
    if tag != ANY_TAG {
        want |= tag as u32 as u64;
        mask |= 0xFFFF_FFFF;
    }
    (want, mask)
}

fn decode_src(tag: Tag) -> i32 {
    ((tag >> SRC_SHIFT) & 0xFF_FFFF) as i32
}

fn decode_tag(tag: Tag) -> i32 {
    (tag & 0xFFFF_FFFF) as u32 as i32
}

/// Completion status of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    pub src: i32,
    pub tag: i32,
    /// Wire size of the matched message (may exceed the receive buffer —
    /// see `error`).
    pub size: u64,
    /// [`MPI_SUCCESS`], or [`MPI_ERR_TRUNCATE`] when the message was
    /// longer than the posted buffer.
    pub error: i32,
}

/// A non-blocking request: the trigger plus, for receives, a status slot.
pub struct Request {
    trigger: Option<Trigger>,
    status: Option<std::sync::Arc<rucx_compat::sync::Mutex<Option<Status>>>>,
}

/// Cost model of the (thin) MPI layer above UCX.
#[derive(Debug, Clone)]
pub struct OmpiParams {
    /// Per-call overhead of `MPI_Send`/`MPI_Isend` above the UCP call.
    pub send_overhead: Duration,
    /// Per-call overhead of `MPI_Recv`/`MPI_Irecv` above the UCP call.
    pub recv_overhead: Duration,
}

impl Default for OmpiParams {
    fn default() -> Self {
        OmpiParams {
            send_overhead: us(0.40),
            recv_overhead: us(0.40),
        }
    }
}

/// One MPI process (rank == simulated process index).
pub struct OmpiRank {
    rank: usize,
    nranks: usize,
    params: OmpiParams,
    ucp_call: Duration,
    /// Scratch host buffer for zero-byte control messages (barrier).
    scratch: Option<MemRef>,
}

impl OmpiRank {
    pub fn create(rank: usize, nranks: usize, params: OmpiParams) -> Self {
        OmpiRank {
            rank,
            nranks,
            params,
            ucp_call: 0,
            scratch: None,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.nranks
    }

    /// `MPI_Wtime` in virtual seconds.
    pub fn wtime(&self, ctx: &MCtx) -> f64 {
        rucx_sim::time::as_secs(ctx.now())
    }

    fn ucp_call(&mut self, ctx: &mut MCtx) -> Duration {
        if self.ucp_call == 0 {
            self.ucp_call = ctx.with_world_ref(|w, _| w.ucp.config.cpu_call);
        }
        self.ucp_call
    }

    /// `MPI_Isend`.
    pub fn isend(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) -> Request {
        let call = self.ucp_call(ctx);
        ctx.advance(self.params.send_overhead + call);
        let me = self.rank;
        let t = encode_tag(USER_COMM, me, tag);
        let trigger = ctx.with_world(move |w, s| {
            let trig = s.new_trigger();
            tag_send_nb(
                w,
                s,
                me,
                dst,
                SendBuf::Mem(buf),
                t,
                Completion::Trigger(trig),
            );
            trig
        });
        Request {
            trigger: Some(trigger),
            status: None,
        }
    }

    /// `MPI_Send` (blocking).
    pub fn send(&mut self, ctx: &mut MCtx, buf: MemRef, dst: usize, tag: i32) {
        let r = self.isend(ctx, buf, dst, tag);
        self.wait(ctx, r);
    }

    /// `MPI_Irecv`: the receive is posted into UCX immediately (this is the
    /// key structural advantage over AMPI's metadata-first flow).
    pub fn irecv(&mut self, ctx: &mut MCtx, buf: MemRef, src: i32, tag: i32) -> Request {
        let call = self.ucp_call(ctx);
        ctx.advance(self.params.recv_overhead + call);
        let me = self.rank;
        let (want, mask) = match_spec(USER_COMM, src, tag);
        let slot = std::sync::Arc::new(rucx_compat::sync::Mutex::new(None::<Status>));
        let slot2 = slot.clone();
        let trigger = ctx.with_world(move |w, s| {
            let trig = s.new_trigger();
            tag_recv_nb(
                w,
                s,
                me,
                buf,
                want,
                mask,
                RecvCompletion::Callback(Box::new(move |_, s, info| {
                    *slot2.lock() = Some(Status {
                        src: decode_src(info.tag),
                        tag: decode_tag(info.tag),
                        size: info.size,
                        error: if info.truncated {
                            MPI_ERR_TRUNCATE
                        } else {
                            MPI_SUCCESS
                        },
                    });
                    s.fire(trig);
                })),
            );
            trig
        });
        Request {
            trigger: Some(trigger),
            status: Some(slot),
        }
    }

    /// `MPI_Recv` (blocking).
    pub fn recv(&mut self, ctx: &mut MCtx, buf: MemRef, src: i32, tag: i32) -> Status {
        let r = self.irecv(ctx, buf, src, tag);
        self.wait(ctx, r).expect("recv produces a status")
    }

    /// `MPI_Wait`. No scheduler pumping is needed: everything below is
    /// event-driven, so a plain trigger wait cannot deadlock.
    pub fn wait(&mut self, ctx: &mut MCtx, req: Request) -> Option<Status> {
        if let Some(t) = req.trigger {
            ctx.wait(t);
            ctx.with_world(move |_, s| s.recycle_trigger(t));
        }
        req.status.and_then(|s| s.lock().take())
    }

    /// `MPI_Waitall`.
    pub fn waitall(&mut self, ctx: &mut MCtx, reqs: Vec<Request>) {
        for r in reqs {
            self.wait(ctx, r);
        }
    }

    fn scratch(&mut self, ctx: &mut MCtx) -> MemRef {
        if self.scratch.is_none() {
            let me = self.rank;
            self.scratch = Some(ctx.with_world(move |w, _| {
                let node = w.topo.node_of(me);
                w.gpu.pool.alloc_host(node, 8, true, false)
            }));
        }
        self.scratch.unwrap()
    }

    /// `MPI_Barrier`: dissemination algorithm (works for any rank count).
    pub fn barrier(&mut self, ctx: &mut MCtx) {
        let n = self.nranks;
        if n == 1 {
            return;
        }
        let me = self.rank;
        let scratch = self.scratch(ctx);
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let to = (me + dist) % n;
            let from = (me + n - dist % n) % n;
            let tag = encode_tag(COLL_COMM, me, round as i32);
            let call = self.ucp_call(ctx);
            ctx.advance(call);
            ctx.with_world(move |w, s| {
                tag_send_nb(
                    w,
                    s,
                    me,
                    to,
                    SendBuf::Phantom { wire_size: 1 },
                    tag,
                    Completion::None,
                );
            });
            let (want, mask) = match_spec(COLL_COMM, from as i32, round as i32);
            let trig = ctx.with_world(move |w, s| {
                let t = s.new_trigger();
                tag_recv_nb(w, s, me, scratch, want, mask, RecvCompletion::Trigger(t));
                t
            });
            ctx.wait(trig);
            ctx.with_world(move |_, s| s.recycle_trigger(trig));
            dist *= 2;
            round += 1;
        }
    }
}

/// SPMD launch: one MPI process per simulated process.
pub fn launch<F>(sim: &mut MSim, body: F)
where
    F: Fn(&mut OmpiRank, &mut MCtx) + Send + Sync + Clone + 'static,
{
    launch_with(sim, OmpiParams::default(), body)
}

/// [`launch`] with explicit cost parameters.
pub fn launch_with<F>(sim: &mut MSim, params: OmpiParams, body: F)
where
    F: Fn(&mut OmpiRank, &mut MCtx) + Send + Sync + Clone + 'static,
{
    let n = sim.world().topo.procs();
    for p in 0..n {
        let body = body.clone();
        let params = params.clone();
        sim.spawn(format!("ompi{p}"), 0, move |ctx| {
            let mut rank = OmpiRank::create(p, n, params);
            body(&mut rank, ctx);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_fabric::Topology;
    use rucx_gpu::DeviceId;
    use rucx_sim::time::as_us;
    use rucx_sim::RunOutcome;
    use rucx_ucp::{build_sim, MachineConfig};
    use std::sync::Arc;

    fn sim(nodes: usize) -> MSim {
        build_sim(Topology::summit(nodes), MachineConfig::default())
    }

    #[test]
    fn tag_encode_decode() {
        let t = encode_tag(USER_COMM, 123456, 789);
        assert_eq!(decode_src(t), 123456);
        assert_eq!(decode_tag(t), 789);
        let (want, mask) = match_spec(USER_COMM, ANY_SOURCE, 789);
        assert!(rucx_ucp::tag_matches(want, mask, t));
        let (want, mask) = match_spec(USER_COMM, 123456, ANY_TAG);
        assert!(rucx_ucp::tag_matches(want, mask, t));
        let (want, mask) = match_spec(USER_COMM, 9, 789);
        assert!(!rucx_ucp::tag_matches(want, mask, t));
        // Collective traffic never matches user receives.
        let bt = encode_tag(COLL_COMM, 123456, 789);
        let (want, mask) = match_spec(USER_COMM, ANY_SOURCE, ANY_TAG);
        assert!(!rucx_ucp::tag_matches(want, mask, bt));
    }

    #[test]
    fn device_ping_pong_and_latency_band() {
        let mut sim = sim(1);
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), 8, true)
            .unwrap();
        let b = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), 8, true)
            .unwrap();
        sim.world_mut().gpu.pool.write(a, &[9u8; 8]).unwrap();
        let out = Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let out2 = out.clone();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => {
                let iters = 20u64;
                let t0 = ctx.now();
                for i in 0..iters {
                    mpi.send(ctx, a, 1, i as i32);
                    mpi.recv(ctx, a, 1, i as i32);
                }
                *out2.lock() = (ctx.now() - t0) / (2 * iters);
            }
            1 => {
                for i in 0..20 {
                    mpi.recv(ctx, b, 0, i);
                    mpi.send(ctx, b, 0, i);
                }
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let lat = *out.lock();
        assert!(
            lat > rucx_sim::time::us(1.5) && lat < rucx_sim::time::us(5.0),
            "OpenMPI small-device latency {}us out of band",
            as_us(lat)
        );
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), vec![9u8; 8]);
    }

    #[test]
    fn barrier_all_ranks() {
        let mut sim = sim(2);
        let times = Arc::new(rucx_compat::sync::Mutex::new(Vec::new()));
        let t2 = times.clone();
        launch(&mut sim, move |mpi, ctx| {
            ctx.advance(rucx_sim::time::us(7.0 * mpi.rank() as f64));
            mpi.barrier(ctx);
            t2.lock().push(ctx.now());
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let v = times.lock();
        assert_eq!(v.len(), 12);
        let slowest_entry = rucx_sim::time::us(7.0 * 11.0);
        for &t in v.iter() {
            assert!(t >= slowest_entry);
        }
    }

    #[test]
    fn wildcard_recv_collects_from_all() {
        let mut sim = sim(1);
        let mut sbufs = vec![];
        let mut rbufs = vec![];
        for i in 0..6u32 {
            sbufs.push(
                sim.world_mut()
                    .gpu
                    .pool
                    .alloc_device(DeviceId(i), 16, true)
                    .unwrap(),
            );
            rbufs.push(
                sim.world_mut()
                    .gpu
                    .pool
                    .alloc_device(DeviceId(0), 16, true)
                    .unwrap(),
            );
        }
        for (i, s) in sbufs.iter().enumerate() {
            sim.world_mut()
                .gpu
                .pool
                .write(*s, &[i as u8 + 1; 16])
                .unwrap();
        }
        let sb = Arc::new(sbufs);
        let rb = Arc::new(rbufs);
        launch(&mut sim, move |mpi, ctx| {
            let r = mpi.rank();
            if r == 0 {
                let mut seen = std::collections::HashSet::new();
                for i in 0..5 {
                    let st = mpi.recv(ctx, rb[i], ANY_SOURCE, ANY_TAG);
                    seen.insert(st.src);
                    assert_eq!(st.size, 16);
                }
                assert_eq!(seen.len(), 5);
            } else {
                mpi.send(ctx, sb[r], 0, r as i32);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn nonblocking_bidirectional_window() {
        let mut sim = sim(2);
        let size = 512u64 << 10;
        let window = 4;
        let mut bufs = vec![];
        for dev in [0u32, 6] {
            for _ in 0..2 * window {
                bufs.push(
                    sim.world_mut()
                        .gpu
                        .pool
                        .alloc_device(DeviceId(dev), size, false)
                        .unwrap(),
                );
            }
        }
        let bufs = Arc::new(bufs);
        launch(&mut sim, move |mpi, ctx| {
            let (base, peer) = match mpi.rank() {
                0 => (0usize, 6usize),
                6 => (2 * window, 0usize),
                _ => return,
            };
            let mut reqs = vec![];
            for i in 0..window {
                reqs.push(mpi.irecv(ctx, bufs[base + window + i], peer as i32, i as i32));
            }
            for i in 0..window {
                reqs.push(mpi.isend(ctx, bufs[base + i], peer, i as i32));
            }
            mpi.waitall(ctx, reqs);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(
            sim.world().ucp.counters.get("ucp.rndv.pipeline"),
            2 * window as u64
        );
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let mut sim = sim(1);
        let node = sim.world().topo.node_of(0);
        let send = sim.world_mut().gpu.pool.alloc_host(node, 64, true, true);
        let node1 = sim.world().topo.node_of(1);
        let small = sim.world_mut().gpu.pool.alloc_host(node1, 32, true, true);
        let exact = sim.world_mut().gpu.pool.alloc_host(node1, 64, true, true);
        sim.world_mut().gpu.pool.write(send, &[0xCD; 64]).unwrap();
        launch(&mut sim, move |mpi, ctx| match mpi.rank() {
            0 => {
                mpi.send(ctx, send, 1, 1);
                mpi.send(ctx, send, 1, 2);
            }
            1 => {
                let st = mpi.recv(ctx, small, 0, 1);
                assert_eq!(st.error, MPI_ERR_TRUNCATE);
                assert_eq!(st.size, 64, "status reports the wire size");
                let st = mpi.recv(ctx, exact, 0, 2);
                assert_eq!(st.error, MPI_SUCCESS);
            }
            _ => {}
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        // Only the buffer-sized prefix was delivered.
        let got = sim.world().gpu.pool.read(small).unwrap();
        assert_eq!(got, vec![0xCD; 32]);
        assert_eq!(sim.world().ucp.counters.get("ucp.truncated"), 1);
    }
}
