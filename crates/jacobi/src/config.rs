//! Jacobi3D run configuration and results.

use rucx_compat::json::{JsonObject, ToJson};
use rucx_gpu::KernelCost;
use rucx_sim::time::us;

use crate::decomp::Block;

/// Host-staging vs GPU-direct halo exchange.
pub use rucx_osu::Mode;

/// One Jacobi3D run's parameters.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Global domain in cells.
    pub domain: crate::decomp::Domain,
    /// Number of nodes (6 GPUs / PEs / ranks each).
    pub nodes: usize,
    /// Measured iterations.
    pub iters: u32,
    /// Unmeasured warmup iterations.
    pub warmup: u32,
    pub mode: Mode,
    /// Overdecomposition factor for the Charm++ variant: chares per PE.
    /// The paper runs 1 (no overdecomposition) and names
    /// computation-communication overlap via overdecomposition as future
    /// work; factors > 1 reproduce that extension.
    pub overdecomp: u32,
    pub machine: rucx_ucp::MachineConfig,
}

impl JacobiConfig {
    /// Weak-scaling configuration (paper Fig. 14–16 a/b): base 1536³
    /// doubled in x, y, z order.
    pub fn weak(nodes: usize, mode: Mode) -> Self {
        JacobiConfig {
            domain: crate::decomp::Domain::weak_scaled(1536, nodes),
            nodes,
            iters: 5,
            warmup: 1,
            mode,
            overdecomp: 1,
            machine: rucx_ucp::MachineConfig::default(),
        }
    }

    /// Strong-scaling configuration (paper Fig. 14–16 c/d): fixed 3072³.
    pub fn strong(nodes: usize, mode: Mode) -> Self {
        JacobiConfig {
            domain: crate::decomp::Domain {
                nx: 3072,
                ny: 3072,
                nz: 3072,
            },
            nodes,
            iters: 5,
            warmup: 1,
            mode,
            overdecomp: 1,
            machine: rucx_ucp::MachineConfig::default(),
        }
    }

    /// Total ranks/PEs (one per GPU).
    pub fn ranks(&self) -> usize {
        self.nodes * 6
    }
}

/// Per-iteration timings, maxed over ranks (ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiResult {
    pub overall_ms: f64,
    pub comm_ms: f64,
}

impl ToJson for JacobiResult {
    fn write_json(&self, out: &mut String) {
        JsonObject::new(out)
            .field("overall_ms", &self.overall_ms)
            .field("comm_ms", &self.comm_ms)
            .finish();
    }
}

/// Cost of the 7-point stencil kernel on one block: memory-bound, touching
/// each cell's value twice (read old grid + write new grid); neighbor reads
/// hit cache.
pub fn stencil_cost(block: &Block) -> KernelCost {
    KernelCost {
        fixed: us(8.0),
        bytes: block.cells() * 16,
    }
}

/// Cost of packing (or unpacking) one halo face on the GPU.
pub fn pack_cost(face_bytes: u64) -> KernelCost {
    KernelCost {
        fixed: us(3.0),
        bytes: face_bytes * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{decompose, Block};

    #[test]
    fn weak_config_keeps_per_gpu_work_constant() {
        let a = JacobiConfig::weak(1, Mode::Device);
        let b = JacobiConfig::weak(8, Mode::Device);
        assert_eq!(
            a.domain.cells() / a.ranks() as u64,
            b.domain.cells() / b.ranks() as u64
        );
    }

    #[test]
    fn strong_config_shrinks_per_gpu_work() {
        let a = JacobiConfig::strong(8, Mode::Device);
        let b = JacobiConfig::strong(32, Mode::Device);
        assert_eq!(a.domain, b.domain);
        assert!(a.ranks() < b.ranks());
    }

    #[test]
    fn stencil_cost_scales_with_block() {
        let d = crate::decomp::Domain {
            nx: 1536,
            ny: 1536,
            nz: 1536,
        };
        let g = decompose(d, 6);
        let b = Block::new(d, g, 0);
        let c = stencil_cost(&b);
        assert_eq!(c.bytes, d.cells() / 6 * 16);
        // ~12 ms of HBM traffic at 780 GB/s.
        let dur = c.duration(&rucx_gpu::GpuParams::default());
        assert!(dur > rucx_sim::time::ms(10.0) && dur < rucx_sim::time::ms(15.0));
    }
}
