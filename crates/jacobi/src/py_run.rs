//! Jacobi3D for Charm4py: channels to each neighbor, coroutine-style
//! blocking receives, Python-side costs on every call (§III-D, Fig. 8).

use std::sync::Arc;

use rucx_charm4py::{launch_with, PyParams};
use rucx_fabric::Topology;
use rucx_osu::cuda;
use rucx_sim::time::as_ms;
use rucx_sim::RunOutcome;
use rucx_ucp::build_sim;

use crate::bufs::alloc_all;
use crate::config::{pack_cost, stencil_cost, JacobiConfig, JacobiResult, Mode};
use crate::decomp::decompose;

/// Run Jacobi3D on Charm4py; returns per-iteration timings (max over ranks).
pub fn run_charm4py(cfg: &JacobiConfig) -> JacobiResult {
    let topo = Topology::summit(cfg.nodes);
    let mut sim = build_sim(topo, cfg.machine.clone());
    let grid = decompose(cfg.domain, cfg.ranks() as u64);
    let bufs = Arc::new(alloc_all(&mut sim, cfg.domain, grid));
    let result = Arc::new(rucx_compat::sync::Mutex::new(JacobiResult {
        overall_ms: 0.0,
        comm_ms: 0.0,
    }));
    let result2 = result.clone();
    let (iters, warmup, mode) = (cfg.iters, cfg.warmup, cfg.mode);
    let ranks = cfg.ranks();

    launch_with(&mut sim, PyParams::default(), move |py, ctx| {
        let me = py.rank();
        let b = &bufs[me];
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(dev));
        let stencil = stencil_cost(&b.block);
        let py_cuda = py.params.py_cuda_call;

        // One channel per neighbor.
        let channels: Vec<(usize, rucx_charm4py::Channel)> = (0..6)
            .filter_map(|dir| b.block.neighbors[dir].map(|nbr| (dir, py.channel(nbr as usize))))
            .collect();

        py.barrier(ctx);
        let mut comm_ns = 0u64;
        let mut t0 = ctx.now();
        for i in 0..(warmup + iters) {
            if i == warmup {
                py.barrier(ctx);
                comm_ns = 0;
                t0 = ctx.now();
            }
            // Compute: kernel launched from Python.
            ctx.advance(py_cuda);
            cuda::kernel_sync(ctx, stencil, stream);
            let tc = ctx.now();
            // Send all halos (asynchronous channel sends).
            for &(dir, ch) in &channels {
                let fb = b.block.face_bytes(dir);
                ctx.advance(py_cuda);
                cuda::kernel_sync(ctx, pack_cost(fb), stream);
                match mode {
                    Mode::Device => py.send(ctx, ch, b.dsend[dir].unwrap()),
                    Mode::HostStaging => {
                        py.cuda_copy(ctx, b.dsend[dir].unwrap(), b.hsend[dir].unwrap(), stream);
                        py.cuda_stream_sync(ctx, stream);
                        py.send_host_payload(ctx, ch, None, fb);
                    }
                }
            }
            // Receive all halos (suspending per channel). The channel to
            // the neighbor in `dir` delivers the halo covering our `dir`
            // face.
            for &(dir, ch) in &channels {
                let fb = b.block.face_bytes(dir);
                match mode {
                    Mode::Device => {
                        py.recv(ctx, ch, b.drecv[dir].unwrap());
                    }
                    Mode::HostStaging => {
                        py.recv(ctx, ch, b.hrecv[dir].unwrap());
                        py.cuda_copy(ctx, b.hrecv[dir].unwrap(), b.drecv[dir].unwrap(), stream);
                        py.cuda_stream_sync(ctx, stream);
                    }
                }
                ctx.advance(py_cuda);
                cuda::kernel_sync(ctx, pack_cost(fb), stream);
            }
            if i >= warmup {
                comm_ns += ctx.now() - tc;
            }
        }
        let overall_ns = ctx.now() - t0;

        // Collect results at rank 0 over dedicated channels.
        if me == 0 {
            let (mut max_comm, mut max_overall) = (comm_ns, overall_ns);
            for r in 1..ranks {
                let ch = py.channel(r);
                let bytes = py.recv_host(ctx, ch).expect("result bytes");
                let c = u64::from_be_bytes(bytes[0..8].try_into().unwrap());
                let o = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
                max_comm = max_comm.max(c);
                max_overall = max_overall.max(o);
            }
            *result2.lock() = JacobiResult {
                overall_ms: as_ms(max_overall) / iters as f64,
                comm_ms: as_ms(max_comm) / iters as f64,
            };
        } else {
            let ch = py.channel(0);
            let mut payload = Vec::with_capacity(16);
            payload.extend_from_slice(&comm_ns.to_be_bytes());
            payload.extend_from_slice(&overall_ns.to_be_bytes());
            py.send_host(ctx, ch, payload);
        }
    });
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "jacobi (charm4py) did not drain"
    );
    let r = *result.lock();
    r
}
