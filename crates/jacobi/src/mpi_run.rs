//! Jacobi3D for MPI-style models (AMPI and OpenMPI), written once over the
//! shared point-to-point trait.

use std::sync::Arc;

use rucx_fabric::Topology;
use rucx_osu::cuda;
use rucx_osu::mpi_like::{P2p, RankFactory};
use rucx_sim::time::as_ms;
use rucx_sim::RunOutcome;
use rucx_ucp::build_sim;

use crate::bufs::alloc_all;
use crate::config::{pack_cost, stencil_cost, JacobiConfig, JacobiResult, Mode};
use crate::decomp::{decompose, opposite};

/// Run Jacobi3D under an MPI-style model; returns per-iteration timings
/// (max over ranks).
pub fn run_mpi<F: RankFactory>(cfg: &JacobiConfig, factory: F) -> JacobiResult {
    let topo = Topology::summit(cfg.nodes);
    let mut sim = build_sim(topo, cfg.machine.clone());
    let grid = decompose(cfg.domain, cfg.ranks() as u64);
    let bufs = Arc::new(alloc_all(&mut sim, cfg.domain, grid));
    let result = Arc::new(rucx_compat::sync::Mutex::new(JacobiResult {
        overall_ms: 0.0,
        comm_ms: 0.0,
    }));
    let result2 = result.clone();
    let (iters, warmup, mode) = (cfg.iters, cfg.warmup, cfg.mode);
    let ranks = cfg.ranks();

    factory.launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let b = &bufs[me];
        let dev = ctx.with_world_ref(|w, _| w.topo.device_of(me));
        let stream = ctx.with_world_ref(|w, _| w.gpu.default_stream(dev));
        let stencil = stencil_cost(&b.block);

        mpi.barrier(ctx);
        let mut comm_ns = 0u64;
        let mut t0 = ctx.now();
        for i in 0..(warmup + iters) {
            if i == warmup {
                mpi.barrier(ctx);
                comm_ns = 0;
                t0 = ctx.now();
            }
            // Compute phase.
            cuda::kernel_sync(ctx, stencil, stream);
            // Halo exchange phase.
            let tc = ctx.now();
            let mut reqs = Vec::new();
            for dir in 0..6 {
                if let Some(nbr) = b.block.neighbors[dir] {
                    let rbuf = match mode {
                        Mode::Device => b.drecv[dir].unwrap(),
                        Mode::HostStaging => b.hrecv[dir].unwrap(),
                    };
                    // The sender labels messages with its own direction; we
                    // receive on the opposite face.
                    reqs.push(mpi.irecv(ctx, rbuf, nbr as usize, opposite(dir) as i32));
                }
            }
            for dir in 0..6 {
                if let Some(nbr) = b.block.neighbors[dir] {
                    let fb = b.block.face_bytes(dir);
                    // Pack the face into a contiguous device buffer.
                    cuda::kernel_sync(ctx, pack_cost(fb), stream);
                    let sbuf = match mode {
                        Mode::Device => b.dsend[dir].unwrap(),
                        Mode::HostStaging => {
                            cuda::copy_sync(
                                ctx,
                                b.dsend[dir].unwrap(),
                                b.hsend[dir].unwrap(),
                                stream,
                            );
                            b.hsend[dir].unwrap()
                        }
                    };
                    reqs.push(mpi.isend(ctx, sbuf, nbr as usize, dir as i32));
                }
            }
            mpi.waitall(ctx, reqs);
            for dir in 0..6 {
                if b.block.neighbors[dir].is_some() {
                    let fb = b.block.face_bytes(dir);
                    if mode == Mode::HostStaging {
                        cuda::copy_sync(ctx, b.hrecv[dir].unwrap(), b.drecv[dir].unwrap(), stream);
                    }
                    // Unpack the received face into the halo region.
                    cuda::kernel_sync(ctx, pack_cost(fb), stream);
                }
            }
            if i >= warmup {
                comm_ns += ctx.now() - tc;
            }
        }
        let overall_ns = ctx.now() - t0;

        // Collect (comm, overall) at rank 0 and keep the max.
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&comm_ns.to_be_bytes());
        payload.extend_from_slice(&overall_ns.to_be_bytes());
        let res = b.result;
        ctx.with_world(move |w, _| w.gpu.pool.write(res, &payload).expect("result write"));
        if me == 0 {
            let (mut max_comm, mut max_overall) = (comm_ns, overall_ns);
            for _ in 1..ranks {
                mpi.recv_any(ctx, res, 1000);
                let bytes = ctx.with_world_ref(|w, _| w.gpu.pool.read(res).unwrap());
                let c = u64::from_be_bytes(bytes[0..8].try_into().unwrap());
                let o = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
                max_comm = max_comm.max(c);
                max_overall = max_overall.max(o);
            }
            *result2.lock() = JacobiResult {
                overall_ms: as_ms(max_overall) / iters as f64,
                comm_ms: as_ms(max_comm) / iters as f64,
            };
        } else {
            mpi.send(ctx, res, 0, 1000);
        }
    });
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "jacobi (mpi) did not drain"
    );
    let r = *result.lock();
    r
}
