//! 3D domain decomposition: equal-size cuboid blocks minimizing surface
//! area (paper §IV-C), plus the weak-scaling domain-growth rule (base
//! 1536³, each dimension doubled in x, y, z order).

/// Global domain dimensions in cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    pub nx: u64,
    pub ny: u64,
    pub nz: u64,
}

impl Domain {
    pub fn cells(&self) -> u64 {
        self.nx * self.ny * self.nz
    }

    /// Weak-scaling domain for `nodes` (a power of two): start from `base³`
    /// and double dimensions in x, y, z order as the node count doubles.
    pub fn weak_scaled(base: u64, nodes: usize) -> Domain {
        assert!(nodes.is_power_of_two(), "weak scaling doubles node counts");
        let k = nodes.trailing_zeros() as usize;
        let mut d = [base; 3];
        for i in 0..k {
            d[i % 3] *= 2;
        }
        Domain {
            nx: d[0],
            ny: d[1],
            nz: d[2],
        }
    }
}

/// Block grid: `px × py × pz` cuboid blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGrid {
    pub px: u64,
    pub py: u64,
    pub pz: u64,
}

impl BlockGrid {
    pub fn blocks(&self) -> u64 {
        self.px * self.py * self.pz
    }

    /// Linear index of block `(x, y, z)` (x fastest: x-neighbors land on
    /// adjacent ranks, hence adjacent GPUs).
    pub fn index(&self, x: u64, y: u64, z: u64) -> u64 {
        x + self.px * (y + self.py * z)
    }

    /// Coordinates of block `i`.
    pub fn coords(&self, i: u64) -> (u64, u64, u64) {
        (
            i % self.px,
            (i / self.px) % self.py,
            i / (self.px * self.py),
        )
    }
}

/// Pick the factorization `px·py·pz = n` minimizing the total inter-block
/// surface area for `domain` (the communication volume).
pub fn decompose(domain: Domain, n: u64) -> BlockGrid {
    let mut best: Option<(u64, BlockGrid)> = None;
    for px in 1..=n {
        if !n.is_multiple_of(px) {
            continue;
        }
        let rest = n / px;
        for py in 1..=rest {
            if !rest.is_multiple_of(py) {
                continue;
            }
            let pz = rest / py;
            // Cut surfaces: (px-1) planes of ny*nz cells, etc.
            let surface = (px - 1) * domain.ny * domain.nz
                + (py - 1) * domain.nx * domain.nz
                + (pz - 1) * domain.nx * domain.ny;
            let g = BlockGrid { px, py, pz };
            if best.is_none_or(|(s, _)| surface < s) {
                best = Some((surface, g));
            }
        }
    }
    best.expect("n >= 1").1
}

/// One block's placement and geometry.
#[derive(Debug, Clone)]
pub struct Block {
    /// Linear block index (== rank == chare index).
    pub index: u64,
    pub coords: (u64, u64, u64),
    /// Local dimensions in cells.
    pub lx: u64,
    pub ly: u64,
    pub lz: u64,
    /// Neighbor block index per direction (-x, +x, -y, +y, -z, +z).
    pub neighbors: [Option<u64>; 6],
}

/// Face direction helpers.
pub const DIRS: usize = 6;

/// Opposite direction (messages sent "toward +x" arrive on the receiver's
/// "-x" face).
pub fn opposite(dir: usize) -> usize {
    dir ^ 1
}

impl Block {
    /// Build block `i` of `grid` over `domain`. Dimensions must divide.
    pub fn new(domain: Domain, grid: BlockGrid, i: u64) -> Block {
        assert_eq!(domain.nx % grid.px, 0, "px must divide nx");
        assert_eq!(domain.ny % grid.py, 0, "py must divide ny");
        assert_eq!(domain.nz % grid.pz, 0, "pz must divide nz");
        let (x, y, z) = grid.coords(i);
        let mut neighbors = [None; 6];
        if x > 0 {
            neighbors[0] = Some(grid.index(x - 1, y, z));
        }
        if x + 1 < grid.px {
            neighbors[1] = Some(grid.index(x + 1, y, z));
        }
        if y > 0 {
            neighbors[2] = Some(grid.index(x, y - 1, z));
        }
        if y + 1 < grid.py {
            neighbors[3] = Some(grid.index(x, y + 1, z));
        }
        if z > 0 {
            neighbors[4] = Some(grid.index(x, y, z - 1));
        }
        if z + 1 < grid.pz {
            neighbors[5] = Some(grid.index(x, y, z + 1));
        }
        Block {
            index: i,
            coords: (x, y, z),
            lx: domain.nx / grid.px,
            ly: domain.ny / grid.py,
            lz: domain.nz / grid.pz,
            neighbors,
        }
    }

    /// Cells in this block.
    pub fn cells(&self) -> u64 {
        self.lx * self.ly * self.lz
    }

    /// Bytes of one halo face in direction `dir` (doubles).
    pub fn face_bytes(&self, dir: usize) -> u64 {
        let cells = match dir / 2 {
            0 => self.ly * self.lz,
            1 => self.lx * self.lz,
            _ => self.lx * self.ly,
        };
        cells * 8
    }

    /// Number of actual neighbors.
    pub fn neighbor_count(&self) -> usize {
        self.neighbors.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_doubles_in_xyz_order() {
        let b = 1536;
        assert_eq!(
            Domain::weak_scaled(b, 1),
            Domain {
                nx: b,
                ny: b,
                nz: b
            }
        );
        assert_eq!(
            Domain::weak_scaled(b, 2),
            Domain {
                nx: 2 * b,
                ny: b,
                nz: b
            }
        );
        assert_eq!(
            Domain::weak_scaled(b, 4),
            Domain {
                nx: 2 * b,
                ny: 2 * b,
                nz: b
            }
        );
        assert_eq!(
            Domain::weak_scaled(b, 8),
            Domain {
                nx: 2 * b,
                ny: 2 * b,
                nz: 2 * b
            }
        );
        assert_eq!(
            Domain::weak_scaled(b, 256),
            Domain {
                nx: 8 * b,
                ny: 8 * b,
                nz: 4 * b
            }
        );
    }

    #[test]
    fn decompose_minimizes_surface_for_cube() {
        // A cube into 8 blocks: 2x2x2 beats 8x1x1.
        let d = Domain {
            nx: 512,
            ny: 512,
            nz: 512,
        };
        assert_eq!(
            decompose(d, 8),
            BlockGrid {
                px: 2,
                py: 2,
                pz: 2
            }
        );
        // 6 blocks of a cube: 3x2x1 (or permutation with equal surface).
        let g = decompose(d, 6);
        let mut dims = [g.px, g.py, g.pz];
        dims.sort();
        assert_eq!(dims, [1, 2, 3]);
    }

    #[test]
    fn block_geometry_and_neighbors() {
        let d = Domain {
            nx: 1536,
            ny: 1536,
            nz: 1536,
        };
        let g = decompose(d, 6);
        let n = g.blocks();
        assert_eq!(n, 6);
        // Corner block has fewer neighbors than interior-ish ones.
        let b0 = Block::new(d, g, 0);
        assert!(b0.neighbor_count() <= 3);
        // All blocks equal size.
        for i in 0..n {
            let b = Block::new(d, g, i);
            assert_eq!(b.cells(), d.cells() / n);
        }
        // Neighbor relations are symmetric.
        for i in 0..n {
            let b = Block::new(d, g, i);
            for (dir, nb) in b.neighbors.iter().enumerate() {
                if let Some(j) = nb {
                    let other = Block::new(d, g, *j);
                    assert_eq!(other.neighbors[opposite(dir)], Some(i));
                    assert_eq!(b.face_bytes(dir), other.face_bytes(opposite(dir)));
                }
            }
        }
    }

    #[test]
    fn coords_index_roundtrip() {
        let g = BlockGrid {
            px: 3,
            py: 4,
            pz: 5,
        };
        for i in 0..g.blocks() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.index(x, y, z), i);
        }
    }

    #[test]
    fn weak_scaled_block_fits_v100() {
        // Per-GPU block must stay under 16 GB at every weak-scaling point.
        for k in 0..=8 {
            let nodes = 1usize << k;
            let d = Domain::weak_scaled(1536, nodes);
            let blocks = (nodes * 6) as u64;
            let bytes_per_block = d.cells() / blocks * 8;
            assert!(
                bytes_per_block < 16 << 30,
                "nodes={nodes}: {bytes_per_block} bytes/GPU"
            );
        }
    }
}
