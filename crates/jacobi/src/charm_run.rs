//! Jacobi3D for Charm++: message-driven chares (one block per chare, one
//! chare per PE — no overdecomposition, matching §IV-A), exchanging halos
//! through `nocopydevice` entry methods (GPU-direct) or packed host
//! payloads (host-staging).

use std::sync::Arc;

use rucx_charm::{launch, marshal, ChareRef, Collection, EpId, Msg, Pe, RedOp, RedTarget};
use rucx_fabric::Topology;
use rucx_gpu::MemRef;
use rucx_osu::cuda;
use rucx_sim::time::{as_ms, Time};
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MCtx};

use crate::bufs::alloc_mapped;
use crate::config::{pack_cost, stencil_cost, JacobiConfig, JacobiResult, Mode};
use crate::decomp::{decompose, opposite, Block};

struct JacobiChare {
    block: Block,
    dsend: [Option<MemRef>; 6],
    drecv: [Option<MemRef>; 6],
    hsend: [Option<MemRef>; 6],
    hrecv: [Option<MemRef>; 6],
    mode: Mode,
    iters: u32,
    warmup: u32,
    /// Iteration in progress (1-based once started).
    iter: u32,
    /// Stencil kernel still on the GPU; halos may arrive meanwhile but the
    /// iteration cannot complete before the compute-done event.
    computing: bool,
    received_cur: usize,
    received_next: usize,
    expected: usize,
    comm_ns: u64,
    tc: Time,
    t0: Time,
    /// Root only: reduction results received so far.
    reports: Vec<f64>,
    result: Arc<rucx_compat::sync::Mutex<JacobiResult>>,
}

thread_local! {
    #[allow(clippy::type_complexity)]
    static IDS: std::cell::Cell<Option<(Collection, EpId, EpId, EpId, EpId)>> =
        const { std::cell::Cell::new(None) };
}

impl JacobiChare {
    fn stream_of(pe: &Pe, ctx: &mut MCtx) -> rucx_gpu::StreamId {
        let me = pe.index;
        ctx.with_world_ref(|w, _| w.gpu.default_stream(w.topo.device_of(me)))
    }

    fn start_iter(&mut self, pe: &mut Pe, ctx: &mut MCtx) {
        let (col, _ep_halo, ep_comm, ep_overall, ep_kdone) = IDS.with(|c| c.get()).unwrap();
        if self.iter == self.warmup {
            self.comm_ns = 0;
            self.t0 = ctx.now();
        }
        if self.iter == self.warmup + self.iters {
            // Done: reduce max comm time and max overall time to chare 0.
            let comm_ms = as_ms(self.comm_ns) / self.iters as f64;
            let overall_ms = as_ms(ctx.now() - self.t0) / self.iters as f64;
            let root = ChareRef { col, index: 0 };
            let elem = self.block.index;
            pe.contribute(
                ctx,
                col,
                elem,
                RedOp::Max,
                comm_ms,
                RedTarget::Chare(root, ep_comm),
            );
            pe.contribute(
                ctx,
                col,
                elem,
                RedOp::Max,
                overall_ms,
                RedTarget::Chare(root, ep_overall),
            );
            return;
        }
        self.iter += 1;
        // Halos that raced ahead belong to the iteration we are starting.
        self.received_cur = self.received_next;
        self.received_next = 0;
        self.computing = true;

        // Launch the stencil asynchronously and continue scheduling; the
        // compute-done entry method fires when the kernel completes, so
        // other chares on this PE can progress meanwhile (the
        // computation-communication-overlap mechanism).
        let stream = Self::stream_of(pe, ctx);
        let cost = stencil_cost(&self.block);
        let launch = ctx.with_world_ref(|w, _| w.gpu.params.kernel_launch);
        ctx.advance(launch);
        let end = ctx.with_world(move |w, s| rucx_gpu::kernel_async(w, s, stream, cost, None));
        let me = self.block.index;
        pe.send_local_at(ctx, ChareRef { col, index: me }, ep_kdone, vec![], end);
    }

    /// The stencil kernel finished: exchange halos.
    fn after_compute(&mut self, pe: &mut Pe, ctx: &mut MCtx) {
        let (col, ep_halo, ..) = IDS.with(|c| c.get()).unwrap();
        self.computing = false;
        self.tc = ctx.now();
        let stream = Self::stream_of(pe, ctx);
        for dir in 0..6 {
            let Some(nbr) = self.block.neighbors[dir] else {
                continue;
            };
            let fb = self.block.face_bytes(dir);
            cuda::kernel_sync(ctx, pack_cost(fb), stream);
            let mut params = Vec::with_capacity(12);
            marshal::put_u8(&mut params, dir as u8);
            marshal::put_u32(&mut params, self.iter);
            let to = ChareRef { col, index: nbr };
            match self.mode {
                Mode::Device => {
                    pe.send(ctx, to, ep_halo, params, 0, vec![self.dsend[dir].unwrap()]);
                }
                Mode::HostStaging => {
                    cuda::copy_sync(
                        ctx,
                        self.dsend[dir].unwrap(),
                        self.hsend[dir].unwrap(),
                        stream,
                    );
                    pe.send(ctx, to, ep_halo, params, fb, vec![]);
                }
            }
        }
        if self.received_cur == self.expected {
            self.finish_comm(pe, ctx);
        }
    }

    fn on_halo(&mut self, msg: &Msg, pe: &mut Pe, ctx: &mut MCtx) {
        let mut r = marshal::Reader(&msg.params);
        let dir = r.u8() as usize;
        let msg_iter = r.u32();
        let od = opposite(dir);
        let fb = self.block.face_bytes(od);
        let stream = Self::stream_of(pe, ctx);
        if self.mode == Mode::HostStaging {
            cuda::copy_sync(
                ctx,
                self.hrecv[od].unwrap(),
                self.drecv[od].unwrap(),
                stream,
            );
        }
        cuda::kernel_sync(ctx, pack_cost(fb), stream);
        if msg_iter == self.iter {
            self.received_cur += 1;
            if !self.computing && self.received_cur == self.expected {
                self.finish_comm(pe, ctx);
            }
        } else if msg_iter == self.iter + 1 {
            self.received_next += 1;
        } else {
            panic!(
                "chare {} at iter {} got halo for iter {msg_iter}",
                self.block.index, self.iter
            );
        }
    }

    fn finish_comm(&mut self, pe: &mut Pe, ctx: &mut MCtx) {
        if self.iter > self.warmup {
            self.comm_ns += ctx.now() - self.tc;
        }
        self.start_iter(pe, ctx);
    }

    fn on_report(&mut self, which: usize, value: f64) -> Option<JacobiResult> {
        // which: 0 = comm, 1 = overall. Root collects both.
        if self.reports.is_empty() {
            self.reports = vec![f64::NAN, f64::NAN];
        }
        self.reports[which] = value;
        if self.reports.iter().all(|v| !v.is_nan()) {
            Some(JacobiResult {
                comm_ms: self.reports[0],
                overall_ms: self.reports[1],
            })
        } else {
            None
        }
    }
}

/// Run Jacobi3D on Charm++; returns per-iteration timings (max over chares).
///
/// With `cfg.overdecomp > 1`, each PE hosts that many chares (consecutive
/// blocks), letting the message-driven scheduler overlap one chare's halo
/// wait with another's stencil compute — the paper's planned
/// computation-communication-overlap extension.
pub fn run_charm(cfg: &JacobiConfig) -> JacobiResult {
    let topo = Topology::summit(cfg.nodes);
    let mut sim = build_sim(topo, cfg.machine.clone());
    run_charm_on(&mut sim, cfg)
}

/// [`run_charm`] against a pre-built simulation — the scenario-matrix
/// runner arms fault injection and the trace sink on the sim before
/// handing it over, then harvests counters and trace afterwards. The sim
/// must model `cfg.nodes` Summit-like nodes and not have been run yet.
pub fn run_charm_on(sim: &mut rucx_ucp::MSim, cfg: &JacobiConfig) -> JacobiResult {
    assert_eq!(
        sim.world().topo.procs(),
        cfg.ranks(),
        "simulation topology does not match the Jacobi configuration"
    );
    let odf = cfg.overdecomp.max(1) as u64;
    let n_elems = cfg.ranks() as u64 * odf;
    let grid = decompose(cfg.domain, n_elems);
    let bufs = Arc::new(alloc_mapped(sim, cfg.domain, grid, |b| (b / odf) as usize));
    let result = Arc::new(rucx_compat::sync::Mutex::new(JacobiResult {
        overall_ms: 0.0,
        comm_ms: 0.0,
    }));
    let result2 = result.clone();
    let (iters, warmup, mode) = (cfg.iters, cfg.warmup, cfg.mode);

    launch(sim, move |pe, ctx| {
        let col = pe.register_collection(n_elems, move |i| (i / odf) as usize);
        let ep_halo = pe.register_ep(
            col,
            Some(Box::new(|chare, msg| {
                let c = chare.downcast_mut::<JacobiChare>().unwrap();
                let mut r = marshal::Reader(&msg.params);
                let dir = r.u8() as usize;
                vec![c.drecv[opposite(dir)].unwrap()]
            })),
            Box::new(|chare, msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<JacobiChare>().unwrap();
                c.on_halo(msg, pe, ctx);
            }),
        );
        let ep_comm = pe.register_ep(
            col,
            None,
            Box::new(|chare, msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<JacobiChare>().unwrap();
                let mut r = marshal::Reader(&msg.params);
                let v = r.f64();
                if let Some(done) = c.on_report(0, v) {
                    *c.result.lock() = done;
                    pe.exit_all(ctx);
                }
            }),
        );
        let ep_overall = pe.register_ep(
            col,
            None,
            Box::new(|chare, msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<JacobiChare>().unwrap();
                let mut r = marshal::Reader(&msg.params);
                let v = r.f64();
                if let Some(done) = c.on_report(1, v) {
                    *c.result.lock() = done;
                    pe.exit_all(ctx);
                }
            }),
        );
        let ep_kdone = pe.register_ep(
            col,
            None,
            Box::new(|chare, _msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<JacobiChare>().unwrap();
                c.after_compute(pe, ctx);
            }),
        );
        IDS.with(|c| c.set(Some((col, ep_halo, ep_comm, ep_overall, ep_kdone))));

        let local: Vec<u64> = pe.local_indices(col).to_vec();
        for &i in &local {
            let b = &bufs[i as usize];
            pe.insert_chare(
                col,
                i,
                Box::new(JacobiChare {
                    block: b.block.clone(),
                    dsend: b.dsend,
                    drecv: b.drecv,
                    hsend: b.hsend,
                    hrecv: b.hrecv,
                    mode,
                    iters,
                    warmup,
                    iter: 0,
                    computing: false,
                    received_cur: 0,
                    received_next: 0,
                    expected: b.block.neighbor_count(),
                    comm_ns: 0,
                    tc: 0,
                    t0: 0,
                    reports: Vec::new(),
                    result: result2.clone(),
                }),
            );
        }
        for &i in &local {
            pe.with_chare::<JacobiChare, _>(ctx, col, i, |c, pe, ctx| {
                c.start_iter(pe, ctx);
            });
        }
        pe.run(ctx);
    });
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "jacobi (charm) did not drain"
    );
    let r = *result.lock();
    r
}
