//! # rucx-jacobi — Jacobi3D proxy application (paper §IV-C)
//!
//! A 7-point stencil over a 3D domain of doubles, decomposed into
//! equal-size cuboid blocks (one per GPU) that exchange halo faces with up
//! to six neighbors each iteration — either GPU-direct through the
//! communication layer or staged through host memory. Implemented for all
//! four models (Charm++, AMPI, OpenMPI, Charm4py) with weak- and
//! strong-scaling drivers reproducing Figures 14–16.

pub mod bufs;
pub mod charm_run;
pub mod config;
pub mod decomp;
pub mod mpi_run;
pub mod py_run;
pub mod sharded;

pub use config::{JacobiConfig, JacobiResult, Mode};
pub use decomp::{decompose, Block, BlockGrid, Domain};
pub use sharded::{
    run_sharded, run_sharded_full, sharded_strong_series, sharded_weak_series, ShardedOpts,
    ShardedRun,
};

use rucx_osu::mpi_like::{AmpiFactory, OmpiFactory};

/// Which model runs the proxy app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JacobiModel {
    Charm,
    Ampi,
    Ompi,
    Charm4py,
}

impl JacobiModel {
    pub fn label(self) -> &'static str {
        match self {
            JacobiModel::Charm => "Charm++",
            JacobiModel::Ampi => "AMPI",
            JacobiModel::Ompi => "OpenMPI",
            JacobiModel::Charm4py => "Charm4py",
        }
    }
}

/// Run one Jacobi3D configuration.
pub fn run(model: JacobiModel, cfg: &JacobiConfig) -> JacobiResult {
    match model {
        JacobiModel::Charm => charm_run::run_charm(cfg),
        JacobiModel::Ampi => mpi_run::run_mpi(cfg, AmpiFactory),
        JacobiModel::Ompi => mpi_run::run_mpi(cfg, OmpiFactory),
        JacobiModel::Charm4py => py_run::run_charm4py(cfg),
    }
}

/// Weak-scaling sweep over `node_counts` (powers of two).
pub fn weak_series(
    model: JacobiModel,
    mode: Mode,
    node_counts: &[usize],
) -> Vec<(usize, JacobiResult)> {
    node_counts
        .iter()
        .map(|&n| (n, run(model, &JacobiConfig::weak(n, mode))))
        .collect()
}

/// Strong-scaling sweep (fixed 3072³ domain).
pub fn strong_series(
    model: JacobiModel,
    mode: Mode,
    node_counts: &[usize],
) -> Vec<(usize, JacobiResult)> {
    node_counts
        .iter()
        .map(|&n| (n, run(model, &JacobiConfig::strong(n, mode))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: usize, mode: Mode) -> JacobiConfig {
        let mut c = JacobiConfig::weak(nodes, mode);
        c.iters = 3;
        c.warmup = 1;
        c
    }

    #[test]
    fn charm_single_node_gpu_direct_vs_staging() {
        let d = run(JacobiModel::Charm, &quick(1, Mode::Device));
        let h = run(JacobiModel::Charm, &quick(1, Mode::HostStaging));
        assert!(d.comm_ms > 0.0 && h.comm_ms > 0.0);
        // Paper Fig. 14: large intra-node comm speedup, overall speedup too.
        assert!(
            h.comm_ms / d.comm_ms > 3.0,
            "comm speedup only {:.2}x (H {:.2}ms, D {:.2}ms)",
            h.comm_ms / d.comm_ms,
            h.comm_ms,
            d.comm_ms
        );
        assert!(h.overall_ms > d.overall_ms);
        // Compute dominates but comm is visible.
        assert!(d.overall_ms > d.comm_ms);
    }

    #[test]
    fn ampi_and_openmpi_single_node() {
        let a = run(JacobiModel::Ampi, &quick(1, Mode::Device));
        let o = run(JacobiModel::Ompi, &quick(1, Mode::Device));
        assert!(a.comm_ms > 0.0 && o.comm_ms > 0.0);
        // AMPI close to OpenMPI at small scale (paper: similar up to ~16
        // nodes), but not faster by much.
        assert!(a.comm_ms > o.comm_ms * 0.8, "AMPI {a:?} vs OpenMPI {o:?}");
    }

    #[test]
    fn charm4py_overhead_visible() {
        let py = run(JacobiModel::Charm4py, &quick(1, Mode::Device));
        let c = run(JacobiModel::Charm, &quick(1, Mode::Device));
        assert!(
            py.comm_ms > c.comm_ms,
            "Charm4py comm {:.2}ms should exceed Charm++ {:.2}ms",
            py.comm_ms,
            c.comm_ms
        );
    }

    #[test]
    fn weak_scaling_two_nodes_runs() {
        let d = run(JacobiModel::Charm, &quick(2, Mode::Device));
        let d1 = run(JacobiModel::Charm, &quick(1, Mode::Device));
        // Both scales have real communication, in the same regime (the
        // 1-node point pays X-Bus sharing; the 2-node point pays the NIC).
        assert!(
            d.comm_ms > 0.4 && d1.comm_ms > 0.4,
            "2 nodes {d:?} vs 1 node {d1:?}"
        );
        assert!(d.comm_ms < 4.0 * d1.comm_ms && d1.comm_ms < 4.0 * d.comm_ms);
        // Compute per GPU is constant under weak scaling.
        assert!((d.overall_ms - d.comm_ms) - (d1.overall_ms - d1.comm_ms) < 3.0);
    }

    #[test]
    fn overdecomposition_runs_and_overlaps() {
        // 4 chares per PE: the run must complete, produce sane timings, and
        // not catastrophically regress overall time (overlap offsets most
        // of the extra surface).
        let mut c1 = quick(1, Mode::Device);
        let mut c4 = quick(1, Mode::Device);
        c4.overdecomp = 4;
        c1.iters = 2;
        c4.iters = 2;
        let r1 = run(JacobiModel::Charm, &c1);
        let r4 = run(JacobiModel::Charm, &c4);
        assert!(r4.comm_ms > 0.0 && r4.overall_ms > 0.0);
        assert!(
            r4.overall_ms < r1.overall_ms * 1.5,
            "odf=4 {r4:?} vs odf=1 {r1:?}"
        );
    }

    #[test]
    fn strong_scaling_reduces_overall_time() {
        let mut c8 = JacobiConfig::strong(8, Mode::Device);
        c8.iters = 2;
        c8.warmup = 1;
        let mut c32 = JacobiConfig::strong(32, Mode::Device);
        c32.iters = 2;
        c32.warmup = 1;
        let r8 = run(JacobiModel::Ompi, &c8);
        let r32 = run(JacobiModel::Ompi, &c32);
        assert!(
            r32.overall_ms < r8.overall_ms / 2.0,
            "8 nodes {r8:?} vs 32 nodes {r32:?}"
        );
    }
}
