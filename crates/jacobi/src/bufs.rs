//! Per-rank buffer allocation shared by all Jacobi variants.

use rucx_gpu::MemRef;
use rucx_ucp::MSim;

use crate::decomp::{Block, BlockGrid, Domain};

/// Device and host buffers of one rank's block.
pub struct RankBufs {
    pub block: Block,
    /// Main grid storage (old + new grids), phantom.
    pub grid_mem: MemRef,
    /// Contiguous device face buffers, send and receive, per direction.
    pub dsend: [Option<MemRef>; 6],
    pub drecv: [Option<MemRef>; 6],
    /// Pinned host staging buffers (host-staging mode).
    pub hsend: [Option<MemRef>; 6],
    pub hrecv: [Option<MemRef>; 6],
    /// 16-byte materialized host buffer for result collection.
    pub result: MemRef,
}

/// Allocate all per-rank buffers for a decomposed domain (one block per
/// process).
pub fn alloc_all(sim: &mut MSim, domain: Domain, grid: BlockGrid) -> Vec<RankBufs> {
    assert_eq!(
        grid.blocks() as usize,
        sim.world().topo.procs(),
        "one block per GPU"
    );
    alloc_mapped(sim, domain, grid, |b| b as usize)
}

/// Allocate per-block buffers with an explicit block→process placement
/// (used by overdecomposed runs, where several blocks share a PE/GPU).
pub fn alloc_mapped(
    sim: &mut MSim,
    domain: Domain,
    grid: BlockGrid,
    proc_of: impl Fn(u64) -> usize,
) -> Vec<RankBufs> {
    let topo = sim.world().topo.clone();
    let blocks = grid.blocks() as usize;
    let mut out = Vec::with_capacity(blocks);
    let m = sim.world_mut();
    for r in 0..blocks {
        let block = Block::new(domain, grid, r as u64);
        let proc = proc_of(r as u64);
        let dev = topo.device_of(proc);
        let node = topo.node_of(proc);
        // Old + new grid storage.
        let grid_mem = m
            .gpu
            .pool
            .alloc_device(dev, block.cells() * 8 * 2, false)
            .expect("grid alloc");
        let mut dsend = [None; 6];
        let mut drecv = [None; 6];
        let mut hsend = [None; 6];
        let mut hrecv = [None; 6];
        for dir in 0..6 {
            if block.neighbors[dir].is_some() {
                let fb = block.face_bytes(dir);
                dsend[dir] = Some(m.gpu.pool.alloc_device(dev, fb, false).expect("face"));
                drecv[dir] = Some(m.gpu.pool.alloc_device(dev, fb, false).expect("face"));
                // Host staging buffers are pageable: the host-staging
                // variant models the pre-GPU-aware application the paper
                // argues against, which allocates with plain malloc.
                hsend[dir] = Some(m.gpu.pool.alloc_host(node, fb, false, false));
                hrecv[dir] = Some(m.gpu.pool.alloc_host(node, fb, false, false));
            }
        }
        let result = m.gpu.pool.alloc_host(node, 16, true, true);
        out.push(RankBufs {
            block,
            grid_mem,
            dsend,
            drecv,
            hsend,
            hrecv,
            result,
        });
    }
    out
}
