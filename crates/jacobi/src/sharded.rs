//! Sharded Jacobi3D: the full halo-exchange timing model on the
//! conservative parallel engine ([`rucx_sim::ShardedEngine`]).
//!
//! The process-thread runtimes (`run_charm` & friends) simulate every
//! UCP/runtime layer and are the ground truth for protocol behaviour, but
//! they execute one global event queue. This module is the *scaling*
//! counterpart: a closed-form, event-driven reformulation of the same
//! per-iteration timing structure (stencil → pack → send → unpack →
//! barrier-free completion) that partitions the cluster into
//! node-contiguous shards, each advanced by its own OS thread inside
//! lookahead windows (see `DESIGN.md` §11). A 256-node weak-scaling sweep
//! that is hours of virtual time finishes in wall-clock seconds.
//!
//! ## Determinism across shard counts
//!
//! Results must be byte-identical for shard counts 1, 2, 8, … (the
//! sequential-oracle conformance suite asserts this), so every quantity a
//! rank computes is a *static* function of the configuration — never of
//! event-processing order:
//!
//! - Link times use fixed NIC-sharing factors (how many ranks on a socket
//!   have off-node neighbors) instead of the dynamic `tx_busy`/`rx_busy`
//!   port state of [`rucx_fabric::NetSubsystem`].
//! - Per-iteration completion is the max over halo arrival times, and
//!   `max` is commutative; reported figures fold `f64::max` over ranks in
//!   global rank order.
//! - Fault decisions hash `(seed, src rank, per-source sequence)` — pure
//!   per-envelope functions, not draws from a shared call-order RNG.
//!
//! Overdecomposition is not modelled here (one block per rank, the
//! paper's §IV-A configuration); `cfg.overdecomp` is ignored.

use std::sync::Arc;

use rucx_compat::rng::splitmix64;
use rucx_fabric::{NetParams, ShardPlan, Topology};
use rucx_fault::FaultSpec;
use rucx_gpu::GpuParams;
use rucx_sim::time::{as_ms, transfer_time, us, Duration, Time};
use rucx_sim::trace::merge_chrome_json;
use rucx_sim::{
    Backend, Outbox, RouteDecision, RouteInfo, Scheduler, ShardStats, ShardedEngine, SimConfig,
    Simulation,
};

use crate::config::{pack_cost, stencil_cost, JacobiConfig, JacobiResult, Mode};
use crate::decomp::{decompose, opposite, Block, DIRS};
use crate::JacobiModel;

/// Cross-shard payload: one halo face in flight.
#[derive(Debug, Clone, Copy)]
pub struct Halo {
    /// Destination rank (== block index).
    dst_rank: u64,
    /// Sender's iteration number.
    iter: u32,
    /// Direction *sent* (the receiver's face is [`opposite`]).
    dir: u8,
}

/// Per-model software overhead added to every halo send: runtime
/// dispatch, marshalling, and (for Charm4py) the Python crossing. These
/// are the knobs that separate the four curves in the paper's Fig. 14–16.
fn runtime_overhead(model: JacobiModel) -> Duration {
    match model {
        JacobiModel::Charm => us(0.8),
        JacobiModel::Ampi => us(1.2),
        JacobiModel::Ompi => us(1.0),
        JacobiModel::Charm4py => us(15.0),
    }
}

/// Immutable run parameters shared by all shards.
struct Params {
    topo: Topology,
    plan: ShardPlan,
    mode: Mode,
    iters: u32,
    warmup: u32,
    gpu: GpuParams,
    net: NetParams,
    overhead: Duration,
    /// Sockets per node (for indexing `nic_sharers`).
    sockets: usize,
    /// Per `(node, socket)`: ranks on that socket with at least one
    /// off-node neighbor — the static NIC contention factor.
    nic_sharers: Vec<u32>,
}

impl Params {
    fn socket_slot(&self, p: usize) -> usize {
        self.topo.node_of(p) * self.sockets + self.topo.socket_of(p)
    }

    /// Sender-side cost of staging one face: pack kernel, (host-staging)
    /// D2H copy, runtime dispatch.
    fn send_side(&self, fb: u64) -> Duration {
        let mut d = self.gpu.sync_overhead + pack_cost(fb).duration(&self.gpu);
        if self.mode == Mode::HostStaging {
            d += self.gpu.copy_launch
                + self.gpu.dma_setup
                + transfer_time(fb, self.gpu.cpu_gpu_gbps);
        }
        d + self.overhead
    }

    /// Wire plus receiver-side cost: link transfer, (host-staging) H2D
    /// copy, unpack kernel. Everything here is a static function of the
    /// endpoints, which is what keeps runs shard-count invariant.
    fn link_and_unpack(&self, src: usize, dst: usize, fb: u64) -> Duration {
        let link = if self.topo.same_node(src, dst) {
            match self.mode {
                Mode::Device => {
                    let bw = if self.topo.same_socket(src, dst) {
                        self.gpu.nvlink_gbps
                    } else {
                        self.gpu.xbus_gbps
                    };
                    self.gpu.dma_setup + transfer_time(fb, bw)
                }
                Mode::HostStaging => transfer_time(fb, self.gpu.host_memcpy_gbps),
            }
        } else {
            let bw = match self.mode {
                Mode::Device => self.net.gdr_gbps,
                Mode::HostStaging => self.net.nic_gbps,
            };
            let sharers = self.nic_sharers[self.socket_slot(src)]
                .max(self.nic_sharers[self.socket_slot(dst)])
                .max(1);
            self.plan.min_latency + transfer_time(fb, bw / sharers as f64)
        };
        let mut unpack = self.gpu.sync_overhead + pack_cost(fb).duration(&self.gpu);
        if self.mode == Mode::HostStaging {
            unpack += self.gpu.copy_launch
                + self.gpu.dma_setup
                + transfer_time(fb, self.gpu.cpu_gpu_gbps);
        }
        link + unpack
    }
}

/// One rank's iteration state (mirrors `JacobiChare`, faces as bitmasks).
struct Rank {
    block: Block,
    iter: u32,
    computing: bool,
    /// Faces received for the current / next iteration (bit = receiving
    /// direction). The bitmask doubles as duplicate detection.
    recv_cur: u8,
    recv_next: u8,
    expected: u8,
    tc: Time,
    t0: Time,
    comm_ns: u64,
    finished: bool,
}

impl Rank {
    fn new(block: Block) -> Self {
        let mut expected = 0u8;
        for (dir, n) in block.neighbors.iter().enumerate() {
            if n.is_some() {
                expected |= 1 << dir;
            }
        }
        Rank {
            block,
            iter: 0,
            computing: false,
            recv_cur: 0,
            recv_next: 0,
            expected,
            tc: 0,
            t0: 0,
            comm_ns: 0,
            finished: false,
        }
    }
}

/// Per-shard world: the contiguous rank slice this shard owns.
struct ShardWorld {
    shard: usize,
    first_rank: usize,
    states: Vec<Rank>,
    outbox: Outbox<Halo>,
    p: Arc<Params>,
    dup_suppressed: u64,
    /// `(rank, comm_ms, overall_ms)` for finished ranks.
    done: Vec<(u64, f64, f64)>,
}

fn start_iter(w: &mut ShardWorld, s: &mut Scheduler<ShardWorld>, l: usize) {
    let p = w.p.clone();
    let rank = (w.first_rank + l) as u32;
    if w.states[l].iter == p.warmup {
        w.states[l].t0 = s.now();
        w.states[l].comm_ns = 0;
    }
    if w.states[l].iter == p.warmup + p.iters {
        let (comm_ms, overall_ms) = {
            let st = &mut w.states[l];
            st.finished = true;
            (
                as_ms(st.comm_ns) / p.iters as f64,
                as_ms(s.now() - st.t0) / p.iters as f64,
            )
        };
        w.done.push((rank as u64, comm_ms, overall_ms));
        s.trace_instant("jacobi.rank.done", rank, p.iters as u64, 0);
        return;
    }
    let st = &mut w.states[l];
    st.iter += 1;
    // Halos that raced ahead belong to the iteration we are starting.
    st.recv_cur = st.recv_next;
    st.recv_next = 0;
    st.computing = true;
    let dur = p.gpu.kernel_launch + stencil_cost(&st.block).duration(&p.gpu);
    s.trace_instant("jacobi.iter.start", rank, st.iter as u64, 0);
    let at = s.now() + dur;
    s.schedule_at(at, move |w, s| after_compute(w, s, l));
}

/// Stencil done: pack and ship all faces, then complete if every halo for
/// this iteration already arrived.
fn after_compute(w: &mut ShardWorld, s: &mut Scheduler<ShardWorld>, l: usize) {
    let p = w.p.clone();
    let src = w.first_rank + l;
    let (block, iter) = {
        let st = &mut w.states[l];
        st.computing = false;
        st.tc = s.now();
        (st.block.clone(), st.iter)
    };
    // Pack kernels serialize on the rank's stream: a running cursor, like
    // the `kernel_sync` chain in `run_charm`.
    let mut t = s.now();
    for dir in 0..DIRS {
        let Some(nbr) = block.neighbors[dir] else {
            continue;
        };
        let fb = block.face_bytes(dir);
        t += p.send_side(fb);
        let recv = t + p.link_and_unpack(src, nbr as usize, fb);
        let dst_shard = p.plan.shard_of_proc(nbr as usize);
        let dir8 = dir as u8;
        if dst_shard == w.shard {
            let dl = nbr as usize - w.first_rank;
            s.schedule_at(recv, move |w, s| halo_arrive(w, s, dl, iter, dir8));
        } else {
            // Key `(src rank, iter*6 + dir)`: a *static* per-halo identity,
            // identical for every shard count, so fault hashes are too.
            let key = (src as u64, iter as u64 * DIRS as u64 + dir as u64);
            w.outbox.send(
                dst_shard,
                recv,
                key,
                Halo {
                    dst_rank: nbr,
                    iter,
                    dir: dir8,
                },
            );
        }
    }
    let st = &w.states[l];
    if st.recv_cur == st.expected {
        complete(w, s, l);
    }
}

/// One halo face arrived (local schedule or cross-shard delivery — both
/// funnel here, so faulted and clean paths share every line of logic).
fn halo_arrive(
    w: &mut ShardWorld,
    s: &mut Scheduler<ShardWorld>,
    l: usize,
    msg_iter: u32,
    dir: u8,
) {
    let rank = (w.first_rank + l) as u32;
    let od = opposite(dir as usize);
    let bit = 1u8 << od;
    s.trace_instant("jacobi.halo.recv", rank, msg_iter as u64, od as u64);
    let st = &mut w.states[l];
    if msg_iter == st.iter && st.recv_cur & bit == 0 {
        st.recv_cur |= bit;
        if !st.computing && st.recv_cur == st.expected {
            complete(w, s, l);
        }
    } else if msg_iter == st.iter + 1 && st.recv_next & bit == 0 {
        st.recv_next |= bit;
    } else if msg_iter <= st.iter + 1 {
        // The face was already refreshed for that iteration: a duplicated
        // (or duplicated-then-delayed) halo. Drop it, visibly.
        w.dup_suppressed += 1;
    } else {
        // A halo from iteration k can only exist once its sender finished
        // iteration k, which needed *our* k-halo, so we are at >= k.
        panic!(
            "rank {rank} at iter {} got halo for iter {msg_iter}",
            st.iter
        );
    }
}

/// All halos for the current iteration are in and the stencil is done.
fn complete(w: &mut ShardWorld, s: &mut Scheduler<ShardWorld>, l: usize) {
    let rank = (w.first_rank + l) as u32;
    let (tc, iter, measured) = {
        let st = &mut w.states[l];
        if st.iter > w.p.warmup {
            st.comm_ns += s.now() - st.tc;
        }
        (st.tc, st.iter, st.iter > w.p.warmup)
    };
    if measured {
        s.trace_span("jacobi.iter.comm", tc, s.now(), rank, iter as u64, 0);
    }
    start_iter(w, s, l);
}

/// Shard-count-invariant fault routing: every decision is a hash of
/// `(spec seed, src rank, per-rank sequence)`, so an envelope's fate does
/// not depend on barrier grouping. (`max_faults` is the one exception — a
/// global budget is inherently order-dependent; it is honored in the
/// engine's sorted envelope order, deterministic per shard count.)
fn route_fault(
    spec: &FaultSpec,
    topo: &Topology,
    injected: &mut u64,
    info: &RouteInfo,
    halo: &Halo,
) -> RouteDecision {
    let (a, b) = (
        topo.node_of(info.key.0 as usize),
        topo.node_of(halo.dst_rank as usize),
    );
    if !spec.links.matches(a, b) || *injected >= spec.max_faults {
        return RouteDecision::Deliver;
    }
    if spec
        .partitions
        .iter()
        .any(|w| w.from <= info.recv && info.recv < w.until)
    {
        *injected += 1;
        return RouteDecision::Drop;
    }
    // Detected corruption is discarded at arrival — at this model's
    // granularity that is observationally a drop.
    let drop_band = spec.drop_p + spec.corrupt_p;
    let total = drop_band + spec.dup_p + spec.delay_p;
    if total <= 0.0 {
        return RouteDecision::Deliver;
    }
    let mut st = spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ info.key.0.wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ info.key.1.wrapping_add(0x2545_F491_4F6C_DD1D);
    let r = (splitmix64(&mut st) >> 11) as f64 / (1u64 << 53) as f64;
    let decision = if r < drop_band {
        RouteDecision::Drop
    } else if r < drop_band + spec.dup_p {
        RouteDecision::Duplicate
    } else if r < total {
        let frac = (splitmix64(&mut st) >> 11) as f64 / (1u64 << 53) as f64;
        RouteDecision::Delay(((spec.delay as f64 * (0.5 + 0.5 * frac)) as Duration).max(1))
    } else {
        return RouteDecision::Deliver;
    };
    *injected += 1;
    decision
}

/// Knobs for [`run_sharded_full`].
#[derive(Debug, Clone)]
pub struct ShardedOpts {
    /// Requested shard count (clamped to `[1, nodes]` by the plan).
    pub shards: usize,
    /// Event-queue backend for every shard.
    pub backend: Backend,
    /// Record per-shard traces and return the merged Chrome JSON.
    pub trace: bool,
    /// Ring capacity per shard (0 = default).
    pub trace_capacity: usize,
}

impl Default for ShardedOpts {
    fn default() -> Self {
        ShardedOpts {
            shards: 1,
            backend: Backend::from_env(),
            trace: false,
            trace_capacity: 0,
        }
    }
}

/// Everything a sharded run produced.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Per-iteration timings, maxed over *finished* ranks.
    pub result: JacobiResult,
    /// Every rank ran all its iterations (always true on clean runs; a
    /// lossy route hook can strand ranks mid-iteration).
    pub completed: bool,
    /// `(rank, waiting-on)` descriptions for stranded ranks.
    pub blocked: Vec<(String, String)>,
    /// Envelopes lost to routing drops.
    pub lost: u64,
    /// Duplicate halos detected and discarded by receivers.
    pub dup_suppressed: u64,
    pub stats: ShardStats,
    /// Merged Chrome trace (when `opts.trace`).
    pub trace_json: Option<String>,
}

/// Run the sharded model and return the figure values; panics if the run
/// stalls (only possible with fault injection — use [`run_sharded_full`]
/// for chaos runs).
pub fn run_sharded(model: JacobiModel, cfg: &JacobiConfig, shards: usize) -> JacobiResult {
    let run = run_sharded_full(
        model,
        cfg,
        &ShardedOpts {
            shards,
            ..Default::default()
        },
    );
    assert!(
        run.completed,
        "sharded jacobi stalled: lost={} blocked={:?}",
        run.lost, run.blocked
    );
    run.result
}

/// Run the sharded Jacobi3D model.
pub fn run_sharded_full(model: JacobiModel, cfg: &JacobiConfig, opts: &ShardedOpts) -> ShardedRun {
    let topo = Topology::summit(cfg.nodes);
    let plan = topo.shard_plan(opts.shards, &cfg.machine.net);
    let grid = decompose(cfg.domain, cfg.ranks() as u64);
    let gpu = cfg.machine.gpu.clone();
    let net = cfg.machine.net.clone();

    // Static NIC contention factors and the smallest face that ever
    // crosses a node boundary (for the lookahead bound).
    let sockets = (topo.gpus_per_node / topo.gpus_per_socket).max(1);
    let mut nic_sharers = vec![0u32; topo.nodes * sockets];
    let mut min_cross_face: Option<u64> = None;
    for p in 0..topo.procs() {
        let b = Block::new(cfg.domain, grid, p as u64);
        let mut crossing = false;
        for dir in 0..DIRS {
            if let Some(nbr) = b.neighbors[dir] {
                if !topo.same_node(p, nbr as usize) {
                    crossing = true;
                    let fb = b.face_bytes(dir);
                    min_cross_face = Some(min_cross_face.map_or(fb, |m| m.min(fb)));
                }
            }
        }
        if crossing {
            nic_sharers[topo.node_of(p) * sockets + topo.socket_of(p)] += 1;
        }
    }
    // Lower bound on recv − send for any cross-shard (hence cross-node)
    // halo: the wire α term plus the unshared transfer of the smallest
    // face at the faster of the two NIC paths. Everything the model adds
    // on top (pack, unpack, staging copies, sharing) only increases it.
    let lookahead = plan.min_latency
        + min_cross_face.map_or(0, |fb| transfer_time(fb, net.nic_gbps.max(net.gdr_gbps)));

    let params = Arc::new(Params {
        topo: topo.clone(),
        plan,
        mode: cfg.mode,
        iters: cfg.iters,
        warmup: cfg.warmup,
        gpu,
        net,
        overhead: runtime_overhead(model),
        sockets,
        nic_sharers,
    });

    let deliver = |w: &mut ShardWorld, s: &mut Scheduler<ShardWorld>, halo: Halo| {
        let l = halo.dst_rank as usize - w.first_rank;
        halo_arrive(w, s, l, halo.iter, halo.dir);
    };
    let build = |shard: usize, outbox: Outbox<Halo>| {
        let ranks = params.plan.procs_of(shard);
        let states: Vec<Rank> = ranks
            .clone()
            .map(|r| Rank::new(Block::new(cfg.domain, grid, r as u64)))
            .collect();
        let n = states.len();
        let world = ShardWorld {
            shard,
            first_rank: ranks.start,
            states,
            outbox,
            p: params.clone(),
            dup_suppressed: 0,
            done: Vec::new(),
        };
        let mut sim = Simulation::with_config(
            world,
            SimConfig {
                backend: opts.backend,
                ..Default::default()
            },
        );
        if opts.trace {
            sim.scheduler().trace.enable(opts.trace_capacity);
        }
        for l in 0..n {
            sim.scheduler()
                .schedule_at(0, move |w, s| start_iter(w, s, l));
        }
        sim
    };
    let mut engine = ShardedEngine::new(plan.shards, lookahead, deliver, build);
    if let Some(spec) = cfg.machine.fault.clone() {
        let ftopo = topo.clone();
        let mut injected = 0u64;
        engine.set_route_hook(move |info, halo| {
            route_fault(&spec, &ftopo, &mut injected, info, halo)
        });
    }

    engine.run();
    let stats = engine.stats().clone();
    assert_eq!(engine.pool().in_use(), 0, "leaked envelope leases");

    // The world is event-driven (no parked process threads), so stalls
    // are judged by rank state, not by the engine's process accounting.
    let mut per_rank: Vec<(u64, f64, f64)> = Vec::new();
    let mut blocked: Vec<(String, String)> = Vec::new();
    let mut dup_suppressed = 0u64;
    for sim in engine.shards() {
        let w = sim.world();
        per_rank.extend(w.done.iter().copied());
        dup_suppressed += w.dup_suppressed;
        for (l, st) in w.states.iter().enumerate() {
            if !st.finished {
                let missing = st.expected & !st.recv_cur;
                blocked.push((
                    format!("rank {}", w.first_rank + l),
                    format!(
                        "iter {}: waiting for {} halo face(s) (mask {missing:#04x})",
                        st.iter,
                        missing.count_ones()
                    ),
                ));
            }
        }
    }
    per_rank.sort_by_key(|&(r, ..)| r);
    let mut result = JacobiResult {
        overall_ms: 0.0,
        comm_ms: 0.0,
    };
    for &(_, comm, overall) in &per_rank {
        result.comm_ms = result.comm_ms.max(comm);
        result.overall_ms = result.overall_ms.max(overall);
    }
    let trace_json = opts
        .trace
        .then(|| merge_chrome_json(engine.shards().iter().map(|s| &s.scheduler_ref().trace)));
    ShardedRun {
        result,
        completed: blocked.is_empty(),
        blocked,
        lost: stats.dropped,
        dup_suppressed,
        stats,
        trace_json,
    }
}

/// Weak-scaling sweep on the sharded engine: `(nodes, overall_ms,
/// comm_ms)` per point, in node order.
pub fn sharded_weak_series(
    model: JacobiModel,
    nodes: &[usize],
    mode: Mode,
    shards: usize,
) -> Vec<(usize, f64, f64)> {
    nodes
        .iter()
        .map(|&n| {
            let r = run_sharded(model, &JacobiConfig::weak(n, mode), shards);
            (n, r.overall_ms, r.comm_ms)
        })
        .collect()
}

/// Strong-scaling sweep on the sharded engine.
pub fn sharded_strong_series(
    model: JacobiModel,
    nodes: &[usize],
    mode: Mode,
    shards: usize,
) -> Vec<(usize, f64, f64)> {
    nodes
        .iter()
        .map(|&n| {
            let r = run_sharded(model, &JacobiConfig::strong(n, mode), shards);
            (n, r.overall_ms, r.comm_ms)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_weak_point_completes_and_reports() {
        let cfg = JacobiConfig::weak(2, Mode::Device);
        let r = run_sharded(JacobiModel::Charm, &cfg, 2);
        assert!(r.overall_ms > 0.0);
        assert!(r.comm_ms > 0.0);
        // Overall includes the ~12 ms stencil; comm is a fraction of it.
        assert!(r.overall_ms > r.comm_ms, "{r:?}");
    }

    #[test]
    fn shard_count_does_not_change_results() {
        for mode in [Mode::Device, Mode::HostStaging] {
            let cfg = JacobiConfig::weak(4, mode);
            let base = run_sharded(JacobiModel::Ampi, &cfg, 1);
            for shards in [2, 3, 4] {
                let r = run_sharded(JacobiModel::Ampi, &cfg, shards);
                assert_eq!(r, base, "shards={shards} mode={mode:?}");
            }
        }
    }

    #[test]
    fn backends_agree_bitwise() {
        let cfg = JacobiConfig::strong(2, Mode::Device);
        let mk = |backend| {
            run_sharded_full(
                JacobiModel::Ompi,
                &cfg,
                &ShardedOpts {
                    shards: 2,
                    backend,
                    ..Default::default()
                },
            )
        };
        let a = mk(Backend::Calendar);
        let b = mk(Backend::Oracle);
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats.envelopes, b.stats.envelopes);
    }

    #[test]
    fn model_overheads_order_comm_times() {
        let cfg = JacobiConfig::weak(2, Mode::Device);
        let charm = run_sharded(JacobiModel::Charm, &cfg, 2);
        let py = run_sharded(JacobiModel::Charm4py, &cfg, 2);
        assert!(
            py.comm_ms > charm.comm_ms,
            "charm4py {py:?} vs charm {charm:?}"
        );
    }

    #[test]
    fn single_node_run_has_no_envelopes() {
        let cfg = JacobiConfig::weak(1, Mode::Device);
        let r = run_sharded_full(JacobiModel::Charm, &cfg, &ShardedOpts::default());
        assert!(r.completed);
        assert_eq!(r.stats.envelopes, 0);
        assert!(r.result.overall_ms > 0.0);
    }
}
