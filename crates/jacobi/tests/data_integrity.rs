//! End-to-end data integrity of the halo exchange: a small *materialized*
//! domain where every block fills its send faces with a known pattern and
//! every ghost face is verified after the exchange — through the real
//! communication paths (entry methods + machine layer for Charm++, MPI
//! p2p for OpenMPI), not the phantom timing-only buffers the scaling runs
//! use.

use std::sync::Arc;

use rucx_fabric::Topology;
use rucx_gpu::MemRef;
use rucx_jacobi::decomp::{decompose, opposite, Block, Domain};
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MSim, MachineConfig};

/// The pattern a block writes into its face toward `dir`.
fn face_pattern(block: u64, dir: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (block as u8) ^ (dir as u8) ^ (i as u8).wrapping_mul(13))
        .collect()
}

struct FaceBufs {
    send: [Option<MemRef>; 6],
    recv: [Option<MemRef>; 6],
}

fn setup(domain: Domain) -> (MSim, Vec<Block>, Arc<Vec<FaceBufs>>) {
    let topo = Topology::summit(1);
    let mut sim = build_sim(topo.clone(), MachineConfig::default());
    let grid = decompose(domain, 6);
    let mut blocks = vec![];
    let mut bufs = vec![];
    for r in 0..6u64 {
        let b = Block::new(domain, grid, r);
        let mut send = [None; 6];
        let mut recv = [None; 6];
        {
            let m = sim.world_mut();
            for dir in 0..6 {
                if b.neighbors[dir].is_some() {
                    let fb = b.face_bytes(dir);
                    let s = m
                        .gpu
                        .pool
                        .alloc_device(topo.device_of(r as usize), fb, true)
                        .unwrap();
                    m.gpu
                        .pool
                        .write(s, &face_pattern(r, dir, fb as usize))
                        .unwrap();
                    send[dir] = Some(s);
                    recv[dir] = Some(
                        m.gpu
                            .pool
                            .alloc_device(topo.device_of(r as usize), fb, true)
                            .unwrap(),
                    );
                }
            }
        }
        blocks.push(b);
        bufs.push(FaceBufs { send, recv });
    }
    (sim, blocks, Arc::new(bufs))
}

fn verify(sim: &MSim, blocks: &[Block], bufs: &[FaceBufs]) {
    for (r, b) in blocks.iter().enumerate() {
        for dir in 0..6 {
            let Some(nbr) = b.neighbors[dir] else {
                continue;
            };
            // My `dir` ghost face came from the neighbor's opposite face.
            let got = sim
                .world()
                .gpu
                .pool
                .read(bufs[r].recv[dir].unwrap())
                .unwrap();
            let expect = face_pattern(nbr, opposite(dir), got.len());
            assert_eq!(got, expect, "block {r} dir {dir} ghost corrupted");
        }
    }
}

#[test]
fn openmpi_halo_exchange_moves_correct_bytes() {
    let domain = Domain {
        nx: 48,
        ny: 32,
        nz: 16,
    };
    let (mut sim, blocks, bufs) = setup(domain);
    let blocks2 = blocks.clone();
    let bufs2 = bufs.clone();
    rucx_ompi::launch(&mut sim, move |mpi, ctx| {
        let me = mpi.rank();
        let b = &blocks2[me];
        let mut reqs = vec![];
        for dir in 0..6 {
            if let Some(nbr) = b.neighbors[dir] {
                reqs.push(mpi.irecv(
                    ctx,
                    bufs2[me].recv[dir].unwrap(),
                    nbr as i32,
                    opposite(dir) as i32,
                ));
            }
        }
        for dir in 0..6 {
            if let Some(nbr) = b.neighbors[dir] {
                reqs.push(mpi.isend(ctx, bufs2[me].send[dir].unwrap(), nbr as usize, dir as i32));
            }
        }
        mpi.waitall(ctx, reqs);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    verify(&sim, &blocks, &bufs);
}

#[test]
fn charm_halo_exchange_moves_correct_bytes() {
    use rucx_charm::{launch, marshal, ChareRef, Msg};
    use std::sync::atomic::{AtomicU64, Ordering};

    let domain = Domain {
        nx: 48,
        ny: 32,
        nz: 16,
    };
    let (mut sim, blocks, bufs) = setup(domain);
    let blocks2 = blocks.clone();
    let bufs2 = bufs.clone();
    let total: u64 = blocks.iter().map(|b| b.neighbor_count() as u64).sum();
    let received = Arc::new(AtomicU64::new(0));
    let received2 = received.clone();

    struct HaloChare {
        recv: [Option<MemRef>; 6],
    }

    launch(&mut sim, move |pe, ctx| {
        let col = pe.register_collection(6, move |i| i as usize);
        let received3 = received2.clone();
        let ep = pe.register_ep(
            col,
            Some(Box::new(|chare, msg| {
                let c = chare.downcast_mut::<HaloChare>().unwrap();
                let mut r = marshal::Reader(&msg.params);
                let dir = r.u8() as usize;
                vec![c.recv[opposite(dir)].unwrap()]
            })),
            Box::new(move |_c, _msg: &Msg, pe, ctx| {
                if received3.fetch_add(1, Ordering::SeqCst) + 1 == total {
                    pe.exit_all(ctx);
                }
            }),
        );
        let me = pe.index;
        pe.insert_chare(
            col,
            me as u64,
            Box::new(HaloChare {
                recv: bufs2[me].recv,
            }),
        );
        let b = blocks2[me].clone();
        pe.with_chare::<HaloChare, _>(ctx, col, me as u64, |_c, pe, ctx| {
            for dir in 0..6 {
                if let Some(nbr) = b.neighbors[dir] {
                    let mut p = Vec::new();
                    marshal::put_u8(&mut p, dir as u8);
                    pe.send(
                        ctx,
                        ChareRef { col, index: nbr },
                        ep,
                        p,
                        0,
                        vec![bufs2[me].send[dir].unwrap()],
                    );
                }
            }
        });
        pe.run(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    verify(&sim, &blocks, &bufs);
}
