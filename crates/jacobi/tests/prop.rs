//! Property-based tests of the Jacobi3D decomposition: optimality of the
//! chosen block grid, neighbor symmetry, and conservation of cells/faces.
//!
//! Runs on the in-repo harness ([`rucx_compat::check`]); failing cases
//! print a seed replayable with `RUCX_PROP_SEED=<seed>`.

use rucx_compat::check::check;
use rucx_jacobi::decomp::{decompose, opposite, Block, BlockGrid, Domain};

fn factor_triples(n: u64) -> Vec<(u64, u64, u64)> {
    let mut v = vec![];
    for px in 1..=n {
        if !n.is_multiple_of(px) {
            continue;
        }
        let rest = n / px;
        for py in 1..=rest {
            if !rest.is_multiple_of(py) {
                continue;
            }
            v.push((px, py, rest / py));
        }
    }
    v
}

fn surface(d: Domain, (px, py, pz): (u64, u64, u64)) -> u64 {
    (px - 1) * d.ny * d.nz + (py - 1) * d.nx * d.nz + (pz - 1) * d.nx * d.ny
}

/// The chosen decomposition is surface-optimal among all factor triples.
#[test]
fn decompose_is_optimal() {
    check("decompose_is_optimal", |g| {
        let d = Domain {
            nx: 1 << g.u32(6..12),
            ny: 1 << g.u32(6..12),
            nz: 1 << g.u32(6..12),
        };
        let blocks = g.u64(1..64);
        let grid = decompose(d, blocks);
        assert_eq!(grid.blocks(), blocks);
        let got = surface(d, (grid.px, grid.py, grid.pz));
        for t in factor_triples(blocks) {
            assert!(got <= surface(d, t), "triple {t:?} beats chosen {grid:?}");
        }
    });
}

/// Neighbor relations are symmetric with matching face sizes, and the
/// blocks partition the domain exactly.
#[test]
fn blocks_partition_and_neighbors_symmetric() {
    check("blocks_partition_and_neighbors_symmetric", |g| {
        let scale = g.u64(1..5);
        let blocks = g.pick(&[6u64, 12, 24, 48, 96]);
        let d = Domain {
            nx: 768 * scale,
            ny: 768 * scale,
            nz: 768 * scale,
        };
        let grid = decompose(d, blocks);
        let mut total_cells = 0;
        for i in 0..blocks {
            let b = Block::new(d, grid, i);
            total_cells += b.cells();
            for (dir, nb) in b.neighbors.iter().enumerate() {
                if let Some(j) = nb {
                    assert_ne!(*j, i, "self neighbor");
                    let o = Block::new(d, grid, *j);
                    assert_eq!(o.neighbors[opposite(dir)], Some(i));
                    assert_eq!(b.face_bytes(dir), o.face_bytes(opposite(dir)));
                }
            }
        }
        assert_eq!(total_cells, d.cells());
    });
}

/// Total halo traffic (sum of all send faces) equals twice the cut
/// surface (each internal plane is exchanged in both directions).
#[test]
fn halo_traffic_equals_cut_surface() {
    check("halo_traffic_equals_cut_surface", |g| {
        let blocks = g.pick(&[6u64, 12, 24, 48]);
        let d = Domain {
            nx: 1536,
            ny: 1536,
            nz: 1536,
        };
        let grid = decompose(d, blocks);
        let mut traffic_cells = 0u64;
        for i in 0..blocks {
            let b = Block::new(d, grid, i);
            for dir in 0..6 {
                if b.neighbors[dir].is_some() {
                    traffic_cells += b.face_bytes(dir) / 8;
                }
            }
        }
        assert_eq!(traffic_cells, 2 * surface(d, (grid.px, grid.py, grid.pz)));
    });
}

/// Weak scaling grows the domain by exactly the node factor, and block
/// index/coordinate mapping is a bijection.
#[test]
fn weak_scaling_and_indexing() {
    check("weak_scaling_and_indexing", |g| {
        let k = g.u32(0..9);
        let nodes = 1usize << k;
        let d = Domain::weak_scaled(1536, nodes);
        assert_eq!(d.cells(), 1536u64.pow(3) * nodes as u64);
        let grid = decompose(d, nodes as u64 * 6);
        let mut seen = std::collections::HashSet::new();
        for i in 0..grid.blocks() {
            let (x, y, z) = grid.coords(i);
            assert!(x < grid.px && y < grid.py && z < grid.pz);
            assert_eq!(grid.index(x, y, z), i);
            assert!(seen.insert((x, y, z)));
        }
    });
}

#[test]
fn block_grid_rejects_nothing_valid() {
    // Smoke: factor_triples covers the full factorization lattice.
    assert_eq!(factor_triples(6).len(), 9);
    assert!(factor_triples(1) == vec![(1, 1, 1)]);
    let _ = BlockGrid {
        px: 1,
        py: 1,
        pz: 1,
    };
}
