//! UCP tagged-API protocols: eager, rendezvous (RTS/CTS/ATS), and the
//! GPU-aware transports (GDRCopy bounce, CUDA-IPC DMA, pipelined
//! host-staging) — the mechanisms §II-B and §IV-B1 of the paper attribute to
//! UCX.
//!
//! Protocol selection, matching the paper's description of UCX on Summit:
//!
//! | memory   | size                | path |
//! |----------|---------------------|------|
//! | host     | ≤ eager_thresh_host | eager via shm (intra) / IB (inter) |
//! | host     | larger              | rendezvous, CMA (intra) / RDMA get (inter) |
//! | device   | ≤ eager_thresh_device, GDRCopy on | eager via GDRCopy bounce |
//! | device   | larger or GDRCopy off | rendezvous: CUDA IPC (intra), pipelined host-staging (inter) |

use rucx_fabric::{net_transfer, WireKind};
use rucx_gpu::{CopyPath, MemKind, MemRef};
use rucx_sim::time::Duration;

use crate::engine::{self, gpu_direct_ok, rail};
use crate::error::{Protocol, UcpError};
use crate::machine::{Machine, RtsState, SendPayload};
use crate::metrics as m;
use crate::tag::{Tag, TagMask};
use crate::worker::{
    ArrivedBody, ArrivedMsg, Completion, ExpectedRecv, MSched, RecvCompletion, RecvInfo,
};

/// What a send supplies.
pub enum SendBuf {
    /// A buffer in the simulated memory pool (host or device).
    Mem(MemRef),
    /// Runtime-internal host bytes (message envelopes etc.). `wire_size`
    /// may exceed `bytes.len()` to model a payload that is not materialized.
    Inline { bytes: Vec<u8>, wire_size: u64 },
    /// Size-only host payload.
    Phantom { wire_size: u64 },
}

impl SendBuf {
    /// Bytes that travel on the wire.
    pub fn wire_size(&self) -> u64 {
        match self {
            SendBuf::Mem(r) => r.len,
            SendBuf::Inline { wire_size, .. } => *wire_size,
            SendBuf::Phantom { wire_size } => *wire_size,
        }
    }

    /// Convenience constructor for inline bytes whose wire size equals the
    /// byte length.
    pub fn bytes(b: Vec<u8>) -> Self {
        let wire_size = b.len() as u64;
        SendBuf::Inline {
            bytes: b,
            wire_size,
        }
    }
}

/// Where a rendezvous fetch should put the data.
pub enum FetchDst {
    /// Into a pool buffer.
    Mem(MemRef),
    /// Deliver the bytes to the completion (`RecvCompletion::Bytes`).
    Bytes,
}

/// Result of probing the unexpected queue.
pub enum PoppedMsg {
    /// A complete eager message.
    Eager {
        src: usize,
        tag: Tag,
        bytes: Option<Vec<u8>>,
        wire_size: u64,
    },
    /// A rendezvous announcement; fetch with [`rndv_fetch`].
    Rndv {
        src: usize,
        tag: Tag,
        rts_id: u64,
        size: u64,
    },
}

impl PoppedMsg {
    /// Which protocol this message arrived under.
    pub fn protocol(&self) -> Protocol {
        match self {
            PoppedMsg::Eager { .. } => Protocol::Eager,
            PoppedMsg::Rndv { .. } => Protocol::Rndv,
        }
    }

    /// Consume as an eager message: `(src, tag, bytes, wire_size)`.
    /// A rendezvous announcement yields a typed protocol-mismatch error
    /// instead of panicking.
    pub fn into_eager(self) -> Result<(usize, Tag, Option<Vec<u8>>, u64), UcpError> {
        match self {
            PoppedMsg::Eager {
                src,
                tag,
                bytes,
                wire_size,
            } => Ok((src, tag, bytes, wire_size)),
            PoppedMsg::Rndv { src, tag, .. } => Err(UcpError::ProtocolMismatch {
                expected: Protocol::Eager,
                got: Protocol::Rndv,
                src,
                tag,
            }),
        }
    }

    /// Consume as a rendezvous announcement: `(src, tag, rts_id, size)`.
    /// An eager payload yields a typed protocol-mismatch error instead of
    /// panicking.
    pub fn into_rndv(self) -> Result<(usize, Tag, u64, u64), UcpError> {
        match self {
            PoppedMsg::Rndv {
                src,
                tag,
                rts_id,
                size,
            } => Ok((src, tag, rts_id, size)),
            PoppedMsg::Eager { src, tag, .. } => Err(UcpError::ProtocolMismatch {
                expected: Protocol::Rndv,
                got: Protocol::Eager,
                src,
                tag,
            }),
        }
    }
}

/// Memory kind of the payload; `None` when a `Mem` buffer names a handle
/// the pool no longer knows (freed before the send was posted).
fn payload_kind(w: &Machine, buf: &SendBuf, src_proc: usize) -> Option<MemKind> {
    match buf {
        SendBuf::Mem(r) => w.gpu.pool.kind(r.id).ok(),
        SendBuf::Inline { .. } | SendBuf::Phantom { .. } => Some(MemKind::HostPinned {
            node: w.topo.node_of(src_proc),
        }),
    }
}

/// Registration-model charge for the first message on a (src,dst) pair:
/// endpoint wireup latency on a cache miss, zero on a hit. Always zero
/// when the cost model is off (the legacy timing contract).
pub(crate) fn reg_charge_ep(w: &mut Machine, src: usize, dst: usize) -> Duration {
    if !w.ucp.config.reg_model {
        return 0;
    }
    let out = w
        .ucp
        .reg
        .touch_ep((src as u32, dst as u32), w.ucp.config.ep_cache_max);
    w.ucp.counters.add(m::EP_EVICT, out.evicted);
    if out.hit {
        w.ucp.counters.bump(m::EP_HIT);
        0
    } else {
        w.ucp.counters.bump(m::EP_MISS);
        w.ucp.config.ep_setup
    }
}

/// Registration-model charge for handing a pool buffer to the transport:
/// mapping latency on a cache miss, zero on a hit. Pool-backed pre-mapped
/// allocations were registered once at pool-build time and always hit.
pub(crate) fn reg_charge_buf(w: &mut Machine, r: &MemRef) -> Duration {
    if !w.ucp.config.reg_model {
        return 0;
    }
    if w.gpu.pool.is_premapped(r.id).unwrap_or(false) {
        w.ucp.counters.bump(m::REG_HIT);
        w.gpu.counters.bump(rucx_gpu::metrics::POOL_PREMAPPED_HIT);
        return 0;
    }
    // Registration maps whole allocations, not slices.
    let bytes = w.gpu.pool.size(r.id).unwrap_or(r.len);
    let out = w
        .ucp
        .reg
        .register(r.id.0, bytes, w.ucp.config.reg_cache_bytes);
    w.ucp.counters.add(m::REG_EVICT, out.evicted);
    if out.hit {
        w.ucp.counters.bump(m::REG_HIT);
        0
    } else {
        w.ucp.counters.bump(m::REG_MISS);
        w.ucp.config.reg_cost(bytes)
    }
}

/// Drop a buffer's cached registration when the allocation is freed, and
/// account the teardown as an eviction so `miss - evict == live` holds.
/// Call before `MemPool::free` on buffers that traveled through UCP.
pub fn reg_invalidate(w: &mut Machine, id: rucx_gpu::MemId) {
    if w.ucp.reg.invalidate(id.0) {
        w.ucp.counters.bump(m::REG_EVICT);
    }
}

/// Reject a send posted against a stale buffer handle: count it, queue a
/// typed error at the sender's worker, and complete the operation with
/// nothing sent — a user error must not take down the whole simulation.
pub(crate) fn reject_bad_handle(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    op: &'static str,
    done: Completion,
) {
    w.ucp.counters.bump(m::BAD_HANDLE);
    crate::reliable::push_error(w, s, src, crate::UcpError::InvalidHandle { op, proc: src });
    complete(w, s, src, done);
}

/// Reject a receive whose buffer handle is stale (freed before or during
/// the transfer): count it, queue a typed error at the receiver's worker,
/// and complete the receive with a zero-size status so no waiter hangs.
fn reject_bad_recv(
    w: &mut Machine,
    s: &mut MSched,
    proc: usize,
    op: &'static str,
    src: usize,
    tag: Tag,
    done: RecvCompletion,
) {
    w.ucp.counters.bump(m::BAD_HANDLE);
    crate::reliable::push_error(w, s, proc, UcpError::InvalidHandle { op, proc });
    let info = RecvInfo {
        src,
        tag,
        size: 0,
        truncated: false,
    };
    complete_recv(w, s, proc, done, None, info);
}

/// Run a completion action for process `proc` and wake its worker.
pub(crate) fn complete(w: &mut Machine, s: &mut MSched, proc: usize, c: Completion) {
    match c {
        Completion::None => {}
        Completion::Trigger(t) => s.fire(t),
        Completion::Callback(f) => f(w, s),
    }
    let n = w.ucp.workers[proc].notify;
    s.notify(n);
}

fn complete_recv(
    w: &mut Machine,
    s: &mut MSched,
    proc: usize,
    c: RecvCompletion,
    bytes: Option<Vec<u8>>,
    info: RecvInfo,
) {
    match c {
        RecvCompletion::Trigger(t) => s.fire(t),
        RecvCompletion::Callback(f) => f(w, s, info),
        RecvCompletion::Bytes(f) => f(w, s, bytes, info),
    }
    let n = w.ucp.workers[proc].notify;
    s.notify(n);
}

/// Schedule delivery of a tagged wire message (eager payload or RTS) from
/// `src` to `dst`, `local_delay` after now, and return nothing — arrival is
/// handled by the matching engine.
#[allow(clippy::too_many_arguments)]
fn send_wire(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    wire_size: u64,
    local_delay: Duration,
    tag: Tag,
    body: ArrivedBody,
) {
    let now = s.now();
    if w.topo.same_node(src, dst) {
        // Intra-node shared memory is a reliable medium: never tracked.
        let msg = ArrivedMsg { tag, src, body };
        let arrival = shm_occupy(w, src, dst, now + local_delay, wire_size);
        s.schedule_at(arrival, move |w, s| deliver(w, s, dst, msg));
    } else if w.faults.enabled() {
        // The single branch the clean inter-node path pays: under a loaded
        // fault spec, envelopes go through the reliability protocol.
        crate::reliable::send_tracked(w, s, src, dst, wire_size, local_delay, tag, body);
    } else {
        let msg = ArrivedMsg { tag, src, body };
        let src_port = (w.topo.node_of(src), rail(w, src));
        let dst_port = (w.topo.node_of(dst), rail(w, dst));
        s.schedule_at(now + local_delay, move |w, s| {
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                wire_size,
                WireKind::Host,
                move |w, s| deliver(w, s, dst, msg),
            );
        });
    }
}

/// Occupy the shared-memory channel between `src` and `dst` for a transfer
/// of `size` bytes becoming ready at `ready`; returns the arrival time.
/// The channel is a serial resource (a CPU-driven copy), so back-to-back
/// transfers between a pair queue behind each other — this bounds windowed
/// intra-node throughput to the CMA bandwidth and preserves ordering.
pub(crate) fn shm_occupy(
    w: &mut Machine,
    src: usize,
    dst: usize,
    ready: rucx_sim::time::Time,
    size: u64,
) -> rucx_sim::time::Time {
    let lat = w.ucp.config.shm_latency;
    let gbps = w.ucp.config.shm_gbps;
    let key = (src as u32, dst as u32);
    let busy = w.ucp.pair_busy.get(&key).copied().unwrap_or(0);
    let start = (ready + lat).max(busy);
    let arrival = start + rucx_sim::time::transfer_time(size, gbps);
    w.ucp.pair_busy.insert(key, arrival);
    arrival
}

/// Wire transport for active messages: same paths and costs as tagged
/// traffic, but arrival dispatches the registered handler instead of the
/// matching engine. The sender completes locally after `local_delay`
/// (eager semantics; rendezvous senders complete via the ATS instead).
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver_am_wire(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    id: crate::am::AmId,
    header: Vec<u8>,
    wire: crate::am::AmWire,
    wire_size: u64,
    local_delay: Duration,
    sender_done: Completion,
) {
    let now = s.now();
    let deliver_it = move |w: &mut Machine, s: &mut MSched| {
        let msg = crate::am::AmMsg {
            src,
            header,
            payload: wire.into_payload(),
        };
        crate::am::dispatch_am(w, s, dst, id, msg);
    };
    if w.topo.same_node(src, dst) {
        let arrival = shm_occupy(w, src, dst, now + local_delay, wire_size);
        s.schedule_at(arrival, deliver_it);
    } else {
        let src_port = (w.topo.node_of(src), rail(w, src));
        let dst_port = (w.topo.node_of(dst), rail(w, dst));
        s.schedule_at(now + local_delay, move |w, s| {
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                wire_size,
                WireKind::Host,
                deliver_it,
            );
        });
    }
    if !matches!(sender_done, Completion::None) {
        s.schedule_at(now + local_delay, move |w, s| {
            complete(w, s, src, sender_done)
        });
    }
}

/// Schedule a non-matched control message (ATS) and run `f` at arrival.
fn send_control<F>(w: &mut Machine, s: &mut MSched, src: usize, dst: usize, size: u64, f: F)
where
    F: FnOnce(&mut Machine, &mut MSched) + Send + 'static,
{
    let now = s.now();
    if w.topo.same_node(src, dst) {
        let arrival = now + w.ucp.config.shm_time(size);
        s.schedule_at(arrival, f);
    } else {
        let src_port = (w.topo.node_of(src), rail(w, src));
        let dst_port = (w.topo.node_of(dst), rail(w, dst));
        net_transfer(w, s, src_port, dst_port, size, WireKind::Host, f);
    }
}

/// `ucp_tag_send_nb`: non-blocking tagged send from `src` to `dst`.
///
/// CPU call cost is modeled by the calling layer
/// (`advance(ucp.config.cpu_call)`); this function models everything from
/// protocol selection onward.
pub fn tag_send_nb(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    buf: SendBuf,
    tag: Tag,
    done: Completion,
) {
    let cfg_proto = w.ucp.config.proto_overhead;
    let size = buf.wire_size();
    let Some(kind) = payload_kind(w, &buf, src) else {
        return reject_bad_handle(w, s, src, "tag_send_nb", done);
    };
    let plan = engine::plan_send(w, s, src, dst, kind, size);
    // First touch of the endpoint / the source buffer pays wireup and
    // registration latency (zero when `reg_model` is off or on cache hits).
    let reg_delay = reg_charge_ep(w, src, dst)
        + match &buf {
            SendBuf::Mem(r) => reg_charge_buf(w, r),
            _ => 0,
        };

    if plan.protocol == Protocol::Eager {
        // Sender-side staging: GDRCopy read for device payloads.
        let local_delay = cfg_proto
            + reg_delay
            + if kind.is_device() {
                w.ucp.counters.bump(m::EAGER_GDRCOPY_READ);
                w.ucp.config.gdrcopy_cost(size)
            } else {
                0
            };
        let bytes = match &buf {
            SendBuf::Mem(r) => {
                if w.gpu.pool.is_materialized(r.id).unwrap_or(false) {
                    w.gpu.pool.read(*r).ok()
                } else {
                    None
                }
            }
            SendBuf::Inline { bytes, .. } => Some(bytes.clone()),
            SendBuf::Phantom { .. } => None,
        };
        w.ucp.counters.bump(m::EAGER);
        send_wire(
            w,
            s,
            src,
            dst,
            size,
            local_delay,
            tag,
            ArrivedBody::Eager {
                bytes,
                wire_size: size,
            },
        );
        // Eager sends complete locally once the payload is staged out.
        let t_done = s.now() + local_delay;
        s.schedule_at(t_done, move |w, s| complete(w, s, src, done));
    } else {
        let payload = match buf {
            SendBuf::Mem(r) => SendPayload::Mem(r),
            SendBuf::Inline { bytes, .. } => SendPayload::Bytes(bytes),
            SendBuf::Phantom { .. } => SendPayload::Phantom,
        };
        let rts_id = w.ucp.next_rts;
        w.ucp.next_rts += 1;
        w.ucp.rts_table.insert(
            rts_id,
            RtsState {
                src_proc: src,
                payload,
                wire_size: size,
                sender_done: done,
                sent_at: s.now(),
            },
        );
        w.ucp.counters.bump(m::RNDV);
        s.trace_instant("ucp.rndv.rts", src as u32, rts_id, size);
        let rts_size = w.ucp.config.rts_size;
        send_wire(
            w,
            s,
            src,
            dst,
            rts_size,
            cfg_proto + reg_delay,
            tag,
            ArrivedBody::Rts { rts_id, size },
        );
    }
}

/// Arrival of a tagged wire message at `dst`'s worker: match a posted
/// receive or park in the unexpected queue.
pub(crate) fn deliver(w: &mut Machine, s: &mut MSched, dst: usize, msg: ArrivedMsg) {
    let worker = w.ucp.worker_mut(dst);
    if let Some(exp) = worker
        .find_expected(msg.tag)
        .and_then(|i| worker.expected.remove(i))
    {
        process_match(w, s, dst, exp, msg);
    } else {
        worker.unexpected.push_back(msg);
        let n = worker.notify;
        w.ucp.counters.bump(m::UNEXPECTED);
        s.notify(n);
    }
}

/// A receive met its message: run the data path.
fn process_match(
    w: &mut Machine,
    s: &mut MSched,
    dst_proc: usize,
    exp: ExpectedRecv,
    msg: ArrivedMsg,
) {
    match msg.body {
        ArrivedBody::Eager { bytes, wire_size } => {
            let Ok(dst_kind) = w.gpu.pool.kind(exp.buf.id) else {
                // The receive was posted against a handle the pool no
                // longer knows (freed while the message was in flight).
                return reject_bad_recv(w, s, dst_proc, "eager recv", msg.src, msg.tag, exp.done);
            };
            let delay = if let MemKind::Device(dev) = dst_kind {
                if gpu_direct_ok(w, s, dev, dst_proc, wire_size) {
                    w.ucp.counters.bump(m::EAGER_GDRCOPY_WRITE);
                    w.ucp.config.gdrcopy_cost(wire_size)
                } else {
                    // GDRCopy window gone on the receiver: land in pinned
                    // host memory, then one staged CPU-GPU leg.
                    w.gpu.counters.bump(rucx_gpu::metrics::PATH_HOST_STAGED);
                    w.ucp.config.eager_copy_cost(wire_size)
                        + w.gpu.params.wire_time(CopyPath::HostPinnedLink, wire_size)
                }
            } else {
                w.ucp.config.eager_copy_cost(wire_size)
            };
            // Receive-side buffer registration (zero unless `reg_model`).
            let delay = delay + reg_charge_buf(w, &exp.buf);
            // The message is larger than the posted buffer: deliver the
            // prefix (the wire already carried the full payload) but flag
            // the truncation so the request surfaces an error status
            // instead of silently succeeding.
            let truncated = wire_size > exp.buf.len;
            if truncated {
                w.ucp.counters.bump(m::TRUNCATED);
            }
            let info = RecvInfo {
                src: msg.src,
                tag: msg.tag,
                size: wire_size,
                truncated,
            };
            s.trace_span_in("ucp.eager", delay, dst_proc as u32, 0, wire_size);
            let buf = exp.buf;
            let done = exp.done;
            s.schedule_in(delay, move |w, s| {
                if let Some(b) = &bytes {
                    let n = (buf.len as usize).min(b.len());
                    if w.gpu.pool.write(buf.slice(0, n as u64), &b[..n]).is_err() {
                        // Buffer freed between match and copy-out.
                        return reject_bad_recv(
                            w,
                            s,
                            dst_proc,
                            "eager copy-out",
                            info.src,
                            info.tag,
                            done,
                        );
                    }
                }
                complete_recv(w, s, dst_proc, done, bytes, info);
            });
        }
        ArrivedBody::Rts { rts_id, .. } => {
            // A missing RTS entry (e.g. the reliability layer already gave
            // up on it) is surfaced by start_fetch as a completed-with-error
            // receive plus a worker error record; nothing further to do.
            let _ = start_fetch(
                w,
                s,
                dst_proc,
                msg.tag,
                rts_id,
                FetchDst::Mem(exp.buf),
                exp.done,
            );
        }
    }
}

/// `ucp_tag_recv_nb`: post a receive into `buf`.
pub fn tag_recv_nb(
    w: &mut Machine,
    s: &mut MSched,
    proc: usize,
    buf: MemRef,
    tag: Tag,
    mask: TagMask,
    done: RecvCompletion,
) {
    let worker = w.ucp.worker_mut(proc);
    if let Some(msg) = worker
        .find_unexpected(tag, mask)
        .and_then(|i| worker.unexpected.remove(i))
    {
        let exp = ExpectedRecv {
            tag,
            mask,
            buf,
            done,
        };
        process_match(w, s, proc, exp, msg);
    } else {
        worker.expected.push_back(ExpectedRecv {
            tag,
            mask,
            buf,
            done,
        });
    }
}

/// Probe-and-remove the first unexpected message matching `(tag, mask)` —
/// how the Converse machine layer ingests host-side messages without
/// pre-posted buffers.
pub fn probe_pop(w: &mut Machine, proc: usize, tag: Tag, mask: TagMask) -> Option<PoppedMsg> {
    let worker = w.ucp.worker_mut(proc);
    let i = worker.find_unexpected(tag, mask)?;
    let msg = worker.unexpected.remove(i)?;
    Some(match msg.body {
        ArrivedBody::Eager { bytes, wire_size } => PoppedMsg::Eager {
            src: msg.src,
            tag: msg.tag,
            bytes,
            wire_size,
        },
        ArrivedBody::Rts { rts_id, size } => PoppedMsg::Rndv {
            src: msg.src,
            tag: msg.tag,
            rts_id,
            size,
        },
    })
}

/// Deliver locally-produced bytes to a worker as if an eager message with
/// `tag` had just arrived. Used by runtime layers that complete a
/// rendezvous fetch asynchronously and re-inject the result so their
/// scheduler keeps processing other messages meanwhile.
pub fn inject_local(
    w: &mut Machine,
    s: &mut MSched,
    proc: usize,
    src: usize,
    tag: Tag,
    bytes: Option<Vec<u8>>,
    wire_size: u64,
) {
    deliver(
        w,
        s,
        proc,
        ArrivedMsg {
            tag,
            src,
            body: ArrivedBody::Eager { bytes, wire_size },
        },
    );
}

/// Fetch the data of a rendezvous previously surfaced by [`probe_pop`].
///
/// An unknown `rts_id` (fetched twice, never announced, or already retired
/// by the reliability layer giving up on its RTS) returns a typed error.
/// `done` still completes — immediately, with a zero-size [`RecvInfo`] —
/// so no waiter hangs, and the error is also queued at `proc`'s worker.
pub fn rndv_fetch(
    w: &mut Machine,
    s: &mut MSched,
    proc: usize,
    tag: Tag,
    rts_id: u64,
    dst: FetchDst,
    done: RecvCompletion,
) -> Result<(), UcpError> {
    start_fetch(w, s, proc, tag, rts_id, dst, done)
}

/// The rendezvous data path. Runs on the receiver (`recv_proc`).
fn start_fetch(
    w: &mut Machine,
    s: &mut MSched,
    recv_proc: usize,
    tag: Tag,
    rts_id: u64,
    dst: FetchDst,
    done: RecvCompletion,
) -> Result<(), UcpError> {
    let Some(rts) = w.ucp.rts_table.remove(&rts_id) else {
        // Fail the receive visibly instead of panicking or hanging: the
        // completion fires with a zero-size status and the typed error is
        // queued at the receiver's worker.
        let err = UcpError::UnknownRendezvous { rts_id };
        crate::reliable::push_error(w, s, recv_proc, err.clone());
        let info = RecvInfo {
            src: recv_proc,
            tag,
            size: 0,
            truncated: false,
        };
        complete_recv(w, s, recv_proc, done, None, info);
        return Err(err);
    };
    let src_proc = rts.src_proc;
    let size = rts.wire_size;
    let intra = w.topo.same_node(src_proc, recv_proc);
    let src_kind = match &rts.payload {
        SendPayload::Mem(r) => match w.gpu.pool.kind(r.id) {
            Ok(k) => k,
            Err(_) => {
                // The sender freed its source buffer while the rendezvous
                // was in flight: the data can never be fetched, so fail
                // both sides with a typed error. The receive completes
                // with a zero-size status; the sender's request completes
                // too, since nothing else ever will.
                let err = UcpError::InvalidHandle {
                    op: "rndv src",
                    proc: src_proc,
                };
                w.ucp.counters.bump(m::BAD_HANDLE);
                crate::reliable::push_error(w, s, recv_proc, err.clone());
                crate::reliable::push_error(w, s, src_proc, err.clone());
                let info = RecvInfo {
                    src: src_proc,
                    tag,
                    size: 0,
                    truncated: false,
                };
                complete_recv(w, s, recv_proc, done, None, info);
                complete(w, s, src_proc, rts.sender_done);
                return Err(err);
            }
        },
        _ => MemKind::HostPinned {
            node: w.topo.node_of(src_proc),
        },
    };
    let dst_kind = match &dst {
        FetchDst::Mem(r) => match w.gpu.pool.kind(r.id) {
            Ok(k) => k,
            Err(_) => {
                // The receiver's destination handle is stale: fail the
                // receive with a typed error, and still ack the sender so
                // its request completes (the RTS was consumed here).
                let err = UcpError::InvalidHandle {
                    op: "rndv dst",
                    proc: recv_proc,
                };
                w.ucp.counters.bump(m::BAD_HANDLE);
                crate::reliable::push_error(w, s, recv_proc, err.clone());
                let info = RecvInfo {
                    src: src_proc,
                    tag,
                    size: 0,
                    truncated: false,
                };
                complete_recv(w, s, recv_proc, done, None, info);
                let sender_done = rts.sender_done;
                if !intra && w.faults.enabled() {
                    crate::reliable::send_tracked_ats(
                        w,
                        s,
                        recv_proc,
                        src_proc,
                        rts_id,
                        sender_done,
                    );
                } else {
                    let ats = w.ucp.config.ats_size;
                    send_control(w, s, recv_proc, src_proc, ats, move |w, s| {
                        complete(w, s, src_proc, sender_done);
                    });
                }
                return Err(err);
            }
        },
        FetchDst::Bytes => MemKind::HostPinned {
            node: w.topo.node_of(recv_proc),
        },
    };
    let truncated = match &dst {
        FetchDst::Mem(r) => size > r.len,
        FetchDst::Bytes => false,
    };
    if truncated {
        w.ucp.counters.bump(m::TRUNCATED);
    }
    let info = RecvInfo {
        src: src_proc,
        tag,
        size,
        truncated,
    };
    s.trace_instant("ucp.rndv.cts", recv_proc as u32, rts_id, size);
    // Receive-side buffer registration: the fetch cannot start until the
    // destination is mapped. Zero (and the legacy direct dispatch, with no
    // extra event) unless `reg_model` charged a miss.
    let reg_delay = match &dst {
        FetchDst::Mem(r) => reg_charge_buf(w, r),
        FetchDst::Bytes => 0,
    };
    let sender_done = rts.sender_done;
    let payload = rts.payload;
    let sent_at = rts.sent_at;
    let device_class = src_kind.is_device();

    // After the data is in place: deliver bytes / run receive completion,
    // then ack the sender (ATS) so its request completes. Under a loaded
    // fault spec the inter-node ATS is itself a tracked envelope.
    let finalize = move |w: &mut Machine, s: &mut MSched| {
        engine::observe_rndv(w, s, src_proc, recv_proc, device_class, size, sent_at);
        let bytes = match finalize_data(w, &payload, &dst) {
            Ok(b) => b,
            Err(_) => {
                // A buffer was freed while the fetch was in flight:
                // surface a typed error; the receive still completes
                // (with no bytes) and the sender is still acked below.
                w.ucp.counters.bump(m::BAD_HANDLE);
                crate::reliable::push_error(
                    w,
                    s,
                    recv_proc,
                    UcpError::InvalidHandle {
                        op: "rndv finalize",
                        proc: recv_proc,
                    },
                );
                None
            }
        };
        complete_recv(w, s, recv_proc, done, bytes, info);
        if !intra && w.faults.enabled() {
            crate::reliable::send_tracked_ats(w, s, recv_proc, src_proc, rts_id, sender_done);
        } else {
            let ats = w.ucp.config.ats_size;
            send_control(w, s, recv_proc, src_proc, ats, move |w, s| {
                complete(w, s, src_proc, sender_done);
            });
        }
    };

    if reg_delay > 0 {
        s.schedule_in(reg_delay, move |w, s| {
            if intra {
                engine::fetch_intra(
                    w, s, src_kind, dst_kind, size, recv_proc, src_proc, finalize,
                );
            } else {
                engine::fetch_inter(
                    w, s, src_kind, dst_kind, size, recv_proc, src_proc, finalize,
                );
            }
        });
    } else if intra {
        engine::fetch_intra(
            w, s, src_kind, dst_kind, size, recv_proc, src_proc, finalize,
        );
    } else {
        engine::fetch_inter(
            w, s, src_kind, dst_kind, size, recv_proc, src_proc, finalize,
        );
    }
    Ok(())
}

/// Move the actual bytes once the timing chain has completed, and return
/// bytes for `FetchDst::Bytes` completions. A stale handle (either side
/// freed mid-fetch) surfaces as an error for the caller to report.
fn finalize_data(
    w: &mut Machine,
    payload: &SendPayload,
    dst: &FetchDst,
) -> Result<Option<Vec<u8>>, rucx_gpu::MemError> {
    match (payload, dst) {
        (SendPayload::Mem(src), FetchDst::Mem(d)) => {
            let n = src.len.min(d.len);
            w.gpu.pool.copy(src.slice(0, n), d.slice(0, n))?;
            Ok(None)
        }
        (SendPayload::Mem(src), FetchDst::Bytes) => {
            if w.gpu.pool.is_materialized(src.id).unwrap_or(false) {
                Ok(Some(w.gpu.pool.read(*src)?))
            } else {
                Ok(None)
            }
        }
        (SendPayload::Bytes(b), FetchDst::Mem(d)) => {
            let n = (d.len as usize).min(b.len());
            w.gpu.pool.write(d.slice(0, n as u64), &b[..n])?;
            Ok(None)
        }
        (SendPayload::Bytes(b), FetchDst::Bytes) => Ok(Some(b.clone())),
        (SendPayload::Phantom, _) => Ok(None),
    }
}
