//! The UCP reliability protocol: per-endpoint tracking of inter-node
//! envelopes with virtual-time timeouts, bounded retransmission with
//! exponential backoff and seeded jitter, and duplicate suppression via
//! per-(src, dst) sequence numbers.
//!
//! Scope. Only *envelopes* — eager payloads, rendezvous RTS announcements,
//! and rendezvous ATS acks — are tracked, and only between nodes, and only
//! when a [`rucx_fault::FaultSpec`] is loaded: on clean runs the send path
//! pays exactly one `enabled()` branch and the timing is byte-identical to
//! the unprotected stack. Intra-node shared memory is a reliable medium, and
//! the rendezvous bulk-data paths (RDMA get, pipelined staging) ride the
//! transport-level reliability real IB HCAs provide, so neither is subject
//! to the envelope lottery (bandwidth degradation from the fault spec still
//! applies to them in the fabric).
//!
//! Protocol. Each tracked envelope gets a per-(src, dst) sequence number
//! and a machine-global id. Transmission runs the fault lottery
//! ([`rucx_fault::FaultState::wire_fault`]) and arms a retransmission timer
//! for `rto(attempt)`; arrival always (re-)acks — acks themselves travel
//! unreliably — then delivers exactly once, suppressing duplicates by
//! sequence number. A timer firing with the envelope still unacked
//! retransmits with backoff; after [`crate::UcpConfig::max_retries`]
//! retransmissions the sender gives up: the envelope's operation is
//! completed (never left hanging) and a typed
//! [`UcpError::EndpointTimeout`] is queued at the owning worker.
//!
//! Determinism. All timers live in virtual time; jitter comes from a
//! dedicated [`SimRng`] stream derived from the fault-spec seed, so a chaos
//! run replays byte-identically.

use std::collections::{BTreeMap, HashMap};

use rucx_fabric::{net_transfer, WireKind};
use rucx_fault::{metrics as fm, WireFault};
use rucx_sim::time::{Duration, Time};
use rucx_sim::SimRng;

use crate::engine::rail;
use crate::error::UcpError;
use crate::machine::Machine;
use crate::metrics as m;
use crate::proto::{complete, deliver};
use crate::tag::Tag;
use crate::worker::{ArrivedBody, ArrivedMsg, Completion, MSched};

/// What a tracked envelope carries.
#[derive(Clone)]
pub(crate) enum TrackedBody {
    /// Tag-matched traffic: an eager payload or a rendezvous RTS.
    Tagged(ArrivedBody),
    /// Rendezvous ATS: completes the (remote) rendezvous sender whose
    /// completion is parked in [`ReliableState::ats_table`].
    Ats { rts_id: u64 },
}

/// Sender-side state of one tracked envelope.
pub(crate) struct PendingSend {
    pub src: usize,
    pub dst: usize,
    pub tag: Tag,
    pub wire_size: u64,
    pub seq: u64,
    /// Transmissions so far (1 = original only).
    pub attempts: u32,
    /// When the *original* transmission hit the wire. Only acks of
    /// never-retransmitted envelopes yield RTT samples (Karn's rule), so
    /// this never needs re-stamping.
    pub sent_at: Time,
    /// When the envelope's very first transmission hit the wire — unlike
    /// `sent_at` this survives a health-layer park/release cycle, so the
    /// `elapsed` stamped on a give-up error measures the whole ordeal.
    pub first_sent: Time,
    /// Times the health layer has parked this envelope on a Dead endpoint
    /// (bounded by [`crate::UcpConfig::heal_retries`]).
    pub parks: u32,
    pub body: TrackedBody,
    /// Model-layer context stamped at send time (routes give-up errors to
    /// e.g. the owning chare); 0 when unset.
    pub ctx: u64,
}

/// Receiver-side delivery state for one directed (src, dst) pair: the
/// contiguous delivered prefix plus envelopes that arrived ahead of it.
/// UCX endpoints are non-overtaking — two same-tag sends from one rank
/// must match posted receives in send order — so an envelope the fabric
/// reordered (a delay fault overtaken by a later send) is stashed until
/// the gap below it fills, and duplicates are suppressed by sequence
/// number. Memory stays proportional to reordering depth.
#[derive(Default)]
struct SeqSeen {
    upto: u64,
    ahead: BTreeMap<u64, (Tag, TrackedBody)>,
}

impl SeqSeen {
    /// Record the arrival of `seq` (sequences start at 1). `None` for a
    /// duplicate; otherwise the now-contiguous run of envelopes due for
    /// delivery in sequence order (empty when `seq` arrived ahead of a
    /// gap and must wait).
    fn arrive(&mut self, seq: u64, tag: Tag, body: TrackedBody) -> Option<Vec<(Tag, TrackedBody)>> {
        if seq <= self.upto || self.ahead.contains_key(&seq) {
            return None; // duplicate
        }
        self.ahead.insert(seq, (tag, body));
        let mut due = Vec::new();
        while let Some(e) = self.ahead.remove(&(self.upto + 1)) {
            self.upto += 1;
            due.push(e);
        }
        Some(due)
    }
}

/// Machine-wide reliability state. Every map is keyed, never iterated, so
/// `HashMap` ordering cannot leak into the schedule.
pub(crate) struct ReliableState {
    /// Backoff-jitter stream, derived from the fault-spec seed but salted so
    /// it does not correlate with the injection lottery.
    rng: SimRng,
    next_id: u64,
    next_seq: HashMap<(u32, u32), u64>,
    seen: HashMap<(u32, u32), SeqSeen>,
    inflight: HashMap<u64, PendingSend>,
    /// Rendezvous-sender completions parked until the tracked ATS arrives.
    ats_table: HashMap<u64, Completion>,
}

impl ReliableState {
    pub(crate) fn new(seed: u64) -> Self {
        ReliableState {
            rng: SimRng::new(seed ^ 0x9E37_79B9_7F4A_7C15),
            next_id: 1,
            next_seq: HashMap::new(),
            seen: HashMap::new(),
            inflight: HashMap::new(),
            ats_table: HashMap::new(),
        }
    }

    /// Tracked envelopes not yet acknowledged or abandoned. Zero at the end
    /// of every run that recovered all faults (leak check for chaos tests).
    pub(crate) fn inflight_tracked(&self) -> usize {
        self.inflight.len() + self.ats_table.len()
    }

    /// Mutable access to one tracked envelope (health-layer park/release).
    pub(crate) fn inflight_mut(&mut self, id: u64) -> Option<&mut PendingSend> {
        self.inflight.get_mut(&id)
    }
}

/// Queue an asynchronous error at `proc`'s worker and wake it.
pub(crate) fn push_error(w: &mut Machine, s: &mut MSched, proc: usize, err: UcpError) {
    let worker = w.ucp.worker_mut(proc);
    worker.errors.push_back(err);
    let n = worker.notify;
    s.notify(n);
}

/// Entry point from `send_wire` for inter-node tagged envelopes under a
/// loaded fault spec. `local_delay` models sender-side staging, after which
/// the first transmission (and its timer) starts.
pub(crate) fn send_tracked(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    wire_size: u64,
    local_delay: Duration,
    tag: Tag,
    body: ArrivedBody,
) {
    let ctx = std::mem::take(&mut w.ucp.send_ctx);
    enqueue(
        w,
        s,
        src,
        dst,
        wire_size,
        local_delay,
        tag,
        TrackedBody::Tagged(body),
        ctx,
    );
}

/// Entry point from the rendezvous finalizer: park the remote sender's
/// completion and send the ATS as a tracked envelope.
pub(crate) fn send_tracked_ats(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    rts_id: u64,
    sender_done: Completion,
) {
    let size = w.ucp.config.ack_size.max(w.ucp.config.ats_size);
    w.ucp.reliable.ats_table.insert(rts_id, sender_done);
    enqueue(w, s, src, dst, size, 0, 0, TrackedBody::Ats { rts_id }, 0);
}

#[allow(clippy::too_many_arguments)]
fn enqueue(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    wire_size: u64,
    local_delay: Duration,
    tag: Tag,
    body: TrackedBody,
    ctx: u64,
) {
    let r = &mut w.ucp.reliable;
    let id = r.next_id;
    r.next_id += 1;
    let seq_slot = r.next_seq.entry((src as u32, dst as u32)).or_insert(1);
    let seq = *seq_slot;
    *seq_slot += 1;
    r.inflight.insert(
        id,
        PendingSend {
            src,
            dst,
            tag,
            wire_size,
            seq,
            attempts: 1,
            sent_at: 0,
            first_sent: 0,
            parks: 0,
            body,
            ctx,
        },
    );
    if local_delay == 0 {
        transmit(w, s, id);
    } else {
        s.schedule_in(local_delay, move |w, s| transmit(w, s, id));
    }
}

/// One transmission attempt: run the fault lottery, put the envelope on the
/// wire accordingly, and arm the retransmission timer for this attempt.
pub(crate) fn transmit(w: &mut Machine, s: &mut MSched, id: u64) {
    let now = s.now();
    let Some(p) = w.ucp.reliable.inflight.get_mut(&id) else {
        return; // acked between scheduling and execution
    };
    if p.attempts == 1 {
        p.sent_at = now;
    }
    if p.first_sent == 0 {
        p.first_sent = now;
    }
    let (src, dst, seq, tag, wire_size, attempt) =
        (p.src, p.dst, p.seq, p.tag, p.wire_size, p.attempts);
    let body = p.body.clone();
    let rto = rto_for(w, wire_size, attempt);
    s.schedule_in(rto, move |w, s| on_timeout(w, s, id, attempt));
    let (src_node, dst_node) = (w.topo.node_of(src), w.topo.node_of(dst));
    let src_port = (src_node, rail(w, src));
    let dst_port = (dst_node, rail(w, dst));
    match w.faults.wire_fault(src_node, dst_node, now) {
        WireFault::None => {
            net_transfer(w, s, src_port, dst_port, wire_size, WireKind::Host, {
                move |w, s| arrive(w, s, id, src, dst, seq, tag, body)
            });
        }
        WireFault::Drop => {
            // Lost in the fabric: the TX port is still occupied, nothing
            // arrives; the timer recovers it.
            w.ucp.counters.bump(fm::DROP);
            s.trace_instant("fault.drop", src as u32, id, wire_size);
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                wire_size,
                WireKind::Host,
                |_, _| {},
            );
        }
        WireFault::Corrupt => {
            // Delivered, but the receiver's checksum rejects it: observable
            // at arrival (unlike a drop), recovered by retransmission.
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                wire_size,
                WireKind::Host,
                move |w, s| {
                    w.ucp.counters.bump(fm::CORRUPT);
                    s.trace_instant("fault.corrupt", dst as u32, id, wire_size);
                },
            );
        }
        WireFault::Duplicate => {
            w.ucp.counters.bump(fm::DUPLICATE);
            s.trace_instant("fault.duplicate", src as u32, id, wire_size);
            let twin = body.clone();
            net_transfer(w, s, src_port, dst_port, wire_size, WireKind::Host, {
                move |w, s| arrive(w, s, id, src, dst, seq, tag, body)
            });
            net_transfer(w, s, src_port, dst_port, wire_size, WireKind::Host, {
                move |w, s| arrive(w, s, id, src, dst, seq, tag, twin)
            });
        }
        WireFault::Delay(d) => {
            w.ucp.counters.bump(fm::DELAY);
            s.trace_instant("fault.delay", src as u32, id, d);
            s.schedule_in(d, move |w, s| {
                net_transfer(w, s, src_port, dst_port, wire_size, WireKind::Host, {
                    move |w, s| arrive(w, s, id, src, dst, seq, tag, body)
                });
            });
        }
    }
}

/// Retransmission timeout for transmission number `attempt` (1-based):
/// `(rto_base + 2·wire-RTT-estimate) · backoff^(attempt-1) · (1 + jitter)`,
/// clamped to `[rto_min, rto_max]`.
fn rto_for(w: &mut Machine, wire_size: u64, attempt: u32) -> Duration {
    let rtt_est = w.net.params.wire_time(wire_size, WireKind::Host)
        + w.net
            .params
            .wire_time(w.ucp.config.ack_size, WireKind::Host);
    let cfg = &w.ucp.config;
    let base = (cfg.rto_base + 2 * rtt_est) as f64;
    let (backoff, jitter, floor, cap) = (cfg.rto_backoff, cfg.rto_jitter, cfg.rto_min, cfg.rto_max);
    let scaled = base * backoff.powi(attempt.saturating_sub(1) as i32);
    let jittered = scaled * (1.0 + jitter * w.ucp.reliable.rng.next_f64());
    (jittered as Duration).clamp(floor.min(cap), cap)
}

/// A tracked envelope reached `dst`: always (re-)ack — the sender may be
/// retransmitting because a previous ack was lost — then deliver exactly
/// once per sequence number and in sequence order (non-overtaking, as on
/// a real UCX endpoint). An envelope ahead of a gap waits in the stash;
/// if the gap's envelope ultimately gives up at the sender, its
/// successors stay undelivered and the wedge is attributed to the typed
/// give-up error, never to silent reordering.
fn arrive(
    w: &mut Machine,
    s: &mut MSched,
    id: u64,
    src: usize,
    dst: usize,
    seq: u64,
    tag: Tag,
    body: TrackedBody,
) {
    send_ack(w, s, dst, src, id);
    let Some(due) = w
        .ucp
        .reliable
        .seen
        .entry((src as u32, dst as u32))
        .or_default()
        .arrive(seq, tag, body)
    else {
        w.ucp.counters.bump(m::DUP_DROP);
        return;
    };
    for (tag, body) in due {
        match body {
            TrackedBody::Tagged(b) => deliver(w, s, dst, ArrivedMsg { tag, src, body: b }),
            TrackedBody::Ats { rts_id } => {
                if let Some(done) = w.ucp.reliable.ats_table.remove(&rts_id) {
                    complete(w, s, dst, done);
                }
            }
        }
    }
}

/// Ack envelope `id` back to its sender. Acks are unreliable and idempotent:
/// they are subject to the same fault lottery, and a lost ack is recovered
/// by the data retransmission triggering a fresh one.
fn send_ack(w: &mut Machine, s: &mut MSched, from: usize, to: usize, id: u64) {
    let size = w.ucp.config.ack_size;
    let (src_node, dst_node) = (w.topo.node_of(from), w.topo.node_of(to));
    let src_port = (src_node, rail(w, from));
    let dst_port = (dst_node, rail(w, to));
    // Captures only `id`, so the closure is `Copy` and one definition serves
    // the duplicate branch.
    let deliver_ack = move |w: &mut Machine, s: &mut MSched| {
        if let Some(p) = w.ucp.reliable.inflight.remove(&id) {
            w.ucp.counters.bump(m::ACKED);
            if p.attempts == 1 {
                // Clean sample: the ack unambiguously answers the original
                // transmission.
                w.ucp.counters.bump(m::RTT_SAMPLE);
                let rtt = s.now().saturating_sub(p.sent_at);
                w.ucp.engine.observe_rtt((p.src as u32, p.dst as u32), rtt);
            } else {
                // Karn's rule: a retransmitted envelope's ack could answer
                // any attempt — never feed it to the estimator.
                w.ucp.counters.bump(m::RTT_SKIPPED);
            }
            crate::health::note_alive(w, s, p.src, p.dst);
        }
    };
    match w.faults.wire_fault(src_node, dst_node, s.now()) {
        WireFault::None => {
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, deliver_ack);
        }
        WireFault::Drop => {
            w.ucp.counters.bump(fm::DROP);
            s.trace_instant("fault.drop", from as u32, id, size);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, |_, _| {});
        }
        WireFault::Corrupt => {
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                size,
                WireKind::Host,
                move |w, s| {
                    w.ucp.counters.bump(fm::CORRUPT);
                    s.trace_instant("fault.corrupt", to as u32, id, size);
                },
            );
        }
        WireFault::Duplicate => {
            w.ucp.counters.bump(fm::DUPLICATE);
            s.trace_instant("fault.duplicate", from as u32, id, size);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, deliver_ack);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, deliver_ack);
        }
        WireFault::Delay(d) => {
            w.ucp.counters.bump(fm::DELAY);
            s.trace_instant("fault.delay", from as u32, id, d);
            s.schedule_in(d, move |w, s| {
                net_transfer(w, s, src_port, dst_port, size, WireKind::Host, deliver_ack);
            });
        }
    }
}

/// The retransmission timer for transmission `attempt` of envelope `id`
/// fired.
fn on_timeout(w: &mut Machine, s: &mut MSched, id: u64, attempt: u32) {
    let max_retries = w.ucp.config.max_retries;
    let Some(p) = w.ucp.reliable.inflight.get_mut(&id) else {
        return; // acked; stale timer
    };
    if p.attempts != attempt {
        // Defensive: exactly one timer is live per envelope (each attempt
        // arms one, and only its firing starts the next attempt), so a
        // mismatch means this timer's attempt was already superseded.
        return;
    }
    let src = p.src as u32;
    let (psrc, pdst) = (p.src, p.dst);
    w.ucp.counters.bump(m::TIMEOUT);
    s.trace_instant("ucp.timeout", src, id, attempt as u64);
    if p.attempts > max_retries {
        // Budget exhausted: the health layer may park the envelope on the
        // now-Dead endpoint and probe for a heal instead of abandoning it.
        if !crate::health::try_park(w, s, id) {
            give_up(w, s, id);
        }
        return;
    }
    p.attempts += 1;
    let n = p.attempts;
    w.ucp.counters.bump(m::RETRY);
    s.trace_instant("ucp.retry", src, id, n as u64);
    crate::health::note_timeout(w, s, psrc, pdst);
    transmit(w, s, id);
}

/// Retransmission budget exhausted: declare the endpoint unreachable for
/// this envelope, complete whatever operation it carried (no request is
/// ever left hanging at the *sender*), and queue a typed error.
pub(crate) fn give_up(w: &mut Machine, s: &mut MSched, id: u64) {
    let Some(p) = w.ucp.reliable.inflight.remove(&id) else {
        return;
    };
    w.ucp.counters.bump(m::UNREACHABLE);
    w.ucp.counters.bump(m::GIVEUP);
    s.trace_instant("ucp.unreachable", p.src as u32, id, p.attempts as u64);
    let err = UcpError::EndpointTimeout {
        src: p.src,
        dst: p.dst,
        tag: p.tag,
        attempts: p.attempts,
        elapsed: s.now().saturating_sub(p.first_sent),
        ctx: p.ctx,
    };
    match &p.body {
        TrackedBody::Tagged(ArrivedBody::Rts { rts_id, .. }) => {
            // The announcement never made it: retire the rendezvous so the
            // payload entry cannot leak, and release the sender's request.
            if let Some(rts) = w.ucp.rts_table.remove(rts_id) {
                complete(w, s, p.src, rts.sender_done);
            }
        }
        TrackedBody::Ats { rts_id } => {
            // The data was delivered but the ack cannot get back: release
            // the remote sender's request directly (in a real network it
            // would run its own timeout; the simulation shortcuts that
            // deterministically) and surface the error at the originator.
            if let Some(done) = w.ucp.reliable.ats_table.remove(rts_id) {
                complete(w, s, p.dst, done);
            }
        }
        TrackedBody::Tagged(ArrivedBody::Eager { .. }) => {
            // Eager sends complete locally at staging time (buffered
            // semantics); only the error record remains to surface.
        }
    }
    push_error(w, s, p.src, err);
}
