//! Typed UCP error surface — the replacement for the protocol-mismatch
//! panics and silent hangs the fault-injection subsystem makes reachable.
//!
//! Errors flow two ways:
//! - as `Result` returns from fallible calls ([`crate::rndv_fetch`],
//!   [`crate::PoppedMsg::into_eager`] / [`crate::PoppedMsg::into_rndv`]);
//! - as asynchronous per-worker error records ([`crate::Worker::take_error`])
//!   when the reliability layer gives up on an envelope, which the
//!   programming-model layers map onto their own semantics (AMPI status
//!   codes, Charm++ per-chare error handlers, Charm4py exception records).

use crate::tag::Tag;

/// Which wire protocol a message used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Payload travelled with the envelope.
    Eager,
    /// Rendezvous announcement; payload still at the sender.
    Rndv,
}

impl Protocol {
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Eager => "eager",
            Protocol::Rndv => "rndv",
        }
    }
}

/// A typed UCP-layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UcpError {
    /// A popped message was not the protocol the caller demanded (e.g. a
    /// rendezvous announcement where an eager payload was expected).
    ProtocolMismatch {
        expected: Protocol,
        got: Protocol,
        src: usize,
        tag: Tag,
    },
    /// The reliability layer exhausted its retransmission budget for an
    /// envelope; the peer is considered unreachable for this operation.
    EndpointTimeout {
        src: usize,
        dst: usize,
        tag: Tag,
        /// Transmission attempts made (1 original + retries).
        attempts: u32,
        /// Virtual time spent between the first transmission and the
        /// give-up, so the scenario matrix can attribute abandoned
        /// transfers to wall time instead of opaque attempt counts.
        elapsed: rucx_sim::time::Duration,
        /// Opaque model-layer context stamped at send time (e.g. the
        /// Charm++ chare the send belonged to); 0 when unset.
        ctx: u64,
    },
    /// A rendezvous fetch referenced an RTS id that is not (or no longer)
    /// announced — fetched twice, never announced, or already failed.
    UnknownRendezvous { rts_id: u64 },
    /// A send named a buffer handle the memory pool no longer (or never)
    /// knew — e.g. freed before the operation was posted. The operation
    /// completes immediately with nothing sent.
    InvalidHandle { op: &'static str, proc: usize },
}

impl UcpError {
    /// The model-layer send context attached to the failing operation
    /// (0 when none was stamped).
    pub fn ctx(&self) -> u64 {
        match self {
            UcpError::EndpointTimeout { ctx, .. } => *ctx,
            _ => 0,
        }
    }
}

impl std::fmt::Display for UcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UcpError::ProtocolMismatch {
                expected,
                got,
                src,
                tag,
            } => write!(
                f,
                "protocol mismatch: expected {} but got {} (src {src}, tag {tag:#x})",
                expected.label(),
                got.label()
            ),
            UcpError::EndpointTimeout {
                src,
                dst,
                tag,
                attempts,
                elapsed,
                ..
            } => write!(
                f,
                "endpoint timeout: {src} -> {dst} tag {tag:#x} gave up after {attempts} attempts \
                 ({:.1} us elapsed)",
                rucx_sim::time::as_us(*elapsed)
            ),
            UcpError::UnknownRendezvous { rts_id } => {
                write!(f, "unknown rendezvous: rts id {rts_id} is not announced")
            }
            UcpError::InvalidHandle { op, proc } => {
                write!(f, "invalid buffer handle in {op} at process {proc}")
            }
        }
    }
}

impl std::error::Error for UcpError {}
