//! Registration / endpoint cache: the "millions of users" cost model.
//!
//! Real UCX deployments (MPI4Dask, distributed-ucxx) pay a substantial
//! one-time cost the first time a process pair exchanges a message
//! (endpoint wireup: address exchange + transport setup) and the first
//! time a buffer is handed to the NIC/driver (memory registration:
//! pinning + IB/CUDA mapping). Both are amortized in practice by caches —
//! UCX's rcache, Open MPI's leave_pinned, and pool allocators that map
//! once. This module models exactly that: a tick-based LRU over a byte
//! budget for buffer registrations, and an LRU over an entry cap for
//! endpoint wireups.
//!
//! Determinism: ticks are logical (one per touch), both LRU orders are
//! `BTreeMap`s keyed by tick, and the maps are keyed, never iterated for
//! decisions — the same event sequence always evicts the same entries.

use std::collections::{BTreeMap, HashMap};

/// What one cache touch cost: how many mapping operations were paid and
/// how many cached entries were torn down to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TouchOutcome {
    pub hit: bool,
    pub evicted: u64,
}

/// LRU caches for endpoint wireups and buffer registrations.
#[derive(Debug)]
pub struct RegCache {
    /// When false, nothing is retained: every touch is a miss and every
    /// mapping is torn down right after use (miss and evict move in
    /// lockstep, so `miss - evict` still equals live mappings: zero).
    cache: bool,
    tick: u64,
    /// (src,dst) -> last-use tick.
    eps: HashMap<(u32, u32), u64>,
    /// last-use tick -> (src,dst); the `BTreeMap` front is the LRU victim.
    ep_order: BTreeMap<u64, (u32, u32)>,
    /// buffer id -> (mapped bytes, last-use tick).
    regs: HashMap<u64, (u64, u64)>,
    /// last-use tick -> buffer id.
    reg_order: BTreeMap<u64, u64>,
    /// Total mapped bytes currently cached.
    reg_bytes: u64,
}

impl RegCache {
    pub fn new(cache: bool) -> Self {
        RegCache {
            cache,
            tick: 0,
            eps: HashMap::new(),
            ep_order: BTreeMap::new(),
            regs: HashMap::new(),
            reg_order: BTreeMap::new(),
            reg_bytes: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// First message on a (src,dst) pair pays the wireup; later ones hit
    /// until the LRU cap (`max`) evicts the pair.
    pub fn touch_ep(&mut self, key: (u32, u32), max: usize) -> TouchOutcome {
        let t = self.next_tick();
        if !self.cache {
            return TouchOutcome {
                hit: false,
                evicted: 1,
            };
        }
        if let Some(old) = self.eps.insert(key, t) {
            self.ep_order.remove(&old);
            self.ep_order.insert(t, key);
            return TouchOutcome {
                hit: true,
                evicted: 0,
            };
        }
        self.ep_order.insert(t, key);
        let mut evicted = 0;
        while self.eps.len() > max.max(1) {
            if let Some((&old, &victim)) = self.ep_order.iter().next() {
                self.ep_order.remove(&old);
                self.eps.remove(&victim);
                evicted += 1;
            } else {
                break;
            }
        }
        TouchOutcome {
            hit: false,
            evicted,
        }
    }

    /// Touch a buffer registration of `bytes` bytes; `budget` is the cache
    /// capacity in mapped bytes. A miss maps the buffer (caller charges
    /// the latency) and may evict older mappings to fit.
    pub fn register(&mut self, id: u64, bytes: u64, budget: u64) -> TouchOutcome {
        let t = self.next_tick();
        if !self.cache {
            // Map for this operation, unmap right after: one miss, one
            // evict, nothing retained.
            return TouchOutcome {
                hit: false,
                evicted: 1,
            };
        }
        if let Some(&(sz, old)) = self.regs.get(&id) {
            self.regs.insert(id, (sz, t));
            self.reg_order.remove(&old);
            self.reg_order.insert(t, id);
            return TouchOutcome {
                hit: true,
                evicted: 0,
            };
        }
        self.regs.insert(id, (bytes, t));
        self.reg_order.insert(t, id);
        self.reg_bytes += bytes;
        let mut evicted = 0;
        // A buffer larger than the whole budget still gets mapped (it must
        // be, to transfer) — it just evicts everything else and will be
        // the next victim.
        while self.reg_bytes > budget && self.regs.len() > 1 {
            if let Some((&old, &victim)) = self.reg_order.iter().next() {
                self.reg_order.remove(&old);
                if let Some((sz, _)) = self.regs.remove(&victim) {
                    self.reg_bytes -= sz;
                }
                evicted += 1;
            } else {
                break;
            }
        }
        TouchOutcome {
            hit: false,
            evicted,
        }
    }

    /// Drop a buffer's registration when the buffer itself is freed (the
    /// mapping cannot outlive the allocation). Returns true if one was
    /// cached — the caller counts it as an eviction so the
    /// `miss - evict == live` invariant keeps holding.
    pub fn invalidate(&mut self, id: u64) -> bool {
        if let Some((sz, t)) = self.regs.remove(&id) {
            self.reg_order.remove(&t);
            self.reg_bytes -= sz;
            true
        } else {
            false
        }
    }

    /// Registrations currently mapped (`ucp.reg.miss - ucp.reg.evict` must
    /// equal this at any quiescent point — the leak gate).
    pub fn live_mappings(&self) -> usize {
        self.regs.len()
    }

    /// Mapped bytes currently cached.
    pub fn live_bytes(&self) -> u64 {
        self.reg_bytes
    }

    /// Cached endpoint wireups.
    pub fn live_endpoints(&self) -> usize {
        self.eps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_cache_hits_after_first_touch() {
        let mut c = RegCache::new(true);
        assert!(!c.touch_ep((0, 1), 8).hit);
        assert!(c.touch_ep((0, 1), 8).hit);
        assert!(!c.touch_ep((1, 0), 8).hit);
        assert_eq!(c.live_endpoints(), 2);
    }

    #[test]
    fn ep_lru_evicts_least_recent() {
        let mut c = RegCache::new(true);
        c.touch_ep((0, 1), 2);
        c.touch_ep((0, 2), 2);
        c.touch_ep((0, 1), 2); // refresh (0,1)
        let out = c.touch_ep((0, 3), 2); // evicts (0,2)
        assert_eq!(out.evicted, 1);
        assert!(c.touch_ep((0, 1), 2).hit, "refreshed entry survived");
        assert!(!c.touch_ep((0, 2), 2).hit, "LRU victim was evicted");
    }

    #[test]
    fn reg_budget_evicts_by_bytes() {
        let mut c = RegCache::new(true);
        assert!(!c.register(1, 600, 1000).hit);
        assert!(!c.register(2, 300, 1000).hit);
        assert!(c.register(1, 600, 1000).hit);
        // 600+300+400 > 1000: evicts LRU (id 2 — id 1 was refreshed).
        let out = c.register(3, 400, 1000);
        assert_eq!(out.evicted, 1);
        assert!(c.register(1, 600, 1000).hit);
        // Re-inserting id 2 overflows again and evicts id 3 (now LRU).
        let out = c.register(2, 300, 1000);
        assert!(!out.hit);
        assert_eq!(out.evicted, 1);
        assert_eq!(c.live_bytes(), 600 + 300);
        assert_eq!(c.live_mappings(), 2);
    }

    #[test]
    fn oversized_buffer_still_maps() {
        let mut c = RegCache::new(true);
        c.register(1, 100, 1000);
        let out = c.register(2, 5000, 1000);
        assert_eq!(out.evicted, 1, "everything else evicted");
        assert_eq!(c.live_mappings(), 1);
        assert_eq!(c.live_bytes(), 5000);
    }

    #[test]
    fn cache_off_never_retains_and_balances_evictions() {
        let mut c = RegCache::new(false);
        let mut miss = 0;
        let mut evict = 0;
        for i in 0..10u64 {
            let o = c.register(i % 3, 100, 1 << 30);
            assert!(!o.hit);
            miss += 1;
            evict += o.evicted;
        }
        assert_eq!(c.live_mappings(), 0);
        assert_eq!(miss - evict, 0, "miss - evict == live == 0");
    }

    #[test]
    fn invalidate_keeps_leak_invariant() {
        let mut c = RegCache::new(true);
        c.register(1, 100, 1 << 30);
        c.register(2, 100, 1 << 30);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1));
        assert_eq!(c.live_mappings(), 1);
        assert_eq!(c.live_bytes(), 100);
    }
}
