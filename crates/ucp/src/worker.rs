//! Per-process UCP workers: posted-receive and unexpected-message queues,
//! i.e. the tag-matching engine.

#![allow(clippy::type_complexity)]

use std::collections::VecDeque;

use rucx_gpu::MemRef;
use rucx_sim::sched::{Notify, Scheduler, Trigger};

use crate::machine::Machine;
use crate::tag::{tag_matches, Tag, TagMask};

/// Scheduler type over the concrete world.
pub type MSched = Scheduler<Machine>;

/// Completion action for send-side and control-side events.
pub enum Completion {
    /// Nothing to do.
    None,
    /// Fire a trigger (blocking callers wait on it).
    Trigger(Trigger),
    /// Run a callback against the world when the operation completes.
    Callback(Box<dyn FnOnce(&mut Machine, &mut MSched) + Send>),
}

/// Information handed to receive completions.
#[derive(Debug, Clone, Copy)]
pub struct RecvInfo {
    /// Process index of the sender.
    pub src: usize,
    /// Tag the message arrived with.
    pub tag: Tag,
    /// Wire size of the message in bytes.
    pub size: u64,
    /// The message was larger than the posted receive buffer: only the
    /// buffer-sized prefix was delivered. Runtimes map this to an
    /// `MPI_ERR_TRUNCATE`-style error instead of silently succeeding.
    pub truncated: bool,
}

/// Completion action for receives.
pub enum RecvCompletion {
    Trigger(Trigger),
    Callback(Box<dyn FnOnce(&mut Machine, &mut MSched, RecvInfo) + Send>),
    /// Receives the message bytes (present when the sender's payload was
    /// materialized) — used for runtime-internal host messages that do not
    /// live in the simulated memory pool.
    Bytes(Box<dyn FnOnce(&mut Machine, &mut MSched, Option<Vec<u8>>, RecvInfo) + Send>),
}

/// A receive posted with `ucp_tag_recv_nb`.
pub(crate) struct ExpectedRecv {
    pub tag: Tag,
    pub mask: TagMask,
    pub buf: MemRef,
    pub done: RecvCompletion,
}

/// Body of a message that arrived at a worker. `Clone` because the
/// reliability layer retransmits envelopes from a kept copy.
#[derive(Clone)]
pub(crate) enum ArrivedBody {
    /// Full eager payload (bytes present when materialized at the sender).
    Eager {
        bytes: Option<Vec<u8>>,
        wire_size: u64,
    },
    /// Rendezvous RTS: data is still at the sender, described by the
    /// registered RTS entry.
    Rts { rts_id: u64, size: u64 },
}

pub(crate) struct ArrivedMsg {
    pub tag: Tag,
    pub src: usize,
    pub body: ArrivedBody,
}

/// Per-process UCP worker.
pub struct Worker {
    pub(crate) expected: VecDeque<ExpectedRecv>,
    pub(crate) unexpected: VecDeque<ArrivedMsg>,
    /// Active-message handlers and pending arrivals.
    pub(crate) am: crate::am::AmState,
    /// Asynchronous errors surfaced by the reliability layer (endpoint
    /// timeouts, failed rendezvous), in occurrence order. Model layers
    /// drain this via [`Worker::take_error`] and map each record onto
    /// their own semantics.
    pub(crate) errors: VecDeque<crate::error::UcpError>,
    /// Bumped on every unexpected arrival and every local completion;
    /// PE scheduler loops park on this.
    pub notify: Notify,
}

impl Worker {
    pub fn new(notify: Notify) -> Self {
        Worker {
            expected: VecDeque::new(),
            unexpected: VecDeque::new(),
            am: crate::am::AmState::new(),
            errors: VecDeque::new(),
            notify,
        }
    }

    /// Pop the oldest pending asynchronous error, if any.
    pub fn take_error(&mut self) -> Option<crate::error::UcpError> {
        self.errors.pop_front()
    }

    /// Whether asynchronous errors are pending.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Find (without removing) the first unexpected message matching
    /// `(tag, mask)` in arrival order.
    pub(crate) fn find_unexpected(&self, tag: Tag, mask: TagMask) -> Option<usize> {
        self.unexpected
            .iter()
            .position(|m| tag_matches(tag, mask, m.tag))
    }

    /// Find the first posted receive matching an arrival with `tag`, in
    /// post order.
    pub(crate) fn find_expected(&self, tag: Tag) -> Option<usize> {
        self.expected
            .iter()
            .position(|e| tag_matches(e.tag, e.mask, tag))
    }

    /// Queue depths `(expected, unexpected)` for diagnostics/tests.
    pub fn depths(&self) -> (usize, usize) {
        (self.expected.len(), self.unexpected.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{MASK_FULL, MASK_NONE};
    use rucx_gpu::MemId;

    fn dummy_ref() -> MemRef {
        MemRef {
            id: MemId(1),
            offset: 0,
            len: 8,
        }
    }

    fn worker() -> Worker {
        // Notify(0) placeholder; matching logic does not touch it.
        Worker::new(Notify::from_raw(0))
    }

    #[test]
    fn unexpected_matching_is_fifo() {
        let mut w = worker();
        for tag in [5u64, 7, 5] {
            w.unexpected.push_back(ArrivedMsg {
                tag,
                src: 0,
                body: ArrivedBody::Eager {
                    bytes: None,
                    wire_size: 1,
                },
            });
        }
        assert_eq!(w.find_unexpected(5, MASK_FULL), Some(0));
        assert_eq!(w.find_unexpected(7, MASK_FULL), Some(1));
        assert_eq!(w.find_unexpected(9, MASK_FULL), None);
        assert_eq!(w.find_unexpected(0, MASK_NONE), Some(0));
    }

    #[test]
    fn expected_matching_is_post_order() {
        let mut w = worker();
        for (tag, mask) in [(1u64, MASK_FULL), (0, MASK_NONE), (2, MASK_FULL)] {
            w.expected.push_back(ExpectedRecv {
                tag,
                mask,
                buf: dummy_ref(),
                done: RecvCompletion::Trigger(Trigger::from_raw(0)),
            });
        }
        // Arrival with tag 2 matches the wildcard posted earlier first.
        assert_eq!(w.find_expected(2), Some(1));
        assert_eq!(w.find_expected(1), Some(0));
        assert_eq!(w.find_expected(99), Some(1));
    }
}
