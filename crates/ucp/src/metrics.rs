//! UCP-layer metrics registry: every counter the protocol layer emits,
//! declared once as typed [`Metric`] handles. Call sites pass these
//! handles; ad-hoc string literals are rejected by `scripts/check.sh`.
//! Names are the stable external identity (tests and JSON read by name).

use rucx_sim::Metric;

// ---- Protocol selection --------------------------------------------------

/// Eager sends (host shm/IB or GDRCopy bounce).
pub const EAGER: Metric = Metric::counter("ucp.eager");
/// Rendezvous sends (RTS issued).
pub const RNDV: Metric = Metric::counter("ucp.rndv");
/// Arrivals with no matching posted receive.
pub const UNEXPECTED: Metric = Metric::counter("ucp.unexpected");
/// Receives that matched a message larger than the posted buffer.
pub const TRUNCATED: Metric = Metric::counter("ucp.truncated");

// ---- Eager device staging ------------------------------------------------

pub const EAGER_GDRCOPY_READ: Metric = Metric::counter("ucp.eager.gdrcopy_read");
pub const EAGER_GDRCOPY_WRITE: Metric = Metric::counter("ucp.eager.gdrcopy_write");

// ---- Rendezvous data paths -----------------------------------------------

/// CUDA-IPC peer-to-peer DMA (intra-node device-device).
pub const RNDV_IPC: Metric = Metric::counter("ucp.rndv.ipc");
/// Staged CPU-GPU leg + shm handoff (intra-node mixed pairs).
pub const RNDV_STAGED_INTRA: Metric = Metric::counter("ucp.rndv.staged_intra");
/// CMA host-host single copy (intra-node).
pub const RNDV_CMA: Metric = Metric::counter("ucp.rndv.cma");
/// Direct GPUDirect-RDMA get (inter-node device-device).
pub const RNDV_GDR_DIRECT: Metric = Metric::counter("ucp.rndv.gdr_direct");
/// One staged host leg + RDMA (inter-node mixed pairs).
pub const RNDV_STAGED_INTER: Metric = Metric::counter("ucp.rndv.staged_inter");
/// Zero-copy RDMA get (inter-node host-host).
pub const RNDV_RDMA: Metric = Metric::counter("ucp.rndv.rdma");
/// Pipelined host-staging transfers (inter-node device-device).
pub const RNDV_PIPELINE: Metric = Metric::counter("ucp.rndv.pipeline");
/// Chunks issued by the pipelined path.
pub const PIPELINE_CHUNKS: Metric = Metric::counter("ucp.pipeline_chunks");
/// Striped multi-path transfers (intra-node device-device, NVLink + X-Bus
/// driven concurrently).
pub const RNDV_MULTIPATH: Metric = Metric::counter("ucp.rndv.multipath");
/// Chunks issued across all legs of striped multi-path transfers.
pub const MULTIPATH_CHUNKS: Metric = Metric::counter("ucp.multipath_chunks");

// ---- Protocol engine -----------------------------------------------------

/// Clean RTT observations fed to the engine (first-transmission acks only).
pub const RTT_SAMPLE: Metric = Metric::counter("ucp.rtt_sample");
/// Acks excluded from RTT estimation by Karn's rule (the envelope had been
/// retransmitted, so the sample would be ambiguous).
pub const RTT_SKIPPED: Metric = Metric::counter("ucp.rtt_skipped");
/// Autotuner re-solves that changed at least one endpoint knob.
pub const TUNE_ADJUST: Metric = Metric::counter("ucp.tune_adjust");

// ---- Reliability protocol (active only under a loaded fault spec) --------

/// Retransmissions of tracked envelopes.
pub const RETRY: Metric = Metric::counter("ucp.retry");
/// Retransmission timers that fired (an ack did not arrive in time).
pub const TIMEOUT: Metric = Metric::counter("ucp.timeout");
/// Tracked envelopes acknowledged by the receiver.
pub const ACKED: Metric = Metric::counter("ucp.acked");
/// Duplicate tracked envelopes suppressed by sequence numbers.
pub const DUP_DROP: Metric = Metric::counter("ucp.dup_drop");
/// Envelopes abandoned after exhausting the retransmission budget; each one
/// surfaces a typed `UcpError` at the owning worker.
pub const UNREACHABLE: Metric = Metric::counter("ucp.unreachable");
/// Transfers abandoned end-to-end (give-ups surfacing `EndpointTimeout`
/// with elapsed time + attempt count); the scenario matrix attributes
/// abandoned transfers by this counter.
pub const GIVEUP: Metric = Metric::counter("ucp.giveup");
/// GPU-direct transfers degraded onto the host-staged path because a fault
/// spec failed the device's copy engine.
pub const FALLBACK_HOST_STAGED: Metric = Metric::counter("ucp.fallback.host_staged");
/// Sends posted against a freed/unknown buffer handle; completed with
/// nothing sent plus a typed `InvalidHandle` error at the worker.
pub const BAD_HANDLE: Metric = Metric::counter("ucp.bad_handle");

// ---- Endpoint health & recovery ------------------------------------------

/// Pipeline chunks steered off a degraded rail by the protocol engine
/// (bumped only while a link-degrade window is active and the balanced
/// pick differs from the default socket rail).
pub const REROUTE: Metric = Metric::counter("ucp.reroute");
/// Envelopes parked by the health layer on a Dead endpoint instead of
/// being abandoned (released on heal, flushed to give-up on probe
/// exhaustion).
pub const PARKED: Metric = Metric::counter("ucp.parked");
/// Keepalive probes transmitted toward Dead endpoints.
pub const PROBE: Metric = Metric::counter("ucp.probe");
/// Probe acknowledgements that made it back to the prober.
pub const PROBE_ACK: Metric = Metric::counter("ucp.probe_ack");
/// Endpoint transitions Healthy -> Suspect (consecutive ack timeouts).
pub const EP_SUSPECT: Metric = Metric::counter("ucp.ep.suspect");
/// Endpoint transitions Suspect -> Dead (retransmission budget exhausted).
pub const EP_DEAD: Metric = Metric::counter("ucp.ep.dead");
/// Endpoint transitions Dead -> Healed (a probe ack or data ack arrived).
pub const EP_HEALED: Metric = Metric::counter("ucp.ep.healed");

// ---- Registration / endpoint cache (active when `reg_model` is on) -------

/// Buffer registrations served from the cache (no mapping cost paid).
pub const REG_HIT: Metric = Metric::counter("ucp.reg.hit");
/// Buffer registrations that had to map (first touch or after eviction).
pub const REG_MISS: Metric = Metric::counter("ucp.reg.miss");
/// Registrations unmapped to stay under the cache's byte budget.
pub const REG_EVICT: Metric = Metric::counter("ucp.reg.evict");
/// Endpoint touches served from the wireup cache.
pub const EP_HIT: Metric = Metric::counter("ucp.ep.hit");
/// Endpoint touches that paid the wireup latency.
pub const EP_MISS: Metric = Metric::counter("ucp.ep.miss");
/// Endpoint wireups evicted by the LRU cap.
pub const EP_EVICT: Metric = Metric::counter("ucp.ep.evict");

// ---- Active messages -----------------------------------------------------

pub const AM_HEADER_ONLY: Metric = Metric::counter("ucp.am.header_only");
pub const AM_EAGER: Metric = Metric::counter("ucp.am.eager");
pub const AM_RNDV: Metric = Metric::counter("ucp.am.rndv");
