//! 64-bit message tags and masks (UCP tagged-API style).

/// A 64-bit message tag.
pub type Tag = u64;

/// A tag mask: a receive matches an arrival when
/// `recv.tag & recv.mask == arrival.tag & recv.mask`.
pub type TagMask = u64;

/// Match-everything mask.
pub const MASK_NONE: TagMask = 0;
/// Exact-match mask.
pub const MASK_FULL: TagMask = u64::MAX;

/// Whether `arrived` satisfies a receive posted with `(want, mask)`.
#[inline]
pub fn tag_matches(want: Tag, mask: TagMask, arrived: Tag) -> bool {
    (want & mask) == (arrived & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_is_exact() {
        assert!(tag_matches(42, MASK_FULL, 42));
        assert!(!tag_matches(42, MASK_FULL, 43));
    }

    #[test]
    fn zero_mask_matches_everything() {
        assert!(tag_matches(0, MASK_NONE, u64::MAX));
        assert!(tag_matches(7, MASK_NONE, 0));
    }

    #[test]
    fn partial_mask_matches_prefix() {
        // Match on the top 4 bits only.
        let mask = 0xF000_0000_0000_0000;
        assert!(tag_matches(
            0x3000_0000_0000_0000,
            mask,
            0x3FFF_0000_1234_5678
        ));
        assert!(!tag_matches(
            0x3000_0000_0000_0000,
            mask,
            0x4000_0000_0000_0000
        ));
    }
}
