//! 64-bit message tags and masks (UCP tagged-API style).

/// A 64-bit message tag.
pub type Tag = u64;

/// A tag mask: a receive matches an arrival when
/// `recv.tag & recv.mask == arrival.tag & recv.mask`.
pub type TagMask = u64;

/// Match-everything mask.
pub const MASK_NONE: TagMask = 0;
/// Exact-match mask.
pub const MASK_FULL: TagMask = u64::MAX;

/// Whether `arrived` satisfies a receive posted with `(want, mask)`.
#[inline]
pub fn tag_matches(want: Tag, mask: TagMask, arrived: Tag) -> bool {
    (want & mask) == (arrived & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_is_exact() {
        assert!(tag_matches(42, MASK_FULL, 42));
        assert!(!tag_matches(42, MASK_FULL, 43));
    }

    #[test]
    fn zero_mask_matches_everything() {
        assert!(tag_matches(0, MASK_NONE, u64::MAX));
        assert!(tag_matches(7, MASK_NONE, 0));
    }

    #[test]
    fn partial_mask_matches_prefix() {
        // Match on the top 4 bits only.
        let mask = 0xF000_0000_0000_0000;
        assert!(tag_matches(
            0x3000_0000_0000_0000,
            mask,
            0x3FFF_0000_1234_5678
        ));
        assert!(!tag_matches(
            0x3000_0000_0000_0000,
            mask,
            0x4000_0000_0000_0000
        ));
    }

    #[test]
    fn prop_full_mask_is_equality() {
        rucx_compat::check::check("tag.full_mask_is_equality", |g| {
            let want = g.any_u64();
            let arrived = if g.bool() { want } else { g.any_u64() };
            assert_eq!(tag_matches(want, MASK_FULL, arrived), want == arrived);
        });
    }

    #[test]
    fn prop_zero_mask_is_wildcard() {
        rucx_compat::check::check("tag.zero_mask_is_wildcard", |g| {
            assert!(tag_matches(g.any_u64(), MASK_NONE, g.any_u64()));
        });
    }

    #[test]
    fn prop_unmasked_bits_never_affect_match() {
        // Flipping bits outside the mask — on either side — cannot change
        // the outcome: wildcard (ANY_SOURCE/ANY_TAG style) fields live in
        // the unmasked bits.
        rucx_compat::check::check("tag.unmasked_bits_ignored", |g| {
            let want = g.any_u64();
            let mask = g.any_u64();
            let arrived = g.any_u64();
            let flip_w = g.any_u64() & !mask;
            let flip_a = g.any_u64() & !mask;
            assert_eq!(
                tag_matches(want, mask, arrived),
                tag_matches(want ^ flip_w, mask, arrived ^ flip_a)
            );
        });
    }

    #[test]
    fn prop_agreeing_masked_bits_always_match() {
        // Constructively: if the arrival agrees with the want on every
        // masked bit, it matches no matter what the free bits hold.
        rucx_compat::check::check("tag.agreeing_masked_bits_match", |g| {
            let want = g.any_u64();
            let mask = g.any_u64();
            let arrived = (want & mask) | (g.any_u64() & !mask);
            assert!(tag_matches(want, mask, arrived));
        });
    }
}
