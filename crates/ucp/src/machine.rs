//! The concrete simulated-world type: GPU subsystem + network + UCP state,
//! plus the builder that assembles a ready-to-run simulation.

use std::collections::HashMap;

use rucx_fabric::{HasNet, NetParams, NetSubsystem, Topology};
use rucx_fault::{FaultSpec, FaultState};
use rucx_gpu::{GpuParams, GpuSubsystem, HasGpu, MemRef, StreamId};
use rucx_sim::sched::Scheduler;
use rucx_sim::stats::Counters;
use rucx_sim::time::Time;
use rucx_sim::{ProcCtx, SimConfig, Simulation};

use crate::config::UcpConfig;
use crate::worker::{Completion, Worker};

/// Payload still held at the sender during a rendezvous.
pub(crate) enum SendPayload {
    Mem(MemRef),
    Bytes(Vec<u8>),
    /// Size-only payload (phantom at-scale data).
    Phantom,
}

/// Sender-side state of an in-flight rendezvous.
pub(crate) struct RtsState {
    pub src_proc: usize,
    pub payload: SendPayload,
    pub wire_size: u64,
    pub sender_done: Completion,
    /// When the sender posted the rendezvous — the protocol engine measures
    /// observed completion latency against this.
    pub sent_at: Time,
}

/// World component: UCP framework state.
pub struct UcpSubsystem {
    pub config: UcpConfig,
    pub counters: Counters,
    pub(crate) workers: Vec<Worker>,
    pub(crate) rts_table: HashMap<u64, RtsState>,
    pub(crate) next_rts: u64,
    /// Per (src, dst) pair: the shared-memory channel's busy-until time.
    /// Serializes intra-node transfers between a pair (the CPU-driven
    /// copies cannot overlap), which both enforces per-connection ordering
    /// and bounds windowed throughput to the CMA copy bandwidth.
    pub(crate) pair_busy: HashMap<(u32, u32), Time>,
    /// One internal stream per device for UCX-driven DMA (IPC reads,
    /// pipeline staging), so user streams are unaffected.
    pub(crate) ucx_streams: Vec<StreamId>,
    /// Per-process pinned staging buffer (phantom, 2x pipeline chunk) for
    /// the pipelined host-staging rendezvous path.
    pub staging: Vec<MemRef>,
    /// Reliability-protocol state (tracked envelopes, sequence windows,
    /// parked ATS completions). Only exercised under a loaded fault spec.
    pub(crate) reliable: crate::reliable::ReliableState,
    /// Endpoint health state machine (Healthy/Suspect/Dead/Healed per
    /// directed pair, parked envelopes, keepalive probe loops). Driven by
    /// the reliability layer, so likewise inert on clean runs.
    pub health: crate::health::HealthState,
    /// The protocol engine: per-endpoint observed state (RTT, rendezvous
    /// lag) and the autotuned knobs derived from it. Pure bookkeeping
    /// unless [`UcpConfig::autotune`] is set.
    pub engine: crate::engine::ProtocolEngine,
    /// Model-layer context register: set immediately before a send (only
    /// when faults are enabled) and consumed by the reliability layer into
    /// the tracked envelope, so give-up errors can be routed back to e.g.
    /// the owning chare. 0 means unset.
    pub(crate) send_ctx: u64,
    /// Endpoint-wireup and memory-registration caches; consulted on the
    /// comm paths only when [`UcpConfig::reg_model`] is set.
    pub reg: crate::reg::RegCache,
}

impl UcpSubsystem {
    /// Worker (tag-matching engine) of process `p`.
    pub fn worker(&self, p: usize) -> &Worker {
        &self.workers[p]
    }

    pub(crate) fn worker_mut(&mut self, p: usize) -> &mut Worker {
        &mut self.workers[p]
    }

    /// Number of rendezvous currently in flight (for leak tests).
    pub fn inflight_rndv(&self) -> usize {
        self.rts_table.len()
    }

    /// Tracked reliability envelopes not yet acknowledged or abandoned
    /// (for chaos leak tests; 0 when every fault was recovered).
    pub fn inflight_tracked(&self) -> usize {
        self.reliable.inflight_tracked()
    }

    /// Pop the oldest asynchronous error queued at process `p`'s worker
    /// (reliability give-ups, failed fetches). `None` on clean runs.
    pub fn take_worker_error(&mut self, p: usize) -> Option<crate::error::UcpError> {
        self.workers[p].take_error()
    }

    /// Stamp the model-layer context for the next tracked send (routes
    /// reliability give-up errors; see [`crate::UcpError::ctx`]). A no-op
    /// burden-wise on clean runs — call only when faults are enabled.
    pub fn set_send_ctx(&mut self, ctx: u64) {
        self.send_ctx = ctx;
    }
}

/// The simulated world: everything below the parallel programming models.
pub struct Machine {
    pub topo: Topology,
    pub gpu: GpuSubsystem,
    pub net: NetSubsystem,
    pub ucp: UcpSubsystem,
    /// Fault-injection state; [`FaultState::disabled`] on clean runs.
    pub faults: FaultState,
}

impl HasGpu for Machine {
    fn gpu(&mut self) -> &mut GpuSubsystem {
        &mut self.gpu
    }
    fn gpu_ref(&self) -> &GpuSubsystem {
        &self.gpu
    }
}

impl HasNet for Machine {
    fn net(&mut self) -> &mut NetSubsystem {
        &mut self.net
    }
    fn net_ref(&self) -> &NetSubsystem {
        &self.net
    }
}

/// Simulation over the concrete world.
pub type MSim = Simulation<Machine>;
/// Process context over the concrete world.
pub type MCtx = ProcCtx<Machine>;

/// All calibration knobs in one place.
#[derive(Debug, Clone, Default)]
pub struct MachineConfig {
    pub gpu: GpuParams,
    pub net: NetParams,
    pub ucp: UcpConfig,
    /// Device memory capacity per GPU (default 16 GiB, V100).
    pub device_mem: Option<u64>,
    /// Fault-injection spec for chaos runs (`None` = clean run; the
    /// `--fault-spec` driver knob parses into this).
    pub fault: Option<FaultSpec>,
}

impl Machine {
    /// UCX-internal DMA stream of a device.
    pub fn ucx_stream(&self, device: rucx_gpu::DeviceId) -> StreamId {
        self.ucp.ucx_streams[device.index()]
    }
}

/// Build a ready-to-run simulation of `topo` under `cfg`.
///
/// Creates the GPU subsystem (one device per process), the network, one UCP
/// worker per process (with its wakeup [`rucx_sim::Notify`]), one internal
/// UCX stream per device, and a pinned staging buffer per process for the
/// pipelined host-staging rendezvous path.
pub fn build_sim(topo: Topology, cfg: MachineConfig) -> MSim {
    build_sim_with(topo, cfg, SimConfig::default())
}

/// [`build_sim`] with an explicit driver configuration.
pub fn build_sim_with(topo: Topology, cfg: MachineConfig, sim_cfg: SimConfig) -> MSim {
    let device_mem = cfg.device_mem.unwrap_or(16 << 30);
    let mut gpu = GpuSubsystem::new(
        topo.nodes,
        topo.gpus_per_node,
        topo.gpus_per_socket,
        device_mem,
        cfg.gpu,
    );
    let faults = match &cfg.fault {
        Some(spec) => FaultState::from_spec(spec.clone()),
        None => FaultState::disabled(),
    };
    let mut net = NetSubsystem::new(topo.nodes, cfg.net);
    net.link_faults = faults.link_faults();
    let procs = topo.procs();

    let mut ucx_streams = Vec::with_capacity(procs);
    let mut staging = Vec::with_capacity(procs);
    for p in 0..procs {
        let dev = topo.device_of(p);
        ucx_streams.push(gpu.create_stream(dev));
        // Phantom pinned bounce buffer; 2x chunk so fill/drain can overlap.
        let buf = gpu
            .pool
            .alloc_host(topo.node_of(p), cfg.ucp.pipeline_chunk * 2, true, false);
        staging.push(buf);
    }

    let seed = cfg.fault.as_ref().map_or(0, |sp| sp.seed);
    let reliable = crate::reliable::ReliableState::new(seed);
    let reg = crate::reg::RegCache::new(cfg.ucp.reg_cache);
    let ucp = UcpSubsystem {
        config: cfg.ucp,
        counters: Counters::new(),
        workers: Vec::new(),
        rts_table: HashMap::new(),
        next_rts: 1,
        pair_busy: HashMap::new(),
        ucx_streams,
        staging,
        reliable,
        health: crate::health::HealthState::default(),
        engine: crate::engine::ProtocolEngine::new(seed),
        send_ctx: 0,
        reg,
    };

    let machine = Machine {
        topo,
        gpu,
        net,
        ucp,
        faults,
    };
    let mut sim = Simulation::with_config(machine, sim_cfg);
    // Workers need Notify handles, which only the scheduler can mint.
    let notifies: Vec<_> = (0..procs).map(|_| sim.scheduler().new_notify()).collect();
    let workers = notifies.into_iter().map(Worker::new).collect();
    sim.world_mut().ucp.workers = workers;
    sim
}

/// Convenience: run `f` with both the scheduler and world halves of a
/// simulation-side borrow (used by setup code, not model code).
///
/// The driver owns the execution core between runs, so this is a direct
/// call — no event scheduling, no boxing, no `'static` bound.
pub fn with_parts<R>(
    sim: &mut MSim,
    f: impl FnOnce(&mut Machine, &mut Scheduler<Machine>) -> R,
) -> R {
    sim.with_parts(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_creates_per_proc_state() {
        let topo = Topology::summit(2);
        let sim = build_sim(topo.clone(), MachineConfig::default());
        let m = sim.world();
        assert_eq!(m.ucp.workers.len(), 12);
        assert_eq!(m.ucp.ucx_streams.len(), 12);
        assert_eq!(m.ucp.staging.len(), 12);
        assert_eq!(m.gpu.device_count(), 12);
        assert_eq!(m.net.nodes(), 2);
        // UCX streams belong to the right devices.
        for p in 0..12 {
            assert_eq!(m.gpu.stream_device(m.ucp.ucx_streams[p]), topo.device_of(p));
        }
    }

    #[test]
    fn worker_notifies_are_distinct() {
        let sim = build_sim(Topology::summit(1), MachineConfig::default());
        let m = sim.world();
        let mut seen = std::collections::HashSet::new();
        for w in &m.ucp.workers {
            assert!(seen.insert(w.notify));
        }
    }

    #[test]
    fn staging_buffers_are_pinned_phantom() {
        let sim = build_sim(Topology::summit(1), MachineConfig::default());
        let m = sim.world();
        for (p, buf) in m.ucp.staging.iter().enumerate() {
            let kind = m.gpu.pool.kind(buf.id).unwrap();
            assert_eq!(
                kind,
                rucx_gpu::MemKind::HostPinned {
                    node: m.topo.node_of(p)
                }
            );
            assert!(!m.gpu.pool.is_materialized(buf.id).unwrap());
        }
    }
}
