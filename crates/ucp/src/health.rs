//! Endpoint health state machine: Healthy → Suspect → Dead → Healed.
//!
//! The reliability layer ([`crate::reliable`]) can only retransmit-then-
//! give-up; this module adds the recovery layer above it. Per directed
//! (src, dst) pair the sender tracks an [`EpState`] driven by ack timing:
//! consecutive retransmission timeouts past [`crate::UcpConfig::
//! suspect_after`] mark the endpoint *Suspect*; an envelope exhausting its
//! whole retransmission budget marks it *Dead* — but instead of abandoning
//! the envelope immediately, the health layer *parks* it (up to
//! [`crate::UcpConfig::heal_retries`] times per envelope) and starts a
//! deterministic keepalive probe loop at [`crate::UcpConfig::
//! keepalive_interval`]. Probes are unsequenced control envelopes (like
//! acks): they consume no sequence number, travel through the same fault
//! lottery, and an answered probe — or any data ack — heals the endpoint,
//! releasing every parked envelope in park order (= sequence order, so the
//! receiver's delivery window sees no reordering) with a fresh attempt
//! budget. If [`crate::UcpConfig::probe_budget`] consecutive probe ticks
//! go unanswered, every parked envelope is flushed through the hard
//! give-up path: the operation completes, `ucp.unreachable`/`ucp.giveup`
//! count it, and a typed [`crate::UcpError::EndpointTimeout`] carrying the
//! original attempt count and end-to-end elapsed time surfaces at the
//! owning worker. Termination is therefore bounded: each envelope survives
//! at most `heal_retries` park cycles, and each Dead activation at most
//! `probe_budget` ticks.
//!
//! Exactly-once in-order across partition-heal falls out of parking: a
//! parked envelope keeps its sequence number, the receiver's per-(src,dst)
//! delivery window ([`crate::reliable`]'s `SeqSeen`) keeps suppressing
//! duplicates and stashing ahead-of-gap arrivals, so no resynchronization
//! handshake is needed when the link returns.
//!
//! Everything here runs only under a loaded fault spec (the only way a
//! retransmission timer exists); clean runs pay nothing.

use std::collections::HashMap;

use rucx_fabric::{net_transfer, WireKind};
use rucx_fault::{metrics as fm, WireFault};

use crate::engine::rail;
use crate::machine::Machine;
use crate::metrics as m;
use crate::reliable;
use crate::worker::MSched;

/// Health of one directed (src, dst) endpoint, as seen by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpState {
    /// Acks arriving normally.
    Healthy,
    /// `suspect_after` consecutive retransmission timeouts and counting.
    Suspect,
    /// An envelope exhausted its retransmission budget; parked envelopes
    /// wait while keepalive probes test the link.
    Dead,
    /// A probe (or data) ack came back after Dead; the next clean ack
    /// settles back to Healthy.
    Healed,
}

impl EpState {
    pub fn label(self) -> &'static str {
        match self {
            EpState::Healthy => "healthy",
            EpState::Suspect => "suspect",
            EpState::Dead => "dead",
            EpState::Healed => "healed",
        }
    }
}

/// Per-endpoint health record.
struct EpHealth {
    state: EpState,
    /// Retransmission timeouts since the last ack.
    consecutive_timeouts: u32,
    /// Probe ticks since activation without any ack coming back.
    probe_failures: u32,
    /// Whether a keepalive loop is currently scheduled for this endpoint.
    probing: bool,
    /// Parked envelope ids in park order (= sequence order).
    parked: Vec<u64>,
}

impl Default for EpHealth {
    fn default() -> Self {
        EpHealth {
            state: EpState::Healthy,
            consecutive_timeouts: 0,
            probe_failures: 0,
            probing: false,
            parked: Vec::new(),
        }
    }
}

/// Machine-wide endpoint health state. Keyed, never iterated, so map
/// ordering cannot leak into the deterministic schedule.
#[derive(Default)]
pub struct HealthState {
    eps: HashMap<(u32, u32), EpHealth>,
}

impl HealthState {
    /// Current state of the (src, dst) endpoint (Healthy when untracked).
    pub fn state(&self, src: usize, dst: usize) -> EpState {
        self.eps
            .get(&(src as u32, dst as u32))
            .map_or(EpState::Healthy, |e| e.state)
    }

    /// Envelopes currently parked on the (src, dst) endpoint.
    pub fn parked(&self, src: usize, dst: usize) -> usize {
        self.eps
            .get(&(src as u32, dst as u32))
            .map_or(0, |e| e.parked.len())
    }
}

/// A retransmission timer fired for an envelope that still has budget:
/// count it against the endpoint and mark Suspect past the threshold.
pub(crate) fn note_timeout(w: &mut Machine, s: &mut MSched, src: usize, dst: usize) {
    let suspect_after = w.ucp.config.suspect_after;
    let ep = w
        .ucp
        .health
        .eps
        .entry((src as u32, dst as u32))
        .or_default();
    ep.consecutive_timeouts += 1;
    if matches!(ep.state, EpState::Healthy | EpState::Healed)
        && ep.consecutive_timeouts >= suspect_after
    {
        ep.state = EpState::Suspect;
        w.ucp.counters.bump(m::EP_SUSPECT);
        s.trace_instant("ucp.ep.suspect", src as u32, dst as u64, 0);
    }
}

/// Any ack (data or probe) came back from `dst`: reset the failure
/// counters and heal the endpoint, releasing parked envelopes.
pub(crate) fn note_alive(w: &mut Machine, s: &mut MSched, src: usize, dst: usize) {
    let Some(ep) = w.ucp.health.eps.get_mut(&(src as u32, dst as u32)) else {
        return;
    };
    ep.consecutive_timeouts = 0;
    ep.probe_failures = 0;
    match ep.state {
        EpState::Healthy => {}
        EpState::Suspect | EpState::Healed => ep.state = EpState::Healthy,
        EpState::Dead => {
            ep.state = EpState::Healed;
            ep.probing = false;
            let parked = std::mem::take(&mut ep.parked);
            w.ucp.counters.bump(m::EP_HEALED);
            s.trace_instant("ucp.ep.healed", src as u32, dst as u64, parked.len() as u64);
            // Release in park order (= sequence order) with a fresh attempt
            // budget; ids acked while parked are no-ops inside `transmit`.
            for id in parked {
                if let Some(p) = w.ucp.reliable.inflight_mut(id) {
                    p.attempts = 1;
                }
                reliable::transmit(w, s, id);
            }
        }
    }
}

/// An envelope exhausted its retransmission budget. Returns `true` when
/// the health layer parked it (caller must not give up); `false` sends the
/// caller to the hard give-up path.
pub(crate) fn try_park(w: &mut Machine, s: &mut MSched, id: u64) -> bool {
    let (heal_retries, interval) = {
        let c = &w.ucp.config;
        (c.heal_retries, c.keepalive_interval)
    };
    if heal_retries == 0 {
        return false;
    }
    let Some(p) = w.ucp.reliable.inflight_mut(id) else {
        return false;
    };
    if p.parks >= heal_retries {
        return false;
    }
    p.parks += 1;
    let (src, dst) = (p.src, p.dst);
    let key = (src as u32, dst as u32);
    let ep = w.ucp.health.eps.entry(key).or_default();
    ep.parked.push(id);
    let activate = !ep.probing;
    if ep.state != EpState::Dead {
        ep.state = EpState::Dead;
        w.ucp.counters.bump(m::EP_DEAD);
        s.trace_instant("ucp.ep.dead", src as u32, dst as u64, 0);
    }
    w.ucp.counters.bump(m::PARKED);
    s.trace_instant("ucp.parked", src as u32, id, dst as u64);
    if activate {
        let ep = w.ucp.health.eps.get_mut(&key).unwrap();
        ep.probing = true;
        ep.probe_failures = 0;
        send_probe(w, s, src, dst);
        s.schedule_in(interval, move |w, s| probe_tick(w, s, src, dst));
    }
    true
}

/// One keepalive tick: if the endpoint is still Dead with parked
/// envelopes, count the silence, flush everything through give-up once the
/// probe budget is spent, otherwise probe again.
fn probe_tick(w: &mut Machine, s: &mut MSched, src: usize, dst: usize) {
    let (budget, interval) = {
        let c = &w.ucp.config;
        (c.probe_budget, c.keepalive_interval)
    };
    let key = (src as u32, dst as u32);
    let Some(ep) = w.ucp.health.eps.get_mut(&key) else {
        return;
    };
    if !ep.probing {
        return; // healed (or flushed) since the tick was scheduled
    }
    if ep.parked.is_empty() {
        ep.probing = false;
        return;
    }
    ep.probe_failures += 1;
    if ep.probe_failures >= budget {
        ep.probing = false;
        let parked = std::mem::take(&mut ep.parked);
        for id in parked {
            reliable::give_up(w, s, id);
        }
        return;
    }
    send_probe(w, s, src, dst);
    s.schedule_in(interval, move |w, s| probe_tick(w, s, src, dst));
}

/// Put one keepalive probe on the wire toward `dst`. Probes are
/// unsequenced and unreliable — the same fault lottery applies, and a lost
/// probe is simply a failed tick.
fn send_probe(w: &mut Machine, s: &mut MSched, src: usize, dst: usize) {
    w.ucp.counters.bump(m::PROBE);
    s.trace_instant("ucp.probe", src as u32, dst as u64, 0);
    let size = w.ucp.config.ack_size;
    let (src_node, dst_node) = (w.topo.node_of(src), w.topo.node_of(dst));
    let src_port = (src_node, rail(w, src));
    let dst_port = (dst_node, rail(w, dst));
    let arrive = move |w: &mut Machine, s: &mut MSched| probe_arrive(w, s, src, dst);
    match w.faults.wire_fault(src_node, dst_node, s.now()) {
        WireFault::None => {
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
        }
        WireFault::Drop => {
            w.ucp.counters.bump(fm::DROP);
            s.trace_instant("fault.drop", src as u32, 0, size);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, |_, _| {});
        }
        WireFault::Corrupt => {
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                size,
                WireKind::Host,
                move |w, s| {
                    w.ucp.counters.bump(fm::CORRUPT);
                    s.trace_instant("fault.corrupt", dst as u32, 0, size);
                },
            );
        }
        WireFault::Duplicate => {
            w.ucp.counters.bump(fm::DUPLICATE);
            s.trace_instant("fault.duplicate", src as u32, 0, size);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
        }
        WireFault::Delay(d) => {
            w.ucp.counters.bump(fm::DELAY);
            s.trace_instant("fault.delay", src as u32, 0, d);
            s.schedule_in(d, move |w, s| {
                net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
            });
        }
    }
}

/// A probe reached `dst`: answer it. The reply is idempotent and rides the
/// same lottery back.
fn probe_arrive(w: &mut Machine, s: &mut MSched, src: usize, dst: usize) {
    let size = w.ucp.config.ack_size;
    let (src_node, dst_node) = (w.topo.node_of(dst), w.topo.node_of(src));
    let src_port = (src_node, rail(w, dst));
    let dst_port = (dst_node, rail(w, src));
    let arrive = move |w: &mut Machine, s: &mut MSched| {
        w.ucp.counters.bump(m::PROBE_ACK);
        s.trace_instant("ucp.probe_ack", src as u32, dst as u64, 0);
        note_alive(w, s, src, dst);
    };
    match w.faults.wire_fault(src_node, dst_node, s.now()) {
        WireFault::None => {
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
        }
        WireFault::Drop => {
            w.ucp.counters.bump(fm::DROP);
            s.trace_instant("fault.drop", dst as u32, 0, size);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, |_, _| {});
        }
        WireFault::Corrupt => {
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                size,
                WireKind::Host,
                move |w, s| {
                    w.ucp.counters.bump(fm::CORRUPT);
                    s.trace_instant("fault.corrupt", src as u32, 0, size);
                },
            );
        }
        WireFault::Duplicate => {
            w.ucp.counters.bump(fm::DUPLICATE);
            s.trace_instant("fault.duplicate", dst as u32, 0, size);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
        }
        WireFault::Delay(d) => {
            w.ucp.counters.bump(fm::DELAY);
            s.trace_instant("fault.delay", dst as u32, 0, d);
            s.schedule_in(d, move |w, s| {
                net_transfer(w, s, src_port, dst_port, size, WireKind::Host, arrive);
            });
        }
    }
}
