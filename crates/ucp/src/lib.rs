//! # rucx-ucp — UCX-like communication framework over the simulated fabric
//!
//! The simulation analogue of UCX's UCP layer (§II-B of the paper): 64-bit
//! tag matching with masks, eager and rendezvous protocols, and GPU-aware
//! transports — GDRCopy bounce buffers for small device messages, CUDA-IPC
//! peer DMA for intra-node rendezvous, RDMA for host data, and the pipelined
//! host-staging path for large inter-node device transfers.
//!
//! This crate also defines the concrete simulated world, [`Machine`]
//! (GPU subsystem + network + UCP state), that every programming-model layer
//! above (Charm++, AMPI, Charm4py, OpenMPI) runs on.

pub mod am;
pub mod config;
pub mod engine;
pub mod error;
pub mod health;
pub mod machine;
pub mod metrics;
pub mod proto;
pub mod reg;
pub(crate) mod reliable;
pub mod tag;
pub mod worker;

pub use am::{am_register, am_send_nb, AmHandler, AmId, AmMsg, AmPayload};
pub use config::UcpConfig;
pub use engine::{PathPlan, ProtocolEngine, Stripe};
pub use error::{Protocol, UcpError};
pub use health::{EpState, HealthState};
pub use machine::{build_sim, build_sim_with, MCtx, MSim, Machine, MachineConfig, UcpSubsystem};
pub use proto::{
    inject_local, probe_pop, reg_invalidate, rndv_fetch, tag_recv_nb, tag_send_nb, FetchDst,
    PoppedMsg, SendBuf,
};
pub use reg::RegCache;
pub use tag::{tag_matches, Tag, TagMask, MASK_FULL, MASK_NONE};
pub use worker::{Completion, MSched, RecvCompletion, RecvInfo, Worker};

use rucx_gpu::MemRef;

/// Blocking conveniences for simulated-process code (MPI-style layers).
pub mod blocking {
    use super::*;

    /// Send and wait for local completion (eager: buffered; rendezvous:
    /// remote data fetched). Models the `ucp_tag_send_nb` CPU call cost.
    pub fn send(ctx: &mut MCtx, src: usize, dst: usize, buf: SendBuf, tag: Tag) {
        let done = ctx.with_world(move |w, s| {
            let t = s.new_trigger();
            tag_send_nb(w, s, src, dst, buf, tag, Completion::Trigger(t));
            t
        });
        let cost = cpu_call_cost(ctx);
        ctx.advance(cost);
        ctx.wait(done);
        ctx.with_world(move |_, s| s.recycle_trigger(done));
    }

    /// Post a receive and wait for the data. Returns `(src, tag, size)`.
    pub fn recv(ctx: &mut MCtx, proc: usize, buf: MemRef, tag: Tag, mask: TagMask) -> RecvInfo {
        let info = std::sync::Arc::new(rucx_compat::sync::Mutex::new(None::<RecvInfo>));
        let info2 = info.clone();
        let done = ctx.with_world(move |w, s| {
            let t = s.new_trigger();
            tag_recv_nb(
                w,
                s,
                proc,
                buf,
                tag,
                mask,
                RecvCompletion::Callback(Box::new(move |_, s, i| {
                    *info2.lock() = Some(i);
                    s.fire(t);
                })),
            );
            t
        });
        let cost = cpu_call_cost(ctx);
        ctx.advance(cost);
        ctx.wait(done);
        ctx.with_world(move |_, s| s.recycle_trigger(done));
        // The recv completion callback stores `info` before firing the
        // trigger `wait` blocks on; a zero-size record is the defensive
        // fallback if a runtime layer completes the trigger another way.
        let i = info.lock().take();
        i.unwrap_or(RecvInfo {
            src: proc,
            tag,
            size: 0,
            truncated: false,
        })
    }

    fn cpu_call_cost(ctx: &mut MCtx) -> rucx_sim::Duration {
        ctx.with_world_ref(|w, _| w.ucp.config.cpu_call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_fabric::Topology;
    use rucx_gpu::DeviceId;
    use rucx_sim::time::{as_us, us};
    use rucx_sim::RunOutcome;

    fn sim2nodes() -> MSim {
        build_sim(Topology::summit(2), MachineConfig::default())
    }

    fn alloc_dev(sim: &mut MSim, dev: u32, size: u64) -> MemRef {
        sim.world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(dev), size, true)
            .unwrap()
    }

    fn alloc_host(sim: &mut MSim, node: usize, size: u64) -> MemRef {
        sim.world_mut().gpu.pool.alloc_host(node, size, true, true)
    }

    fn pattern(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    /// Run a 2-process send/recv of `size` bytes and return (elapsed_ns,
    /// received bytes).
    fn p2p_roundtrip(sim: &mut MSim, src_buf: MemRef, dst_buf: MemRef, a: usize, b: usize) -> u64 {
        let done_at = std::sync::Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let done2 = done_at.clone();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, a, b, SendBuf::Mem(src_buf), 42);
        });
        sim.spawn("receiver", 0, move |ctx| {
            let info = blocking::recv(ctx, b, dst_buf, 42, MASK_FULL);
            assert_eq!(info.src, a);
            assert_eq!(info.tag, 42);
            *done2.lock() = ctx.now();
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let t = *done_at.lock();
        t
    }

    #[test]
    fn host_eager_intra_node_delivers_data() {
        let mut sim = sim2nodes();
        let a = alloc_host(&mut sim, 0, 1024);
        let b = alloc_host(&mut sim, 0, 1024);
        let data = pattern(1024, 3);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        let t = p2p_roundtrip(&mut sim, a, b, 0, 1);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
        assert_eq!(sim.world().ucp.counters.get("ucp.eager"), 1);
        // Small host message: ~1 us including call costs.
        assert!(t < us(3.0), "latency {}us", as_us(t));
    }

    #[test]
    fn host_rndv_inter_node_delivers_data() {
        let mut sim = sim2nodes();
        let size = 1 << 20;
        let a = alloc_host(&mut sim, 0, size);
        let b = alloc_host(&mut sim, 1, size);
        let data = pattern(size as usize, 9);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        let t = p2p_roundtrip(&mut sim, a, b, 0, 6);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv"), 1);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.rdma"), 1);
        // 1 MiB at 12.2 GB/s ≈ 86 us + control.
        assert!(t > us(80.0) && t < us(120.0), "latency {}us", as_us(t));
        assert_eq!(sim.world().ucp.inflight_rndv(), 0);
    }

    /// Regression: freeing the send-side buffer while its rendezvous is in
    /// flight used to panic the whole simulation ("rndv src freed"). It must
    /// instead surface `InvalidHandle` at both workers, complete the receive
    /// with a zero-size status, and complete the sender's request.
    #[test]
    fn rndv_src_freed_mid_flight_surfaces_invalid_handle() {
        let mut sim = sim2nodes();
        let size = 1u64 << 20;
        let a = alloc_host(&mut sim, 0, size);
        let b = alloc_host(&mut sim, 1, size);
        sim.spawn("sender", 0, move |ctx| {
            // Completes via the error path: the fetch can never happen, so
            // the receiver acks the sender when it rejects the RTS.
            blocking::send(ctx, 0, 6, SendBuf::Mem(a), 7);
        });
        sim.spawn("receiver", 0, move |ctx| {
            // Let the RTS arrive, then free the *source* buffer before
            // posting the receive that would fetch from it.
            ctx.advance(us(20.0));
            ctx.with_world(move |w, _| w.gpu.pool.free(a.id).unwrap());
            let info = blocking::recv(ctx, 6, b, 7, MASK_FULL);
            assert_eq!(info.size, 0, "failed rendezvous must deliver nothing");
        });
        assert_eq!(sim.run(), RunOutcome::Completed, "no hang, no panic");
        let w = sim.world_mut();
        assert!(w.ucp.counters.get("ucp.bad_handle") >= 1);
        for p in [0usize, 6] {
            match w.ucp.take_worker_error(p) {
                Some(UcpError::InvalidHandle { op, .. }) => assert_eq!(op, "rndv src"),
                other => panic!("worker {p}: expected InvalidHandle, got {other:?}"),
            }
        }
    }

    /// The registration cost model: the first message on an endpoint pays
    /// wireup + buffer mapping, repeats hit the cache, and freeing mapped
    /// buffers keeps `miss - evict == live` (the leak gate).
    #[test]
    fn reg_model_first_touch_pays_then_caches() {
        let mut cfg = MachineConfig::default();
        cfg.ucp.reg_model = true;
        let mut sim = build_sim(Topology::summit(1), cfg);
        let a = alloc_host(&mut sim, 0, 4096);
        let b = alloc_host(&mut sim, 0, 4096);
        let durs = std::sync::Arc::new(rucx_compat::sync::Mutex::new(Vec::new()));
        let durs2 = durs.clone();
        sim.spawn("sender", 0, move |ctx| {
            for _ in 0..2 {
                let t0 = ctx.now();
                blocking::send(ctx, 0, 1, SendBuf::Mem(a), 9);
                durs2.lock().push(ctx.now() - t0);
            }
        });
        sim.spawn("receiver", 0, move |ctx| {
            for _ in 0..2 {
                blocking::recv(ctx, 1, b, 9, MASK_FULL);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let d = durs.lock().clone();
        let ep_setup = sim.world().ucp.config.ep_setup;
        assert!(
            d[0] >= d[1] + ep_setup,
            "first send must pay wireup: {} vs {}",
            as_us(d[0]),
            as_us(d[1])
        );
        let w = sim.world_mut();
        assert_eq!(w.ucp.counters.get("ucp.ep.miss"), 1);
        assert_eq!(w.ucp.counters.get("ucp.ep.hit"), 1);
        assert_eq!(w.ucp.counters.get("ucp.reg.miss"), 2); // bufs a and b
        assert_eq!(w.ucp.counters.get("ucp.reg.hit"), 2);
        assert_eq!(w.ucp.counters.get("ucp.reg.evict"), 0);
        assert_eq!(w.ucp.reg.live_mappings(), 2);
        // Freeing a mapped buffer tears down its registration.
        reg_invalidate(w, a.id);
        reg_invalidate(w, b.id);
        let miss = w.ucp.counters.get("ucp.reg.miss");
        let evict = w.ucp.counters.get("ucp.reg.evict");
        assert_eq!(miss - evict, w.ucp.reg.live_mappings() as u64);
        assert_eq!(w.ucp.reg.live_mappings(), 0);
    }

    /// Pre-mapped pool allocations never pay registration latency and are
    /// counted as hits (plus the gpu-side premapped counter).
    #[test]
    fn reg_model_premapped_buffers_always_hit() {
        let mut cfg = MachineConfig::default();
        cfg.ucp.reg_model = true;
        let mut sim = build_sim(Topology::summit(1), cfg);
        let a = alloc_host(&mut sim, 0, 2048);
        let b = alloc_host(&mut sim, 0, 2048);
        sim.world_mut().gpu.pool.set_premapped(a.id).unwrap();
        sim.world_mut().gpu.pool.set_premapped(b.id).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 5);
        });
        sim.spawn("receiver", 0, move |ctx| {
            blocking::recv(ctx, 1, b, 5, MASK_FULL);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let w = sim.world();
        assert_eq!(w.ucp.counters.get("ucp.reg.miss"), 0);
        assert_eq!(w.ucp.counters.get("ucp.reg.hit"), 2);
        assert_eq!(w.gpu.counters.get("gpu.pool.premapped_hit"), 2);
        assert_eq!(w.ucp.reg.live_mappings(), 0);
    }

    #[test]
    fn device_eager_gdrcopy_small_latency() {
        let mut sim = sim2nodes();
        let a = alloc_dev(&mut sim, 0, 8);
        let b = alloc_dev(&mut sim, 1, 8);
        sim.world_mut().gpu.pool.write(a, &[5u8; 8]).unwrap();
        let t = p2p_roundtrip(&mut sim, a, b, 0, 1);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), vec![5u8; 8]);
        assert_eq!(sim.world().ucp.counters.get("ucp.eager"), 1);
        assert_eq!(sim.world().ucp.counters.get("ucp.eager.gdrcopy_read"), 1);
        assert_eq!(sim.world().ucp.counters.get("ucp.eager.gdrcopy_write"), 1);
        // Small device message with GDRCopy: a few microseconds.
        assert!(t < us(4.0), "latency {}us", as_us(t));
    }

    #[test]
    fn device_rndv_intra_uses_ipc() {
        let mut sim = sim2nodes();
        let size = 4u64 << 20;
        let a = alloc_dev(&mut sim, 0, size);
        let b = alloc_dev(&mut sim, 1, size);
        let data = pattern(size as usize, 1);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        let t = p2p_roundtrip(&mut sim, a, b, 0, 1);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.ipc"), 1);
        // 4 MiB over NVLink at 44 GB/s ≈ 95 us.
        assert!(t > us(90.0) && t < us(120.0), "latency {}us", as_us(t));
    }

    #[test]
    fn device_rndv_inter_uses_pipeline() {
        let mut sim = sim2nodes();
        let size = 4u64 << 20;
        let a = alloc_dev(&mut sim, 0, size);
        let b = alloc_dev(&mut sim, 6, size);
        let data = pattern(size as usize, 7);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        let t = p2p_roundtrip(&mut sim, a, b, 0, 6);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.pipeline"), 1);
        assert_eq!(sim.world().ucp.counters.get("ucp.pipeline_chunks"), 8);
        // Net-bound pipeline: ≈ size/12.2 GB/s + one chunk fill/drain
        // (~355 us), well below the unpipelined ~550 us.
        assert!(t > us(330.0) && t < us(460.0), "latency {}us", as_us(t));
    }

    #[test]
    fn gdrcopy_disabled_forces_rendezvous_for_tiny_device_msgs() {
        let mut cfg = MachineConfig::default();
        cfg.ucp.gdrcopy_enabled = false;
        let mut sim = build_sim(Topology::summit(2), cfg);
        let a = alloc_dev(&mut sim, 0, 8);
        let b = alloc_dev(&mut sim, 1, 8);
        let t = p2p_roundtrip(&mut sim, a, b, 0, 1);
        assert_eq!(sim.world().ucp.counters.get("ucp.eager"), 0);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.ipc"), 1);
        // Without GDRCopy even 8-byte messages pay RTS + DMA setup.
        assert!(t > us(2.5), "latency {}us", as_us(t));
    }

    #[test]
    fn unexpected_eager_then_recv() {
        let mut sim = sim2nodes();
        let a = alloc_host(&mut sim, 0, 64);
        let b = alloc_host(&mut sim, 0, 64);
        sim.world_mut().gpu.pool.write(a, &[0xEE; 64]).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 9);
        });
        // Receiver posts long after arrival.
        sim.spawn("receiver", us(50.0), move |ctx| {
            let (exp, unexp) = ctx.with_world_ref(|w, _| w.ucp.worker(1).depths());
            assert_eq!((exp, unexp), (0, 1), "message should be unexpected");
            let info = blocking::recv(ctx, 1, b, 9, MASK_FULL);
            assert_eq!(info.size, 64);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), vec![0xEE; 64]);
    }

    #[test]
    fn inline_send_probe_pop() {
        let mut sim = sim2nodes();
        sim.spawn("sender", 0, move |ctx| {
            ctx.with_world(|w, s| {
                tag_send_nb(
                    w,
                    s,
                    0,
                    1,
                    SendBuf::bytes(vec![1, 2, 3, 4]),
                    0xABCD,
                    Completion::None,
                );
            });
        });
        let got = std::sync::Arc::new(rucx_compat::sync::Mutex::new(None));
        let got2 = got.clone();
        sim.spawn("receiver", 0, move |ctx| loop {
            let popped = ctx.with_world(|w, s| {
                let r = probe_pop(w, 1, 0, MASK_NONE);
                let seen = s.notify_epoch(w.ucp.worker(1).notify);
                (
                    r.map(|m| {
                        let (src, tag, bytes, _) =
                            m.into_eager().expect("small host message is eager");
                        (bytes, tag, src)
                    }),
                    seen,
                )
            });
            match popped {
                (Some(m), _) => {
                    *got2.lock() = Some(m);
                    break;
                }
                (None, seen) => {
                    let n = ctx.with_world_ref(|w, _| w.ucp.worker(1).notify);
                    ctx.wait_notify(n, seen);
                }
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let (bytes, tag, src) = got.lock().take().unwrap();
        assert_eq!(bytes, Some(vec![1, 2, 3, 4]));
        assert_eq!(tag, 0xABCD);
        assert_eq!(src, 0);
    }

    #[test]
    fn rndv_probe_then_fetch_bytes() {
        let mut sim = sim2nodes();
        let big = pattern(100_000, 2);
        let big2 = big.clone();
        sim.spawn("sender", 0, move |ctx| {
            ctx.with_world(move |w, s| {
                tag_send_nb(w, s, 0, 6, SendBuf::bytes(big2), 5, Completion::None);
            });
        });
        let got = std::sync::Arc::new(rucx_compat::sync::Mutex::new(None));
        let got2 = got.clone();
        sim.spawn("receiver", 0, move |ctx| {
            let n = ctx.with_world_ref(|w, _| w.ucp.worker(6).notify);
            loop {
                let (popped, seen) = ctx.with_world(|w, s| {
                    (
                        probe_pop(w, 6, 5, MASK_FULL),
                        s.notify_epoch(w.ucp.worker(6).notify),
                    )
                });
                match popped {
                    Some(m) => {
                        let (src, tag, rts_id, size) =
                            m.into_rndv().expect("100 KB message is rendezvous");
                        assert_eq!(size, 100_000);
                        assert_eq!(src, 0);
                        let done = ctx.with_world(move |w, s| {
                            let t = s.new_trigger();
                            let got3 = got2.clone();
                            rndv_fetch(
                                w,
                                s,
                                6,
                                tag,
                                rts_id,
                                FetchDst::Bytes,
                                RecvCompletion::Bytes(Box::new(move |_, s, bytes, _| {
                                    *got3.lock() = bytes;
                                    s.fire(t);
                                })),
                            )
                            .expect("announced rendezvous must fetch");
                            t
                        });
                        ctx.wait(done);
                        break;
                    }
                    None => ctx.wait_notify(n, seen),
                }
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(got.lock().take().unwrap(), big);
        assert_eq!(sim.world().ucp.inflight_rndv(), 0);
    }

    #[test]
    fn eager_truncation_surfaces_on_status_and_preserves_prefix() {
        let mut sim = sim2nodes();
        let a = alloc_host(&mut sim, 0, 64);
        let b = alloc_host(&mut sim, 0, 32);
        let data = pattern(64, 5);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 3);
        });
        sim.spawn("receiver", 0, move |ctx| {
            let info = blocking::recv(ctx, 1, b, 3, MASK_FULL);
            // The status reports the wire size and flags the truncation.
            assert_eq!(info.size, 64);
            assert!(info.truncated, "eager overflow must not silently succeed");
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data[..32]);
        assert_eq!(sim.world().ucp.counters.get("ucp.truncated"), 1);
    }

    #[test]
    fn rndv_truncation_surfaces_on_status() {
        let mut sim = sim2nodes();
        let size = 1u64 << 20;
        let a = alloc_host(&mut sim, 0, size);
        let b = alloc_host(&mut sim, 1, size / 2);
        let data = pattern(size as usize, 11);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 6, SendBuf::Mem(a), 4);
        });
        sim.spawn("receiver", 0, move |ctx| {
            let info = blocking::recv(ctx, 6, b, 4, MASK_FULL);
            assert_eq!(info.size, size);
            assert!(info.truncated, "rndv overflow must not silently succeed");
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(
            sim.world().gpu.pool.read(b).unwrap(),
            data[..size as usize / 2]
        );
        assert_eq!(sim.world().ucp.counters.get("ucp.truncated"), 1);
    }

    #[test]
    fn pipeline_truncation_surfaces_on_status() {
        // Inter-node device-device rendezvous takes the pipelined path;
        // a short receive buffer must still flag truncation.
        let mut sim = sim2nodes();
        let size = 4u64 << 20;
        let a = alloc_dev(&mut sim, 0, size);
        let b = alloc_dev(&mut sim, 6, size / 4);
        let data = pattern(size as usize, 13);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 6, SendBuf::Mem(a), 8);
        });
        sim.spawn("receiver", 0, move |ctx| {
            let info = blocking::recv(ctx, 6, b, 8, MASK_FULL);
            assert_eq!(info.size, size);
            assert!(info.truncated);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.pipeline"), 1);
        assert_eq!(sim.world().ucp.counters.get("ucp.truncated"), 1);
    }

    #[test]
    fn exact_fit_is_not_truncated() {
        let mut sim = sim2nodes();
        let a = alloc_host(&mut sim, 0, 64);
        let b = alloc_host(&mut sim, 0, 64);
        sim.world_mut().gpu.pool.write(a, &[1u8; 64]).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 3);
        });
        sim.spawn("receiver", 0, move |ctx| {
            let info = blocking::recv(ctx, 1, b, 3, MASK_FULL);
            assert!(!info.truncated);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().ucp.counters.get("ucp.truncated"), 0);
    }

    #[test]
    fn prop_truncation_iff_wire_exceeds_buffer() {
        // Across protocols (eager vs rendezvous is a function of size) and
        // arbitrary send/recv sizes: `truncated` on the completed request
        // is exactly `wire_size > recv_buf.len`, and the delivered prefix
        // is always intact.
        rucx_compat::check::check_with("ucp.truncation_iff_overflow", 16, |g| {
            let send = g.u64(1..128 * 1024);
            let recv = g.u64(1..128 * 1024);
            let mut sim = sim2nodes();
            let a = alloc_host(&mut sim, 0, send);
            let b = alloc_host(&mut sim, 1, recv);
            let data = pattern(send as usize, g.any_u8());
            sim.world_mut().gpu.pool.write(a, &data).unwrap();
            sim.spawn("sender", 0, move |ctx| {
                blocking::send(ctx, 0, 6, SendBuf::Mem(a), 1);
            });
            sim.spawn("receiver", 0, move |ctx| {
                let info = blocking::recv(ctx, 6, b, 1, MASK_FULL);
                assert_eq!(info.size, send);
                assert_eq!(info.truncated, send > recv);
            });
            assert_eq!(sim.run(), RunOutcome::Completed);
            let n = send.min(recv) as usize;
            assert_eq!(
                sim.world().gpu.pool.read(b).unwrap()[..n],
                data[..n],
                "delivered prefix must be intact (send={send} recv={recv})"
            );
        });
    }

    #[test]
    fn tag_mask_separates_streams() {
        // Two messages with different high bits; receiver picks them out of
        // order using masks.
        let mut sim = sim2nodes();
        let b1 = alloc_host(&mut sim, 0, 8);
        let b2 = alloc_host(&mut sim, 0, 8);
        let h1 = alloc_host(&mut sim, 0, 8);
        let h2 = alloc_host(&mut sim, 0, 8);
        sim.world_mut().gpu.pool.write(h1, &[1; 8]).unwrap();
        sim.world_mut().gpu.pool.write(h2, &[2; 8]).unwrap();
        let kind_a = 0x1000_0000_0000_0000u64;
        let kind_b = 0x2000_0000_0000_0000u64;
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(h1), kind_a | 7);
            blocking::send(ctx, 0, 1, SendBuf::Mem(h2), kind_b | 9);
        });
        sim.spawn("receiver", 0, move |ctx| {
            let mask = 0xF000_0000_0000_0000u64;
            // Receive kind B first despite arrival order.
            let ib = blocking::recv(ctx, 1, b2, kind_b, mask);
            assert_eq!(ib.tag, kind_b | 9);
            let ia = blocking::recv(ctx, 1, b1, kind_a, mask);
            assert_eq!(ia.tag, kind_a | 7);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b1).unwrap(), vec![1; 8]);
        assert_eq!(sim.world().gpu.pool.read(b2).unwrap(), vec![2; 8]);
    }

    #[test]
    fn posted_recv_before_rts_fetches_immediately() {
        let mut sim = sim2nodes();
        let size = 256u64 << 10;
        let a = alloc_dev(&mut sim, 0, size);
        let b = alloc_dev(&mut sim, 1, size);
        let data = pattern(size as usize, 4);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        // Receiver posts at t=0; sender sends at t=20us.
        sim.spawn("receiver", 0, move |ctx| {
            let info = blocking::recv(ctx, 1, b, 77, MASK_FULL);
            assert_eq!(info.size, size);
        });
        sim.spawn("sender", us(20.0), move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 77);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().gpu.pool.read(b).unwrap(), data);
    }

    #[test]
    fn sender_rndv_completion_waits_for_ats() {
        let mut sim = sim2nodes();
        let size = 1u64 << 20;
        let a = alloc_dev(&mut sim, 0, size);
        let b = alloc_dev(&mut sim, 1, size);
        let send_done = std::sync::Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let recv_done = std::sync::Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let sd = send_done.clone();
        let rd = recv_done.clone();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 1);
            *sd.lock() = ctx.now();
        });
        sim.spawn("receiver", 0, move |ctx| {
            blocking::recv(ctx, 1, b, 1, MASK_FULL);
            *rd.lock() = ctx.now();
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let (s_t, r_t) = (*send_done.lock(), *recv_done.lock());
        assert!(
            s_t > r_t,
            "sender {s_t} completes after receiver {r_t} (ATS)"
        );
    }

    #[test]
    fn phantom_payload_times_like_real_data() {
        let mut sim_a = sim2nodes();
        let mut sim_b = sim2nodes();
        let size = 2u64 << 20;
        let a1 = alloc_dev(&mut sim_a, 0, size);
        let b1 = alloc_dev(&mut sim_a, 6, size);
        let t_real = p2p_roundtrip(&mut sim_a, a1, b1, 0, 6);
        let a2 = sim_b
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), size, false)
            .unwrap();
        let b2 = sim_b
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(6), size, false)
            .unwrap();
        let t_phantom = p2p_roundtrip(&mut sim_b, a2, b2, 0, 6);
        assert_eq!(t_real, t_phantom);
    }

    // ---- Reliability protocol & fault injection -------------------------

    fn chaos_sim(spec: rucx_fault::FaultSpec) -> MSim {
        let mut cfg = MachineConfig::default();
        cfg.fault = Some(spec);
        build_sim(Topology::summit(2), cfg)
    }

    #[test]
    fn into_eager_and_into_rndv_are_typed_not_panics() {
        // Regression pin for the former `panic!("expected eager")` /
        // `panic!("expected rndv")` paths: protocol mismatch is a value.
        let eager = PoppedMsg::Eager {
            src: 3,
            tag: 7,
            bytes: None,
            wire_size: 8,
        };
        let rndv = PoppedMsg::Rndv {
            src: 4,
            tag: 9,
            rts_id: 1,
            size: 1 << 20,
        };
        assert_eq!(eager.protocol(), Protocol::Eager);
        assert_eq!(rndv.protocol(), Protocol::Rndv);
        match eager.into_rndv() {
            Err(UcpError::ProtocolMismatch {
                expected: Protocol::Rndv,
                got: Protocol::Eager,
                src: 3,
                tag: 7,
            }) => {}
            other => panic!("want typed mismatch, got {other:?}"),
        }
        match rndv.into_eager() {
            Err(UcpError::ProtocolMismatch {
                expected: Protocol::Eager,
                got: Protocol::Rndv,
                src: 4,
                tag: 9,
            }) => {}
            other => panic!("want typed mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_rendezvous_fetch_fails_without_hanging() {
        let mut sim = sim2nodes();
        let fired = std::sync::Arc::new(rucx_compat::sync::Mutex::new(None));
        let fired2 = fired.clone();
        let err = crate::machine::with_parts(&mut sim, |w, s| {
            rndv_fetch(
                w,
                s,
                1,
                5,
                999, // never announced
                FetchDst::Bytes,
                RecvCompletion::Callback(Box::new(move |_, _, info| {
                    *fired2.lock() = Some(info);
                })),
            )
        });
        assert_eq!(err, Err(UcpError::UnknownRendezvous { rts_id: 999 }));
        // The completion fired immediately with a zero-size status — no
        // waiter can hang on a failed fetch.
        let info = fired.lock().take().expect("completion must fire");
        assert_eq!(info.size, 0);
        assert_eq!(
            sim.world_mut().ucp.worker_mut(1).take_error(),
            Some(UcpError::UnknownRendezvous { rts_id: 999 })
        );
    }

    #[test]
    fn chaos_drops_recover_by_retransmission() {
        // 20% drop on every link: eager and rendezvous traffic both arrive
        // intact, paid for in retries, with no envelope leaked.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.seed = 11;
        spec.drop_p = 0.2;
        let mut sim = chaos_sim(spec);
        let n_eager = 16usize;
        let eager_size = 4096u64;
        let rndv_size = 1u64 << 20;
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        for i in 0..n_eager + 1 {
            let size = if i < n_eager { eager_size } else { rndv_size };
            let a = alloc_host(&mut sim, 0, size);
            let b = alloc_host(&mut sim, 1, size);
            let data = pattern(size as usize, i as u8);
            sim.world_mut().gpu.pool.write(a, &data).unwrap();
            srcs.push(a);
            dsts.push((b, data));
        }
        let senders = srcs.clone();
        sim.spawn("sender", 0, move |ctx| {
            for (i, a) in senders.into_iter().enumerate() {
                blocking::send(ctx, 0, 6, SendBuf::Mem(a), i as u64);
            }
        });
        let n_msgs = dsts.len();
        let recv_bufs: Vec<_> = dsts.iter().map(|(b, _)| *b).collect();
        sim.spawn("receiver", 0, move |ctx| {
            for (i, b) in recv_bufs.into_iter().enumerate() {
                let info = blocking::recv(ctx, 6, b, i as u64, MASK_FULL);
                assert!(!info.truncated);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let m = sim.world();
        for (i, (b, data)) in dsts.iter().enumerate() {
            assert_eq!(&m.gpu.pool.read(*b).unwrap(), data, "message {i} corrupted");
        }
        let drops = m.ucp.counters.get("fault.drop");
        let retries = m.ucp.counters.get("ucp.retry");
        assert!(drops > 0, "seeded spec must actually drop");
        assert!(retries > 0, "drops must be recovered by retries");
        assert_eq!(m.ucp.counters.get("ucp.unreachable"), 0);
        assert_eq!(m.ucp.inflight_tracked(), 0, "tracked envelopes leaked");
        assert_eq!(m.ucp.inflight_rndv(), 0);
        assert_eq!(n_msgs, n_eager + 1);
    }

    #[test]
    fn chaos_duplicates_are_suppressed_exactly_once() {
        // 40% duplication: every envelope may arrive twice, but each
        // message is delivered to the matching engine exactly once.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.seed = 5;
        spec.dup_p = 0.4;
        let mut sim = chaos_sim(spec);
        let n = 12usize;
        let mut bufs = Vec::new();
        for i in 0..n {
            let a = alloc_host(&mut sim, 0, 512);
            let b = alloc_host(&mut sim, 1, 512);
            let data = pattern(512, i as u8);
            sim.world_mut().gpu.pool.write(a, &data).unwrap();
            bufs.push((a, b, data));
        }
        let senders: Vec<_> = bufs.iter().map(|(a, _, _)| *a).collect();
        sim.spawn("sender", 0, move |ctx| {
            for (i, a) in senders.into_iter().enumerate() {
                blocking::send(ctx, 0, 6, SendBuf::Mem(a), i as u64);
            }
        });
        let recvs: Vec<_> = bufs.iter().map(|(_, b, _)| *b).collect();
        sim.spawn("receiver", 0, move |ctx| {
            for (i, b) in recvs.into_iter().enumerate() {
                blocking::recv(ctx, 6, b, i as u64, MASK_FULL);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let m = sim.world();
        for (i, (_, b, data)) in bufs.iter().enumerate() {
            assert_eq!(&m.gpu.pool.read(*b).unwrap(), data, "message {i}");
        }
        assert!(m.ucp.counters.get("fault.duplicate") > 0);
        assert!(
            m.ucp.counters.get("ucp.dup_drop") > 0,
            "duplicated envelopes must be sequence-suppressed"
        );
        assert_eq!(m.ucp.inflight_tracked(), 0);
    }

    #[test]
    fn partition_exhausts_retries_into_typed_error() {
        // A permanent partition with a tiny retry budget: the rendezvous
        // sender's request still completes (never hangs) and the typed
        // endpoint-timeout error lands on its worker.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.partitions.push(rucx_fault::PartitionWindow {
            from: 0,
            until: u64::MAX,
        });
        let mut cfg = MachineConfig::default();
        cfg.ucp.max_retries = 2;
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        let size = 1u64 << 20;
        let a = alloc_host(&mut sim, 0, size);
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 6, SendBuf::Mem(a), 1);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let m = sim.world_mut();
        assert!(m.ucp.counters.get("ucp.unreachable") >= 1);
        assert_eq!(m.ucp.inflight_rndv(), 0, "failed rendezvous must retire");
        assert_eq!(m.ucp.inflight_tracked(), 0);
        match m.ucp.worker_mut(0).take_error() {
            Some(UcpError::EndpointTimeout {
                src: 0,
                dst: 6,
                tag: 1,
                attempts,
                ..
            }) => assert_eq!(attempts, 3, "original + 2 retries"),
            other => panic!("want endpoint timeout, got {other:?}"),
        }
    }

    #[test]
    fn partition_heal_delivers_exactly_once_in_order() {
        // A partition long enough to exhaust every envelope's retry budget,
        // healed by a `heal=0-1@T` event: the health layer parks the
        // envelopes on the Dead endpoint, keepalive probes detect the heal,
        // and every message is delivered exactly once, in send order, with
        // nothing abandoned.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.partitions.push(rucx_fault::PartitionWindow {
            from: 0,
            until: u64::MAX,
        });
        spec.heal.push(rucx_fault::HealEvent {
            a: 0,
            b: 1,
            at: us(1_200.0),
        });
        let mut cfg = MachineConfig::default();
        cfg.ucp.max_retries = 2; // exhaust fast, park early
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        let n = 6usize;
        let mut bufs = Vec::new();
        for i in 0..n {
            let a = alloc_host(&mut sim, 0, 512);
            let b = alloc_host(&mut sim, 1, 512);
            let data = pattern(512, i as u8);
            sim.world_mut().gpu.pool.write(a, &data).unwrap();
            bufs.push((a, b, data));
        }
        let senders: Vec<_> = bufs.iter().map(|(a, _, _)| *a).collect();
        sim.spawn("sender", 0, move |ctx| {
            for (i, a) in senders.into_iter().enumerate() {
                blocking::send(ctx, 0, 6, SendBuf::Mem(a), i as u64);
            }
        });
        let recvs: Vec<_> = bufs.iter().map(|(_, b, _)| *b).collect();
        let order = std::sync::Arc::new(rucx_compat::sync::Mutex::new(Vec::new()));
        let order2 = order.clone();
        sim.spawn("receiver", 0, move |ctx| {
            for (i, b) in recvs.into_iter().enumerate() {
                blocking::recv(ctx, 6, b, i as u64, MASK_FULL);
                order2.lock().push(i);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let m = sim.world();
        for (i, (_, b, data)) in bufs.iter().enumerate() {
            assert_eq!(&m.gpu.pool.read(*b).unwrap(), data, "message {i}");
        }
        assert_eq!(
            *order.lock(),
            (0..n).collect::<Vec<_>>(),
            "post-heal delivery must preserve send order"
        );
        assert_eq!(m.ucp.counters.get("ucp.unreachable"), 0);
        assert_eq!(m.ucp.counters.get("ucp.giveup"), 0);
        assert!(m.ucp.counters.get("ucp.parked") >= 1, "budget must exhaust");
        assert!(m.ucp.counters.get("ucp.ep.dead") >= 1);
        assert!(m.ucp.counters.get("ucp.ep.healed") >= 1);
        assert!(m.ucp.counters.get("ucp.probe") >= 1);
        assert!(m.ucp.counters.get("ucp.probe_ack") >= 1);
        assert_eq!(m.ucp.inflight_tracked(), 0);
        assert_eq!(m.ucp.health.state(0, 6), EpState::Healthy);
    }

    #[test]
    fn suspect_then_recover_returns_to_healthy() {
        // Heavy drop, generous retries: endpoints go Suspect from
        // consecutive timeouts but recover to Healthy on the next ack
        // without ever dying.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.seed = 9;
        spec.drop_p = 0.6;
        let mut sim = chaos_sim(spec);
        let a = alloc_host(&mut sim, 0, 512);
        let b = alloc_host(&mut sim, 1, 512);
        let data = pattern(512, 3);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 6, SendBuf::Mem(a), 1);
        });
        sim.spawn("receiver", 0, move |ctx| {
            blocking::recv(ctx, 6, b, 1, MASK_FULL);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let m = sim.world();
        assert_eq!(m.gpu.pool.read(b).unwrap(), data);
        assert_eq!(m.ucp.counters.get("ucp.unreachable"), 0);
        assert_eq!(m.ucp.health.state(0, 6), EpState::Healthy);
    }

    #[test]
    fn link_degrade_reroutes_pipeline_chunks() {
        // A degrade window on the inter-node link: the engine steers
        // pipeline chunks onto the less-backlogged rail and counts each
        // steered chunk as a reroute. The identical clean run never bumps
        // the counter (gated in scripts/check.sh too).
        let run = |degrade: bool| {
            let mut spec = rucx_fault::FaultSpec::default();
            if degrade {
                spec.degrade.push(rucx_fault::DegradeWindow {
                    from: 0,
                    until: u64::MAX,
                    factor: 0.25,
                });
            }
            let mut cfg = MachineConfig::default();
            cfg.fault = Some(spec);
            let mut sim = build_sim(Topology::summit(2), cfg);
            let size = 4u64 << 20; // 8 pipeline chunks at the default 512K
            let a = alloc_dev(&mut sim, 0, size);
            let b = alloc_dev(&mut sim, 6, size);
            sim.spawn("sender", 0, move |ctx| {
                blocking::send(ctx, 0, 6, SendBuf::Mem(a), 1);
            });
            sim.spawn("receiver", 0, move |ctx| {
                blocking::recv(ctx, 6, b, 1, MASK_FULL);
            });
            assert_eq!(sim.run(), RunOutcome::Completed);
            let m = sim.world();
            assert!(m.ucp.counters.get("ucp.pipeline_chunks") >= 2);
            m.ucp.counters.get("ucp.reroute")
        };
        assert_eq!(run(false), 0, "clean runs must never reroute");
        assert!(run(true) >= 1, "degraded link must steer chunks");
    }

    #[test]
    fn gpu_copy_engine_failure_degrades_to_host_staging() {
        // Device 0's copy engine fails at t=0: a small device message that
        // would take the GDRCopy eager path degrades to rendezvous staging,
        // and the data still arrives intact.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.gpu_fail.push(rucx_fault::GpuFail { device: 0, at: 0 });
        let mut sim = chaos_sim(spec);
        let a = alloc_dev(&mut sim, 0, 2048);
        let b = alloc_dev(&mut sim, 1, 2048);
        let data = pattern(2048, 21);
        sim.world_mut().gpu.pool.write(a, &data).unwrap();
        sim.spawn("sender", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 2);
        });
        sim.spawn("receiver", 0, move |ctx| {
            blocking::recv(ctx, 1, b, 2, MASK_FULL);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let m = sim.world();
        assert_eq!(m.gpu.pool.read(b).unwrap(), data);
        assert_eq!(m.ucp.counters.get("ucp.eager"), 0, "eager GDRCopy refused");
        assert!(m.ucp.counters.get("ucp.fallback.host_staged") >= 1);
        assert!(m.ucp.counters.get("fault.gpu_degraded") >= 1);
        assert_eq!(
            m.ucp.counters.get("ucp.rndv.staged_intra"),
            1,
            "degraded device-device intra transfer takes the staged rung"
        );
    }

    #[test]
    fn chaos_replay_is_byte_identical() {
        // Same seed + same spec => identical fault counters, retry counts,
        // and virtual completion time.
        let run = || {
            let mut spec = rucx_fault::FaultSpec::default();
            spec.seed = 77;
            spec.drop_p = 0.1;
            spec.dup_p = 0.05;
            spec.delay_p = 0.1;
            spec.corrupt_p = 0.05;
            let mut sim = chaos_sim(spec);
            let mut pairs = Vec::new();
            for i in 0..10u64 {
                let a = alloc_host(&mut sim, 0, 4096);
                let b = alloc_host(&mut sim, 1, 4096);
                let data = pattern(4096, i as u8);
                sim.world_mut().gpu.pool.write(a, &data).unwrap();
                pairs.push((a, b));
            }
            let srcs: Vec<_> = pairs.iter().map(|(a, _)| *a).collect();
            sim.spawn("sender", 0, move |ctx| {
                for (i, a) in srcs.into_iter().enumerate() {
                    blocking::send(ctx, 0, 6, SendBuf::Mem(a), i as u64);
                }
            });
            let dsts: Vec<_> = pairs.iter().map(|(_, b)| *b).collect();
            let end = std::sync::Arc::new(rucx_compat::sync::Mutex::new(0u64));
            let end2 = end.clone();
            sim.spawn("receiver", 0, move |ctx| {
                for (i, b) in dsts.into_iter().enumerate() {
                    blocking::recv(ctx, 6, b, i as u64, MASK_FULL);
                }
                *end2.lock() = ctx.now();
            });
            assert_eq!(sim.run(), RunOutcome::Completed);
            let m = sim.world();
            let end_at = *end.lock();
            (
                end_at,
                m.ucp.counters.get("fault.drop"),
                m.ucp.counters.get("fault.duplicate"),
                m.ucp.counters.get("fault.delay"),
                m.ucp.counters.get("fault.corrupt"),
                m.ucp.counters.get("ucp.retry"),
                m.ucp.counters.get("ucp.timeout"),
                m.faults.injected(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "chaos run must replay identically from its seed");
        assert!(a.7 > 0, "spec must inject something for the test to bite");
    }

    #[test]
    fn send_from_freed_handle_surfaces_typed_error() {
        let mut sim = sim2nodes();
        let a = alloc_host(&mut sim, 0, 64);
        sim.world_mut().gpu.pool.free(a.id).unwrap();
        sim.spawn("s", 0, move |ctx| {
            // Completes immediately with nothing sent — no panic, no hang.
            blocking::send(ctx, 0, 6, SendBuf::Mem(a), 1);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let m = sim.world_mut();
        assert_eq!(m.ucp.counters.get("ucp.bad_handle"), 1);
        match m.ucp.take_worker_error(0) {
            Some(UcpError::InvalidHandle { op, proc }) => {
                assert_eq!(op, "tag_send_nb");
                assert_eq!(proc, 0);
            }
            other => panic!("expected InvalidHandle, got {other:?}"),
        }
    }

    #[test]
    fn blocking_latency_echo_is_symmetric() {
        // Ping-pong: one-way latency equals half the round trip.
        let mut sim = sim2nodes();
        let a_s = alloc_host(&mut sim, 0, 8);
        let a_r = alloc_host(&mut sim, 0, 8);
        let b_s = alloc_host(&mut sim, 0, 8);
        let b_r = alloc_host(&mut sim, 0, 8);
        let rtt = std::sync::Arc::new(rucx_compat::sync::Mutex::new(0u64));
        let rtt2 = rtt.clone();
        sim.spawn("p0", 0, move |ctx| {
            let t0 = ctx.now();
            blocking::send(ctx, 0, 1, SendBuf::Mem(a_s), 1);
            blocking::recv(ctx, 0, a_r, 2, MASK_FULL);
            *rtt2.lock() = ctx.now() - t0;
        });
        sim.spawn("p1", 0, move |ctx| {
            blocking::recv(ctx, 1, b_r, 1, MASK_FULL);
            blocking::send(ctx, 1, 0, SendBuf::Mem(b_s), 2);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let rtt = *rtt.lock();
        assert!(rtt > us(1.0) && rtt < us(6.0), "rtt {}us", as_us(rtt));
    }
}
