//! The protocol engine: every eager/rendezvous/chunk/path decision the UCP
//! layer makes, in one place, expressed through a [`PathPlan`].
//!
//! The static table in [`crate::UcpConfig`] (eager thresholds, pipeline
//! chunk, GDR on/off) reproduces the paper's frozen Summit configuration.
//! This module layers three things on top of it:
//!
//! 1. **A single decision surface.** Protocol selection used to be smeared
//!    across `proto.rs` (`tag_send_nb`'s inline threshold check, the
//!    `fetch_*` family's per-rung branching). All of it now routes through
//!    here: [`plan_send`] decides eager vs rendezvous, the fetch paths
//!    decide transport rung, chunking, and striping.
//! 2. **Striped multi-path rendezvous.** Following Sojoodi et al.
//!    (PAPERS.md), a large intra-node device-to-device fetch is split into
//!    per-path legs driven concurrently over NVLink and the X-Bus (or the
//!    X-Bus plus a pinned-host bounce when the peers sit on different
//!    sockets), with per-chunk completion events merged through a shared
//!    countdown so the finalizer runs exactly once, at the completion of
//!    the slowest leg.
//! 3. **An online autotuner.** Per-endpoint state — RTT observed from
//!    reliability-ack timing (first transmissions only, per Karn's rule),
//!    and a signed *lag* EWMA of observed-minus-modeled rendezvous
//!    completion — feeds an integer closed-form cost model that re-solves
//!    the eager threshold over a power-of-two ladder at a seeded,
//!    per-endpoint staggered cadence. The ladder inherently clamps the
//!    knob, so a noisy signal (chaos runs) cannot oscillate it
//!    unboundedly. Everything is virtual-time-driven and seeded: results
//!    are byte-identical across runs, shard counts, and scheduler
//!    backends.
//!
//! With `autotune` and `multipath` off and transfers below
//! `multipath_min`, the engine reproduces the static table bit-for-bit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rucx_fabric::{net_transfer, WireKind};
use rucx_fault::metrics as fm;
use rucx_gpu::{CopyPath, DeviceId, MemKind};
use rucx_sim::time::{transfer_time, Duration, Time};

use crate::error::Protocol;
use crate::machine::Machine;
use crate::metrics as m;
use crate::proto::shm_occupy;
use crate::worker::MSched;

/// One leg of a striped transfer (re-exported from the GPU layer, which
/// accounts the concurrent link occupancy).
pub type Stripe = rucx_gpu::ops::StripedLeg;

/// The engine's decision for one transfer: which protocol carries it, what
/// chunk size its staged paths use, and (for intra-node device pairs) which
/// concurrent legs stripe it. `stripes` is empty for single-path transfers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPlan {
    pub protocol: Protocol,
    pub chunk: u64,
    pub stripes: Vec<Stripe>,
}

/// NIC rail a process uses by default: its CPU socket (Summit: dual-rail,
/// one port per socket).
pub(crate) fn rail(w: &Machine, proc: usize) -> usize {
    w.topo.socket_of(proc)
}

/// Least-backlogged TX rail on `node` at `now`, preferring `prefer` on
/// ties. This is how the autotuned pipeline spreads chunks across both of a
/// node's rails instead of serializing on the socket rail.
pub(crate) fn balanced_rail(w: &Machine, node: usize, prefer: usize, now: Time) -> usize {
    let rails = w.net.params.rails_per_node.max(1);
    let mut best = prefer % rails;
    let mut best_backlog = w.net.tx_backlog(node, best, now);
    for r in 0..rails {
        let b = w.net.tx_backlog(node, r, now);
        if b < best_backlog {
            best = r;
            best_backlog = b;
        }
    }
    best
}

/// Whether `dev`'s GPU-direct paths (GDRCopy window, CUDA IPC mapping,
/// GPUDirect RDMA) are usable, degrading onto the host-staged ladder rung
/// when the fault spec has failed the device's copy engine. Each refusal is
/// observable: metric bump plus a trace instant at the affected process.
pub(crate) fn gpu_direct_ok(
    w: &mut Machine,
    s: &mut MSched,
    dev: DeviceId,
    proc: usize,
    size: u64,
) -> bool {
    if w.faults.enabled() && w.faults.gpudirect_lost(dev.index() as u32, s.now()) {
        w.ucp.counters.bump(fm::GPU_DEGRADED);
        w.ucp.counters.bump(m::FALLBACK_HOST_STAGED);
        s.trace_instant(
            "ucp.fallback.host_staged",
            proc as u32,
            dev.index() as u64,
            size,
        );
        return false;
    }
    true
}

// ---------------------------------------------------------------------------
// Per-endpoint tuning state
// ---------------------------------------------------------------------------

/// Traffic class index: host payloads vs device payloads (their eager
/// thresholds tune independently).
fn class_idx(device: bool) -> usize {
    usize::from(device)
}

/// Per-(sender, receiver) adaptive state.
struct EndpointTune {
    /// EWMA of clean ack round trips (ns); Karn-filtered.
    rtt_ewma: u64,
    rtt_samples: u64,
    /// Signed EWMA (α = 1/8) of observed-minus-modeled rendezvous
    /// completion per class, clamped so one pathological sample (a
    /// late-posted receive, a chaos retry storm) cannot swing the solver.
    lag: [i64; 2],
    /// Rendezvous completions observed per class.
    obs: [u64; 2],
    /// Tuned eager threshold per class; `None` until the first re-solve.
    eager: [Option<u64>; 2],
    /// Re-solve cadence in observations, staggered per endpoint from the
    /// seed so a fleet of endpoints does not re-solve in lockstep.
    period: u64,
}

/// Per-endpoint protocol state: observed RTTs, rendezvous lag, and the
/// autotuned knobs derived from them. Keyed, never iterated — map order
/// cannot leak into the schedule.
pub struct ProtocolEngine {
    seed: u64,
    eps: HashMap<(u32, u32), EndpointTune>,
}

/// splitmix64-style finalizer for deterministic per-endpoint staggering.
fn mix(seed: u64, a: u32, b: u32) -> u64 {
    let mut z = seed ^ ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounds on any lag sample fed into the EWMA (ns). The lower bound keeps a
/// model overestimate from inflating eagerness; the upper keeps one stalled
/// completion from collapsing it.
const LAG_CLAMP: (i64, i64) = (-5_000, 100_000);

impl ProtocolEngine {
    pub(crate) fn new(seed: u64) -> Self {
        ProtocolEngine {
            seed,
            eps: HashMap::new(),
        }
    }

    fn ep_mut(&mut self, key: (u32, u32)) -> &mut EndpointTune {
        let seed = self.seed;
        self.eps.entry(key).or_insert_with(|| EndpointTune {
            rtt_ewma: 0,
            rtt_samples: 0,
            lag: [0; 2],
            obs: [0; 2],
            eager: [None; 2],
            period: 4 + (mix(seed, key.0, key.1) & 3),
        })
    }

    /// Feed one clean (first-transmission) ack round trip for `key`.
    /// Public so model layers (and their tests) can prime the tuner with
    /// out-of-band measurements.
    pub fn observe_rtt(&mut self, key: (u32, u32), rtt: u64) {
        let ep = self.ep_mut(key);
        ep.rtt_ewma = if ep.rtt_samples == 0 {
            rtt
        } else {
            ep.rtt_ewma + (rtt.max(ep.rtt_ewma) - ep.rtt_ewma) / 8
                - (ep.rtt_ewma.saturating_sub(rtt)) / 8
        };
        ep.rtt_samples += 1;
    }

    /// Karn-filtered RTT EWMA for an endpoint; `None` before any sample.
    pub fn rtt(&self, key: (u32, u32)) -> Option<u64> {
        self.eps
            .get(&key)
            .filter(|ep| ep.rtt_samples > 0)
            .map(|ep| ep.rtt_ewma)
    }

    /// Best observed RTT EWMA across *cross-node* endpoint pairs whose both
    /// ends are communicator participants (`rank < n`). Collective cost
    /// estimators use this so any participating pair's traffic — not just
    /// rank 0's — refreshes the inter-node alpha. Taking the minimum over a
    /// `HashMap` iteration is order-independent, so determinism holds.
    pub fn cross_node_rtt(&self, topo: &rucx_fabric::Topology, n: usize) -> Option<u64> {
        self.eps
            .iter()
            .filter(|&(&(a, b), ep)| {
                ep.rtt_samples > 0
                    && (a as usize) < n
                    && (b as usize) < n
                    && !topo.same_node(a as usize, b as usize)
            })
            .min_by_key(|&(&k, ep)| (ep.rtt_ewma, k))
            .map(|(_, ep)| ep.rtt_ewma)
    }

    /// The tuned eager threshold for an endpoint and class, if one has been
    /// solved.
    pub fn tuned_eager(&self, key: (u32, u32), device: bool) -> Option<u64> {
        self.eps
            .get(&key)
            .and_then(|ep| ep.eager[class_idx(device)])
    }

    fn lag(&self, key: (u32, u32), device: bool) -> i64 {
        self.eps.get(&key).map_or(0, |ep| ep.lag[class_idx(device)])
    }
}

// ---------------------------------------------------------------------------
// Closed-form cost model
// ---------------------------------------------------------------------------

/// Where the two endpoints sit relative to each other.
#[derive(Debug, Clone, Copy)]
struct Placement {
    intra: bool,
    same_socket: bool,
}

impl Placement {
    fn of(topo: &rucx_fabric::Topology, a: usize, b: usize) -> Placement {
        Placement {
            intra: topo.same_node(a, b),
            same_socket: topo.same_socket(a, b),
        }
    }
}

/// Snapshot of every calibrated parameter the solver needs, copied out of
/// the live config so solving borrows nothing from the machine. All costs
/// are integer nanoseconds, mirroring the simulator's arithmetic exactly —
/// the solver is only trustworthy near a crossover if it computes the same
/// numbers the event paths do.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CostModel {
    proto: Duration,
    shm_latency: Duration,
    shm_gbps: f64,
    gdrcopy_base: Duration,
    gdrcopy_gbps: f64,
    eager_copy_base: Duration,
    eager_copy_gbps: f64,
    ipc_sync: Duration,
    dma_setup: Duration,
    cpu_gpu_gbps: f64,
    nvlink_gbps: f64,
    xbus_gbps: f64,
    alpha: Duration,
    nic_gbps: f64,
    rts_size: u64,
    pipeline_chunk: u64,
}

impl CostModel {
    pub(crate) fn of(w: &Machine) -> CostModel {
        let u = &w.ucp.config;
        let g = &w.gpu.params;
        let n = &w.net.params;
        CostModel {
            proto: u.proto_overhead,
            shm_latency: u.shm_latency,
            shm_gbps: u.shm_gbps,
            gdrcopy_base: u.gdrcopy_base,
            gdrcopy_gbps: u.gdrcopy_gbps,
            eager_copy_base: u.eager_copy_base,
            eager_copy_gbps: u.eager_copy_gbps,
            ipc_sync: u.ipc_sync,
            dma_setup: g.dma_setup,
            cpu_gpu_gbps: g.cpu_gpu_gbps,
            nvlink_gbps: g.nvlink_gbps,
            xbus_gbps: g.xbus_gbps,
            alpha: n.min_latency(),
            nic_gbps: n.nic_gbps,
            rts_size: u.rts_size,
            pipeline_chunk: u.pipeline_chunk,
        }
    }

    /// Modeled one-way latency of an eager send of `size` bytes: sender
    /// staging, wire, receiver copy-out.
    fn eager_cost(&self, device: bool, p: Placement, size: u64) -> u64 {
        let stage = if device {
            // GDRCopy read on the sender plus write on the receiver.
            2 * (self.gdrcopy_base + transfer_time(size, self.gdrcopy_gbps))
        } else {
            self.eager_copy_base + transfer_time(size, self.eager_copy_gbps)
        };
        self.proto + stage + self.wire(p, size)
    }

    /// Modeled one-way latency of a rendezvous of `size` bytes with the
    /// receive already posted: RTS leg plus the data fetch.
    fn rndv_cost(&self, device: bool, p: Placement, size: u64) -> u64 {
        let rts = self.proto + self.wire(p, self.rts_size);
        let fetch = match (device, p.intra) {
            (true, true) => {
                let gbps = if p.same_socket {
                    self.nvlink_gbps
                } else {
                    self.xbus_gbps
                };
                self.ipc_sync + self.dma_setup + transfer_time(size, gbps)
            }
            (true, false) => self.pipeline_total(size, self.pipeline_chunk),
            (false, true) => self.shm_latency + transfer_time(size, self.shm_gbps),
            (false, false) => self.alpha + transfer_time(size, self.nic_gbps),
        };
        rts + fetch
    }

    fn wire(&self, p: Placement, size: u64) -> u64 {
        if p.intra {
            self.shm_latency + transfer_time(size, self.shm_gbps)
        } else {
            self.alpha + transfer_time(size, self.nic_gbps)
        }
    }

    /// Modeled total of the pipelined host-staging inter-node device path:
    /// D2H staging serializes on the sender stream, the wire streams behind
    /// the first chunk (TX ports serialize transfer time only; injection is
    /// cut-through), and the last chunk pays its H2D drain after arrival.
    fn pipeline_total(&self, size: u64, chunk: u64) -> u64 {
        let chunk = chunk.clamp(1, size.max(1));
        let n = size.div_ceil(chunk);
        let last = size - (n - 1) * chunk;
        let fill = self.dma_setup + transfer_time(chunk, self.cpu_gpu_gbps);
        let staged = n * self.dma_setup + transfer_time(size, self.cpu_gpu_gbps);
        let wire = transfer_time(size, self.nic_gbps);
        let drain = self.dma_setup + transfer_time(last, self.cpu_gpu_gbps);
        self.alpha + staged.max(fill + wire) + drain
    }
}

/// Candidate eager thresholds: a power-of-two ladder. Solving over a fixed
/// ladder (instead of an unconstrained optimum) is what bounds oscillation
/// under noisy feedback — the knob can only ever sit on one of these rungs.
const EAGER_LADDER: [u64; 7] = [1024, 2048, 4096, 8192, 16384, 32768, 65536];

/// Candidate pipeline chunk sizes.
const CHUNK_LADDER: [u64; 8] = [
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Largest ladder rung at which eager still beats the (lag-corrected)
/// rendezvous model; the smallest rung when none qualifies.
fn solve_eager(model: &CostModel, p: Placement, device: bool, lag: i64) -> u64 {
    let mut best = EAGER_LADDER[0];
    for &t in &EAGER_LADDER {
        let eager = model.eager_cost(device, p, t) as i64;
        let rndv = model.rndv_cost(device, p, t) as i64 + lag;
        if eager <= rndv {
            best = t;
        }
    }
    best
}

/// Chunk size minimizing the modeled pipeline total for `size`; ties go to
/// the larger chunk (fewer events, same time).
fn solve_chunk(model: &CostModel, size: u64) -> u64 {
    let mut best = CHUNK_LADDER[CHUNK_LADDER.len() - 1];
    let mut best_t = model.pipeline_total(size, best);
    for &c in CHUNK_LADDER.iter().rev() {
        let t = model.pipeline_total(size, c);
        if t < best_t {
            best = c;
            best_t = t;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Decision surface
// ---------------------------------------------------------------------------

/// Effective eager threshold for a send from `src` to `dst`: the static
/// table, unless autotuning is on — then the endpoint's tuned value, or a
/// lag-free model solve before the first observation.
pub(crate) fn effective_eager_thresh(w: &Machine, src: usize, dst: usize, device: bool) -> u64 {
    let cfg = &w.ucp.config;
    if !cfg.autotune {
        return if device {
            cfg.eager_thresh_device
        } else {
            cfg.eager_thresh_host
        };
    }
    let key = (src as u32, dst as u32);
    if let Some(t) = w.ucp.engine.tuned_eager(key, device) {
        return t;
    }
    let model = CostModel::of(w);
    let p = Placement::of(&w.topo, src, dst);
    solve_eager(&model, p, device, w.ucp.engine.lag(key, device))
}

/// Effective pipeline chunk for a transfer of `size` bytes: static, or the
/// model's size-aware optimum under autotuning (stateless, so it needs no
/// warm-up and is identical on every shard).
pub(crate) fn effective_chunk(w: &Machine, size: u64) -> u64 {
    let cfg = &w.ucp.config;
    if !cfg.autotune {
        return cfg.pipeline_chunk;
    }
    solve_chunk(&CostModel::of(w), size)
}

/// Decide how a send of `size` bytes of `kind` memory from `src` to `dst`
/// travels. Mirrors the historical inline decision exactly, including the
/// short-circuit order: `gpu_direct_ok` (which bumps fallback counters) is
/// only consulted for device payloads already under the eager threshold.
pub(crate) fn plan_send(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    kind: MemKind,
    size: u64,
) -> PathPlan {
    let eager = if let MemKind::Device(dev) = kind {
        // The GDRCopy bounce needs the sender's copy engine; a failed one
        // degrades the message to rendezvous, whose fetch paths re-check
        // per device and land on host staging.
        w.ucp.config.gdrcopy_enabled
            && size <= effective_eager_thresh(w, src, dst, true)
            && gpu_direct_ok(w, s, dev, src, size)
    } else {
        size <= effective_eager_thresh(w, src, dst, false)
    };
    PathPlan {
        protocol: if eager {
            Protocol::Eager
        } else {
            Protocol::Rndv
        },
        chunk: effective_chunk(w, size),
        stripes: Vec::new(),
    }
}

/// Striped legs for an intra-node device-to-device fetch, or empty when the
/// transfer should ride a single path. Byte shares are proportional to the
/// legs' bandwidths so both finish together; cross-socket pairs pair the
/// X-Bus with a pinned-host bounce (which pays the CPU-GPU link twice).
fn plan_stripes(w: &Machine, sd: DeviceId, dd: DeviceId, size: u64) -> Vec<Stripe> {
    let cfg = &w.ucp.config;
    if !cfg.multipath || size < cfg.multipath_min || sd == dd {
        return Vec::new();
    }
    let g = &w.gpu.params;
    let same_socket = w.gpu.device(sd).socket == w.gpu.device(dd).socket;
    let (pa, ga, pb, gb) = if same_socket {
        (CopyPath::NvLink, g.nvlink_gbps, CopyPath::XBus, g.xbus_gbps)
    } else {
        // The bounce moves every byte twice over the CPU-GPU link, so its
        // effective rate is half that link.
        (
            CopyPath::XBus,
            g.xbus_gbps,
            CopyPath::HostPinnedLink,
            g.cpu_gpu_gbps / 2.0,
        )
    };
    let a = ((size as f64 * ga / (ga + gb)) as u64).clamp(1, size - 1);
    vec![
        Stripe { path: pa, bytes: a },
        Stripe {
            path: pb,
            bytes: size - a,
        },
    ]
}

// ---------------------------------------------------------------------------
// Observation hooks
// ---------------------------------------------------------------------------

/// Record a completed rendezvous: `sent_at` is when the sender posted it.
/// Updates the endpoint's lag EWMA and, at the endpoint's seeded cadence,
/// re-solves its eager threshold. No-op unless autotuning is on.
pub(crate) fn observe_rndv(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    device: bool,
    size: u64,
    sent_at: Time,
) {
    if !w.ucp.config.autotune {
        return;
    }
    let elapsed = s.now().saturating_sub(sent_at);
    let model = CostModel::of(w);
    let p = Placement::of(&w.topo, src, dst);
    let predicted = model.rndv_cost(device, p, size);
    let sample = (elapsed as i64 - predicted as i64).clamp(LAG_CLAMP.0, LAG_CLAMP.1);
    let key = (src as u32, dst as u32);
    let c = class_idx(device);
    let ep = w.ucp.engine.ep_mut(key);
    ep.lag[c] += (sample - ep.lag[c]) / 8;
    ep.obs[c] += 1;
    let mut adjusted = None;
    if ep.obs[c] % ep.period == 1 {
        let tuned = solve_eager(&model, p, device, ep.lag[c]);
        if ep.eager[c] != Some(tuned) {
            ep.eager[c] = Some(tuned);
            adjusted = Some(tuned);
        }
    }
    if let Some(tuned) = adjusted {
        w.ucp.counters.bump(m::TUNE_ADJUST);
        s.trace_instant("ucp.tune.adjust", src as u32, dst as u64, tuned);
    }
}

// ---------------------------------------------------------------------------
// Rendezvous fetch paths
// ---------------------------------------------------------------------------

/// Intra-node rendezvous: CUDA IPC DMA when both sides are devices
/// (striped across both links when the plan says so), a staged CPU-GPU leg
/// for mixed pairs, CMA for host-to-host.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fetch_intra<F>(
    w: &mut Machine,
    s: &mut MSched,
    src_kind: MemKind,
    dst_kind: MemKind,
    size: u64,
    recv_proc: usize,
    src_proc: usize,
    finalize: F,
) where
    F: FnOnce(&mut Machine, &mut MSched) + Send + 'static,
{
    match (src_kind, dst_kind) {
        (MemKind::Device(sd), MemKind::Device(dd)) => {
            if gpu_direct_ok(w, s, sd, src_proc, size) && gpu_direct_ok(w, s, dd, recv_proc, size) {
                let stripes = plan_stripes(w, sd, dd, size);
                if !stripes.is_empty() {
                    fetch_intra_striped(w, s, sd, dd, size, recv_proc, stripes, finalize);
                    return;
                }
                // CUDA IPC: receiver-driven peer-to-peer DMA on the
                // receiver's UCX-internal stream, contending on device
                // ports / X-Bus.
                w.ucp.counters.bump(m::RNDV_IPC);
                let stream = w.ucp.ucx_streams[recv_proc];
                let path = if sd == dd {
                    CopyPath::OnDevice
                } else if w.gpu.device(sd).socket == w.gpu.device(dd).socket {
                    CopyPath::NvLink
                } else {
                    CopyPath::XBus
                };
                let dur = w.ucp.config.ipc_sync + w.gpu.params.wire_time(path, size);
                let end = rucx_gpu::ops::occupy_transfer(w, s, sd, dd, stream, dur, size);
                s.schedule_at(end, finalize);
            } else {
                // The peer mapping needs both copy engines; a failed one
                // degrades onto the staged path.
                fetch_intra_staged(w, s, size, recv_proc, src_proc, finalize);
            }
        }
        (MemKind::Device(_), _) | (_, MemKind::Device(_)) => {
            fetch_intra_staged(w, s, size, recv_proc, src_proc, finalize);
        }
        _ => {
            // Host-to-host: CMA single copy (serial per pair).
            w.ucp.counters.bump(m::RNDV_CMA);
            let end = shm_occupy(w, src_proc, recv_proc, s.now(), size);
            s.schedule_at(end, finalize);
        }
    }
}

/// The striped multi-path fetch: occupy all legs concurrently, then emit
/// per-leg chunk-completion events and merge them through a shared
/// countdown — the finalizer runs exactly once, when the last chunk of the
/// slowest leg lands. Chunk times are a deterministic interpolation of each
/// leg's own duration, so the completion order is a pure function of the
/// plan (the property the determinism suite pins across shard counts and
/// backends).
#[allow(clippy::too_many_arguments)]
fn fetch_intra_striped<F>(
    w: &mut Machine,
    s: &mut MSched,
    sd: DeviceId,
    dd: DeviceId,
    size: u64,
    recv_proc: usize,
    stripes: Vec<Stripe>,
    finalize: F,
) where
    F: FnOnce(&mut Machine, &mut MSched) + Send + 'static,
{
    w.ucp.counters.bump(m::RNDV_MULTIPATH);
    for leg in &stripes {
        if leg.path == CopyPath::HostPinnedLink {
            // The degraded secondary leg stages through pinned host memory.
            w.gpu.counters.bump(rucx_gpu::metrics::PATH_HOST_STAGED);
        }
    }
    let chunk = effective_chunk(w, size).max(1);
    let setup = w.ucp.config.ipc_sync;
    let stream = w.ucp.ucx_streams[recv_proc];
    // Leg durations mirror `occupy_striped`'s accounting (the bounce leg
    // pays the CPU-GPU link twice); capture them before the mutable borrow.
    let durs: Vec<Duration> = stripes
        .iter()
        .map(|leg| {
            let t = w.gpu.params.wire_time(leg.path, leg.bytes);
            if leg.path == CopyPath::HostPinnedLink {
                2 * t
            } else {
                t
            }
        })
        .collect();
    let (starts, _end) = rucx_gpu::ops::occupy_striped(w, s, sd, dd, stream, setup, &stripes);

    let mut events: Vec<(Time, u64)> = Vec::new();
    for (li, leg) in stripes.iter().enumerate() {
        let n = leg.bytes.div_ceil(chunk).max(1);
        for j in 1..=n {
            // Interpolated completion of the j-th chunk; the last chunk
            // lands exactly at the leg's end.
            let t = starts[li] + durs[li] * j / n;
            let len = (j * leg.bytes / n) - ((j - 1) * leg.bytes / n);
            events.push((t, len));
        }
    }
    w.ucp.counters.add(m::MULTIPATH_CHUNKS, events.len() as u64);

    let remaining = Arc::new(AtomicU64::new(events.len() as u64));
    let finalize = Arc::new(Mutex::new(Some(finalize)));
    for (i, (t, len)) in events.into_iter().enumerate() {
        let remaining = remaining.clone();
        let finalize = finalize.clone();
        let idx = i as u64;
        s.schedule_at(t, move |w, s| {
            s.trace_instant("ucp.mp.chunk", recv_proc as u32, idx, len);
            if remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
                if let Some(f) = finalize.lock().unwrap().take() {
                    f(w, s);
                }
            }
        });
    }
}

/// Intra-node staged path: one leg over the CPU-GPU link plus the shm
/// handoff. Both the mixed-pair rung and the degraded device-device rung.
pub(crate) fn fetch_intra_staged<F>(
    w: &mut Machine,
    s: &mut MSched,
    size: u64,
    recv_proc: usize,
    src_proc: usize,
    finalize: F,
) where
    F: FnOnce(&mut Machine, &mut MSched) + Send + 'static,
{
    let leg = w.gpu.params.wire_time(CopyPath::HostPinnedLink, size);
    w.ucp.counters.bump(m::RNDV_STAGED_INTRA);
    w.gpu.counters.bump(rucx_gpu::metrics::PATH_HOST_STAGED);
    let end = shm_occupy(w, src_proc, recv_proc, s.now(), size) + leg;
    s.schedule_at(end, finalize);
}

/// Inter-node rendezvous.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fetch_inter<F>(
    w: &mut Machine,
    s: &mut MSched,
    src_kind: MemKind,
    dst_kind: MemKind,
    size: u64,
    recv_proc: usize,
    src_proc: usize,
    finalize: F,
) where
    F: FnOnce(&mut Machine, &mut MSched) + Send + 'static,
{
    let src_port = (w.topo.node_of(src_proc), rail(w, src_proc));
    let dst_port = (w.topo.node_of(recv_proc), rail(w, recv_proc));
    match (src_kind, dst_kind) {
        (MemKind::Device(sd), MemKind::Device(dd)) => {
            // Direct GPUDirect RDMA needs working copy engines on both
            // ends; otherwise (or by default) the pipelined host-staging
            // path carries the transfer — it is the fallback rung, so a
            // mid-pipeline copy-engine failure degrades to it seamlessly.
            if w.ucp.config.direct_gdr_rndv
                && gpu_direct_ok(w, s, sd, src_proc, size)
                && gpu_direct_ok(w, s, dd, recv_proc, size)
            {
                w.ucp.counters.bump(m::RNDV_GDR_DIRECT);
                net_transfer(w, s, src_port, dst_port, size, WireKind::Gdr, finalize);
            } else {
                pipeline_fetch(w, s, src_proc, recv_proc, size, finalize);
            }
        }
        (MemKind::Device(_), _) => {
            // D2H on the sender, then RDMA.
            let leg = w.gpu.params.wire_time(CopyPath::HostPinnedLink, size);
            w.ucp.counters.bump(m::RNDV_STAGED_INTER);
            w.gpu.counters.bump(rucx_gpu::metrics::PATH_HOST_STAGED);
            s.schedule_in(leg, move |w, s| {
                let _ = net_transfer(w, s, src_port, dst_port, size, WireKind::Host, finalize);
            });
        }
        (_, MemKind::Device(_)) => {
            // RDMA, then H2D on the receiver.
            w.ucp.counters.bump(m::RNDV_STAGED_INTER);
            w.gpu.counters.bump(rucx_gpu::metrics::PATH_HOST_STAGED);
            let leg = w.gpu.params.wire_time(CopyPath::HostPinnedLink, size);
            net_transfer(
                w,
                s,
                src_port,
                dst_port,
                size,
                WireKind::Host,
                move |w, s| {
                    let _ = w;
                    s.schedule_in(leg, finalize);
                },
            );
        }
        _ => {
            // Zero-copy RDMA get.
            w.ucp.counters.bump(m::RNDV_RDMA);
            net_transfer(w, s, src_port, dst_port, size, WireKind::Host, finalize);
        }
    }
}

/// Whether the fault spec has a bandwidth-degradation window active on the
/// `(a, b)` node link right now. Consulted per pipeline chunk at wire-entry
/// time so the engine can steer chunks off a degraded rail; `None` link
/// faults (every clean run) answers without any scan.
fn link_degraded(w: &Machine, a: usize, b: usize, now: Time) -> bool {
    w.net
        .link_faults
        .as_ref()
        .is_some_and(|lf| lf.bw_factor(a, b, now) < 1.0)
}

/// The pipelined host-staging path for large inter-node device transfers:
/// chunks are staged D2H on the sender, sent over the wire, and staged H2D
/// on the receiver, all overlapped (§IV-B1). Chunk size comes from the
/// engine; under autotuning each chunk additionally picks the
/// least-backlogged TX rail at wire-entry time, spreading a large transfer
/// across both of the node's rails. A link-degrade window forces the same
/// balanced pick even without autotuning, and every chunk steered off the
/// default socket rail during such a window counts as a `ucp.reroute`.
fn pipeline_fetch<F>(
    w: &mut Machine,
    s: &mut MSched,
    src_proc: usize,
    recv_proc: usize,
    size: u64,
    finalize: F,
) where
    F: FnOnce(&mut Machine, &mut MSched) + Send + 'static,
{
    let chunk = effective_chunk(w, size).max(1);
    let nchunks = size.div_ceil(chunk);
    w.ucp.counters.add(m::PIPELINE_CHUNKS, nchunks);
    w.ucp.counters.bump(m::RNDV_PIPELINE);
    w.gpu.counters.bump(rucx_gpu::metrics::PATH_HOST_STAGED);
    let balance = w.ucp.config.autotune;
    let src_port = (w.topo.node_of(src_proc), rail(w, src_proc));
    let dst_port = (w.topo.node_of(recv_proc), rail(w, recv_proc));
    let src_dev = w.topo.device_of(src_proc);
    let dst_dev = w.topo.device_of(recv_proc);
    let src_stream = w.ucp.ucx_streams[src_proc];
    let dst_stream = w.ucp.ucx_streams[recv_proc];

    // Shared across chunk completions, which may run on whichever thread
    // holds the execution core at the time — hence Arc, not Rc.
    let remaining = Arc::new(AtomicU64::new(nchunks));
    let finalize = Arc::new(Mutex::new(Some(finalize)));

    for i in 0..nchunks {
        let len = chunk.min(size - i * chunk);
        // Sender-side D2H staging (serializes on the sender's UCX stream).
        let path = CopyPath::HostPinnedLink;
        let dur = w.gpu.params.wire_time(path, len);
        let d2h_end = rucx_gpu::ops::occupy_egress(w, s, src_dev, src_stream, dur);
        // The sender-side D2H staging window of this chunk.
        s.trace_span(
            "ucp.pipeline.chunk",
            d2h_end.saturating_sub(dur),
            d2h_end,
            src_proc as u32,
            i,
            len,
        );
        let remaining = remaining.clone();
        let finalize = finalize.clone();
        s.schedule_at(d2h_end, move |w, s| {
            let now = s.now();
            let degraded = link_degraded(w, src_port.0, dst_port.0, now);
            let (sp, dp) = if balance || degraded {
                let r = balanced_rail(w, src_port.0, src_port.1, now);
                if degraded && r != src_port.1 {
                    w.ucp.counters.bump(m::REROUTE);
                    s.trace_instant("ucp.reroute", src_proc as u32, i, len);
                }
                ((src_port.0, r), (dst_port.0, r))
            } else {
                (src_port, dst_port)
            };
            net_transfer(w, s, sp, dp, len, WireKind::Host, move |w, s| {
                let h2d_dur = w.gpu.params.wire_time(CopyPath::HostPinnedLink, len);
                let h2d_end = rucx_gpu::ops::occupy_ingress(w, s, dst_dev, dst_stream, h2d_dur);
                s.schedule_at(h2d_end, move |w, s| {
                    if remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
                        if let Some(f) = finalize.lock().unwrap().take() {
                            f(w, s);
                        }
                    }
                });
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{build_sim, MachineConfig};
    use rucx_fabric::Topology;

    fn model() -> CostModel {
        let sim = build_sim(Topology::summit(2), MachineConfig::default());
        CostModel::of(sim.world())
    }

    const INTRA_SOCKET: Placement = Placement {
        intra: true,
        same_socket: true,
    };
    const INTER: Placement = Placement {
        intra: false,
        same_socket: false,
    };

    #[test]
    fn solver_stays_on_the_ladder() {
        let m = model();
        for device in [false, true] {
            for p in [INTRA_SOCKET, INTER] {
                for lag in [-100_000i64, -5_000, 0, 5_000, 100_000, 10_000_000] {
                    let t = solve_eager(&m, p, device, lag);
                    assert!(EAGER_LADDER.contains(&t), "t={t}");
                }
            }
        }
    }

    #[test]
    fn lag_shifts_the_threshold_monotonically() {
        let m = model();
        // Positive lag (rendezvous observed slower than modeled) can only
        // raise the eager threshold; negative lag can only lower it.
        let base = solve_eager(&m, INTRA_SOCKET, true, 0);
        assert!(solve_eager(&m, INTRA_SOCKET, true, 50_000) >= base);
        assert!(solve_eager(&m, INTRA_SOCKET, true, -50_000) <= base);
    }

    #[test]
    fn chunk_solver_prefers_smaller_chunks_for_large_transfers() {
        let m = model();
        // The TX port serializes only transfer time (injection is
        // cut-through), so staging in smaller chunks overlaps more of the
        // D2H fill with the wire — down to where per-chunk DMA setup bites.
        let c = solve_chunk(&m, 4 << 20);
        assert!(c < m.pipeline_chunk, "c={c}");
        assert!(CHUNK_LADDER.contains(&c));
        // And the choice really is the argmin.
        for &cand in &CHUNK_LADDER {
            assert!(m.pipeline_total(4 << 20, c) <= m.pipeline_total(4 << 20, cand));
        }
    }

    #[test]
    fn stripes_split_proportionally_and_cover_the_bytes() {
        let sim = build_sim(Topology::summit(1), MachineConfig::default());
        let w = sim.world();
        let size = 16u64 << 20;
        let legs = plan_stripes(w, DeviceId(0), DeviceId(1), size);
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0].path, CopyPath::NvLink);
        assert_eq!(legs[1].path, CopyPath::XBus);
        assert_eq!(legs[0].bytes + legs[1].bytes, size);
        // NVLink is faster, so it carries the larger share.
        assert!(legs[0].bytes > legs[1].bytes);

        // Cross-socket: X-Bus plus the pinned-host bounce.
        let legs = plan_stripes(w, DeviceId(0), DeviceId(4), size);
        assert_eq!(legs[0].path, CopyPath::XBus);
        assert_eq!(legs[1].path, CopyPath::HostPinnedLink);
        assert_eq!(legs[0].bytes + legs[1].bytes, size);

        // Below the floor, on-device, or striping off: single path.
        assert!(plan_stripes(w, DeviceId(0), DeviceId(1), 1 << 20).is_empty());
        assert!(plan_stripes(w, DeviceId(0), DeviceId(0), size).is_empty());
    }

    #[test]
    fn engine_defaults_to_the_static_table() {
        let sim = build_sim(Topology::summit(2), MachineConfig::default());
        let w = sim.world();
        assert_eq!(
            effective_eager_thresh(w, 0, 1, false),
            w.ucp.config.eager_thresh_host
        );
        assert_eq!(
            effective_eager_thresh(w, 0, 6, true),
            w.ucp.config.eager_thresh_device
        );
        assert_eq!(effective_chunk(w, 4 << 20), w.ucp.config.pipeline_chunk);
    }

    #[test]
    fn rtt_ewma_is_karn_fed_and_converges() {
        let mut e = ProtocolEngine::new(7);
        let key = (0, 6);
        assert_eq!(e.rtt(key), None);
        e.observe_rtt(key, 8_000);
        assert_eq!(e.rtt(key), Some(8_000));
        for _ in 0..64 {
            e.observe_rtt(key, 16_000);
        }
        let r = e.rtt(key).unwrap();
        assert!(r > 14_000 && r <= 16_000, "r={r}");
        for _ in 0..64 {
            e.observe_rtt(key, 4_000);
        }
        let r = e.rtt(key).unwrap();
        assert!(r >= 4_000 && r < 6_000, "r={r}");
    }

    #[test]
    fn endpoint_periods_are_seeded_and_staggered() {
        let mut e = ProtocolEngine::new(42);
        let periods: Vec<u64> = (0..16u32).map(|d| e.ep_mut((0, d)).period).collect();
        assert!(periods.iter().all(|p| (4..=7).contains(p)));
        // The mix actually staggers endpoints (not all identical).
        assert!(periods.iter().any(|p| *p != periods[0]));
        // And is reproducible from the seed.
        let mut e2 = ProtocolEngine::new(42);
        let periods2: Vec<u64> = (0..16u32).map(|d| e2.ep_mut((0, d)).period).collect();
        assert_eq!(periods, periods2);
    }
}
