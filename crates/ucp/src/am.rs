//! UCP Active Messages with GPU payload support.
//!
//! The paper's §VI names "GPU support in the active messages API of UCX,
//! which could better fit the message-driven execution model of Charm++" as
//! a potential improvement: instead of a host-side metadata message plus a
//! separately tagged GPU message (two sends, two matches), one active
//! message carries the envelope as its *header* and announces the GPU
//! payload in the same packet — the receiver's handler runs on arrival and
//! can start the payload fetch immediately.
//!
//! This module implements that API over the same eager/rendezvous
//! machinery as the tagged path: small payloads ride inline (GDRCopy for
//! device memory), large ones are announced and fetched with
//! [`crate::rndv_fetch`].

use std::collections::HashMap;

use rucx_gpu::MemKind;

use crate::machine::{Machine, RtsState, SendPayload};
use crate::metrics as m;
use crate::proto::{deliver_am_wire, SendBuf};
use crate::worker::{Completion, MSched};

/// Active-message handler id.
pub type AmId = u16;

/// The payload part of a received active message.
pub enum AmPayload {
    /// No payload (header-only message).
    None,
    /// Complete eager payload (bytes present when materialized).
    Eager { bytes: Option<Vec<u8>>, size: u64 },
    /// Rendezvous descriptor: the data is still at the sender; fetch it
    /// with [`crate::rndv_fetch`] (pass the `rts_id`).
    Rndv { rts_id: u64, size: u64 },
}

/// A received active message, handed to the registered handler.
pub struct AmMsg {
    pub src: usize,
    pub header: Vec<u8>,
    pub payload: AmPayload,
}

/// Handler invoked under the execution core when an active message arrives.
pub type AmHandler = Box<dyn Fn(&mut Machine, &mut MSched, AmMsg) + Send>;

/// Per-worker active-message state.
#[derive(Default)]
pub struct AmState {
    handlers: HashMap<AmId, AmHandler>,
    /// Arrivals for ids with no handler yet (registration races at t=0).
    pending: HashMap<AmId, Vec<AmMsg>>,
}

impl AmState {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Register the handler for `id` on process `proc`'s worker; any arrivals
/// that raced ahead of registration are delivered immediately.
pub fn am_register(w: &mut Machine, s: &mut MSched, proc: usize, id: AmId, handler: AmHandler) {
    let st = &mut w.ucp.worker_mut(proc).am;
    let backlog = st.pending.remove(&id).unwrap_or_default();
    st.handlers.insert(id, handler);
    for msg in backlog {
        dispatch_am(w, s, proc, id, msg);
    }
}

/// Deliver an arrived active message to its handler (or park it until the
/// handler is registered).
pub(crate) fn dispatch_am(w: &mut Machine, s: &mut MSched, proc: usize, id: AmId, msg: AmMsg) {
    // Take the handler out during the call so it can re-enter the UCP layer.
    let handler = w.ucp.worker_mut(proc).am.handlers.remove(&id);
    match handler {
        Some(h) => {
            h(w, s, msg);
            w.ucp.worker_mut(proc).am.handlers.insert(id, h);
            let n = w.ucp.worker(proc).notify;
            s.notify(n);
        }
        None => {
            w.ucp
                .worker_mut(proc)
                .am
                .pending
                .entry(id)
                .or_default()
                .push(msg);
        }
    }
}

/// `ucp_am_send_nb`: send an active message with `header` and an optional
/// (possibly GPU-resident) payload. Handler id `id` is invoked on the
/// destination when the message arrives; payload protocol selection (eager
/// vs rendezvous, GDRCopy vs IPC/pipeline) matches the tagged path.
#[allow(clippy::too_many_arguments)]
pub fn am_send_nb(
    w: &mut Machine,
    s: &mut MSched,
    src: usize,
    dst: usize,
    id: AmId,
    header: Vec<u8>,
    payload: Option<SendBuf>,
    done: Completion,
) {
    let proto = w.ucp.config.proto_overhead;
    match payload {
        None => {
            let wire = header.len() as u64 + 16;
            w.ucp.counters.bump(m::AM_HEADER_ONLY);
            deliver_am_wire(w, s, src, dst, id, header, AmWire::None, wire, proto, done);
        }
        Some(buf) => {
            let size = buf.wire_size();
            let kind = match &buf {
                SendBuf::Mem(r) => match w.gpu.pool.kind(r.id) {
                    Ok(k) => k,
                    // Freed-before-send is a caller error, not a crash:
                    // surface it typed, same as the tagged path.
                    Err(_) => {
                        return crate::proto::reject_bad_handle(w, s, src, "am_send_nb", done)
                    }
                },
                _ => MemKind::HostPinned {
                    node: w.topo.node_of(src),
                },
            };
            let eager = if kind.is_device() {
                w.ucp.config.gdrcopy_enabled && size <= w.ucp.config.eager_thresh_device
            } else {
                size <= w.ucp.config.eager_thresh_host
            };
            if eager {
                let local_delay = proto
                    + if kind.is_device() {
                        w.ucp.config.gdrcopy_cost(size)
                    } else {
                        0
                    };
                let bytes = match &buf {
                    SendBuf::Mem(r) => w
                        .gpu
                        .pool
                        .is_materialized(r.id)
                        .unwrap_or(false)
                        .then(|| w.gpu.pool.read(*r).ok())
                        .flatten(),
                    SendBuf::Inline { bytes, .. } => Some(bytes.clone()),
                    SendBuf::Phantom { .. } => None,
                };
                let wire = header.len() as u64 + size + 16;
                w.ucp.counters.bump(m::AM_EAGER);
                deliver_am_wire(
                    w,
                    s,
                    src,
                    dst,
                    id,
                    header,
                    AmWire::Eager { bytes, size },
                    wire,
                    local_delay,
                    done,
                );
            } else {
                // Rendezvous: the header travels now; the payload is
                // announced and fetched by the handler.
                let payload = match buf {
                    SendBuf::Mem(r) => SendPayload::Mem(r),
                    SendBuf::Inline { bytes, .. } => SendPayload::Bytes(bytes),
                    SendBuf::Phantom { .. } => SendPayload::Phantom,
                };
                let rts_id = w.ucp.next_rts;
                w.ucp.next_rts += 1;
                w.ucp.rts_table.insert(
                    rts_id,
                    RtsState {
                        src_proc: src,
                        payload,
                        wire_size: size,
                        sender_done: done,
                        sent_at: s.now(),
                    },
                );
                let wire = header.len() as u64 + w.ucp.config.rts_size;
                w.ucp.counters.bump(m::AM_RNDV);
                deliver_am_wire(
                    w,
                    s,
                    src,
                    dst,
                    id,
                    header,
                    AmWire::Rndv { rts_id, size },
                    wire,
                    proto,
                    Completion::None,
                );
            }
        }
    }
}

/// Wire form of the AM payload descriptor.
pub(crate) enum AmWire {
    None,
    Eager { bytes: Option<Vec<u8>>, size: u64 },
    Rndv { rts_id: u64, size: u64 },
}

impl AmWire {
    pub(crate) fn into_payload(self) -> AmPayload {
        match self {
            AmWire::None => AmPayload::None,
            AmWire::Eager { bytes, size } => AmPayload::Eager { bytes, size },
            AmWire::Rndv { rts_id, size } => AmPayload::Rndv { rts_id, size },
        }
    }
}
