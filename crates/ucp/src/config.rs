//! UCX-layer configuration: protocol thresholds and transport cost
//! parameters (the simulation analogue of `UCX_*` environment variables).

use rucx_sim::time::{us, Duration};

/// Protocol/transport configuration of the UCP layer.
///
/// Defaults correspond to the paper's Summit configuration *with GDRCopy
/// detected* (§IV-B1 notes its detection is essential for small-message
/// latency). The ablation benches flip [`UcpConfig::gdrcopy_enabled`].
#[derive(Debug, Clone)]
pub struct UcpConfig {
    /// Host-memory messages up to this size use the eager protocol.
    pub eager_thresh_host: u64,
    /// Device-memory messages up to this size use the eager protocol via
    /// GDRCopy bounce buffers (only when [`UcpConfig::gdrcopy_enabled`]).
    pub eager_thresh_device: u64,
    /// Whether the GDRCopy library was detected. When false, *all* device
    /// transfers take the rendezvous path regardless of size.
    pub gdrcopy_enabled: bool,
    /// Chunk size of the pipelined host-staging rendezvous for inter-node
    /// device transfers.
    pub pipeline_chunk: u64,
    /// Use direct GPUDirect-RDMA for inter-node device rendezvous instead of
    /// the pipelined host-staging path (off by default, matching the paper's
    /// observed UCX behaviour on Summit; the ablation bench enables it).
    pub direct_gdr_rndv: bool,
    /// Let the protocol engine adapt eager thresholds and pipeline chunk
    /// size per endpoint from observed completions (off by default: the
    /// static table above then applies verbatim, as in the paper's runs).
    pub autotune: bool,
    /// Stripe large intra-node device-to-device rendezvous across NVLink
    /// and the X-Bus concurrently instead of riding a single resolved path.
    pub multipath: bool,
    /// Smallest transfer the multi-path striping applies to; below this the
    /// per-leg DMA setup outweighs the added bandwidth.
    pub multipath_min: u64,
    /// Intra-node shared-memory transport: per-message latency.
    pub shm_latency: Duration,
    /// Intra-node shared-memory / CMA copy bandwidth (GB/s).
    pub shm_gbps: f64,
    /// GDRCopy mapped read/write fixed cost (per message).
    pub gdrcopy_base: Duration,
    /// GDRCopy mapped copy bandwidth (GB/s) — low; it is a CPU-driven copy
    /// through the PCIe BAR window, only sensible for small messages.
    pub gdrcopy_gbps: f64,
    /// Software protocol processing per message on each side.
    pub proto_overhead: Duration,
    /// Host-side copy-out cost base when an eager message is matched.
    pub eager_copy_base: Duration,
    /// Host-side copy-out bandwidth for eager matches (GB/s).
    pub eager_copy_gbps: f64,
    /// Fixed per-transfer overhead of the CUDA-IPC rendezvous path
    /// (event synchronization, stream ordering; handle opens are cached).
    pub ipc_sync: Duration,
    /// Wire size of an RTS control message.
    pub rts_size: u64,
    /// Wire size of an ATS (ack-to-sender) control message.
    pub ats_size: u64,
    /// CPU cost of one `ucp_tag_send_nb`/`ucp_tag_recv_nb` call (modeled by
    /// calling layers via `ProcCtx::advance`).
    pub cpu_call: Duration,

    // ---- Connection-setup / memory-registration cost model ----
    /// Model per-(src,dst) endpoint wireup and per-buffer memory
    /// registration costs (off by default: legacy runs and their recorded
    /// timings are unchanged). The MPI4Dask/distributed-ucxx deployments
    /// this reproduces pay these costs for real; the registration cache
    /// below amortizes them.
    pub reg_model: bool,
    /// Cache endpoint wireups and buffer registrations (LRU over
    /// [`UcpConfig::reg_cache_bytes`]). When false every touch pays the
    /// mapping cost again — the "cache off" baseline of `svc_bench`.
    pub reg_cache: bool,
    /// One-time wireup latency for the first message on a (src,dst) pair
    /// (address exchange + transport setup).
    pub ep_setup: Duration,
    /// Fixed cost of registering (pinning + IB/CUDA mapping) one buffer.
    pub reg_base: Duration,
    /// Page-table walk bandwidth of registration (GB/s): large buffers
    /// cost proportionally more to pin.
    pub reg_gbps: f64,
    /// Registration-cache capacity in mapped bytes (LRU beyond this).
    pub reg_cache_bytes: u64,
    /// Endpoint-cache capacity in cached wireups (LRU beyond this).
    pub ep_cache_max: usize,

    // ---- Reliability protocol (active only when a fault spec is loaded) ----
    /// Base retransmission timeout added on top of the estimated wire RTT.
    pub rto_base: Duration,
    /// Floor under any single retransmission timeout (keeps the jittered
    /// backoff from collapsing below the wire's plausible turnaround).
    pub rto_min: Duration,
    /// Hard cap on any single retransmission timeout.
    pub rto_max: Duration,
    /// Multiplicative backoff applied per retransmission.
    pub rto_backoff: f64,
    /// Jitter fraction: each armed timer stretches by up to this fraction,
    /// drawn from the seeded reliability RNG (decorrelates retry storms
    /// without breaking determinism).
    pub rto_jitter: f64,
    /// Retransmissions after the original before the endpoint is declared
    /// unreachable and the operation fails with a typed error.
    pub max_retries: u32,
    /// Wire size of a reliability ack.
    pub ack_size: u64,

    // ---- Endpoint health state machine ----
    /// Consecutive ack timeouts on a (src,dst) pair before the endpoint is
    /// marked Suspect.
    pub suspect_after: u32,
    /// Cadence of keepalive probes sent toward a Dead endpoint while
    /// envelopes are parked on it.
    pub keepalive_interval: Duration,
    /// Unanswered keepalive probes tolerated before every envelope parked
    /// on the Dead endpoint is flushed through the hard give-up path.
    pub probe_budget: u32,
    /// Times one envelope may be parked-and-released across heal cycles
    /// before exhausting its retransmission budget hard-fails it (0 turns
    /// the parking layer off: budget exhaustion gives up immediately, the
    /// pre-health behaviour).
    pub heal_retries: u32,
}

impl Default for UcpConfig {
    fn default() -> Self {
        UcpConfig {
            eager_thresh_host: 16 * 1024,
            eager_thresh_device: 4 * 1024,
            gdrcopy_enabled: true,
            pipeline_chunk: 512 * 1024,
            direct_gdr_rndv: false,
            autotune: false,
            multipath: true,
            multipath_min: 8 << 20,
            shm_latency: us(0.30),
            shm_gbps: 5.2,
            gdrcopy_base: us(0.45),
            gdrcopy_gbps: 5.0,
            proto_overhead: us(0.15),
            eager_copy_base: us(0.05),
            eager_copy_gbps: 11.0,
            ipc_sync: us(4.5),
            rts_size: 64,
            ats_size: 32,
            cpu_call: us(0.30),
            reg_model: false,
            reg_cache: true,
            ep_setup: us(150.0),
            reg_base: us(40.0),
            reg_gbps: 2.0,
            reg_cache_bytes: 1 << 30,
            ep_cache_max: 4096,
            rto_base: us(50.0),
            rto_min: us(25.0),
            rto_max: us(5_000.0),
            rto_backoff: 2.0,
            rto_jitter: 0.25,
            max_retries: 10,
            ack_size: 16,
            suspect_after: 2,
            keepalive_interval: us(200.0),
            probe_budget: 25,
            heal_retries: 1,
        }
    }
}

impl UcpConfig {
    /// Cost of a GDRCopy mapped read/write of `size` bytes.
    pub fn gdrcopy_cost(&self, size: u64) -> Duration {
        self.gdrcopy_base + rucx_sim::time::transfer_time(size, self.gdrcopy_gbps)
    }

    /// Cost of the receive-side eager copy-out into the user buffer.
    pub fn eager_copy_cost(&self, size: u64) -> Duration {
        self.eager_copy_base + rucx_sim::time::transfer_time(size, self.eager_copy_gbps)
    }

    /// Intra-node shared-memory wire time for `size` bytes.
    pub fn shm_time(&self, size: u64) -> Duration {
        self.shm_latency + rucx_sim::time::transfer_time(size, self.shm_gbps)
    }

    /// Cost of registering a `size`-byte buffer with the NIC/driver.
    pub fn reg_cost(&self, size: u64) -> Duration {
        self.reg_base + rucx_sim::time::transfer_time(size, self.reg_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = UcpConfig::default();
        assert!(c.eager_thresh_device < c.eager_thresh_host);
        assert!(c.gdrcopy_enabled);
        assert!(!c.direct_gdr_rndv);
        assert!(c.pipeline_chunk >= 64 * 1024);
        assert!(c.rto_min <= c.rto_base && c.rto_base <= c.rto_max);
        assert!(c.suspect_after >= 1 && c.probe_budget >= 1);
    }

    #[test]
    fn gdrcopy_cost_grows_with_size() {
        let c = UcpConfig::default();
        assert!(c.gdrcopy_cost(4096) > c.gdrcopy_cost(8));
        // 4 KiB at 5 GB/s ≈ 0.82 us + base.
        let t = c.gdrcopy_cost(4096);
        assert!(t > us(1.0) && t < us(1.6), "t={t}");
    }

    #[test]
    fn shm_small_message_latency_dominated() {
        let c = UcpConfig::default();
        let t = c.shm_time(8);
        assert!(t >= c.shm_latency && t < c.shm_latency + 10);
    }
}
