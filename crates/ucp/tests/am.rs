//! Tests of the active-messages API with GPU payload support (the paper's
//! §VI hypothesis: AM fits message-driven execution better than the
//! two-message tagged flow).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rucx_fabric::Topology;
use rucx_gpu::DeviceId;
use rucx_sim::time::us;
use rucx_sim::RunOutcome;
use rucx_ucp::{
    am_register, am_send_nb, build_sim, rndv_fetch, AmPayload, Completion, FetchDst, MachineConfig,
    RecvCompletion, SendBuf,
};

#[test]
fn header_only_am_invokes_handler() {
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let hits = Arc::new(AtomicU64::new(0));
    let hits2 = hits.clone();
    let now = sim.scheduler().now();
    sim.scheduler().schedule_at(now, move |w, s| {
        am_register(
            w,
            s,
            1,
            7,
            Box::new(move |_, _, msg| {
                assert_eq!(msg.src, 0);
                assert_eq!(msg.header, vec![9, 9, 9]);
                assert!(matches!(msg.payload, AmPayload::None));
                hits2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        am_send_nb(w, s, 0, 1, 7, vec![9, 9, 9], None, Completion::None);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn registration_race_delivers_backlog() {
    // Send first, register later: the arrival parks and is delivered on
    // registration.
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let hits = Arc::new(AtomicU64::new(0));
    let hits2 = hits.clone();
    sim.scheduler().schedule_at(0, |w, s| {
        am_send_nb(w, s, 0, 1, 3, vec![1], None, Completion::None);
    });
    sim.scheduler().schedule_at(us(100.0), move |w, s| {
        am_register(
            w,
            s,
            1,
            3,
            Box::new(move |_, _, _| {
                hits2.fetch_add(1, Ordering::SeqCst);
            }),
        );
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn device_payload_eager_and_rndv() {
    for size in [512u64, 1 << 20] {
        let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
        let src = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), size, true)
            .unwrap();
        let dst = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), size, true)
            .unwrap();
        let data: Vec<u8> = (0..size).map(|i| (i % 233) as u8).collect();
        sim.world_mut().gpu.pool.write(src, &data).unwrap();
        let got = Arc::new(AtomicU64::new(0));
        let got2 = got.clone();
        sim.scheduler().schedule_at(0, move |w, s| {
            am_register(
                w,
                s,
                1,
                1,
                Box::new(move |w, s, msg| {
                    // Header carries the "envelope".
                    assert_eq!(msg.header, vec![0xEE]);
                    match msg.payload {
                        AmPayload::Eager { bytes, size } => {
                            let b = bytes.expect("materialized");
                            w.gpu
                                .pool
                                .write(dst.slice(0, size), &b)
                                .expect("am eager write");
                            got2.fetch_add(size, Ordering::SeqCst);
                        }
                        AmPayload::Rndv { rts_id, size } => {
                            // GPU payload fetch starts right here, from the
                            // handler — no second message to wait for.
                            let got3 = got2.clone();
                            let _ = rndv_fetch(
                                w,
                                s,
                                1,
                                1,
                                rts_id,
                                FetchDst::Mem(dst.slice(0, size)),
                                RecvCompletion::Callback(Box::new(move |_, _, info| {
                                    got3.fetch_add(info.size, Ordering::SeqCst);
                                })),
                            );
                        }
                        AmPayload::None => panic!("expected payload"),
                    }
                }),
            );
            am_send_nb(
                w,
                s,
                0,
                1,
                1,
                vec![0xEE],
                Some(SendBuf::Mem(src)),
                Completion::None,
            );
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(got.load(Ordering::SeqCst), size);
        assert_eq!(sim.world().gpu.pool.read(dst).unwrap(), data, "size {size}");
        assert_eq!(sim.world().ucp.inflight_rndv(), 0);
    }
}

#[test]
fn am_flow_beats_two_message_flow() {
    // The paper's hypothesis quantified: a 1 MiB device transfer whose
    // metadata+data travel as ONE active message completes sooner than the
    // tagged flow where the host metadata message and the GPU data are two
    // separate sends and the receive is posted only after the metadata
    // arrives and is scheduled.
    fn run(am: bool) -> u64 {
        let size = 1u64 << 20;
        let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
        let src = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), size, false)
            .unwrap();
        let dst = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), size, false)
            .unwrap();
        let done_at = Arc::new(AtomicU64::new(0));
        let done2 = done_at.clone();
        if am {
            sim.scheduler().schedule_at(0, move |w, s| {
                am_register(
                    w,
                    s,
                    1,
                    1,
                    Box::new(move |w, s, msg| {
                        let AmPayload::Rndv { rts_id, size } = msg.payload else {
                            panic!("expected rndv")
                        };
                        let done3 = done2.clone();
                        // rts_id came straight from the AM envelope, so the
                        // fetch cannot fail with UnknownRendezvous.
                        let _ = rndv_fetch(
                            w,
                            s,
                            1,
                            1,
                            rts_id,
                            FetchDst::Mem(dst.slice(0, size)),
                            RecvCompletion::Callback(Box::new(move |_, s, _| {
                                done3.store(s.now(), Ordering::SeqCst);
                            })),
                        );
                    }),
                );
                am_send_nb(
                    w,
                    s,
                    0,
                    1,
                    1,
                    vec![0; 64],
                    Some(SendBuf::Mem(src)),
                    Completion::None,
                );
            });
        } else {
            // Two-message tagged flow, as the Charm++ machine layer does it
            // today: GPU data under a generated tag + a separate metadata
            // message; the receive is posted when the metadata arrives.
            sim.scheduler().schedule_at(0, move |w, s| {
                rucx_ucp::tag_send_nb(
                    w,
                    s,
                    0,
                    1,
                    SendBuf::Mem(src),
                    0x2000_0000_0000_0001,
                    Completion::None,
                );
                rucx_ucp::tag_send_nb(
                    w,
                    s,
                    0,
                    1,
                    SendBuf::bytes(vec![0; 64]),
                    0x1000_0000_0000_0000,
                    Completion::Callback(Box::new(|_, _| {})),
                );
            });
            // "PE scheduler": when the metadata message shows up, post the
            // device receive (plus a scheduling delay like the real PE).
            let done3 = done2.clone();
            sim.spawn("pe1", 0, move |ctx| {
                let n = ctx.with_world_ref(|w, _| w.ucp.worker(1).notify);
                loop {
                    let (popped, seen) = ctx.with_world(move |w, s| {
                        (
                            rucx_ucp::probe_pop(w, 1, 0x1000_0000_0000_0000, 0xF << 60),
                            s.notify_epoch(n),
                        )
                    });
                    if popped.is_some() {
                        break;
                    }
                    ctx.wait_notify(n, seen);
                }
                // Scheduler pop + dispatch cost before posting the receive.
                ctx.advance(us(1.2));
                let done4 = done3.clone();
                ctx.with_world(move |w, s| {
                    rucx_ucp::tag_recv_nb(
                        w,
                        s,
                        1,
                        dst,
                        0x2000_0000_0000_0001,
                        u64::MAX,
                        RecvCompletion::Callback(Box::new(move |_, s, _| {
                            done4.store(s.now(), Ordering::SeqCst);
                        })),
                    );
                });
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        done_at.load(Ordering::SeqCst)
    }
    let t_tagged = run(false);
    let t_am = run(true);
    assert!(
        t_am < t_tagged,
        "AM flow {t_am}ns should beat the two-message flow {t_tagged}ns"
    );
}
