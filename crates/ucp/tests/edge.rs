//! Edge cases of the UCP layer: zero-size messages, self-sends, threshold
//! boundaries, truncation, and trigger recycling under churn.

use rucx_fabric::Topology;
use rucx_gpu::{DeviceId, MemRef};
use rucx_sim::RunOutcome;
use rucx_ucp::{blocking, build_sim, MSim, MachineConfig, SendBuf, MASK_FULL};

fn sim1() -> MSim {
    build_sim(Topology::summit(1), MachineConfig::default())
}

fn host(sim: &mut MSim, size: u64) -> MemRef {
    sim.world_mut()
        .gpu
        .pool
        .alloc_host(0, size.max(1), true, true)
}

#[test]
fn zero_size_message_completes() {
    let mut sim = sim1();
    let a = host(&mut sim, 1);
    let b = host(&mut sim, 1);
    sim.spawn("s", 0, move |ctx| {
        blocking::send(ctx, 0, 1, SendBuf::Mem(a.slice(0, 0)), 1);
    });
    sim.spawn("r", 0, move |ctx| {
        let info = blocking::recv(ctx, 1, b.slice(0, 0), 1, MASK_FULL);
        assert_eq!(info.size, 0);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn self_send_works() {
    let mut sim = sim1();
    let a = host(&mut sim, 64);
    let b = host(&mut sim, 64);
    sim.world_mut().gpu.pool.write(a, &[0x42; 64]).unwrap();
    sim.spawn("p", 0, move |ctx| {
        // Post the receive first, then send to self.
        let done = ctx.with_world(move |w, s| {
            let t = s.new_trigger();
            rucx_ucp::tag_recv_nb(
                w,
                s,
                0,
                b,
                9,
                MASK_FULL,
                rucx_ucp::RecvCompletion::Trigger(t),
            );
            rucx_ucp::tag_send_nb(w, s, 0, 0, SendBuf::Mem(a), 9, rucx_ucp::Completion::None);
            t
        });
        ctx.wait(done);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(sim.world().gpu.pool.read(b).unwrap(), vec![0x42; 64]);
}

#[test]
fn eager_threshold_boundary_is_inclusive() {
    // Exactly at the device eager threshold: still eager. One byte more:
    // rendezvous.
    let thresh = MachineConfig::default().ucp.eager_thresh_device;
    for (size, expect_eager) in [(thresh, true), (thresh + 1, false)] {
        let mut sim = sim1();
        let a = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), size, false)
            .unwrap();
        let b = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), size, false)
            .unwrap();
        sim.spawn("s", 0, move |ctx| {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), 4);
        });
        sim.spawn("r", 0, move |ctx| {
            blocking::recv(ctx, 1, b, 4, MASK_FULL);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let eager = sim.world().ucp.counters.get("ucp.eager");
        if expect_eager {
            assert_eq!(eager, 1, "size {size} must be eager");
        } else {
            assert_eq!(eager, 0, "size {size} must rendezvous");
            assert_eq!(sim.world().ucp.counters.get("ucp.rndv"), 1);
        }
    }
}

#[test]
fn rndv_truncates_into_smaller_buffer() {
    // Receive buffer smaller than the incoming rendezvous message: the
    // available prefix is delivered (MPI would flag truncation; the wire
    // layer must not corrupt memory).
    let mut sim = sim1();
    let big = 128u64 << 10;
    let small = 64u64 << 10;
    let a = host(&mut sim, big);
    let b = host(&mut sim, small);
    let data: Vec<u8> = (0..big).map(|i| (i % 101) as u8).collect();
    sim.world_mut().gpu.pool.write(a, &data).unwrap();
    sim.spawn("s", 0, move |ctx| {
        blocking::send(ctx, 0, 1, SendBuf::Mem(a), 2);
    });
    sim.spawn("r", 0, move |ctx| {
        let info = blocking::recv(ctx, 1, b, 2, MASK_FULL);
        assert_eq!(info.size, big, "status reports the wire size");
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(
        sim.world().gpu.pool.read(b).unwrap(),
        data[..small as usize].to_vec()
    );
}

#[test]
fn trigger_recycling_survives_churn() {
    // Thousands of send/recv pairs reuse recycled trigger slots; any
    // aliasing bug (waking the wrong waiter) would deadlock or corrupt.
    let mut sim = sim1();
    let a = host(&mut sim, 8);
    let b = host(&mut sim, 8);
    sim.spawn("s", 0, move |ctx| {
        for i in 0..2000u64 {
            blocking::send(ctx, 0, 1, SendBuf::Mem(a), i);
        }
    });
    sim.spawn("r", 0, move |ctx| {
        for i in 0..2000u64 {
            let info = blocking::recv(ctx, 1, b, i, MASK_FULL);
            assert_eq!(info.tag, i);
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn wildcard_recv_takes_oldest_arrival() {
    let mut sim = sim1();
    let bufs: Vec<MemRef> = (0..3).map(|_| host(&mut sim, 8)).collect();
    for (i, s) in bufs.iter().enumerate() {
        sim.world_mut()
            .gpu
            .pool
            .write(*s, &[(i + 1) as u8; 8])
            .unwrap();
    }
    let dst = host(&mut sim, 8);
    let srcs = bufs.clone();
    sim.spawn("s", 0, move |ctx| {
        for (i, s) in srcs.iter().enumerate() {
            blocking::send(ctx, 0, 1, SendBuf::Mem(*s), 100 + i as u64);
        }
    });
    sim.spawn("r", rucx_sim::time::us(50.0), move |ctx| {
        // All three are already queued; a zero-mask receive must match the
        // first arrival.
        let info = blocking::recv(ctx, 1, dst, 0, rucx_ucp::MASK_NONE);
        assert_eq!(info.tag, 100);
        let got = ctx.with_world_ref(|w, _| w.gpu.pool.read(dst).unwrap());
        assert_eq!(got, vec![1u8; 8]);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}
