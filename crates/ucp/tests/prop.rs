//! Property-based end-to-end tests of the UCP layer: any random set of
//! messages — arbitrary sizes (crossing every protocol threshold), memory
//! kinds, endpoints, and posting orders — is delivered exactly once with
//! byte-exact contents, and no rendezvous state leaks.
//!
//! Runs on the in-repo harness ([`rucx_compat::check`]); failing cases
//! print a seed replayable with `RUCX_PROP_SEED=<seed>`.

use rucx_compat::check::{check, Gen};
use rucx_fabric::Topology;
use rucx_gpu::MemRef;
use rucx_sim::time::us;
use rucx_sim::RunOutcome;
use rucx_ucp::{blocking, build_sim, MachineConfig, SendBuf, MASK_FULL};

#[derive(Debug, Clone)]
struct MsgSpec {
    src: usize,
    dst: usize,
    /// Crosses eager/rendezvous thresholds for both memory kinds.
    size: u64,
    device: bool,
    /// Receiver posts before or after the send is likely to arrive.
    recv_late: bool,
    seed: u8,
}

fn gen_msg(g: &mut Gen, procs: usize) -> MsgSpec {
    let src = g.usize(0..procs);
    // Uniform over the other endpoints, so src != dst by construction.
    let dst = (src + g.usize(1..procs)) % procs;
    let size = match g.usize(0..5) {
        0 => 1u64,
        1 => g.u64(8..64),
        2 => g.u64(1000..5000),
        3 => g.u64(20_000..80_000),
        _ => 1 << 20,
    };
    MsgSpec {
        src,
        dst,
        size,
        device: g.bool(),
        recv_late: g.bool(),
        seed: g.any_u8(),
    }
}

fn pattern(len: u64, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31) ^ seed)
        .collect()
}

#[test]
fn random_message_matrix_delivers_exactly() {
    check("random_message_matrix_delivers_exactly", |g| {
        let msgs = g.vec(1..10, |g| gen_msg(g, 12));
        let topo = Topology::summit(2);
        let mut sim = build_sim(topo.clone(), MachineConfig::default());

        // Allocate per-message source and destination buffers.
        let mut srcs: Vec<MemRef> = Vec::new();
        let mut dsts: Vec<MemRef> = Vec::new();
        {
            let m = sim.world_mut();
            for spec in &msgs {
                let (s, d) = if spec.device {
                    (
                        m.gpu
                            .pool
                            .alloc_device(topo.device_of(spec.src), spec.size, true)
                            .unwrap(),
                        m.gpu
                            .pool
                            .alloc_device(topo.device_of(spec.dst), spec.size, true)
                            .unwrap(),
                    )
                } else {
                    (
                        m.gpu
                            .pool
                            .alloc_host(topo.node_of(spec.src), spec.size, true, true),
                        m.gpu
                            .pool
                            .alloc_host(topo.node_of(spec.dst), spec.size, true, true),
                    )
                };
                m.gpu.pool.write(s, &pattern(spec.size, spec.seed)).unwrap();
                srcs.push(s);
                dsts.push(d);
            }
        }

        // Each process sends its messages (tag = message index) and
        // receives the ones destined to it, in index order.
        let specs = std::sync::Arc::new(msgs.clone());
        let srcs = std::sync::Arc::new(srcs);
        let dsts2 = std::sync::Arc::new(dsts.clone());
        for p in 0..topo.procs() {
            let specs = specs.clone();
            let srcs = srcs.clone();
            let dsts2 = dsts2.clone();
            sim.spawn(format!("p{p}"), 0, move |ctx| {
                // Issue every send non-blocking, then do the receives, then
                // wait for send completions. This is deadlock-free for ANY
                // message matrix: all receives get posted regardless of
                // rendezvous progress, so every send eventually completes.
                let send_triggers: Vec<_> = specs
                    .iter()
                    .enumerate()
                    .filter(|(_, spec)| spec.src == p)
                    .map(|(i, spec)| {
                        let buf = srcs[i];
                        let dst = spec.dst;
                        ctx.with_world(move |w, s| {
                            let t = s.new_trigger();
                            rucx_ucp::tag_send_nb(
                                w,
                                s,
                                p,
                                dst,
                                SendBuf::Mem(buf),
                                i as u64,
                                rucx_ucp::Completion::Trigger(t),
                            );
                            t
                        })
                    })
                    .collect();
                for (i, spec) in specs.iter().enumerate() {
                    if spec.dst == p {
                        if spec.recv_late {
                            ctx.advance(us(200.0));
                        }
                        let info = blocking::recv(ctx, p, dsts2[i], i as u64, MASK_FULL);
                        assert_eq!(info.size, spec.size);
                        assert_eq!(info.src, spec.src);
                    }
                }
                for t in send_triggers {
                    ctx.wait(t);
                }
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        // Data integrity and no leaked rendezvous state.
        for (i, spec) in msgs.iter().enumerate() {
            assert_eq!(
                sim.world().gpu.pool.read(dsts[i]).unwrap(),
                pattern(spec.size, spec.seed),
                "message {} corrupted",
                i
            );
        }
        assert_eq!(sim.world().ucp.inflight_rndv(), 0);
    });
}

// Deadlock note: blocking rendezvous sends complete only when the receiver
// posts, so chains of in-order blocking sends can cycle (the AMPI layer
// avoids this by pumping its scheduler inside MPI_Wait). The raw-UCP test
// therefore issues sends non-blocking and waits for them only after all
// receives are posted — safe for any message matrix.
