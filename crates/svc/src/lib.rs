//! # rucx-svc — a many-client distributed service layer
//!
//! MPI4Dask-style futures frontend over the Charm4py channel layer: clients
//! `scatter` a dataset to a worker, `submit` many small tasks against it,
//! and `gather` the results. This is the workload shape the paper's UCX
//! layer meets in Dask/UCX-Py deployments — thousands of clients, each
//! task tiny, so per-message fixed costs (endpoint wireup, memory
//! registration) dominate end-to-end latency unless they are amortized by
//! the UCP endpoint/registration caches ([`rucx_ucp::RegCache`]).
//!
//! The crate is a library so the benchmark binary (`examples/svc_bench.rs`)
//! and the determinism/leak tests share one driver: [`run_load`] builds a
//! two-node Summit-like simulation, multiplexes `LoadCfg::clients` logical
//! clients over the first 8 ranks (4 ranks serve as workers), runs the
//! scatter/submit/gather protocol with the registration model enabled, and
//! returns throughput, exact latency percentiles, every task's checksum,
//! and the cache counters — then asserts the registration-leak invariant
//! (`ucp.reg.miss - ucp.reg.evict == live mappings == 0` at shutdown, all
//! pre-mapped pool allocations returned).
//!
//! Task results are pure functions of task content ([`task_checksum`]), so
//! a cache-on and a cache-off run must produce byte-identical result sets
//! — only the timing may differ. That is the correctness contract the
//! property tests pin down.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rucx_charm::marshal;
use rucx_charm4py::{launch_with, PyParams, PyProc};
use rucx_compat::rng::{splitmix64, Rng};
use rucx_compat::sync::Mutex;
use rucx_fabric::Topology;
use rucx_fault::FaultSpec;
use rucx_gpu::MemRef;
use rucx_sim::time::{as_us, us, Duration, Time};
use rucx_sim::{RunOutcome, TraceEvent};
use rucx_ucp::{build_sim, reg_invalidate, MCtx, MachineConfig};

pub mod metrics;

/// Client ranks (node 0 plus two ranks of node 1 on `summit(2)`).
pub const CLIENT_RANKS: usize = 8;
/// Worker ranks (the remainder of node 1).
pub const WORKER_RANKS: usize = 4;

const MSG_SCATTER: u8 = 1;
const MSG_SUBMIT: u8 = 2;
const MSG_RESULT: u8 = 3;
const MSG_DONE: u8 = 4;

/// One service-layer wire message (pickled into a channel host object).
enum SvcMsg {
    /// Dataset announcement; the payload follows as a zero-copy channel
    /// send on the same (ordered) channel.
    Scatter { client: u64, size: u64 },
    /// Run one task against a previously scattered dataset.
    Submit { client: u64, task: u64, arg: u64 },
    /// A task result (worker -> client).
    Result { task: u64, checksum: u64 },
    /// This client rank is finished with every worker.
    Done,
}

fn encode(msg: &SvcMsg) -> Vec<u8> {
    let mut b = Vec::new();
    match msg {
        SvcMsg::Scatter { client, size } => {
            marshal::put_u8(&mut b, MSG_SCATTER);
            marshal::put_u64(&mut b, *client);
            marshal::put_u64(&mut b, *size);
        }
        SvcMsg::Submit { client, task, arg } => {
            marshal::put_u8(&mut b, MSG_SUBMIT);
            marshal::put_u64(&mut b, *client);
            marshal::put_u64(&mut b, *task);
            marshal::put_u64(&mut b, *arg);
        }
        SvcMsg::Result { task, checksum } => {
            marshal::put_u8(&mut b, MSG_RESULT);
            marshal::put_u64(&mut b, *task);
            marshal::put_u64(&mut b, *checksum);
        }
        SvcMsg::Done => marshal::put_u8(&mut b, MSG_DONE),
    }
    b
}

fn decode(bytes: &[u8]) -> SvcMsg {
    let mut r = marshal::Reader(bytes);
    match r.u8() {
        MSG_SCATTER => SvcMsg::Scatter {
            client: r.u64(),
            size: r.u64(),
        },
        MSG_SUBMIT => SvcMsg::Submit {
            client: r.u64(),
            task: r.u64(),
            arg: r.u64(),
        },
        MSG_RESULT => SvcMsg::Result {
            task: r.u64(),
            checksum: r.u64(),
        },
        MSG_DONE => SvcMsg::Done,
        k => panic!("bad svc message kind {k}"),
    }
}

/// The result of one task: a pure function of the task's content (client,
/// task id, argument, scattered dataset) — independent of scheduling,
/// caching, and timing, which is what makes cache-on/cache-off runs
/// comparable byte-for-byte.
pub fn task_checksum(client: u64, task: u64, arg: u64, data: &[u8]) -> u64 {
    let mut h = client
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(17)
        .wrapping_add(task)
        .rotate_left(13)
        .wrapping_add(arg);
    for chunk in data.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h ^= u64::from_le_bytes(word);
        h = splitmix64(&mut h);
    }
    h
}

/// A scattered dataset held by a worker, addressable by later submits.
#[derive(Debug, Clone, Copy)]
pub struct DataRef {
    pub worker: usize,
    pub client: u64,
}

struct Pending {
    expected: u64,
    /// First-submission time — preserved across resubmissions so latency
    /// measures the client-observed wait, including recovery.
    submitted: Time,
    client: u64,
    arg: u64,
    worker: usize,
    /// Virtual-time deadline (0 in legacy mode, which never reads it).
    deadline: Time,
    resubmits: u32,
}

/// Bump a service-layer counter in the world's shared counter map.
fn bump(ctx: &mut MCtx, m: rucx_sim::Metric) {
    ctx.with_world(move |w, _| w.ucp.counters.bump(m));
}

/// Client-side futures frontend (the `distributed.Client` analogue):
/// scatter a dataset once, submit many tasks against it, gather results.
/// One frontend serves every logical client multiplexed on its rank.
///
/// With [`Frontend::deadline`] set (the recovery mode; [`LoadCfg`]'s
/// `deadline_us`), the frontend survives worker failure: tasks that miss
/// their deadline are resubmitted to a surviving worker (re-scattering the
/// dataset on demand), each worker carries a circuit breaker that opens
/// after `breaker_threshold` consecutive timeouts (or immediately on a UCP
/// endpoint give-up), and a late result for an already-gathered task is
/// counted as a duplicate — never twice. Results stay byte-identical to a
/// clean run because [`task_checksum`] is content-pure: any worker
/// computes the same answer.
pub struct Frontend {
    workers: Vec<usize>,
    pending: HashMap<u64, Pending>,
    /// Per-task deadline; 0 keeps the legacy blocking drain path.
    pub deadline: Duration,
    /// Resubmissions allowed per task before it is declared failed.
    pub max_resubmit: u32,
    /// Consecutive timeouts before a worker's breaker opens.
    pub breaker_threshold: u32,
    /// Consecutive timeout count per worker (reset by any result).
    fail_count: HashMap<usize, u32>,
    /// Workers with an open breaker. Never reused: an endpoint give-up
    /// tears down the ordered channel's sequence state, so a fresh send to
    /// the same peer would desynchronize delivery.
    tripped: HashSet<usize>,
    /// `(client, worker)` pairs that hold the client's dataset.
    placed: HashSet<(u64, usize)>,
    /// Scatter buffer per client, for on-demand re-scatter at resubmission.
    bufs: HashMap<u64, MemRef>,
    /// `(task id, checksum)` for every gathered task.
    pub results: Vec<(u64, u64)>,
    /// `(task id, submit-to-result latency)` for every gathered task.
    pub latencies: Vec<(u64, Time)>,
    /// Tasks abandoned after `max_resubmit` or with no eligible worker.
    pub failed: Vec<u64>,
}

impl Frontend {
    pub fn new(workers: Vec<usize>) -> Self {
        Frontend {
            workers,
            pending: HashMap::new(),
            deadline: 0,
            max_resubmit: 3,
            breaker_threshold: 2,
            fail_count: HashMap::new(),
            tripped: HashSet::new(),
            placed: HashSet::new(),
            bufs: HashMap::new(),
            results: Vec::new(),
            latencies: Vec::new(),
            failed: Vec::new(),
        }
    }

    /// `client.scatter(data)`: announce the dataset inline, then ship the
    /// bytes zero-copy from `buf` (the channel is ordered, so the worker
    /// pairs them up). The buffer must stay allocated until [`run_load`]'s
    /// teardown — freeing it mid-flight is exactly the bug the UCP layer
    /// now surfaces as `InvalidHandle` instead of a panic.
    pub fn scatter(
        &mut self,
        py: &mut PyProc,
        ctx: &mut MCtx,
        worker: usize,
        client: u64,
        buf: MemRef,
    ) -> DataRef {
        let ch = py.channel(worker);
        py.send_host(
            ctx,
            ch,
            encode(&SvcMsg::Scatter {
                client,
                size: buf.len,
            }),
        );
        py.send(ctx, ch, buf);
        self.placed.insert((client, worker));
        self.bufs.insert(client, buf);
        DataRef { worker, client }
    }

    /// `client.submit(fn, data, arg)`: fire one task at the dataset's
    /// worker; the result arrives asynchronously via [`Frontend::drain_one`].
    /// `expected` is the checksum the task must produce (the client can
    /// compute it locally — the task is pure).
    pub fn submit(
        &mut self,
        py: &mut PyProc,
        ctx: &mut MCtx,
        data: DataRef,
        task: u64,
        arg: u64,
        expected: u64,
    ) {
        let now = ctx.now();
        self.pending.insert(
            task,
            Pending {
                expected,
                submitted: now,
                client: data.client,
                arg,
                worker: data.worker,
                deadline: if self.deadline > 0 {
                    now + self.deadline
                } else {
                    0
                },
                resubmits: 0,
            },
        );
        let ch = py.channel(data.worker);
        py.send_host(
            ctx,
            ch,
            encode(&SvcMsg::Submit {
                client: data.client,
                task,
                arg,
            }),
        );
    }

    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Block until one result arrives from any worker; record its latency
    /// and verify the checksum against the client-side expectation. In
    /// recovery mode ([`Frontend::deadline`] set) the wait is bounded: an
    /// expired deadline resubmits or fails the overdue tasks instead.
    pub fn drain_one(&mut self, py: &mut PyProc, ctx: &mut MCtx) {
        if self.deadline > 0 {
            self.drain_one_recover(py, ctx);
            return;
        }
        let workers = self.workers.clone();
        let (_, bytes) = py.recv_host_any(ctx, &workers);
        let msg = decode(&bytes.expect("svc result payload"));
        match msg {
            SvcMsg::Result { task, checksum } => {
                let p = self.pending.remove(&task).expect("result for known task");
                assert_eq!(
                    checksum, p.expected,
                    "task {task} computed a wrong checksum"
                );
                self.results.push((task, checksum));
                self.latencies.push((task, ctx.now() - p.submitted));
            }
            _ => panic!("unexpected message on client rank"),
        }
    }

    /// One recovery-mode drain step: surface endpoint give-ups, then wait
    /// for a result until the earliest outstanding deadline. Every call
    /// either gathers a result, absorbs a duplicate, or expires at least
    /// one overdue task — so `gather_all` terminates even with every
    /// worker dead (tasks drain into `failed` once `max_resubmit` and the
    /// eligible-worker pool are exhausted).
    fn drain_one_recover(&mut self, py: &mut PyProc, ctx: &mut MCtx) {
        self.reap_exceptions(py, ctx);
        if self.pending.is_empty() {
            return;
        }
        let dl = self
            .pending
            .values()
            .map(|p| p.deadline)
            .min()
            .expect("pending non-empty");
        let workers = self.workers.clone();
        match py.recv_host_any_deadline(ctx, &workers, dl) {
            Some((peer, bytes)) => {
                let msg = decode(&bytes.expect("svc result payload"));
                match msg {
                    SvcMsg::Result { task, checksum } => match self.pending.remove(&task) {
                        Some(p) => {
                            assert_eq!(
                                checksum, p.expected,
                                "task {task} computed a wrong checksum"
                            );
                            self.fail_count.insert(peer, 0);
                            self.results.push((task, checksum));
                            self.latencies.push((task, ctx.now() - p.submitted));
                        }
                        // The original worker answered after the task was
                        // resubmitted and gathered: absorb, never count twice.
                        None => bump(ctx, metrics::DUP_RESULT),
                    },
                    _ => panic!("unexpected message on client rank"),
                }
            }
            None => self.expire_overdue(py, ctx),
        }
    }

    /// Map queued communication exceptions onto worker breakers. A UCP
    /// endpoint give-up toward a worker trips its breaker immediately —
    /// `take_exception` already tore down the channel state for that peer,
    /// so it must never be sent to again. Tasks outstanding on it drain
    /// through their own deadlines.
    fn reap_exceptions(&mut self, py: &mut PyProc, ctx: &mut MCtx) {
        while let Some(rec) = py.take_exception(ctx) {
            match (rec.exc_type, rec.peer) {
                ("TimeoutError", Some(p)) if self.workers.contains(&p) => self.trip(ctx, p),
                _ => panic!(
                    "unrecoverable svc exception: {} ({})",
                    rec.exc_type, rec.message
                ),
            }
        }
    }

    fn trip(&mut self, ctx: &mut MCtx, worker: usize) {
        if self.tripped.insert(worker) {
            bump(ctx, metrics::BREAKER_OPEN);
        }
    }

    /// Expire every task past its deadline (in task-id order, for
    /// determinism): charge the worker's breaker and resubmit or fail.
    fn expire_overdue(&mut self, py: &mut PyProc, ctx: &mut MCtx) {
        let now = ctx.now();
        let mut due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&t, _)| t)
            .collect();
        due.sort_unstable();
        for task in due {
            bump(ctx, metrics::TASK_TIMEOUT);
            let worker = self.pending[&task].worker;
            let failures = {
                let n = self.fail_count.entry(worker).or_insert(0);
                *n += 1;
                *n
            };
            if failures >= self.breaker_threshold {
                self.trip(ctx, worker);
            }
            self.requeue(py, ctx, task);
        }
    }

    /// Resubmit a timed-out task to a surviving worker (re-scattering the
    /// dataset if that worker has never seen it), or declare it failed.
    /// The target choice is a pure function of `(task, resubmits)` and the
    /// breaker set, so runs are deterministic.
    fn requeue(&mut self, py: &mut PyProc, ctx: &mut MCtx, task: u64) {
        let p = self.pending.remove(&task).expect("requeue of unknown task");
        // Prefer any live worker other than the one that just timed out;
        // fall back to the timed-out worker only if it is the sole
        // survivor (it may merely be slow, not dead).
        let mut eligible: Vec<usize> = self
            .workers
            .iter()
            .copied()
            .filter(|w| !self.tripped.contains(w) && *w != p.worker)
            .collect();
        if eligible.is_empty() {
            eligible = self
                .workers
                .iter()
                .copied()
                .filter(|w| !self.tripped.contains(w))
                .collect();
        }
        if p.resubmits >= self.max_resubmit || eligible.is_empty() {
            bump(ctx, metrics::TASK_FAILED);
            self.failed.push(task);
            return;
        }
        let mut s = task ^ u64::from(p.resubmits + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let pick = eligible[(splitmix64(&mut s) % eligible.len() as u64) as usize];
        if !self.placed.contains(&(p.client, pick)) {
            let buf = self.bufs[&p.client];
            self.scatter(py, ctx, pick, p.client, buf);
        }
        bump(ctx, metrics::RESUBMIT);
        let ch = py.channel(pick);
        py.send_host(
            ctx,
            ch,
            encode(&SvcMsg::Submit {
                client: p.client,
                task,
                arg: p.arg,
            }),
        );
        let deadline = ctx.now() + self.deadline;
        self.pending.insert(
            task,
            Pending {
                worker: pick,
                deadline,
                resubmits: p.resubmits + 1,
                ..p
            },
        );
    }

    /// `client.gather(futures)`: wait for every outstanding task.
    pub fn gather_all(&mut self, py: &mut PyProc, ctx: &mut MCtx) {
        while !self.pending.is_empty() {
            self.drain_one(py, ctx);
        }
    }
}

/// Load-generator configuration: `clients` logical clients multiplexed
/// over [`CLIENT_RANKS`] ranks, each scattering one `data_size`-byte
/// dataset and submitting `tasks_per_client` small tasks against it.
#[derive(Debug, Clone)]
pub struct LoadCfg {
    pub clients: usize,
    pub tasks_per_client: usize,
    pub data_size: u64,
    /// Max outstanding futures per client rank before draining.
    pub window: usize,
    /// Per-task worker compute time (µs) — small on purpose: the regime
    /// where fixed communication costs dominate.
    pub compute_us: f64,
    /// Registration/endpoint caching on (`true`) or torn down after every
    /// use (`false`). The cost model itself is always on.
    pub cache: bool,
    pub seed: u64,
    /// Fault-injection spec for chaos runs (`None` = clean).
    pub fault: Option<FaultSpec>,
    /// Per-task deadline in µs arming the recovery layer (resubmission,
    /// circuit breakers). 0 keeps the legacy blocking drain path — clean
    /// runs are byte-identical to the pre-recovery code.
    pub deadline_us: f64,
    /// Resubmissions allowed per task before it is declared failed.
    pub max_resubmit: u32,
    /// Consecutive per-worker timeouts before its circuit breaker opens.
    pub breaker_threshold: u32,
    /// Simulated worker crash: `(worker index, crash time µs)` — that
    /// worker stops serving at the given virtual time. The crash time must
    /// fall after the scatter phase completes, or the in-flight zero-copy
    /// scatter would hold the client's buffer past teardown.
    pub fail_worker: Option<(usize, f64)>,
    /// Record a structured trace and return it in [`LoadResult`] (for
    /// per-layer attribution by the scenario matrix).
    pub trace: bool,
    /// Override the UCP retransmission budget (`None` = machine default).
    /// Latency-sensitive RPC traffic uses a tight budget so a dead
    /// endpoint engages the park+probe health layer instead of minutes of
    /// exponential backoff.
    pub ucp_max_retries: Option<u32>,
}

impl Default for LoadCfg {
    fn default() -> Self {
        LoadCfg {
            clients: 64,
            tasks_per_client: 16,
            data_size: 2048,
            window: 16,
            compute_us: 3.0,
            cache: true,
            seed: 1,
            fault: None,
            deadline_us: 0.0,
            max_resubmit: 3,
            breaker_threshold: 2,
            fail_worker: None,
            trace: false,
            ucp_max_retries: None,
        }
    }
}

/// What one load run produced; everything here is deterministic for a
/// given [`LoadCfg`] (including `wall_us` — the simulation is exact).
#[derive(Debug, Clone)]
pub struct LoadResult {
    pub tasks: u64,
    pub wall_us: f64,
    pub tasks_per_sec: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// `(task id, checksum)`, sorted by task id.
    pub results: Vec<(u64, u64)>,
    /// Order-independent fold of `results`.
    pub digest: u64,
    pub reg_hit: u64,
    pub reg_miss: u64,
    pub reg_evict: u64,
    pub ep_hit: u64,
    pub ep_miss: u64,
    pub premapped_hit: u64,
    /// Recovery activity (all zero on a clean run with recovery disarmed).
    pub resubmits: u64,
    pub task_timeouts: u64,
    pub breaker_opens: u64,
    pub dup_results: u64,
    pub tasks_failed: u64,
    /// UCP-layer recovery counters, for scenario attribution.
    pub ucp_retry: u64,
    pub ucp_reroute: u64,
    pub ucp_giveup: u64,
    pub ucp_host_staged: u64,
    pub ucp_parked: u64,
    pub ucp_healed: u64,
    /// Structured trace (empty unless [`LoadCfg::trace`] was set).
    pub trace_events: Vec<TraceEvent>,
}

fn percentile(sorted: &[Time], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    as_us(sorted[idx])
}

/// Seed-derived content for one logical client: its worker, dataset bytes,
/// and per-task arguments. Client ranks and workers derive the same values
/// independently, so no out-of-band coordination is needed.
fn client_worker(seed: u64, client: u64, workers: &[usize]) -> usize {
    let mut s = seed ^ client.wrapping_mul(0xa076_1d64_78bd_642f);
    workers[(splitmix64(&mut s) % workers.len() as u64) as usize]
}

fn client_data(seed: u64, client: u64, size: u64) -> Vec<u8> {
    let mut s = seed ^ client.rotate_left(32) ^ 0x5851_f42d_4c95_7f2d;
    let mut rng = Rng::new(splitmix64(&mut s));
    let mut data = vec![0u8; size as usize];
    rng.fill(&mut data);
    data
}

fn task_arg(seed: u64, client: u64, task: u64) -> u64 {
    let mut s = seed ^ client.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ task;
    splitmix64(&mut s)
}

/// Run one full scatter/submit/gather load on a two-node Summit-like
/// cluster with the registration cost model enabled, and assert the
/// registration-leak invariants at shutdown.
pub fn run_load(cfg: &LoadCfg) -> LoadResult {
    let topo = Topology::summit(2);
    assert_eq!(topo.procs(), CLIENT_RANKS + WORKER_RANKS);
    let workers: Vec<usize> = (CLIENT_RANKS..CLIENT_RANKS + WORKER_RANKS).collect();
    let mut machine = MachineConfig::default();
    machine.ucp.reg_model = true;
    machine.ucp.reg_cache = cfg.cache;
    machine.fault = cfg.fault.clone();
    if let Some(r) = cfg.ucp_max_retries {
        machine.ucp.max_retries = r;
    }
    let mut sim = build_sim(topo, machine);
    if cfg.trace {
        sim.scheduler().trace.enable(0);
    }

    // Per-rank gathered output: (rank, results, latencies, finish time).
    type RankOut = (usize, Vec<(u64, u64)>, Vec<(u64, Time)>, Time);
    let out: Arc<Mutex<Vec<RankOut>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let cfg2 = cfg.clone();
    let workers2 = workers.clone();

    launch_with(&mut sim, PyParams::default(), move |py, ctx| {
        let rank = py.rank();
        if rank < CLIENT_RANKS {
            client_body(py, ctx, &cfg2, &workers2, &out2);
        } else {
            worker_body(py, ctx, &cfg2);
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "svc load deadlocked");

    let trace_events: Vec<TraceEvent> = sim.scheduler_ref().trace.events().copied().collect();
    let w = sim.world();
    let reg_miss = w.ucp.counters.get("ucp.reg.miss");
    let reg_evict = w.ucp.counters.get("ucp.reg.evict");
    // The leak gate: every mapping paid for was either evicted or is still
    // live, and at shutdown (all buffers freed) nothing is live — and all
    // pre-mapped pool allocations were returned.
    assert_eq!(
        reg_miss - reg_evict,
        w.ucp.reg.live_mappings() as u64,
        "registration accounting leak"
    );
    assert_eq!(
        w.ucp.reg.live_mappings(),
        0,
        "registrations leaked past shutdown"
    );
    assert_eq!(
        w.gpu.pool.premapped_live(),
        0,
        "pre-mapped pool allocations leaked"
    );

    let mut ranks = out.lock().clone();
    ranks.sort_by_key(|r| r.0);
    let mut results = Vec::new();
    let mut lats = Vec::new();
    let mut finish: Time = 0;
    for (_, res, lat, end) in ranks {
        results.extend(res);
        lats.extend(lat.into_iter().map(|(_, d)| d));
        finish = finish.max(end);
    }
    results.sort_by_key(|&(task, _)| task);
    lats.sort_unstable();
    let tasks = results.len() as u64;
    let mut digest = 0u64;
    for &(task, ck) in &results {
        let mut s = task ^ ck.rotate_left(23);
        digest ^= splitmix64(&mut s);
    }
    let wall_us = as_us(finish);
    LoadResult {
        tasks,
        wall_us,
        tasks_per_sec: if wall_us > 0.0 {
            tasks as f64 / (wall_us / 1e6)
        } else {
            0.0
        },
        p50_us: percentile(&lats, 0.50),
        p99_us: percentile(&lats, 0.99),
        results,
        digest,
        reg_hit: w.ucp.counters.get("ucp.reg.hit"),
        reg_miss,
        reg_evict,
        ep_hit: w.ucp.counters.get("ucp.ep.hit"),
        ep_miss: w.ucp.counters.get("ucp.ep.miss"),
        premapped_hit: w.gpu.counters.get("gpu.pool.premapped_hit"),
        resubmits: w.ucp.counters.get("svc.resubmit"),
        task_timeouts: w.ucp.counters.get("svc.task_timeout"),
        breaker_opens: w.ucp.counters.get("svc.breaker_open"),
        dup_results: w.ucp.counters.get("svc.dup_result"),
        tasks_failed: w.ucp.counters.get("svc.task_failed"),
        ucp_retry: w.ucp.counters.get("ucp.retry"),
        ucp_reroute: w.ucp.counters.get("ucp.reroute"),
        ucp_giveup: w.ucp.counters.get("ucp.giveup"),
        ucp_host_staged: w.ucp.counters.get("ucp.fallback.host_staged"),
        ucp_parked: w.ucp.counters.get("ucp.parked"),
        ucp_healed: w.ucp.counters.get("ucp.ep.healed"),
        trace_events,
    }
}

type RankSink = Arc<Mutex<Vec<(usize, Vec<(u64, u64)>, Vec<(u64, Time)>, Time)>>>;

fn client_body(py: &mut PyProc, ctx: &mut MCtx, cfg: &LoadCfg, workers: &[usize], out: &RankSink) {
    let rank = py.rank();
    let node = ctx.with_world_ref(move |w, _| w.topo.node_of(rank));
    let mine: Vec<u64> = (0..cfg.clients as u64)
        .filter(|c| (*c as usize) % CLIENT_RANKS == rank)
        .collect();
    let mut fe = Frontend::new(workers.to_vec());
    fe.deadline = us(cfg.deadline_us);
    fe.max_resubmit = cfg.max_resubmit;
    fe.breaker_threshold = cfg.breaker_threshold;

    // Scatter phase: every logical client ships its dataset to its worker.
    // One send buffer per client — the payload must stay valid until the
    // transfer lands, and the spread of buffers exercises the LRU.
    let mut bufs = Vec::with_capacity(mine.len());
    let mut datas = Vec::with_capacity(mine.len());
    let mut refs = Vec::with_capacity(mine.len());
    for &c in &mine {
        let data = client_data(cfg.seed, c, cfg.data_size);
        let bytes = data.clone();
        let size = cfg.data_size;
        let buf = ctx.with_world(move |w, _| {
            let b = w.gpu.pool.alloc_host(node, size, true, true);
            w.gpu.pool.write(b, &bytes).expect("stage scatter payload");
            b
        });
        let worker = client_worker(cfg.seed, c, workers);
        refs.push(fe.scatter(py, ctx, worker, c, buf));
        bufs.push(buf);
        datas.push(data);
    }

    // Submit phase: round-robin across this rank's clients so their task
    // streams interleave (many concurrent clients per rank), windowed so
    // the rank never floods the workers.
    for t in 0..cfg.tasks_per_client as u64 {
        for (i, &c) in mine.iter().enumerate() {
            let task = c * cfg.tasks_per_client as u64 + t;
            let arg = task_arg(cfg.seed, c, t);
            let expected = task_checksum(c, task, arg, &datas[i]);
            while fe.outstanding() >= cfg.window {
                fe.drain_one(py, ctx);
            }
            fe.submit(py, ctx, refs[i], task, arg, expected);
        }
    }
    fe.gather_all(py, ctx);

    // Shut the workers down (every client rank signals every worker), then
    // return the scatter buffers: the registration must not outlive the
    // allocation, so each free invalidates its cached mapping first.
    for &w in workers {
        let ch = py.channel(w);
        py.send_host(ctx, ch, encode(&SvcMsg::Done));
    }
    for buf in bufs {
        ctx.with_world(move |w, _| {
            reg_invalidate(w, buf.id);
            w.gpu.pool.free(buf.id).expect("free scatter buffer");
        });
    }
    out.lock().push((rank, fe.results, fe.latencies, ctx.now()));
}

fn worker_body(py: &mut PyProc, ctx: &mut MCtx, cfg: &LoadCfg) {
    let rank = py.rank();
    let node = ctx.with_world_ref(move |w, _| w.topo.node_of(rank));
    let clients: Vec<usize> = (0..CLIENT_RANKS).collect();
    // One long-lived, pool-backed receive staging buffer. With caching on
    // it is pre-mapped (the pool-allocator pattern: pay the mapping once
    // at setup), so every zero-copy receive into it is a registration hit.
    let size = cfg.data_size;
    let cache = cfg.cache;
    let staging = ctx.with_world(move |w, _| {
        let b = w.gpu.pool.alloc_host(node, size, true, true);
        if cache {
            w.gpu.pool.set_premapped(b.id).expect("premap staging");
        }
        b
    });
    let compute = us(cfg.compute_us);
    // Simulated crash: this worker stops serving at `kill_at` (the Python
    // loop exits; the UCP layer below keeps acking, as a host whose
    // process died but whose NIC is alive would).
    let kill_at: Option<Time> = match cfg.fail_worker {
        Some((wi, at)) if CLIENT_RANKS + wi == rank => Some(us(at)),
        _ => None,
    };
    let mut datasets: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut done = 0usize;
    while done < CLIENT_RANKS {
        let (peer, bytes) = match kill_at {
            Some(t) => match py.recv_host_any_deadline(ctx, &clients, t) {
                Some(msg) => msg,
                None => break,
            },
            None => py.recv_host_any(ctx, &clients),
        };
        match decode(&bytes.expect("svc control payload")) {
            SvcMsg::Scatter { client, size } => {
                // The zero-copy payload is the next message on this
                // (ordered) channel.
                let got = py.recv(ctx, py.channel(peer), staging);
                assert_eq!(got, size, "scatter payload size mismatch");
                let data = ctx
                    .with_world(move |w, _| w.gpu.pool.read(staging.slice(0, size)))
                    .expect("read scattered dataset");
                datasets.insert(client, data);
            }
            SvcMsg::Submit { client, task, arg } => {
                ctx.advance(compute);
                let data = datasets.get(&client).expect("submit before scatter");
                let checksum = task_checksum(client, task, arg, data);
                let ch = py.channel(peer);
                py.send_host(ctx, ch, encode(&SvcMsg::Result { task, checksum }));
            }
            SvcMsg::Done => done += 1,
            SvcMsg::Result { .. } => panic!("unexpected result on worker rank"),
        }
    }
    ctx.with_world(move |w, _| {
        reg_invalidate(w, staging.id);
        w.gpu.pool.free(staging.id).expect("free staging buffer");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(cache: bool, seed: u64) -> LoadCfg {
        LoadCfg {
            clients: 24,
            tasks_per_client: 5,
            data_size: 1024,
            window: 8,
            compute_us: 3.0,
            cache,
            seed,
            ..LoadCfg::default()
        }
    }

    #[test]
    fn cache_on_and_off_compute_identical_results() {
        for seed in [7, 1234] {
            let on = run_load(&small(true, seed));
            let off = run_load(&small(false, seed));
            assert_eq!(on.tasks, 24 * 5);
            assert_eq!(
                on.results, off.results,
                "task results must not depend on caching"
            );
            assert_eq!(on.digest, off.digest);
            // Caching wins at small-task scale: wireup/registration paid
            // once instead of per message.
            assert!(
                on.tasks_per_sec > off.tasks_per_sec,
                "cache-on {} <= cache-off {} tasks/s",
                on.tasks_per_sec,
                off.tasks_per_sec
            );
            assert!(on.p99_us < off.p99_us);
            // Counter shape: with caching, endpoints mostly hit; without,
            // every touch is a miss and nothing is retained.
            assert!(on.ep_hit > on.ep_miss);
            assert_eq!(off.ep_hit, 0);
            assert_eq!(off.reg_hit, 0);
            assert_eq!(off.reg_miss, off.reg_evict);
            // Pre-mapped worker staging buffers only exist with caching on.
            assert!(on.premapped_hit > 0);
            assert_eq!(off.premapped_hit, 0);
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = run_load(&small(true, 42));
        let b = run_load(&small(true, 42));
        assert_eq!(a.results, b.results);
        assert_eq!(a.wall_us, b.wall_us);
        assert_eq!(a.p50_us, b.p50_us);
        assert_eq!(a.p99_us, b.p99_us);
        assert_eq!(
            (a.reg_hit, a.reg_miss, a.reg_evict, a.ep_hit, a.ep_miss),
            (b.reg_hit, b.reg_miss, b.reg_evict, b.ep_hit, b.ep_miss)
        );
    }

    #[test]
    fn wire_roundtrip() {
        for msg in [
            SvcMsg::Scatter {
                client: 9,
                size: 4096,
            },
            SvcMsg::Submit {
                client: 9,
                task: 1234,
                arg: u64::MAX,
            },
            SvcMsg::Result {
                task: 1234,
                checksum: 0xdead_beef,
            },
            SvcMsg::Done,
        ] {
            let enc = encode(&msg);
            match (msg, decode(&enc)) {
                (
                    SvcMsg::Scatter { client: a, size: b },
                    SvcMsg::Scatter { client: c, size: d },
                ) => assert_eq!((a, b), (c, d)),
                (
                    SvcMsg::Submit {
                        client: a,
                        task: b,
                        arg: c,
                    },
                    SvcMsg::Submit {
                        client: d,
                        task: e,
                        arg: f,
                    },
                ) => assert_eq!((a, b, c), (d, e, f)),
                (
                    SvcMsg::Result {
                        task: a,
                        checksum: b,
                    },
                    SvcMsg::Result {
                        task: c,
                        checksum: d,
                    },
                ) => assert_eq!((a, b), (c, d)),
                (SvcMsg::Done, SvcMsg::Done) => {}
                _ => panic!("roundtrip changed the message kind"),
            }
        }
    }

    /// Satellite chaos property: under an inter-node partition that heals,
    /// `gather_all` terminates, any resubmitted task is counted exactly
    /// once, and the gathered results are byte-identical to a clean run.
    #[test]
    fn partition_chaos_gathers_exactly_once_and_matches_clean() {
        let base = LoadCfg {
            clients: 16,
            tasks_per_client: 4,
            data_size: 512,
            window: 8,
            seed: 5,
            ..LoadCfg::default()
        };
        let clean = run_load(&base);
        let chaos_cfg = LoadCfg {
            fault: Some(FaultSpec::parse("scenario=partition").unwrap()),
            deadline_us: 2_500.0,
            ..base.clone()
        };
        let chaos = run_load(&chaos_cfg);
        // run_load's RunOutcome assert is the no-hang gate; here pin down
        // the exactly-once contract: the clean result set has one entry
        // per task, so equality rules out both loss and double-counting.
        assert_eq!(clean.tasks, 16 * 4);
        assert_eq!(
            chaos.results, clean.results,
            "partition chaos corrupted or duplicated results"
        );
        assert_eq!(chaos.digest, clean.digest);
        assert_eq!(chaos.tasks_failed, 0, "no task may be abandoned");
        // Determinism of the chaos run itself.
        let again = run_load(&chaos_cfg);
        assert_eq!(chaos.results, again.results);
        assert_eq!(chaos.wall_us, again.wall_us);
        assert_eq!(chaos.resubmits, again.resubmits);
        assert_eq!(chaos.task_timeouts, again.task_timeouts);
    }

    /// Satellite chaos property: a worker crash mid-run is survived by
    /// resubmission — p99 stays finite, results match the clean run, and
    /// the crashed worker's breaker opens.
    #[test]
    fn worker_failure_resubmits_and_p99_stays_finite() {
        let base = LoadCfg {
            clients: 16,
            tasks_per_client: 4,
            data_size: 512,
            window: 8,
            seed: 5,
            ..LoadCfg::default()
        };
        let clean = run_load(&base);
        let crashed_cfg = LoadCfg {
            deadline_us: 800.0,
            fail_worker: Some((1, 400.0)),
            ..base.clone()
        };
        let crashed = run_load(&crashed_cfg);
        assert_eq!(
            crashed.results, clean.results,
            "worker crash corrupted or duplicated results"
        );
        assert_eq!(crashed.digest, clean.digest);
        assert_eq!(crashed.tasks_failed, 0);
        assert!(
            crashed.resubmits > 0,
            "a worker crash must force resubmissions"
        );
        assert!(crashed.task_timeouts >= crashed.resubmits);
        assert!(
            crashed.breaker_opens >= 1,
            "the dead worker's breaker opens"
        );
        assert!(crashed.p99_us.is_finite() && crashed.p99_us > 0.0);
        // Recovery costs latency but not correctness.
        assert!(crashed.p99_us >= clean.p99_us);
        let again = run_load(&crashed_cfg);
        assert_eq!(crashed.results, again.results);
        assert_eq!(crashed.wall_us, again.wall_us);
        assert_eq!(crashed.resubmits, again.resubmits);
    }

    /// The recovery knobs default off: a clean run reports zero recovery
    /// activity on every counter.
    #[test]
    fn clean_run_has_zero_recovery_counters() {
        let r = run_load(&small(true, 3));
        assert_eq!(
            (
                r.resubmits,
                r.task_timeouts,
                r.breaker_opens,
                r.dup_results,
                r.tasks_failed
            ),
            (0, 0, 0, 0, 0)
        );
        assert_eq!((r.ucp_retry, r.ucp_reroute, r.ucp_giveup), (0, 0, 0));
        assert!(r.trace_events.is_empty());
    }

    #[test]
    fn checksum_is_content_pure() {
        let data = client_data(3, 17, 512);
        let a = task_checksum(17, 99, 0xabcd, &data);
        let b = task_checksum(17, 99, 0xabcd, &data);
        assert_eq!(a, b);
        assert_ne!(a, task_checksum(17, 100, 0xabcd, &data));
        assert_ne!(a, task_checksum(18, 99, 0xabcd, &data));
        assert_ne!(a, task_checksum(17, 99, 0xabce, &data));
    }
}
