//! Service-layer metrics registry: every counter the futures frontend's
//! recovery machinery emits, declared once as typed [`Metric`] handles.
//! Call sites pass these handles; ad-hoc string literals are rejected by
//! `scripts/check.sh`. The counters live in the world's UCP counter map
//! (`w.ucp.counters`) so one sweep reads every layer's recovery activity.

use rucx_sim::Metric;

/// Tasks resubmitted to a surviving worker after their deadline expired.
pub const RESUBMIT: Metric = Metric::counter("svc.resubmit");
/// Task deadlines that expired (each one either resubmits or fails the
/// task; `svc.resubmit + svc.task_failed` accounts for every timeout's
/// outcome except retries of already-resubmitted tasks).
pub const TASK_TIMEOUT: Metric = Metric::counter("svc.task_timeout");
/// Per-worker circuit breakers opened (consecutive timeouts reached the
/// threshold, or the UCP layer surfaced an endpoint give-up for the
/// worker). An open breaker removes the worker from resubmission targets
/// permanently — its channel sequence state may be torn down.
pub const BREAKER_OPEN: Metric = Metric::counter("svc.breaker_open");
/// Results that arrived for a task already gathered (the original worker
/// answered late, after a resubmission was counted). Never double-counted.
pub const DUP_RESULT: Metric = Metric::counter("svc.dup_result");
/// Tasks abandoned after exhausting `max_resubmit` or running out of
/// eligible workers.
pub const TASK_FAILED: Metric = Metric::counter("svc.task_failed");
