//! Chare migration: PUP-style pack/unpack, home-based location management,
//! and in-flight message forwarding (the Charm++ capability behind AMPI's
//! rank migratability, paper §II-D).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rucx_charm::{launch, marshal, ChareRef, Msg};
use rucx_fabric::Topology;
use rucx_sim::time::us;
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MachineConfig};

/// A migratable chare: a counter whose value travels with it.
struct Roamer {
    count: u64,
}

fn pup(r: &Roamer) -> Vec<u8> {
    let mut b = Vec::new();
    marshal::put_u64(&mut b, r.count);
    b
}

fn unpup(bytes: &[u8]) -> Box<dyn std::any::Any> {
    let mut r = marshal::Reader(bytes);
    Box::new(Roamer { count: r.u64() })
}

#[test]
fn migrate_preserves_state_and_forwards_messages() {
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let seen_on_pe = Arc::new(AtomicU64::new(u64::MAX));
    let final_count = Arc::new(AtomicU64::new(0));
    let seen2 = seen_on_pe.clone();
    let fc2 = final_count.clone();

    launch(&mut sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        // Element 0 lives on PE 0 (home).
        let col = pe.register_collection(n, move |i| i as usize);
        pe.set_factory(col, unpup);
        let seen3 = seen2.clone();
        let fc3 = fc2.clone();
        let ep_bump = pe.register_ep(
            col,
            None,
            Box::new(move |chare, msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<Roamer>().unwrap();
                c.count += 1;
                let mut r = marshal::Reader(&msg.params);
                let last = r.u8() == 1;
                if last {
                    seen3.store(pe.index as u64, Ordering::SeqCst);
                    fc3.store(c.count, Ordering::SeqCst);
                    pe.exit_all(ctx);
                }
                let _ = ctx;
            }),
        );
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(col, i, Box::new(Roamer { count: 0 }));
        }

        if pe.index == 1 {
            // Three messages to element 0 before the migration...
            for _ in 0..3 {
                let mut p = Vec::new();
                marshal::put_u8(&mut p, 0);
                pe.send(ctx, ChareRef { col, index: 0 }, ep_bump, p, 0, vec![]);
            }
        }
        if pe.index == 0 {
            // ...then PE 0 migrates element 0 to PE 3 after they land...
            ctx.advance(us(100.0));
            pe.pump_until(ctx, |pe, _| pe.chare_mut::<Roamer>(col, 0).count >= 3);
            pe.migrate::<Roamer>(ctx, col, 0, 3, pup);
            assert!(!pe.local_indices(col).contains(&0));
        }
        if pe.index == 2 {
            // ...and PE 2 (stale view: home map says PE 0) sends two more,
            // which must be forwarded to PE 3.
            ctx.advance(us(400.0));
            let mut p = Vec::new();
            marshal::put_u8(&mut p, 0);
            pe.send(ctx, ChareRef { col, index: 0 }, ep_bump, p, 0, vec![]);
            let mut p = Vec::new();
            marshal::put_u8(&mut p, 1);
            pe.send(ctx, ChareRef { col, index: 0 }, ep_bump, p, 0, vec![]);
        }
        pe.run(ctx);
        if pe.index == 3 {
            // The chare (and its accumulated state) ended up here.
            assert!(pe.local_indices(col).contains(&0));
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(seen_on_pe.load(Ordering::SeqCst), 3, "last msg ran on PE 3");
    assert_eq!(final_count.load(Ordering::SeqCst), 5, "state moved intact");
}

#[test]
fn self_migration_is_a_noop() {
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    launch(&mut sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        pe.set_factory(col, unpup);
        let _ep = pe.register_ep(col, None, Box::new(|_, _, _, _| {}));
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(col, i, Box::new(Roamer { count: 7 }));
        }
        let me = pe.index as u64;
        pe.migrate::<Roamer>(ctx, col, me, pe.index, pup);
        assert_eq!(pe.chare_mut::<Roamer>(col, me).count, 7);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
}

#[test]
fn migration_from_entry_method() {
    // A chare that migrates itself when poked (the common Charm++ pattern:
    // load balancing decisions run inside entry methods).
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let landed = Arc::new(AtomicU64::new(0));
    let landed2 = landed.clone();
    launch(&mut sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        pe.set_factory(col, unpup);
        let landed3 = landed2.clone();
        let ep_hop = pe.register_ep(
            col,
            None,
            Box::new(move |chare, msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<Roamer>().unwrap();
                c.count += 1;
                let mut r = marshal::Reader(&msg.params);
                let dest = r.u64() as usize;
                if dest != pe.index {
                    // Self-migration from inside the entry method.
                    pe.migrate_packed(ctx, col, 0, dest, pup(c));
                } else {
                    landed3.store(c.count, Ordering::SeqCst);
                    pe.exit_all(ctx);
                }
            }),
        );
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(col, i, Box::new(Roamer { count: 0 }));
        }
        if pe.index == 5 {
            // Poke element 0 (on PE 0) telling it to hop to PE 4; then poke
            // again: the second poke routes via home and is forwarded.
            let mut p = Vec::new();
            marshal::put_u64(&mut p, 4);
            pe.send(ctx, ChareRef { col, index: 0 }, ep_hop, p, 0, vec![]);
            ctx.advance(us(200.0));
            let mut p = Vec::new();
            marshal::put_u64(&mut p, 4);
            pe.send(ctx, ChareRef { col, index: 0 }, ep_hop, p, 0, vec![]);
        }
        pe.run(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    assert_eq!(landed.load(Ordering::SeqCst), 2);
}
