//! Quiescence detection: the CkStartQD-style counter algorithm must fire
//! only after every user-level message (including pending GPU payloads) has
//! been fully processed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rucx_charm::{launch, marshal, ChareRef, Msg};
use rucx_fabric::Topology;
use rucx_gpu::DeviceId;
use rucx_sim::RunOutcome;
use rucx_ucp::{build_sim, MachineConfig};

struct Bouncer {
    bounces_left: u64,
    last_activity: Arc<AtomicU64>,
}

#[test]
fn quiescence_fires_after_all_bouncing_stops() {
    // Chares bounce messages around the ring a fixed number of times;
    // quiescence must be detected only after the final bounce.
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let last_activity = Arc::new(AtomicU64::new(0));
    let qd_at = Arc::new(AtomicU64::new(0));
    let la2 = last_activity.clone();
    let qd2 = qd_at.clone();

    launch(&mut sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        let la3 = la2.clone();
        let ep_bounce = pe.register_ep(
            col,
            None,
            Box::new(move |chare, _msg: &Msg, pe, ctx| {
                let c = chare.downcast_mut::<Bouncer>().unwrap();
                c.last_activity.fetch_max(ctx.now(), Ordering::SeqCst);
                if c.bounces_left > 0 {
                    c.bounces_left -= 1;
                    let me = pe.index as u64;
                    let (col, ep) = IDS.with(|x| x.get()).unwrap();
                    let next = (me + 1) % pe.n_pes as u64;
                    pe.send(ctx, ChareRef { col, index: next }, ep, vec![], 0, vec![]);
                }
            }),
        );
        let qd3 = qd2.clone();
        let ep_quiet = pe.register_ep(
            col,
            None,
            Box::new(move |_c, _m: &Msg, pe, ctx| {
                qd3.store(ctx.now(), Ordering::SeqCst);
                pe.exit_all(ctx);
            }),
        );
        IDS.with(|x| x.set(Some((col, ep_bounce))));
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(
                col,
                i,
                Box::new(Bouncer {
                    bounces_left: 10,
                    last_activity: la3.clone(),
                }),
            );
        }
        if pe.index == 0 {
            // Kick the ring, then start detection.
            pe.send(
                ctx,
                ChareRef { col, index: 1 },
                ep_bounce,
                vec![],
                0,
                vec![],
            );
            pe.start_quiescence(ctx, ChareRef { col, index: 0 }, ep_quiet);
        }
        pe.run(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let busy_until = last_activity.load(Ordering::SeqCst);
    let quiet_at = qd_at.load(Ordering::SeqCst);
    assert!(quiet_at > 0, "quiescence handler must run");
    assert!(
        quiet_at > busy_until,
        "quiescence at {quiet_at} declared before last activity {busy_until}"
    );
}

thread_local! {
    static IDS: std::cell::Cell<Option<(rucx_charm::Collection, u16)>> =
        const { std::cell::Cell::new(None) };
}

#[test]
fn quiescence_waits_for_pending_gpu_payload() {
    // A large device transfer is in flight when detection starts; the
    // receiving entry method (which fires only after the GPU data lands)
    // must run before quiescence is declared.
    let mut sim = build_sim(Topology::summit(1), MachineConfig::default());
    let size = 4u64 << 20;
    let src = sim
        .world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(0), size, false)
        .unwrap();
    let dst = sim
        .world_mut()
        .gpu
        .pool
        .alloc_device(DeviceId(1), size, false)
        .unwrap();
    let data_at = Arc::new(AtomicU64::new(0));
    let qd_at = Arc::new(AtomicU64::new(0));
    let (da2, qd2) = (data_at.clone(), qd_at.clone());

    launch(&mut sim, move |pe, ctx| {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize);
        let da3 = da2.clone();
        let ep_data = pe.register_ep(
            col,
            Some(Box::new(move |_c, _m| vec![dst])),
            Box::new(move |_c, _m: &Msg, _pe, ctx| {
                da3.store(ctx.now(), Ordering::SeqCst);
            }),
        );
        let qd3 = qd2.clone();
        let ep_quiet = pe.register_ep(
            col,
            None,
            Box::new(move |_c, _m: &Msg, pe, ctx| {
                qd3.store(ctx.now(), Ordering::SeqCst);
                pe.exit_all(ctx);
            }),
        );
        struct Unit;
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(col, i, Box::new(Unit));
        }
        if pe.index == 0 {
            let mut p = Vec::new();
            marshal::put_u64(&mut p, 1);
            pe.send(ctx, ChareRef { col, index: 1 }, ep_data, p, 0, vec![src]);
            pe.start_quiescence(ctx, ChareRef { col, index: 0 }, ep_quiet);
        }
        pe.run(ctx);
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let data_t = data_at.load(Ordering::SeqCst);
    let qd_t = qd_at.load(Ordering::SeqCst);
    assert!(data_t > 0, "data entry method ran");
    assert!(
        qd_t > data_t,
        "quiescence at {qd_t} before the GPU payload landed at {data_t}"
    );
}
