//! Property-based tests of the machine-layer tag scheme (paper Fig. 3) and
//! the envelope wire format, on the in-repo harness
//! ([`rucx_compat::check`]).

use rucx_charm::{marshal, DeviceMeta, Envelope, MsgType, TagScheme, MSG_BITS};
use rucx_compat::check::{check, Gen};

fn gen_scheme(g: &mut Gen) -> TagScheme {
    let pe_bits = g.u32(1..(64 - MSG_BITS));
    TagScheme::new(pe_bits, 64 - MSG_BITS - pe_bits).expect("valid split")
}

/// Any valid PE/CNT split roundtrips (type, PE, counter) exactly.
#[test]
fn tag_roundtrip_for_any_split() {
    check("tag_roundtrip_for_any_split", |g| {
        let scheme = gen_scheme(g);
        let pe_frac = g.f64(0.0..1.0);
        let cnt = g.any_u64();
        let pe = ((pe_frac * scheme.max_pe() as f64) as u64).min(scheme.max_pe()) as usize;
        let t = scheme.device_tag(pe, cnt);
        assert_eq!(scheme.msg_type(t), Some(MsgType::Device));
        assert_eq!(scheme.src_pe(t), pe);
        assert_eq!(scheme.cnt(t), cnt % scheme.cnt_period());
        // Host tags never collide with device tags.
        let h = scheme.host_tag(pe);
        assert_ne!(t, h);
        let (want, mask) = scheme.host_probe();
        assert!(rucx_ucp::tag_matches(want, mask, h));
        assert!(!rucx_ucp::tag_matches(want, mask, t));
    });
}

/// Tags are unique within a PE until the counter wraps.
#[test]
fn tags_unique_within_period() {
    check("tags_unique_within_period", |g| {
        let scheme_cnt_bits = g.u32(2..12);
        let pe = g.usize(0..64);
        let scheme = TagScheme::new(64 - MSG_BITS - scheme_cnt_bits, scheme_cnt_bits).unwrap();
        let period = scheme.cnt_period().min(1 << 12);
        let mut seen = std::collections::HashSet::new();
        for c in 0..period {
            assert!(seen.insert(scheme.device_tag(pe, c)));
        }
        // Wrap: counter `period` aliases counter 0.
        assert_eq!(scheme.device_tag(pe, period), scheme.device_tag(pe, 0));
    });
}

/// Envelope encode/decode is the identity for arbitrary contents.
#[test]
fn envelope_roundtrip() {
    check("envelope_roundtrip", |g| {
        let e = Envelope {
            collection: g.any_u16(),
            index: g.any_u64(),
            ep: g.any_u16(),
            src_pe: g.any_u32(),
            params: g.bytes(0..256),
            phantom_payload: g.any_u64(),
            device: g.vec(0..8, |g| {
                let tag = g.any_u64();
                DeviceMeta {
                    tag,
                    size: g.any_u64(),
                    user_tagged: tag % 2 == 0,
                }
            }),
        };
        let bytes = e.encode();
        assert_eq!(Envelope::decode(&bytes), Some(e));
    });
}

/// Decoding never panics on arbitrary bytes (malformed input is None or
/// a best-effort envelope, never a crash).
#[test]
fn envelope_decode_never_panics() {
    check("envelope_decode_never_panics", |g| {
        let bytes = g.bytes(0..128);
        let _ = Envelope::decode(&bytes);
    });
}

/// Marshal helpers roundtrip arbitrary sequences.
#[test]
fn marshal_roundtrip() {
    check("marshal_roundtrip", |g| {
        let a = g.any_u64();
        let b = g.any_f64();
        let c = g.any_u32();
        let d = g.any_i64();
        let e = g.any_u8();
        let blob = g.bytes(0..64);
        let mut buf = Vec::new();
        marshal::put_u64(&mut buf, a);
        marshal::put_f64(&mut buf, b);
        marshal::put_u32(&mut buf, c);
        marshal::put_i64(&mut buf, d);
        marshal::put_u8(&mut buf, e);
        marshal::put_bytes(&mut buf, &blob);
        let mut r = marshal::Reader(&buf);
        assert_eq!(r.u64(), a);
        let rb = r.f64();
        assert!(rb == b || (rb.is_nan() && b.is_nan()));
        assert_eq!(r.u32(), c);
        assert_eq!(r.i64(), d);
        assert_eq!(r.u8(), e);
        assert_eq!(r.bytes(), &blob[..]);
    });
}
