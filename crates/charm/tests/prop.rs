//! Property-based tests of the machine-layer tag scheme (paper Fig. 3) and
//! the envelope wire format.

use proptest::prelude::*;
use rucx_charm::{marshal, DeviceMeta, Envelope, MsgType, TagScheme, MSG_BITS};

fn scheme_strategy() -> impl Strategy<Value = TagScheme> {
    (1u32..(64 - MSG_BITS)).prop_map(|pe_bits| {
        TagScheme::new(pe_bits, 64 - MSG_BITS - pe_bits).expect("valid split")
    })
}

proptest! {
    /// Any valid PE/CNT split roundtrips (type, PE, counter) exactly.
    #[test]
    fn tag_roundtrip_for_any_split(
        scheme in scheme_strategy(),
        pe_frac in 0.0f64..1.0,
        cnt in any::<u64>(),
    ) {
        let pe = ((pe_frac * scheme.max_pe() as f64) as u64)
            .min(scheme.max_pe()) as usize;
        let t = scheme.device_tag(pe, cnt);
        prop_assert_eq!(scheme.msg_type(t), Some(MsgType::Device));
        prop_assert_eq!(scheme.src_pe(t), pe);
        prop_assert_eq!(scheme.cnt(t), cnt % scheme.cnt_period());
        // Host tags never collide with device tags.
        let h = scheme.host_tag(pe);
        prop_assert_ne!(t, h);
        let (want, mask) = scheme.host_probe();
        prop_assert!(rucx_ucp::tag_matches(want, mask, h));
        prop_assert!(!rucx_ucp::tag_matches(want, mask, t));
    }

    /// Tags are unique within a PE until the counter wraps.
    #[test]
    fn tags_unique_within_period(scheme_cnt_bits in 2u32..12, pe in 0usize..64) {
        let scheme = TagScheme::new(64 - MSG_BITS - scheme_cnt_bits, scheme_cnt_bits).unwrap();
        let period = scheme.cnt_period().min(1 << 12);
        let mut seen = std::collections::HashSet::new();
        for c in 0..period {
            prop_assert!(seen.insert(scheme.device_tag(pe, c)));
        }
        // Wrap: counter `period` aliases counter 0.
        prop_assert_eq!(scheme.device_tag(pe, period), scheme.device_tag(pe, 0));
    }

    /// Envelope encode/decode is the identity for arbitrary contents.
    #[test]
    fn envelope_roundtrip(
        collection in any::<u16>(),
        index in any::<u64>(),
        ep in any::<u16>(),
        src_pe in any::<u32>(),
        params in prop::collection::vec(any::<u8>(), 0..256),
        phantom in any::<u64>(),
        device in prop::collection::vec((any::<u64>(), any::<u64>()), 0..8),
    ) {
        let e = Envelope {
            collection,
            index,
            ep,
            src_pe,
            params,
            phantom_payload: phantom,
            device: device
                .into_iter()
                .map(|(tag, size)| DeviceMeta {
                    tag,
                    size,
                    user_tagged: tag % 2 == 0,
                })
                .collect(),
        };
        let bytes = e.encode();
        prop_assert_eq!(Envelope::decode(&bytes), Some(e));
    }

    /// Decoding never panics on arbitrary bytes (malformed input is None or
    /// a best-effort envelope, never a crash).
    #[test]
    fn envelope_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Envelope::decode(&bytes);
    }

    /// Marshal helpers roundtrip arbitrary sequences.
    #[test]
    fn marshal_roundtrip(
        a in any::<u64>(),
        b in any::<f64>(),
        c in any::<u32>(),
        d in any::<i64>(),
        e in any::<u8>(),
        blob in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = Vec::new();
        marshal::put_u64(&mut buf, a);
        marshal::put_f64(&mut buf, b);
        marshal::put_u32(&mut buf, c);
        marshal::put_i64(&mut buf, d);
        marshal::put_u8(&mut buf, e);
        marshal::put_bytes(&mut buf, &blob);
        let mut r = marshal::Reader(&buf);
        prop_assert_eq!(r.u64(), a);
        let rb = r.f64();
        prop_assert!(rb == b || (rb.is_nan() && b.is_nan()));
        prop_assert_eq!(r.u32(), c);
        prop_assert_eq!(r.i64(), d);
        prop_assert_eq!(r.u8(), e);
        prop_assert_eq!(r.bytes(), &blob[..]);
    }
}
