//! Envelope encoding for Charm++ messages.
//!
//! A message carries: destination chare (collection, index), entry-method
//! id, source PE, marshalled host-side parameters, an optional amount of
//! *phantom* host payload (size-only, for at-scale runs), and one
//! [`DeviceMeta`] per `nocopydevice` parameter — the serialized form of the
//! paper's `CkDeviceBuffer` metadata (Fig. 5): everything the receiver needs
//! to post the matching device receive.

use rucx_compat::buf::{Buf, BufMut};

/// Metadata describing one in-flight GPU buffer (wire form of
/// `CkDeviceBuffer`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceMeta {
    /// Machine-layer tag the sender used for the GPU data
    /// (`UCX_MSG_TAG_DEVICE` or `UserDevice` type).
    pub tag: u64,
    /// Payload size in bytes.
    pub size: u64,
    /// The sender used a user-provided tag, so the receiver may have
    /// pre-posted the receive (§VI improvement); if it has not, the
    /// receive is posted on metadata arrival as usual.
    pub user_tagged: bool,
}

/// A decoded Charm++ message envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Destination collection (chare array) id.
    pub collection: u16,
    /// Destination element index within the collection.
    pub index: u64,
    /// Entry-method id within the destination chare's type.
    pub ep: u16,
    /// Sending PE.
    pub src_pe: u32,
    /// Marshalled host-side parameters.
    pub params: Vec<u8>,
    /// Additional host payload bytes that travel on the wire but are not
    /// materialized (models large host-side data at scale).
    pub phantom_payload: u64,
    /// One entry per GPU buffer sent in tandem.
    pub device: Vec<DeviceMeta>,
}

/// Fixed per-envelope header overhead on the wire (Converse + Charm++ core
/// headers in the real runtime).
pub const ENVELOPE_HEADER: u64 = 64;

impl Envelope {
    /// Bytes this envelope occupies on the wire (header + params + phantom
    /// payload + device metadata).
    pub fn wire_size(&self) -> u64 {
        ENVELOPE_HEADER
            + self.params.len() as u64
            + self.phantom_payload
            + self.device.len() as u64 * 17
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32 + self.params.len() + self.device.len() * 16);
        b.put_u16(self.collection);
        b.put_u64(self.index);
        b.put_u16(self.ep);
        b.put_u32(self.src_pe);
        b.put_u64(self.phantom_payload);
        b.put_u16(self.device.len() as u16);
        for d in &self.device {
            b.put_u64(d.tag);
            b.put_u64(d.size);
            b.put_u8(d.user_tagged as u8);
        }
        b.put_u32(self.params.len() as u32);
        b.put_slice(&self.params);
        b
    }

    /// Deserialize; returns `None` on malformed input.
    pub fn decode(mut buf: &[u8]) -> Option<Envelope> {
        if buf.remaining() < 2 + 8 + 2 + 4 + 8 + 2 {
            return None;
        }
        let collection = buf.get_u16();
        let index = buf.get_u64();
        let ep = buf.get_u16();
        let src_pe = buf.get_u32();
        let phantom_payload = buf.get_u64();
        let ndev = buf.get_u16() as usize;
        if buf.remaining() < ndev * 17 + 4 {
            return None;
        }
        let mut device = Vec::with_capacity(ndev);
        for _ in 0..ndev {
            let tag = buf.get_u64();
            let size = buf.get_u64();
            let user_tagged = buf.get_u8() != 0;
            device.push(DeviceMeta {
                tag,
                size,
                user_tagged,
            });
        }
        let plen = buf.get_u32() as usize;
        if buf.remaining() < plen {
            return None;
        }
        let params = buf[..plen].to_vec();
        Some(Envelope {
            collection,
            index,
            ep,
            src_pe,
            params,
            phantom_payload,
            device,
        })
    }
}

/// Tiny helpers for marshalling entry-method parameters.
pub mod marshal {
    use rucx_compat::buf::{Buf, BufMut};

    /// Append a `u64` parameter.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.put_u64(v);
    }

    /// Append a `u32` parameter.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.put_u32(v);
    }

    /// Append a `u8` parameter.
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.put_u8(v);
    }

    /// Append an `i64` parameter.
    pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
        buf.put_i64(v);
    }

    /// Append an `f64` parameter.
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.put_f64(v);
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
        buf.put_u32(v.len() as u32);
        buf.put_slice(v);
    }

    /// Cursor for reading parameters back.
    pub struct Reader<'a>(pub &'a [u8]);

    impl<'a> Reader<'a> {
        pub fn u64(&mut self) -> u64 {
            self.0.get_u64()
        }
        pub fn u32(&mut self) -> u32 {
            self.0.get_u32()
        }
        pub fn u8(&mut self) -> u8 {
            self.0.get_u8()
        }
        pub fn i64(&mut self) -> i64 {
            self.0.get_i64()
        }
        pub fn f64(&mut self) -> f64 {
            self.0.get_f64()
        }
        pub fn bytes(&mut self) -> &'a [u8] {
            let n = self.0.get_u32() as usize;
            let (head, rest) = self.0.split_at(n);
            self.0 = rest;
            head
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope {
            collection: 3,
            index: 42,
            ep: 7,
            src_pe: 11,
            params: vec![1, 2, 3, 4, 5],
            phantom_payload: 1 << 20,
            device: vec![
                DeviceMeta {
                    tag: 0xDEAD,
                    size: 4096,
                    user_tagged: false,
                },
                DeviceMeta {
                    tag: 0xBEEF,
                    size: 8192,
                    user_tagged: true,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let e = sample();
        let bytes = e.encode();
        assert_eq!(Envelope::decode(&bytes), Some(e));
    }

    #[test]
    fn roundtrip_empty() {
        let e = Envelope {
            collection: 0,
            index: 0,
            ep: 0,
            src_pe: 0,
            params: vec![],
            phantom_payload: 0,
            device: vec![],
        };
        let bytes = e.encode();
        assert_eq!(Envelope::decode(&bytes), Some(e));
    }

    #[test]
    fn truncated_input_is_none() {
        let bytes = sample().encode();
        for cut in [0, 1, 5, 17, bytes.len() - 1] {
            assert_eq!(Envelope::decode(&bytes[..cut]), None, "cut={cut}");
        }
    }

    #[test]
    fn wire_size_accounts_for_all_parts() {
        let e = sample();
        assert_eq!(e.wire_size(), ENVELOPE_HEADER + 5 + (1 << 20) + 2 * 17);
    }

    #[test]
    fn marshal_roundtrip() {
        let mut buf = Vec::new();
        marshal::put_u64(&mut buf, 99);
        marshal::put_f64(&mut buf, 2.5);
        marshal::put_bytes(&mut buf, b"hello");
        let mut r = marshal::Reader(&buf);
        assert_eq!(r.u64(), 99);
        assert_eq!(r.f64(), 2.5);
        assert_eq!(r.bytes(), b"hello");
    }
}
