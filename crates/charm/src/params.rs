//! Calibration constants of the Charm++ runtime layer.

use rucx_sim::time::{us, Duration};

/// Per-message CPU costs of the Charm++ runtime (Converse + Charm++ core +
/// code generation layers), above whatever UCX itself costs.
///
/// These reproduce the layer-attribution the paper measures in §IV-B1: an
/// entry-method invocation costs a few microseconds of runtime processing on
/// each side, and host-side payloads are packed into (and unpacked out of)
/// the Charm++ message, which is what makes the host-staging path so much
/// slower than GPU-direct for large buffers.
#[derive(Debug, Clone)]
pub struct CharmParams {
    /// Sender-side cost of an entry-method invocation (message allocation,
    /// marshalling, Converse + machine-layer call path).
    pub send_overhead: Duration,
    /// Receiver-side cost (scheduler pop, envelope decode, handler dispatch).
    pub recv_overhead: Duration,
    /// Extra cost to run a post entry method (Zero Copy API receive setup).
    pub post_overhead: Duration,
    /// Extra CPU cost per device buffer descriptor (CkDeviceBuffer setup,
    /// tag generation, metadata bookkeeping — includes the heap allocations
    /// the paper calls out).
    pub device_meta_overhead: Duration,
    /// Bandwidth at which host payloads are packed into / unpacked from
    /// Charm++ messages (single-core memcpy).
    pub pack_gbps: f64,
    /// Payloads at or below this size ride in the envelope without a
    /// separate packing pass.
    pub pack_free_below: u64,
    /// Cost of one trip through the scheduler when the queue was empty
    /// (polling the machine layer).
    pub idle_poll: Duration,
}

impl Default for CharmParams {
    fn default() -> Self {
        CharmParams {
            send_overhead: us(0.85),
            recv_overhead: us(0.85),
            post_overhead: us(0.35),
            device_meta_overhead: us(0.40),
            pack_gbps: 18.0,
            pack_free_below: 1024,
            idle_poll: us(0.10),
        }
    }
}

impl CharmParams {
    /// Packing (or unpacking) cost for `size` bytes of host payload.
    pub fn pack_cost(&self, size: u64) -> Duration {
        if size <= self.pack_free_below {
            0
        } else {
            rucx_sim::time::transfer_time(size, self.pack_gbps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payloads_pack_free() {
        let p = CharmParams::default();
        assert_eq!(p.pack_cost(64), 0);
        assert_eq!(p.pack_cost(1024), 0);
        assert!(p.pack_cost(1 << 20) > 0);
    }

    #[test]
    fn pack_cost_linear() {
        let p = CharmParams::default();
        let c1 = p.pack_cost(1 << 20);
        let c4 = p.pack_cost(4 << 20);
        assert!((c4 as f64 / c1 as f64 - 4.0).abs() < 0.01);
    }
}
