//! The PE (Processing Element) runtime: message-driven scheduler, chare
//! management, entry-method dispatch, and the GPU-aware send/receive paths
//! of §III-B.
//!
//! One [`Pe`] lives inside each simulated process (non-SMP build: one PE per
//! process per GPU). All Charm++ state is process-local; the only shared
//! state is the [`rucx_ucp::Machine`] below, accessed through the UCX
//! machine layer.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use rucx_coll::Tree;
use rucx_gpu::MemRef;
use rucx_sim::sched::Trigger;
use rucx_ucp::{
    probe_pop, rndv_fetch, tag_recv_nb, tag_send_nb, Completion, FetchDst, MCtx, PoppedMsg,
    RecvCompletion, SendBuf, UcpError,
};

use crate::mltags::TagScheme;
use crate::params::CharmParams;
use crate::wire::{DeviceMeta, Envelope};

/// Identifier of a chare collection (array) registered on a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Collection(pub u16);

/// Entry-method id within a collection.
pub type EpId = u16;

/// Reference to a chare array element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChareRef {
    pub col: Collection,
    pub index: u64,
}

/// Reserved collection id for runtime-internal messages.
const SYS_COLLECTION: u16 = u16::MAX;
const SYS_EXIT: EpId = 0;
const SYS_REDUCE: EpId = 1;
/// Carries a packed (PUPed) chare to its new PE.
const SYS_MIGRATE: EpId = 2;
/// Location update: (col, index, new_pe).
const SYS_LOCATION: EpId = 3;
/// Quiescence-detection wave: root asks every PE for its counters.
const SYS_QD_PING: EpId = 4;
/// Quiescence-detection reply: (wave, created, processed).
const SYS_QD_REPLY: EpId = 5;
/// Broadcast marker index: deliver to every local element.
const BCAST_INDEX: u64 = u64::MAX;

/// A message as seen by an entry method.
pub struct Msg {
    /// PE that sent the message.
    pub src_pe: usize,
    /// Marshalled host-side parameters.
    pub params: Vec<u8>,
    /// Sizes of the GPU buffers received in tandem (in declaration order);
    /// the data is already in the buffers the post entry method supplied
    /// when the regular entry method runs.
    pub device_sizes: Vec<u64>,
    /// Phantom host payload size carried by the envelope.
    pub phantom_payload: u64,
}

/// Post entry method (Zero Copy API): given the chare and the incoming
/// message, return the destination GPU buffers (one per device parameter).
#[allow(clippy::type_complexity)]
pub type PostFn = Box<dyn Fn(&mut dyn Any, &Msg) -> Vec<MemRef>>;
/// Regular entry method.
pub type ExecFn = Box<dyn Fn(&mut dyn Any, &Msg, &mut Pe, &mut MCtx)>;
/// Per-chare communication-error handler: invoked on the chare whose send
/// the reliability layer gave up on (routed via the send-context stamp).
pub type ErrorFn = Box<dyn Fn(&mut dyn Any, &UcpError, &mut Pe, &mut MCtx)>;
/// PE-wide fallback error handler (no owning chare identified, or the chare
/// has no handler of its own). Blocking layers built on [`Pe`] (AMPI,
/// Charm4py) install one to map errors onto their own semantics.
pub type DefaultErrorFn = Box<dyn Fn(&UcpError, &mut Pe, &mut MCtx)>;

/// One registered entry method.
pub struct EpEntry {
    pub post: Option<PostFn>,
    pub exec: ExecFn,
}

/// Reduction operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    Sum,
    Min,
    Max,
    /// No value; pure synchronization.
    Barrier,
}

/// Where a reduction result is delivered (as a regular entry-method
/// invocation with the result marshalled as one `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedTarget {
    /// Broadcast to every element of the collection.
    Broadcast(Collection, EpId),
    /// Send to a single chare.
    Chare(ChareRef, EpId),
}

struct RedEntry {
    local_got: usize,
    children_got: usize,
    acc: f64,
    count: u64,
    target: Option<RedTarget>,
}

struct RedMgr {
    entries: HashMap<u64, RedEntry>,
    /// Per-element next sequence number (each element contributes once per
    /// reduction, in the same order everywhere).
    elem_seq: HashMap<u64, u64>,
}

impl RedMgr {
    fn new() -> Self {
        RedMgr {
            entries: HashMap::new(),
            elem_seq: HashMap::new(),
        }
    }
}

struct CollectionData {
    map: Rc<dyn Fn(u64) -> usize>,
    num_elements: u64,
    eps: Vec<Rc<EpEntry>>,
    local_indices: Vec<u64>,
    /// For the reduction tree: which PEs' subtrees contain elements.
    subtree_elems: Rc<Vec<u64>>,
    red: RedMgr,
    /// Deserializer for migrated chares (PUP unpacking). Collections
    /// without a factory cannot receive migrations.
    #[allow(clippy::type_complexity)]
    factory: Option<Box<dyn Fn(&[u8]) -> Box<dyn Any>>>,
    /// Known element locations overriding the home map (updated by
    /// migrations this PE learns about).
    location: HashMap<u64, usize>,
}

struct PendingDevice {
    env: Envelope,
    triggers: Vec<Trigger>,
}

/// The per-process Charm++ runtime.
pub struct Pe {
    /// This PE's index (== process index == GPU index).
    pub index: usize,
    /// Total number of PEs.
    pub n_pes: usize,
    /// Machine-layer tag scheme.
    pub scheme: TagScheme,
    /// Runtime cost model.
    pub params: CharmParams,
    /// The PE tree reductions climb. Defaults to the historical binary
    /// tree; [`Pe::set_reduction_tree`] swaps in a topology-aware one.
    red_tree: Rc<Tree>,
    device_cnt: u64,
    collections: Vec<CollectionData>,
    chares: HashMap<(u16, u64), Box<dyn Any>>,
    local_q: VecDeque<Envelope>,
    pending_device: Vec<PendingDevice>,
    /// Receives posted *before* their metadata arrived, keyed by full
    /// machine-layer tag (user-provided tag path, §VI improvement).
    pre_posted: HashMap<u64, Trigger>,
    exit: bool,
    /// Messages dispatched (diagnostics).
    pub msgs_processed: u64,
    /// Quiescence-detection counters: user-level envelopes created and
    /// processed by this PE (QD's own control traffic is excluded).
    qd_created: u64,
    qd_processed: u64,
    /// Root-side state of an active quiescence detection.
    qd: Option<QdState>,
    /// Per-chare communication-error handlers ([`Pe::set_error_handler`]).
    error_handlers: HashMap<(u16, u64), Rc<ErrorFn>>,
    /// PE-wide fallback error handler.
    default_error_handler: Option<Rc<DefaultErrorFn>>,
    /// Chare whose entry method is currently executing (stamped into
    /// tracked sends so give-up errors route back to it).
    current_chare: Option<(u16, u64)>,
    /// Errors no handler claimed — kept (not dropped) so drivers and tests
    /// can still observe them.
    pub unhandled_errors: Vec<UcpError>,
}

/// Send-context encoding: (collection + 1) in the top 16 bits, chare index
/// below. 0 stays "unset"; indices are assumed < 2^48 (enforced nowhere —
/// a wrapped index merely mis-routes the error to the default handler).
fn encode_chare_ctx(key: (u16, u64)) -> u64 {
    ((key.0 as u64 + 1) << 48) | (key.1 & ((1u64 << 48) - 1))
}

fn decode_chare_ctx(ctx: u64) -> Option<(u16, u64)> {
    if ctx == 0 {
        return None;
    }
    Some((((ctx >> 48) - 1) as u16, ctx & ((1u64 << 48) - 1)))
}

/// Stamp the send context for the next tracked send. No-op on clean runs
/// (the register is only consulted when faults are enabled).
fn stamp_ctx(w: &mut rucx_ucp::Machine, sctx: u64) {
    if sctx != 0 && w.faults.enabled() {
        w.ucp.set_send_ctx(sctx);
    }
}

struct QdState {
    wave: u64,
    replies: usize,
    created: u64,
    processed: u64,
    prev: Option<(u64, u64)>,
    target: (ChareRef, EpId),
}

impl Pe {
    /// Create the runtime for one PE. Call inside the PE's process body.
    pub fn new(index: usize, n_pes: usize) -> Self {
        Pe::with_config(index, n_pes, TagScheme::default(), CharmParams::default())
    }

    /// Create with explicit tag scheme and cost parameters.
    pub fn with_config(index: usize, n_pes: usize, scheme: TagScheme, params: CharmParams) -> Self {
        Pe {
            index,
            n_pes,
            scheme,
            params,
            red_tree: Rc::new(Tree::binary(n_pes)),
            device_cnt: 0,
            collections: Vec::new(),
            chares: HashMap::new(),
            local_q: VecDeque::new(),
            pending_device: Vec::new(),
            pre_posted: HashMap::new(),
            exit: false,
            msgs_processed: 0,
            qd_created: 0,
            qd_processed: 0,
            qd: None,
            error_handlers: HashMap::new(),
            default_error_handler: None,
            current_chare: None,
            unhandled_errors: Vec::new(),
        }
    }

    // ---- Registration -------------------------------------------------

    /// Replace the reduction spanning tree (e.g. with
    /// [`Tree::topology`], which keeps contributions on NVLink until one
    /// leader per node crosses the network). Must be called identically on
    /// every PE, before any collection is registered.
    pub fn set_reduction_tree(&mut self, tree: Tree) {
        assert_eq!(tree.len(), self.n_pes, "tree must span every PE");
        assert!(
            self.collections.is_empty(),
            "set the reduction tree before registering collections"
        );
        self.red_tree = Rc::new(tree);
    }

    /// Register a chare collection with `num_elements` elements and an
    /// index→PE placement map. Must be called identically on every PE
    /// (SPMD registration, as in the real runtime).
    pub fn register_collection(
        &mut self,
        num_elements: u64,
        map: impl Fn(u64) -> usize + 'static,
    ) -> Collection {
        let map: Rc<dyn Fn(u64) -> usize> = Rc::new(map);
        // Elements per PE, then per-subtree totals along the reduction tree.
        let mut per_pe = vec![0u64; self.n_pes];
        for i in 0..num_elements {
            let pe = map(i);
            assert!(pe < self.n_pes, "map({i}) = {pe} out of range");
            per_pe[pe] += 1;
        }
        let subtree = self.red_tree.subtree_weights(&per_pe);
        let local_indices: Vec<u64> = (0..num_elements)
            .filter(|&i| map(i) == self.index)
            .collect();
        let id = Collection(self.collections.len() as u16);
        self.collections.push(CollectionData {
            map,
            num_elements,
            eps: Vec::new(),
            local_indices,
            subtree_elems: Rc::new(subtree),
            red: RedMgr::new(),
            factory: None,
            location: HashMap::new(),
        });
        id
    }

    /// Register the deserializer used to reconstruct chares of `col` that
    /// migrate to this PE (the PUP "unpacking" side). Must be registered
    /// identically on every PE before any migration.
    pub fn set_factory(&mut self, col: Collection, f: impl Fn(&[u8]) -> Box<dyn Any> + 'static) {
        self.collections[col.0 as usize].factory = Some(Box::new(f));
    }

    /// Register the next entry method of `col`; returns its id. Must be
    /// called in the same order on every PE.
    pub fn register_ep(&mut self, col: Collection, post: Option<PostFn>, exec: ExecFn) -> EpId {
        let c = &mut self.collections[col.0 as usize];
        let id = c.eps.len() as EpId;
        c.eps.push(Rc::new(EpEntry { post, exec }));
        id
    }

    /// Insert a local chare instance for `index` (must map to this PE).
    pub fn insert_chare(&mut self, col: Collection, index: u64, chare: Box<dyn Any>) {
        debug_assert_eq!(
            (self.collections[col.0 as usize].map)(index),
            self.index,
            "chare {index} does not map to PE {}",
            self.index
        );
        self.chares.insert((col.0, index), chare);
    }

    /// Register a communication-error handler for one local chare: when a
    /// send issued from its entry methods is abandoned by the reliability
    /// layer, the handler runs with the chare, like an entry method would.
    pub fn set_error_handler(&mut self, col: Collection, index: u64, f: ErrorFn) {
        self.error_handlers.insert((col.0, index), Rc::new(f));
    }

    /// Register the PE-wide fallback communication-error handler.
    pub fn set_default_error_handler(&mut self, f: DefaultErrorFn) {
        self.default_error_handler = Some(Rc::new(f));
    }

    /// Indices of this PE's local elements of `col`.
    pub fn local_indices(&self, col: Collection) -> &[u64] {
        &self.collections[col.0 as usize].local_indices
    }

    /// Number of elements in a collection.
    pub fn num_elements(&self, col: Collection) -> u64 {
        self.collections[col.0 as usize].num_elements
    }

    /// The element's *home* PE per the placement map (never changes).
    pub fn home_pe(&self, col: Collection, index: u64) -> usize {
        (self.collections[col.0 as usize].map)(index)
    }

    /// Best-known current location of an element: this PE's location cache,
    /// falling back to the home map. Stale entries are corrected by
    /// forwarding (messages reaching a PE that no longer owns the chare are
    /// re-routed by the owner-of-record chain).
    pub fn route_pe(&self, col: Collection, index: u64) -> usize {
        let c = &self.collections[col.0 as usize];
        c.location
            .get(&index)
            .copied()
            .unwrap_or_else(|| (c.map)(index))
    }

    /// Typed access to a local chare (for driver-style code such as AMPI
    /// rank bodies living between scheduler pumps).
    pub fn chare_mut<T: 'static>(&mut self, col: Collection, index: u64) -> &mut T {
        self.chares
            .get_mut(&(col.0, index))
            .expect("chare not present on this PE")
            .downcast_mut::<T>()
            .expect("chare type mismatch")
    }

    /// Whether the exit flag has been raised (via [`Pe::exit_all`]).
    pub fn exiting(&self) -> bool {
        self.exit
    }

    /// Run `f` with a local chare detached from the PE table, so the chare
    /// can drive the runtime (send messages, contribute) like an entry
    /// method would. Used by driver code (e.g. a main-chare kickoff).
    pub fn with_chare<T: 'static, R>(
        &mut self,
        ctx: &mut MCtx,
        col: Collection,
        index: u64,
        f: impl FnOnce(&mut T, &mut Pe, &mut MCtx) -> R,
    ) -> R {
        let key = (col.0, index);
        let mut chare = self
            .chares
            .remove(&key)
            .expect("chare not present on this PE");
        let prev = self.current_chare.replace(key);
        let r = f(
            chare.downcast_mut::<T>().expect("chare type mismatch"),
            self,
            ctx,
        );
        self.current_chare = prev;
        self.chares.insert(key, chare);
        r
    }

    /// Migrate a local chare to `dest_pe`: the chare is packed with `pup`,
    /// removed locally, shipped in a system message (its serialized state
    /// travels as envelope payload), and reconstructed on `dest_pe` with
    /// the collection's registered factory. The home PE is notified so
    /// future senders using the home map reach the new location; messages
    /// already in flight to this PE are forwarded.
    ///
    /// Restrictions (as documented, not enforced): no device transfers or
    /// reduction contributions may be in flight for the migrating chare.
    pub fn migrate<T: 'static>(
        &mut self,
        ctx: &mut MCtx,
        col: Collection,
        index: u64,
        dest_pe: usize,
        pup: impl Fn(&T) -> Vec<u8>,
    ) {
        assert!(dest_pe < self.n_pes);
        if dest_pe == self.index {
            return;
        }
        let chare = self.chares.remove(&(col.0, index)).expect(
            "migrating a chare not on this PE (from inside its own entry \
             method, use migrate_packed)",
        );
        let data = pup(chare.downcast_ref::<T>().expect("chare type mismatch"));
        self.migrate_packed(ctx, col, index, dest_pe, data);
    }

    /// Migration entry point for a chare migrating *itself* from within one
    /// of its entry methods (it is detached from the chare table during
    /// execution, so the handler packs its own state and hands the bytes
    /// here; the scheduler drops the detached instance afterwards).
    pub fn migrate_packed(
        &mut self,
        ctx: &mut MCtx,
        col: Collection,
        index: u64,
        dest_pe: usize,
        data: Vec<u8>,
    ) {
        assert!(dest_pe < self.n_pes);
        if dest_pe == self.index {
            return;
        }
        self.chares.remove(&(col.0, index)); // no-op when self-migrating
        let c = &mut self.collections[col.0 as usize];
        c.local_indices.retain(|&i| i != index);
        c.location.insert(index, dest_pe);
        self.msgs_processed += 1;
        // Ship the packed chare.
        let mut params = Vec::with_capacity(20 + data.len());
        crate::wire::marshal::put_u64(&mut params, col.0 as u64);
        crate::wire::marshal::put_u64(&mut params, index);
        crate::wire::marshal::put_bytes(&mut params, &data);
        let env = Envelope {
            collection: SYS_COLLECTION,
            index: 0,
            ep: SYS_MIGRATE,
            src_pe: self.index as u32,
            params,
            phantom_payload: 0,
            device: vec![],
        };
        self.post_envelope(ctx, dest_pe, env);
        // Tell the home PE (senders falling back to the home map route
        // through it and get forwarded).
        let home = self.home_pe(col, index);
        if home != dest_pe && home != self.index {
            let mut params = Vec::with_capacity(24);
            crate::wire::marshal::put_u64(&mut params, col.0 as u64);
            crate::wire::marshal::put_u64(&mut params, index);
            crate::wire::marshal::put_u64(&mut params, dest_pe as u64);
            let env = Envelope {
                collection: SYS_COLLECTION,
                index: 0,
                ep: SYS_LOCATION,
                src_pe: self.index as u32,
                params,
                phantom_payload: 0,
                device: vec![],
            };
            self.post_envelope(ctx, home, env);
        }
    }

    // ---- Sending ------------------------------------------------------

    /// Invoke entry method `ep` on chare `to` with marshalled `params`,
    /// `phantom` bytes of extra (unmaterialized) host payload, and GPU
    /// buffers sent in tandem through the machine layer (the
    /// `nocopydevice` path). Fire-and-forget, per Charm++ semantics.
    pub fn send(
        &mut self,
        ctx: &mut MCtx,
        to: ChareRef,
        ep: EpId,
        params: Vec<u8>,
        phantom: u64,
        device_bufs: Vec<MemRef>,
    ) {
        self.send_ext(ctx, to, ep, params, phantom, device_bufs, false);
    }

    /// Like [`Pe::send`] but optionally returning one trigger per device
    /// buffer, fired when the machine layer completes the corresponding GPU
    /// send (used by AMPI to implement send-completion semantics).
    #[allow(clippy::too_many_arguments)]
    pub fn send_ext(
        &mut self,
        ctx: &mut MCtx,
        to: ChareRef,
        ep: EpId,
        params: Vec<u8>,
        phantom: u64,
        device_bufs: Vec<MemRef>,
        want_triggers: bool,
    ) -> Vec<Trigger> {
        let dst_pe = self.route_pe(to.col, to.index);
        let ndev = device_bufs.len();
        // CPU cost: runtime send path + payload packing + per-device
        // metadata handling + the UCP calls themselves.
        let ucp_call = ctx.with_world_ref(|w, _| w.ucp.config.cpu_call);
        let pack = self.params.pack_cost(params.len() as u64 + phantom);
        let cost = self.params.send_overhead
            + pack
            + ndev as u64 * (self.params.device_meta_overhead + ucp_call)
            + ucp_call;
        ctx.advance(cost);

        // 1) Send GPU buffers through the machine layer (LrtsSendDevice),
        //    generating one device tag each (Fig. 6 steps 1-4).
        let mut metas = Vec::with_capacity(ndev);
        let mut triggers = Vec::new();
        let src_pe = self.index;
        let sctx = self.send_ctx_stamp();
        for buf in device_bufs {
            let tag = self.scheme.device_tag(src_pe, self.device_cnt);
            self.device_cnt += 1;
            metas.push(DeviceMeta {
                tag,
                size: buf.len,
                user_tagged: false,
            });
            let trig = ctx.with_world(move |w, s| {
                stamp_ctx(w, sctx);
                if want_triggers {
                    let t = s.new_trigger();
                    tag_send_nb(
                        w,
                        s,
                        src_pe,
                        dst_pe,
                        SendBuf::Mem(buf),
                        tag,
                        Completion::Trigger(t),
                    );
                    Some(t)
                } else {
                    tag_send_nb(
                        w,
                        s,
                        src_pe,
                        dst_pe,
                        SendBuf::Mem(buf),
                        tag,
                        Completion::None,
                    );
                    None
                }
            });
            if let Some(t) = trig {
                triggers.push(t);
            }
        }

        // 2) Pack metadata with host-side data and send the envelope
        //    (Fig. 6 step 5).
        let env = Envelope {
            collection: to.col.0,
            index: to.index,
            ep,
            src_pe: src_pe as u32,
            params,
            phantom_payload: phantom,
            device: metas,
        };
        self.post_envelope(ctx, dst_pe, env);
        triggers
    }

    /// Route an envelope to `dst_pe` (loopback for self-sends).
    fn post_envelope(&mut self, ctx: &mut MCtx, dst_pe: usize, env: Envelope) {
        if env.collection != SYS_COLLECTION || !matches!(env.ep, SYS_QD_PING | SYS_QD_REPLY) {
            self.qd_created += 1;
        }
        if dst_pe == self.index {
            self.local_q.push_back(env);
        } else {
            let src_pe = self.index;
            let tag = self.scheme.host_tag(src_pe);
            let wire = env.wire_size();
            let bytes = env.encode();
            let sctx = self.send_ctx_stamp();
            ctx.with_world(move |w, s| {
                stamp_ctx(w, sctx);
                tag_send_nb(
                    w,
                    s,
                    src_pe,
                    dst_pe,
                    SendBuf::Inline {
                        bytes,
                        wire_size: wire,
                    },
                    tag,
                    Completion::None,
                );
            });
        }
    }

    /// Deliver an entry-method invocation to a *local* chare at absolute
    /// virtual time `fire_at` (e.g. when an asynchronously launched GPU
    /// kernel completes). The envelope is injected into this PE's own
    /// worker, so the scheduler stays free to process other messages in the
    /// meantime — the mechanism behind computation-communication overlap
    /// with overdecomposition.
    pub fn send_local_at(
        &mut self,
        ctx: &mut MCtx,
        to: ChareRef,
        ep: EpId,
        params: Vec<u8>,
        fire_at: rucx_sim::time::Time,
    ) {
        debug_assert_eq!(self.home_pe(to.col, to.index), self.index);
        let env = Envelope {
            collection: to.col.0,
            index: to.index,
            ep,
            src_pe: self.index as u32,
            params,
            phantom_payload: 0,
            device: vec![],
        };
        let me = self.index;
        let tag = self.scheme.host_tag(me);
        let bytes = env.encode();
        let wire = bytes.len() as u64;
        ctx.with_world(move |_, s| {
            s.schedule_at(fire_at, move |w, s| {
                rucx_ucp::inject_local(w, s, me, me, tag, Some(bytes), wire);
            });
        });
    }

    /// Broadcast entry method `ep` to every element of `col`.
    pub fn broadcast(&mut self, ctx: &mut MCtx, col: Collection, ep: EpId, params: Vec<u8>) {
        let cost = self.params.send_overhead;
        ctx.advance(cost);
        for pe in 0..self.n_pes {
            let env = Envelope {
                collection: col.0,
                index: BCAST_INDEX,
                ep,
                src_pe: self.index as u32,
                params: params.clone(),
                phantom_payload: 0,
                device: vec![],
            };
            self.post_envelope(ctx, pe, env);
        }
    }

    /// Raise the exit flag on every PE ("CkExit").
    pub fn exit_all(&mut self, ctx: &mut MCtx) {
        for pe in 0..self.n_pes {
            let env = Envelope {
                collection: SYS_COLLECTION,
                index: 0,
                ep: SYS_EXIT,
                src_pe: self.index as u32,
                params: vec![],
                phantom_payload: 0,
                device: vec![],
            };
            self.post_envelope(ctx, pe, env);
        }
    }

    // ---- Quiescence detection ------------------------------------------

    /// Start quiescence detection ("CkStartQD"): when no user-level message
    /// is in flight or unprocessed anywhere, invoke `ep` on chare `target`.
    /// Must be called on PE 0 (the detection root). Uses the classic
    /// two-identical-waves counter algorithm.
    pub fn start_quiescence(&mut self, ctx: &mut MCtx, target: ChareRef, ep: EpId) {
        assert_eq!(self.index, 0, "quiescence detection is rooted at PE 0");
        assert!(self.qd.is_none(), "quiescence detection already active");
        self.qd = Some(QdState {
            wave: 0,
            replies: 0,
            created: 0,
            processed: 0,
            prev: None,
            target: (target, ep),
        });
        self.qd_wave(ctx);
    }

    fn qd_wave(&mut self, ctx: &mut MCtx) {
        let st = self.qd.as_mut().expect("qd active");
        st.wave += 1;
        st.replies = 0;
        st.created = 0;
        st.processed = 0;
        let wave = st.wave;
        let mut params = Vec::with_capacity(8);
        crate::wire::marshal::put_u64(&mut params, wave);
        for pe in 0..self.n_pes {
            let env = Envelope {
                collection: SYS_COLLECTION,
                index: 0,
                ep: SYS_QD_PING,
                src_pe: self.index as u32,
                params: params.clone(),
                phantom_payload: 0,
                device: vec![],
            };
            self.post_envelope(ctx, pe, env);
        }
    }

    fn qd_on_reply(&mut self, ctx: &mut MCtx, created: u64, processed: u64) {
        let n_pes = self.n_pes;
        let st = self.qd.as_mut().expect("qd reply without detection");
        st.replies += 1;
        st.created += created;
        st.processed += processed;
        if st.replies < n_pes {
            return;
        }
        let totals = (st.created, st.processed);
        let quiescent = totals.0 == totals.1 && st.prev == Some(totals);
        st.prev = Some(totals);
        if quiescent {
            let (target, ep) = st.target;
            self.qd = None;
            self.send(ctx, target, ep, vec![], 0, vec![]);
        } else {
            self.qd_wave(ctx);
        }
    }

    // ---- Reductions ---------------------------------------------------

    /// Contribute element `elem`'s value to its next reduction of `col`.
    /// Every element must contribute exactly once per reduction, in the
    /// same reduction order everywhere; when complete, the result is
    /// delivered to `target`.
    pub fn contribute(
        &mut self,
        ctx: &mut MCtx,
        col: Collection,
        elem: u64,
        op: RedOp,
        value: f64,
        target: RedTarget,
    ) {
        // Element `elem`'s k-th contribution belongs to sequence k.
        let seq = {
            let c = &mut self.collections[col.0 as usize];
            let counter = c.red.elem_seq.entry(elem).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        self.reduce_merge(ctx, col, seq, op, value, 1, 0, Some(target), true);
    }

    /// Merge a contribution (local or from a child PE subtree) into the
    /// reduction state and forward when complete.
    #[allow(clippy::too_many_arguments)]
    fn reduce_merge(
        &mut self,
        ctx: &mut MCtx,
        col: Collection,
        seq: u64,
        op: RedOp,
        value: f64,
        count: u64,
        from_children: usize,
        target: Option<RedTarget>,
        local: bool,
    ) {
        let (done, acc, total) = {
            let c = &mut self.collections[col.0 as usize];
            let n_local = c.local_indices.len();
            let entry = c.red.entries.entry(seq).or_insert(RedEntry {
                local_got: 0,
                children_got: 0,
                acc: identity(op),
                count: 0,
                target: None,
            });
            if local {
                entry.local_got += 1;
            } else {
                entry.children_got += from_children;
            }
            if target.is_some() {
                entry.target = target;
            }
            entry.acc = combine(op, entry.acc, value);
            entry.count += count;
            // Children of this PE in the reduction tree that have elements.
            let expected_children = self
                .red_tree
                .expected_children(self.index, &c.subtree_elems);
            let done = entry.local_got == n_local && entry.children_got == expected_children;
            (done, entry.acc, entry.count)
        };
        if !done {
            return;
        }
        let target = {
            let c = &mut self.collections[col.0 as usize];
            let e = c.red.entries.remove(&seq).expect("reduction entry");
            e.target
        };
        if let Some(parent) = self.red_tree.parent(self.index) {
            // Forward to the parent PE in the reduction tree.
            let mut params = Vec::new();
            {
                use crate::wire::marshal::*;
                put_u64(&mut params, col.0 as u64);
                put_u64(&mut params, seq);
                put_u64(&mut params, op_code(op));
                put_f64(&mut params, acc);
                put_u64(&mut params, total);
            }
            let env = Envelope {
                collection: SYS_COLLECTION,
                index: 0,
                ep: SYS_REDUCE,
                src_pe: self.index as u32,
                params,
                phantom_payload: 0,
                device: vec![],
            };
            self.post_envelope(ctx, parent, env);
        } else {
            // Root: deliver.
            let t = target.expect("reduction completed at root without a target");
            let mut params = Vec::new();
            crate::wire::marshal::put_f64(&mut params, acc);
            crate::wire::marshal::put_u64(&mut params, total);
            match t {
                RedTarget::Broadcast(c2, ep) => self.broadcast(ctx, c2, ep, params),
                RedTarget::Chare(cr, ep) => self.send(ctx, cr, ep, params, 0, vec![]),
            }
        }
    }

    // ---- Scheduling ---------------------------------------------------

    /// Run the message-driven scheduler until the exit flag rises.
    pub fn run(&mut self, ctx: &mut MCtx) {
        while !self.exit {
            if !self.try_step(ctx) {
                self.wait_for_work(ctx);
            }
        }
    }

    /// Pump the scheduler until `pred` holds (used by blocking layers: AMPI
    /// ranks, Charm4py coroutines). Processes messages while waiting; the
    /// predicate may consult the world (e.g. check trigger state).
    pub fn pump_until(
        &mut self,
        ctx: &mut MCtx,
        mut pred: impl FnMut(&mut Self, &mut MCtx) -> bool,
    ) {
        loop {
            if pred(self, ctx) {
                return;
            }
            if !self.try_step(ctx) {
                // Re-check after the failed step: the predicate may depend
                // on world state that try_step's processing changed.
                if pred(self, ctx) {
                    return;
                }
                self.wait_for_work(ctx);
            }
        }
    }

    // ---- Machine layer (Lrts*Device equivalents) -----------------------

    /// `LrtsSendDevice`: send a GPU (or zero-copy host) buffer directly
    /// through the UCP tagged API; returns the generated machine-layer tag
    /// and, when `want_trigger`, a trigger fired at sender completion.
    pub fn ml_send_device(
        &mut self,
        ctx: &mut MCtx,
        dst_pe: usize,
        buf: MemRef,
        want_trigger: bool,
    ) -> (u64, Option<Trigger>) {
        let tag = self.scheme.device_tag(self.index, self.device_cnt);
        self.device_cnt += 1;
        let src_pe = self.index;
        let ucp_call = ctx.with_world_ref(|w, _| w.ucp.config.cpu_call);
        ctx.advance(self.params.device_meta_overhead + ucp_call);
        let sctx = self.send_ctx_stamp();
        let trig = ctx.with_world(move |w, s| {
            stamp_ctx(w, sctx);
            if want_trigger {
                let t = s.new_trigger();
                tag_send_nb(
                    w,
                    s,
                    src_pe,
                    dst_pe,
                    SendBuf::Mem(buf),
                    tag,
                    Completion::Trigger(t),
                );
                Some(t)
            } else {
                tag_send_nb(
                    w,
                    s,
                    src_pe,
                    dst_pe,
                    SendBuf::Mem(buf),
                    tag,
                    Completion::None,
                );
                None
            }
        });
        (tag, trig)
    }

    /// Pre-post the receive for a device transfer that will arrive under a
    /// *user-provided* tag (both endpoints derive the machine-layer tag
    /// independently). Eliminates the paper's noted delay of posting the
    /// receive only after the metadata message arrives: the data transfer
    /// can start the moment the sender's RTS lands.
    pub fn pre_post_device(&mut self, ctx: &mut MCtx, user_tag: u64, buf: MemRef) {
        let tag = self.scheme.user_device_tag(user_tag);
        let t = self.ml_recv_device(ctx, tag, buf);
        let prev = self.pre_posted.insert(tag, t);
        assert!(prev.is_none(), "user tag {user_tag} already pre-posted");
    }

    /// Like [`Pe::send`], but each device buffer travels under a
    /// user-provided tag the receiver may have pre-posted (§VI).
    pub fn send_user_tagged(
        &mut self,
        ctx: &mut MCtx,
        to: ChareRef,
        ep: EpId,
        params: Vec<u8>,
        device_bufs: Vec<(MemRef, u64)>,
    ) {
        let dst_pe = self.route_pe(to.col, to.index);
        let ndev = device_bufs.len();
        let ucp_call = ctx.with_world_ref(|w, _| w.ucp.config.cpu_call);
        let cost = self.params.send_overhead
            + self.params.pack_cost(params.len() as u64)
            + ndev as u64 * (self.params.device_meta_overhead + ucp_call)
            + ucp_call;
        ctx.advance(cost);
        let src_pe = self.index;
        let mut metas = Vec::with_capacity(ndev);
        let sctx = self.send_ctx_stamp();
        for (buf, user_tag) in device_bufs {
            let tag = self.scheme.user_device_tag(user_tag);
            metas.push(DeviceMeta {
                tag,
                size: buf.len,
                user_tagged: true,
            });
            ctx.with_world(move |w, s| {
                stamp_ctx(w, sctx);
                tag_send_nb(
                    w,
                    s,
                    src_pe,
                    dst_pe,
                    SendBuf::Mem(buf),
                    tag,
                    Completion::None,
                );
            });
        }
        let env = Envelope {
            collection: to.col.0,
            index: to.index,
            ep,
            src_pe: src_pe as u32,
            params,
            phantom_payload: 0,
            device: metas,
        };
        self.post_envelope(ctx, dst_pe, env);
    }

    /// `LrtsRecvDevice`: post the receive for an announced device transfer;
    /// returns a trigger fired when the data is in `dst`.
    pub fn ml_recv_device(&mut self, ctx: &mut MCtx, tag: u64, dst: MemRef) -> Trigger {
        let me = self.index;
        let ucp_call = ctx.with_world_ref(|w, _| w.ucp.config.cpu_call);
        ctx.advance(ucp_call);
        ctx.with_world(move |w, s| {
            let t = s.new_trigger();
            tag_recv_nb(
                w,
                s,
                me,
                dst,
                tag,
                rucx_ucp::MASK_FULL,
                RecvCompletion::Trigger(t),
            );
            t
        })
    }

    /// Send-context stamp for sends issued right now: the executing chare,
    /// or 0 outside entry methods (driver/blocking-layer code).
    fn send_ctx_stamp(&self) -> u64 {
        self.current_chare.map_or(0, encode_chare_ctx)
    }

    /// Route an asynchronous communication error: per-chare handler when the
    /// send was stamped and the chare is local, else the PE-wide default,
    /// else keep it visible in `unhandled_errors`.
    fn deliver_error(&mut self, ctx: &mut MCtx, err: UcpError) {
        if let Some(key) = decode_chare_ctx(err.ctx()) {
            if let Some(h) = self.error_handlers.get(&key).cloned() {
                if let Some(mut chare) = self.chares.remove(&key) {
                    let prev = self.current_chare.replace(key);
                    h(chare.as_mut(), &err, self, ctx);
                    self.current_chare = prev;
                    self.chares.insert(key, chare);
                    return;
                }
            }
        }
        if let Some(h) = self.default_error_handler.clone() {
            h(&err, self, ctx);
            return;
        }
        let me = self.index as u32;
        ctx.with_world(move |_, s| s.trace_instant("charm.error.unhandled", me, 0, 0));
        self.unhandled_errors.push(err);
    }

    /// One scheduler step; returns whether progress was made.
    pub fn try_step(&mut self, ctx: &mut MCtx) -> bool {
        // 0) Asynchronous communication errors from the reliability layer.
        let me = self.index;
        let err = ctx.with_world(move |w, _| w.ucp.take_worker_error(me));
        if let Some(err) = err {
            self.deliver_error(ctx, err);
            return true;
        }
        // 1) Device-complete entry methods ready to run?
        if let Some(i) = self.find_ready_pending(ctx) {
            let p = self.pending_device.swap_remove(i);
            let triggers = p.triggers.clone();
            ctx.with_world(move |_, s| {
                for t in triggers {
                    s.recycle_trigger(t);
                }
            });
            self.exec_envelope(ctx, p.env);
            return true;
        }
        // 2) Local (same-PE) messages.
        if let Some(env) = self.local_q.pop_front() {
            self.dispatch(ctx, env);
            return true;
        }
        // 3) Host-side messages from the machine layer.
        let me = self.index;
        let (want, mask) = self.scheme.host_probe();
        let popped = ctx.with_world(move |w, _| probe_pop(w, me, want, mask));
        match popped {
            Some(PoppedMsg::Eager { bytes, .. }) => {
                let bytes = bytes.expect("envelope must be materialized");
                let env = Envelope::decode(&bytes).expect("malformed envelope");
                self.dispatch(ctx, env);
                true
            }
            Some(PoppedMsg::Rndv { rts_id, tag, .. }) => {
                // Large host-side message: start fetching its bytes without
                // blocking the scheduler; the completed message is
                // re-injected into the worker as an eager arrival and
                // dispatched on a later step (the real machine layer
                // likewise overlaps the rendezvous with scheduling).
                ctx.with_world(move |w, s| {
                    // A failed fetch (rendezvous retired by the reliability
                    // layer) already queued a typed error at this PE's
                    // worker; `try_step` surfaces it to the error handler.
                    let _ = rndv_fetch(
                        w,
                        s,
                        me,
                        tag,
                        rts_id,
                        FetchDst::Bytes,
                        RecvCompletion::Bytes(Box::new(move |w, s, bytes, info| {
                            if info.size > 0 {
                                rucx_ucp::inject_local(w, s, me, info.src, tag, bytes, info.size);
                            }
                        })),
                    );
                });
                true
            }
            None => false,
        }
    }

    fn find_ready_pending(&mut self, ctx: &mut MCtx) -> Option<usize> {
        if self.pending_device.is_empty() {
            return None;
        }
        // Read-only fast path: borrow the pending list directly instead of
        // cloning every trigger set per scheduler pump.
        let pending = &self.pending_device;
        ctx.with_world_ref(|_, s| {
            pending
                .iter()
                .position(|p| p.triggers.iter().all(|t| s.fired(*t)))
        })
    }

    /// Park until the machine layer signals new work.
    ///
    /// Safe against lost wakeups: no yield happens between `try_step`
    /// returning false and the epoch snapshot below (world calls do not
    /// yield the processor), so any notification after the failed check
    /// moves the epoch past `seen`.
    fn wait_for_work(&mut self, ctx: &mut MCtx) {
        let me = self.index;
        let (n, seen) = ctx.with_world_ref(|w, s| {
            let n = w.ucp.worker(me).notify;
            (n, s.notify_epoch(n))
        });
        ctx.wait_notify(n, seen);
        // Account the scheduler's wake-from-idle poll cost.
        ctx.advance(self.params.idle_poll);
    }

    /// Dispatch one envelope: system handling, post entry methods for
    /// device buffers, or direct execution.
    fn dispatch(&mut self, ctx: &mut MCtx, env: Envelope) {
        self.msgs_processed += 1;
        {
            // One instant per delivered envelope: id packs (collection, ep)
            // so a trace viewer can tell entry methods apart; arg = sender.
            let me = self.index as u32;
            let id = ((env.collection as u64) << 16) | env.ep as u64;
            let src = env.src_pe as u64;
            ctx.with_world(move |_, s| s.trace_instant("charm.sched.deliver", me, id, src));
        }
        if env.collection != SYS_COLLECTION || !matches!(env.ep, SYS_QD_PING | SYS_QD_REPLY) {
            self.qd_processed += 1;
        }
        let unpack = self
            .params
            .pack_cost(env.params.len() as u64 + env.phantom_payload);
        ctx.advance(self.params.recv_overhead + unpack);

        if env.collection == SYS_COLLECTION {
            self.handle_sys(ctx, env);
            return;
        }
        if env.device.is_empty() {
            self.exec_envelope(ctx, env);
            return;
        }
        // Fast path: every incoming buffer was pre-posted under a user
        // tag — no post entry method needed, and the transfers have been
        // in flight since the sender's RTS arrived.
        if !env.device.is_empty()
            && env
                .device
                .iter()
                .all(|m| m.user_tagged && self.pre_posted.contains_key(&m.tag))
        {
            let triggers: Vec<Trigger> = env
                .device
                .iter()
                .map(|m| self.pre_posted.remove(&m.tag).expect("pre-posted"))
                .collect();
            self.pending_device.push(PendingDevice { env, triggers });
            return;
        }
        // Post entry method: obtain destination GPU buffers, then post the
        // machine-layer receives (LrtsRecvDevice) for each incoming buffer.
        ctx.advance(self.params.post_overhead);
        let key = (env.collection, env.index);
        let col = &self.collections[env.collection as usize];
        let entry = col.eps[env.ep as usize].clone();
        let post = entry
            .post
            .as_ref()
            .expect("device buffers sent to an entry method without a post function");
        let msg = Msg {
            src_pe: env.src_pe as usize,
            params: env.params.clone(),
            device_sizes: env.device.iter().map(|d| d.size).collect(),
            phantom_payload: env.phantom_payload,
        };
        let mut chare = self
            .chares
            .remove(&key)
            .unwrap_or_else(|| panic!("chare ({}, {}) not on PE {}", key.0, key.1, self.index));
        let bufs = post(chare.as_mut(), &msg);
        self.chares.insert(key, chare);
        assert_eq!(
            bufs.len(),
            env.device.len(),
            "post entry method must supply one buffer per device parameter"
        );
        let me = self.index;
        let ucp_call = ctx.with_world_ref(|w, _| w.ucp.config.cpu_call);
        ctx.advance(ucp_call * env.device.len() as u64);
        let metas: Vec<DeviceMeta> = env.device.clone();
        let pairs: Vec<(DeviceMeta, MemRef)> = metas.into_iter().zip(bufs).collect();
        let triggers = ctx.with_world(move |w, s| {
            let mut ts = Vec::with_capacity(pairs.len());
            for (meta, buf) in pairs {
                assert!(
                    buf.len >= meta.size,
                    "posted device buffer smaller than incoming data"
                );
                let t = s.new_trigger();
                tag_recv_nb(
                    w,
                    s,
                    me,
                    buf.slice(0, meta.size),
                    meta.tag,
                    rucx_ucp::MASK_FULL,
                    RecvCompletion::Trigger(t),
                );
                ts.push(t);
            }
            ts
        });
        self.pending_device.push(PendingDevice { env, triggers });
    }

    /// Run the regular entry method(s) for an envelope whose data (host and
    /// device) is fully available.
    fn exec_envelope(&mut self, ctx: &mut MCtx, env: Envelope) {
        let col_idx = env.collection as usize;
        let entry = self.collections[col_idx].eps[env.ep as usize].clone();
        let msg = Msg {
            src_pe: env.src_pe as usize,
            params: env.params,
            device_sizes: env.device.iter().map(|d| d.size).collect(),
            phantom_payload: env.phantom_payload,
        };
        if env.index == BCAST_INDEX {
            let indices = self.collections[col_idx].local_indices.clone();
            for i in indices {
                self.exec_one(ctx, (env.collection, i), &entry, &msg);
            }
        } else if !self.chares.contains_key(&(env.collection, env.index)) {
            // The chare migrated away (or was never here): forward.
            let env = Envelope {
                collection: env.collection,
                index: env.index,
                ep: env.ep,
                src_pe: msg.src_pe as u32,
                params: msg.params,
                phantom_payload: msg.phantom_payload,
                device: env.device,
            };
            self.forward(ctx, env);
        } else {
            self.exec_one(ctx, (env.collection, env.index), &entry, &msg);
        }
    }

    fn exec_one(&mut self, ctx: &mut MCtx, key: (u16, u64), entry: &Rc<EpEntry>, msg: &Msg) {
        let mut chare = self
            .chares
            .remove(&key)
            .unwrap_or_else(|| panic!("chare ({}, {}) not on PE {}", key.0, key.1, self.index));
        let prev = self.current_chare.replace(key);
        (entry.exec)(chare.as_mut(), msg, self, ctx);
        self.current_chare = prev;
        // The entry method may have migrated the chare away; only reinsert
        // if it is still ours.
        if self.collections[key.0 as usize]
            .location
            .get(&key.1)
            .is_none_or(|&pe| pe == self.index)
        {
            self.chares.insert(key, chare);
        }
    }

    /// A message reached a PE that no longer (or never) hosted the chare:
    /// forward it along the best-known route (home-based location protocol).
    fn forward(&mut self, ctx: &mut MCtx, env: Envelope) {
        let col = Collection(env.collection);
        let next = self.route_pe(col, env.index);
        assert_ne!(
            next, self.index,
            "no route for chare ({}, {}) from PE {}",
            env.collection, env.index, self.index
        );
        self.msgs_processed += 1;
        self.post_envelope(ctx, next, env);
    }

    fn handle_sys(&mut self, ctx: &mut MCtx, env: Envelope) {
        match env.ep {
            SYS_EXIT => self.exit = true,
            SYS_REDUCE => {
                let mut r = crate::wire::marshal::Reader(&env.params);
                let col = Collection(r.u64() as u16);
                let seq = r.u64();
                let op = op_from(r.u64());
                let value = r.f64();
                let count = r.u64();
                self.reduce_merge(ctx, col, seq, op, value, count, 1, None, false);
            }
            SYS_QD_PING => {
                let mut r = crate::wire::marshal::Reader(&env.params);
                let wave = r.u64();
                let mut params = Vec::with_capacity(24);
                crate::wire::marshal::put_u64(&mut params, wave);
                crate::wire::marshal::put_u64(&mut params, self.qd_created);
                // Envelopes whose GPU payloads are still in flight are not
                // done: report them as unprocessed so quiescence cannot be
                // declared across a pending device transfer.
                crate::wire::marshal::put_u64(
                    &mut params,
                    self.qd_processed
                        .saturating_sub(self.pending_device.len() as u64),
                );
                let reply = Envelope {
                    collection: SYS_COLLECTION,
                    index: 0,
                    ep: SYS_QD_REPLY,
                    src_pe: self.index as u32,
                    params,
                    phantom_payload: 0,
                    device: vec![],
                };
                self.post_envelope(ctx, env.src_pe as usize, reply);
            }
            SYS_QD_REPLY => {
                let mut r = crate::wire::marshal::Reader(&env.params);
                let _wave = r.u64();
                let created = r.u64();
                let processed = r.u64();
                self.qd_on_reply(ctx, created, processed);
            }
            SYS_MIGRATE => {
                let mut r = crate::wire::marshal::Reader(&env.params);
                let col = Collection(r.u64() as u16);
                let index = r.u64();
                let data = r.bytes().to_vec();
                let c = &mut self.collections[col.0 as usize];
                let chare = (c
                    .factory
                    .as_ref()
                    .expect("migration target collection has no factory"))(
                    &data
                );
                c.local_indices.push(index);
                c.local_indices.sort_unstable();
                c.location.insert(index, self.index);
                self.chares.insert((col.0, index), chare);
            }
            SYS_LOCATION => {
                let mut r = crate::wire::marshal::Reader(&env.params);
                let col = Collection(r.u64() as u16);
                let index = r.u64();
                let pe = r.u64() as usize;
                self.collections[col.0 as usize].location.insert(index, pe);
            }
            other => panic!("unknown system entry {other}"),
        }
    }
}

fn identity(op: RedOp) -> f64 {
    match op {
        RedOp::Sum | RedOp::Barrier => 0.0,
        RedOp::Min => f64::INFINITY,
        RedOp::Max => f64::NEG_INFINITY,
    }
}

fn combine(op: RedOp, a: f64, b: f64) -> f64 {
    match op {
        RedOp::Sum | RedOp::Barrier => a + b,
        RedOp::Min => a.min(b),
        RedOp::Max => a.max(b),
    }
}

fn op_code(op: RedOp) -> u64 {
    match op {
        RedOp::Sum => 0,
        RedOp::Min => 1,
        RedOp::Max => 2,
        RedOp::Barrier => 3,
    }
}

fn op_from(v: u64) -> RedOp {
    match v {
        0 => RedOp::Sum,
        1 => RedOp::Min,
        2 => RedOp::Max,
        3 => RedOp::Barrier,
        _ => panic!("bad reduction op code {v}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_identities() {
        assert_eq!(identity(RedOp::Sum), 0.0);
        assert_eq!(combine(RedOp::Min, identity(RedOp::Min), 5.0), 5.0);
        assert_eq!(combine(RedOp::Max, identity(RedOp::Max), -5.0), -5.0);
        for op in [RedOp::Sum, RedOp::Min, RedOp::Max, RedOp::Barrier] {
            assert_eq!(op_from(op_code(op)), op);
        }
    }
}
